//! # dsbn — Learning Graphical Models from a Distributed Stream
//!
//! Facade crate re-exporting the `dsbn` workspace: a reproduction of
//! Zhang, Tirthapura & Cormode, *Learning Graphical Models from a
//! Distributed Stream* (ICDE 2018).
//!
//! See the individual crates for detail:
//! - [`bayes`]: Bayesian network substrate (DAGs, CPTs, sampling, BIF, generators).
//! - [`counters`]: distributed counter protocols (exact / deterministic / HYZ randomized).
//! - [`monitor`]: continuous distributed monitoring runtimes (simulator + threaded cluster).
//! - [`datagen`]: training streams and test query generation.
//! - [`core`]: the paper's algorithms — BASELINE, UNIFORM, NONUNIFORM trackers.

pub use dsbn_bayes as bayes;
pub use dsbn_core as core;
pub use dsbn_counters as counters;
pub use dsbn_datagen as datagen;
pub use dsbn_monitor as monitor;
