//! Deterministic threshold counter (Keralapura, Cormode & Ramamirtham,
//! SIGMOD 2006 — reference \[22\] of the paper).
//!
//! Each site reports its cumulative local count whenever it has grown by a
//! factor `(1 + eps)` since the last report. The coordinator sums the last
//! reports; each site's unreported remainder is at most `eps` times its
//! local count, so the estimate satisfies
//! `(1 - eps) * C <= estimate <= C`.
//!
//! Per-site message cost is `O(1/eps + log_{1+eps} T)`, so the total cost is
//! `O(k * log T / eps)` — worse than the randomized HYZ counter's
//! `O(sqrt(k)/eps * log T)` for large `k`. The protocol exists here as the
//! deterministic ablation baseline (`exp_ablation_counters`).

use crate::msg::{DownMsg, UpMsg};
use crate::protocol::CounterProtocol;
use rand::Rng;

/// Deterministic `(1+eps)`-threshold counter protocol.
#[derive(Debug, Clone, Copy)]
pub struct DeterministicProtocol {
    eps: f64,
}

impl DeterministicProtocol {
    /// `eps` is the per-counter relative error; must be in `(0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        DeterministicProtocol { eps }
    }

    /// The protocol's relative error parameter.
    pub fn eps(&self) -> f64 {
        self.eps
    }
}

/// Site state.
#[derive(Debug, Clone, Copy, Default)]
pub struct DetSite {
    local: u64,
    reported: u64,
}

/// Coordinator state.
#[derive(Debug, Clone)]
pub struct DetCoord {
    last: Vec<u64>,
    sum: u64,
}

impl CounterProtocol for DeterministicProtocol {
    type Site = DetSite;
    type Coord = DetCoord;

    fn new_site(&self) -> DetSite {
        DetSite::default()
    }

    fn new_coord(&self, k: usize) -> DetCoord {
        DetCoord { last: vec![0; k], sum: 0 }
    }

    #[inline]
    fn increment<R: Rng + ?Sized>(&self, site: &mut DetSite, _rng: &mut R) -> Option<UpMsg> {
        site.local += 1;
        let threshold = (site.reported as f64 * (1.0 + self.eps)).floor() as u64;
        if site.local > threshold.max(site.reported) {
            site.reported = site.local;
            Some(UpMsg::Cumulative { value: site.local })
        } else {
            None
        }
    }

    fn handle_down<R: Rng + ?Sized>(
        &self,
        _site: &mut DetSite,
        _msg: DownMsg,
        _rng: &mut R,
    ) -> Option<UpMsg> {
        None // never broadcasts
    }

    fn handle_up(&self, coord: &mut DetCoord, site_id: usize, msg: UpMsg) -> Option<DownMsg> {
        if let UpMsg::Cumulative { value } = msg {
            // Reports are monotone per site; out-of-order delivery in the
            // cluster runtime is handled by ignoring regressions.
            if value > coord.last[site_id] {
                coord.sum += value - coord.last[site_id];
                coord.last[site_id] = value;
            }
        } else {
            debug_assert!(false, "unexpected message {msg:?}");
        }
        None
    }

    #[inline]
    fn estimate(&self, coord: &DetCoord) -> f64 {
        coord.sum as f64
    }

    fn site_local_count(&self, site: &DetSite) -> u64 {
        site.local
    }

    fn site_crashed(&self, coord: &mut DetCoord, site_id: usize) -> Option<DownMsg> {
        // Forget the crashed site's last cumulative report (its counts are
        // wiped site-side). Zeroing `last` also re-arms the monotonicity
        // guard: after a rejoin the site's fresh cumulative reports start
        // small again and must not read as regressions.
        coord.sum -= coord.last[site_id];
        coord.last[site_id] = 0;
        None
    }

    // `rejoin_site` default: with `last` zeroed, the rejoining site's fresh
    // reports are accepted by the regression guard as-is.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SingleCounterSim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        let _ = DeterministicProtocol::new(1.5);
    }

    #[test]
    fn estimate_within_relative_error() {
        let mut rng = StdRng::seed_from_u64(3);
        let eps = 0.1;
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(eps), 5);
        for _ in 0..20_000u64 {
            let s = rng.gen_range(0..5);
            sim.increment(s, &mut rng);
            let c = sim.exact_total() as f64;
            let est = sim.estimate();
            assert!(est <= c + 1e-9, "over-estimate {est} > {c}");
            assert!(est >= (1.0 - eps) * c - 1e-9, "under-estimate {est} < (1-eps){c}");
        }
    }

    #[test]
    fn cost_is_logarithmic_per_site() {
        let mut rng = StdRng::seed_from_u64(4);
        let eps = 0.1;
        let k = 4;
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(eps), k);
        let m = 100_000u64;
        for i in 0..m {
            sim.increment((i % k as u64) as usize, &mut rng);
        }
        // Per site: ~1/eps early reports + log_{1+eps}(m/k) threshold hits.
        let per_site = 1.0 / eps + ((m / k as u64) as f64).ln() / (1.0 + eps).ln();
        let bound = (k as f64) * per_site * 1.5 + 10.0;
        assert!((sim.messages as f64) < bound, "messages {} exceed bound {bound}", sim.messages);
        // And it must be much less than the exact counter's m messages.
        assert!(sim.messages < m / 50);
    }

    #[test]
    fn single_site_degenerate_case() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(0.5), 1);
        for _ in 0..1000 {
            sim.increment(0, &mut rng);
        }
        let c = sim.exact_total() as f64;
        assert!(sim.estimate() >= 0.5 * c && sim.estimate() <= c);
    }

    #[test]
    fn crash_forgets_last_report_and_rearms_guard() {
        let proto = DeterministicProtocol::new(0.2);
        let mut coord = proto.new_coord(2);
        proto.handle_up(&mut coord, 0, UpMsg::Cumulative { value: 100 });
        proto.handle_up(&mut coord, 1, UpMsg::Cumulative { value: 40 });
        assert_eq!(proto.estimate(&coord), 140.0);
        assert_eq!(proto.site_crashed(&mut coord, 1), None);
        assert_eq!(proto.estimate(&coord), 100.0);
        // Post-rejoin the fresh site reports small cumulative values; the
        // zeroed guard accepts them instead of treating them as stale.
        assert_eq!(proto.rejoin_site(&mut coord, 1), None);
        proto.handle_up(&mut coord, 1, UpMsg::Cumulative { value: 3 });
        assert_eq!(proto.estimate(&coord), 103.0);
    }

    #[test]
    fn stale_regression_ignored() {
        let proto = DeterministicProtocol::new(0.2);
        let mut coord = proto.new_coord(2);
        proto.handle_up(&mut coord, 0, UpMsg::Cumulative { value: 10 });
        proto.handle_up(&mut coord, 0, UpMsg::Cumulative { value: 7 }); // stale
        assert_eq!(proto.estimate(&coord), 10.0);
        proto.handle_up(&mut coord, 1, UpMsg::Cumulative { value: 5 });
        assert_eq!(proto.estimate(&coord), 15.0);
    }
}
