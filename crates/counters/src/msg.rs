//! Protocol messages exchanged between sites and the coordinator for a
//! single distributed counter.
//!
//! Message accounting follows the paper's convention (§VI-A, Table III):
//! one *message* is one counter update. A site-to-coordinator message counts
//! 1; a coordinator broadcast counts `k` (one per site).

use serde::{Deserialize, Serialize};

/// Site → coordinator messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpMsg {
    /// Exact-counter notification of a single arrival.
    Increment,
    /// Deterministic-counter report of the site's cumulative local count.
    Cumulative { value: u64 },
    /// Randomized (HYZ) report: the site's arrival count *within the current
    /// round*, tagged with the round so stale reports can be discarded.
    Report { round: u32, value: u64 },
    /// Reply to a [`DownMsg::SyncRequest`]: the site's cumulative count.
    SyncReply { round: u32, value: u64 },
}

/// Coordinator → sites broadcasts.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DownMsg {
    /// Close the given round: every site must answer with a
    /// [`UpMsg::SyncReply`] carrying its cumulative count.
    SyncRequest { round: u32 },
    /// Open a new round with sampling probability `p`.
    NewRound { round: u32, p: f64 },
}

impl UpMsg {
    /// The round tag, if this message type carries one.
    pub fn round(&self) -> Option<u32> {
        match self {
            UpMsg::Report { round, .. } | UpMsg::SyncReply { round, .. } => Some(*round),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_tags() {
        assert_eq!(UpMsg::Increment.round(), None);
        assert_eq!(UpMsg::Cumulative { value: 3 }.round(), None);
        assert_eq!(UpMsg::Report { round: 2, value: 9 }.round(), Some(2));
        assert_eq!(UpMsg::SyncReply { round: 5, value: 1 }.round(), Some(5));
    }
}
