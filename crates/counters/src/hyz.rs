//! Randomized distributed counter of Huang, Yi & Zhang (PODS 2012) — the
//! `DistCounter(eps, delta)` primitive of Lemma 4.
//!
//! ## Protocol
//!
//! Execution proceeds in *rounds*. At the start of round `r` the coordinator
//! knows the exact global count `S0` (collected by a sync). Within the
//! round, each site reports its number of arrivals since the sync, sending
//! a report on each arrival independently with probability
//! `p = min(1, sqrt(k) / (eps * S0))`.
//!
//! The coordinator estimates each site's within-round arrivals with
//! `r_i + 1/p - 1` where `r_i` is the last reported value (`0` when no
//! report was received) — an estimator that is *exactly unbiased*: if the
//! site saw `c` arrivals, the last report happened at arrival `t` with
//! probability `p(1-p)^{c-t}`, and
//! `sum_t p(1-p)^{c-t} (t + 1/p - 1) = c`.
//! The estimator's variance is at most `(1-p)/p^2 < 1/p^2` per site, so the
//! global estimate `S0 + sum_i (r_i + 1/p - 1)` has variance at most
//! `k/p^2 <= (eps * S0)^2 <= (eps * C)^2` — exactly the `Var[A] <= (eps C)^2`
//! guarantee of Lemma 4.
//!
//! When the estimate reaches `2 * S0` the coordinator closes the round: it
//! broadcasts a `SyncRequest`, sites answer with their exact cumulative
//! counts, and the coordinator opens the next round with the new `S0` and
//! `p`. Messages are tagged with round numbers so stale reports from an
//! asynchronous network are discarded rather than corrupting the estimate.
//!
//! Expected messages per round: `p * S0 ~ sqrt(k)/eps` reports plus `3k` for
//! the sync/new-round exchange, over `log2 T` rounds — the
//! `O((sqrt(k)/eps + k) log T)` of Lemma 4.
//!
//! ## Implementation notes
//!
//! Sites draw the *gap to the next report* from a geometric distribution
//! (`1 + floor(ln U / ln(1-p))`) instead of flipping a coin per arrival, so
//! an increment is branch-plus-decrement in the common case. Between a
//! site's `SyncReply` and the corresponding `NewRound` the site is *muted*
//! (it counts arrivals but does not report); arrival counts accumulated
//! while muted are carried into the next round's reports, so nothing is
//! lost under asynchronous delivery.

use crate::msg::{DownMsg, UpMsg};
use crate::protocol::CounterProtocol;
use rand::Rng;

/// The randomized HYZ counter protocol.
#[derive(Debug, Clone, Copy)]
pub struct HyzProtocol {
    eps: f64,
}

impl HyzProtocol {
    /// `eps` is the relative standard-deviation target of Lemma 4
    /// (`Var[A] <= (eps C)^2`). Must be in `(0, 1)`.
    pub fn new(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
        HyzProtocol { eps }
    }

    /// The error parameter.
    pub fn eps(&self) -> f64 {
        self.eps
    }

    fn sampling_probability(&self, k: usize, s0: u64) -> f64 {
        if s0 == 0 {
            return 1.0;
        }
        ((k as f64).sqrt() / (self.eps * s0 as f64)).min(1.0)
    }
}

/// Draw the arrival gap until the next report: `1 + Geometric(p)` failures,
/// parameterized by `ln(1 - p)` — constant within a round and cached in
/// [`HyzSite`], so the gap draw on the increment hot path costs one `ln`
/// and one division instead of two `ln`s.
fn draw_gap<R: Rng + ?Sized>(rng: &mut R, ln_1mp: f64) -> u64 {
    debug_assert!(ln_1mp < 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let g = (u.ln() / ln_1mp).floor();
    if g >= u64::MAX as f64 {
        u64::MAX
    } else {
        1 + g as u64
    }
}

/// Per-site state.
#[derive(Debug, Clone, Copy)]
pub struct HyzSite {
    /// Exact local arrival count since the counter was created.
    cumulative: u64,
    /// Arrivals since this site's last sync reply.
    in_round: u64,
    /// Round this site believes is current.
    round: u32,
    /// Current sampling probability.
    p: f64,
    /// `ln(1 - p)`, cached when `p` is set: every report and every
    /// round-resample draws a geometric gap from it, and `p` only changes
    /// on `NewRound` — so the log is paid once per round per site instead
    /// of once per draw. Meaningful only while `p < 1`.
    ln_1mp: f64,
    /// Arrivals remaining until the next report (valid when `p < 1`).
    skip: u64,
    /// Muted between `SyncReply` and `NewRound`.
    muted: bool,
}

/// Coordinator state.
#[derive(Debug, Clone)]
pub struct HyzCoord {
    k: usize,
    round: u32,
    p: f64,
    /// `1/p - 1`, cached when the round opens: the per-report estimator
    /// correction sits on the UPDATE hot path (one per received report),
    /// and `p` is constant within a round, so the division is paid once
    /// per round instead of once per message.
    correction: f64,
    /// Exact global count at the last sync.
    s0: u64,
    /// Per-site `r_i + 1/p - 1` contribution (0 when no report this round).
    contrib: Vec<f64>,
    contrib_sum: f64,
    /// Close the round when the estimate reaches this.
    threshold: f64,
    /// A sync is in flight.
    syncing: bool,
    replied: Vec<bool>,
    /// Per-site cumulative count at the last completed sync (the site's
    /// *anchor* inside `s0`): `s0 == synced.iter().sum()` after every sync.
    /// Kept per site — rather than as one running accumulator — so a site
    /// crash can subtract exactly that site's share; the `u64` sum is
    /// order-independent, so the no-fault path is bit-identical.
    synced: Vec<u64>,
    n_replies: usize,
    /// Crashed sites: excluded from every reply quorum until rejoin.
    dead: Vec<bool>,
}

impl HyzCoord {
    /// Current round number (diagnostics).
    pub fn round(&self) -> u32 {
        self.round
    }

    /// Current sampling probability (diagnostics).
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl HyzProtocol {
    /// Close the in-flight sync and open the next round. Shared by the
    /// quorum-completing `SyncReply` and by a crash that removes the last
    /// outstanding site from the quorum.
    fn open_next_round(&self, coord: &mut HyzCoord) -> DownMsg {
        coord.s0 = coord.synced.iter().sum();
        coord.round += 1;
        coord.p = self.sampling_probability(coord.k, coord.s0);
        coord.correction = 1.0 / coord.p - 1.0;
        coord.threshold = 2.0 * coord.s0 as f64;
        coord.contrib.iter_mut().for_each(|c| *c = 0.0);
        coord.contrib_sum = 0.0;
        coord.syncing = false;
        DownMsg::NewRound { round: coord.round, p: coord.p }
    }
}

impl CounterProtocol for HyzProtocol {
    type Site = HyzSite;
    type Coord = HyzCoord;

    fn new_site(&self) -> HyzSite {
        HyzSite {
            cumulative: 0,
            in_round: 0,
            round: 0,
            p: 1.0,
            ln_1mp: f64::NEG_INFINITY,
            skip: 0,
            muted: false,
        }
    }

    fn new_coord(&self, k: usize) -> HyzCoord {
        assert!(k > 0);
        let t0 = ((k as f64).sqrt() / self.eps).max(2.0);
        HyzCoord {
            k,
            round: 0,
            p: 1.0,
            correction: 0.0,
            s0: 0,
            contrib: vec![0.0; k],
            contrib_sum: 0.0,
            threshold: t0,
            syncing: false,
            replied: vec![false; k],
            synced: vec![0; k],
            n_replies: 0,
            dead: vec![false; k],
        }
    }

    #[inline]
    fn increment<R: Rng + ?Sized>(&self, site: &mut HyzSite, rng: &mut R) -> Option<UpMsg> {
        site.cumulative += 1;
        site.in_round += 1;
        if site.muted {
            return None;
        }
        if site.p >= 1.0 {
            return Some(UpMsg::Report { round: site.round, value: site.in_round });
        }
        if site.skip > 1 {
            site.skip -= 1;
            return None;
        }
        site.skip = draw_gap(rng, site.ln_1mp);
        Some(UpMsg::Report { round: site.round, value: site.in_round })
    }

    fn handle_down<R: Rng + ?Sized>(
        &self,
        site: &mut HyzSite,
        msg: DownMsg,
        rng: &mut R,
    ) -> Option<UpMsg> {
        match msg {
            DownMsg::SyncRequest { round } => {
                if round != site.round || site.muted {
                    return None; // stale or duplicate
                }
                site.muted = true;
                site.in_round = 0;
                Some(UpMsg::SyncReply { round, value: site.cumulative })
            }
            DownMsg::NewRound { round, p } => {
                if round <= site.round {
                    return None; // stale
                }
                site.round = round;
                site.p = p;
                site.ln_1mp = (1.0 - p).ln();
                site.muted = false;
                // `in_round` is NOT reset here: it already counts arrivals
                // since the sync reply, which belong to the new round. Under
                // asynchronous delivery the mute window can span many
                // arrivals, and if the stream ends before the next local
                // arrival they would never trigger a report — leaving the
                // coordinator short by the whole window, arbitrarily far
                // outside the Lemma 4 band. Replay the pending arrivals
                // through the same per-arrival sampling filter now (lazily,
                // so the estimator stays exactly unbiased) and emit the
                // report the replay would have sent last.
                let pending = site.in_round;
                if p >= 1.0 {
                    return if pending > 0 {
                        Some(UpMsg::Report { round, value: pending })
                    } else {
                        None
                    };
                }
                let mut pos = 0u64;
                let mut last_report_at = 0u64;
                loop {
                    let gap = draw_gap(rng, site.ln_1mp);
                    if gap > pending - pos {
                        site.skip = gap - (pending - pos);
                        break;
                    }
                    pos += gap;
                    last_report_at = pos;
                }
                if last_report_at > 0 {
                    Some(UpMsg::Report { round, value: last_report_at })
                } else {
                    None
                }
            }
        }
    }

    fn handle_up(&self, coord: &mut HyzCoord, site_id: usize, msg: UpMsg) -> Option<DownMsg> {
        match msg {
            UpMsg::Report { round, value } => {
                if coord.syncing || round != coord.round {
                    return None; // stale
                }
                let new_contrib = value as f64 + coord.correction;
                coord.contrib_sum += new_contrib - coord.contrib[site_id];
                coord.contrib[site_id] = new_contrib;
                let estimate = coord.s0 as f64 + coord.contrib_sum;
                if estimate >= coord.threshold {
                    coord.syncing = true;
                    coord.n_replies = 0;
                    // Dead sites can never answer: pre-fill their slots
                    // (anchor 0 — their counts are wiped) so the quorum is
                    // over the live sites only.
                    for i in 0..coord.k {
                        if coord.dead[i] {
                            coord.replied[i] = true;
                            coord.synced[i] = 0;
                            coord.n_replies += 1;
                        } else {
                            coord.replied[i] = false;
                        }
                    }
                    debug_assert!(
                        coord.n_replies < coord.k,
                        "sync opened with no live site (reports come from live sites)"
                    );
                    return Some(DownMsg::SyncRequest { round: coord.round });
                }
                None
            }
            UpMsg::SyncReply { round, value } => {
                if !coord.syncing || round != coord.round || coord.replied[site_id] {
                    return None;
                }
                coord.replied[site_id] = true;
                coord.synced[site_id] = value;
                coord.n_replies += 1;
                if coord.n_replies < coord.k {
                    return None;
                }
                // All live sites answered: open the next round.
                Some(self.open_next_round(coord))
            }
            other => {
                debug_assert!(false, "unexpected message {other:?}");
                None
            }
        }
    }

    #[inline]
    fn estimate(&self, coord: &HyzCoord) -> f64 {
        (coord.s0 as f64 + coord.contrib_sum).max(0.0)
    }

    fn site_local_count(&self, site: &HyzSite) -> u64 {
        site.cumulative
    }

    fn site_crashed(&self, coord: &mut HyzCoord, site_id: usize) -> Option<DownMsg> {
        if coord.dead[site_id] {
            return None;
        }
        coord.dead[site_id] = true;
        // Forget the site's within-round contribution: its unreported
        // arrivals were never at the coordinator and its reported ones are
        // wiped site-side, so the estimate must track the survivors.
        coord.contrib_sum -= coord.contrib[site_id];
        coord.contrib[site_id] = 0.0;
        if coord.syncing {
            // Drop the site's anchor from the round base being collected.
            coord.synced[site_id] = 0;
            if !coord.replied[site_id] {
                coord.replied[site_id] = true;
                coord.n_replies += 1;
                if coord.n_replies == coord.k {
                    // The crash removed the last outstanding reply: the
                    // sync completes over the survivors instead of wedging.
                    return Some(self.open_next_round(coord));
                }
            }
        } else {
            // `s0 == synced.iter().sum()` since the last sync: subtract
            // exactly this site's anchor so `s0` becomes the survivors'
            // exact count at that sync. The threshold and `p` keep their
            // round-start values — the round simply closes later relative
            // to the shrunken base (the quantified degradation under
            // churn; see the monitor crate's DESIGN.md §8).
            coord.s0 = coord.s0.saturating_sub(coord.synced[site_id]);
            coord.synced[site_id] = 0;
        }
        None
    }

    fn rejoin_site(&self, coord: &mut HyzCoord, site_id: usize) -> Option<DownMsg> {
        if !coord.dead[site_id] {
            return None;
        }
        coord.dead[site_id] = false;
        debug_assert_eq!(coord.synced[site_id], 0);
        debug_assert_eq!(coord.contrib[site_id], 0.0);
        // Catch the fresh site (round 0, p = 1) up to the current round so
        // its reports carry the live round tag and the next `SyncRequest`
        // is not stale at it. At round 0 the site's own stale guard makes
        // this a no-op. If a sync is in flight the site stays pre-filled
        // (`replied`) — it completes without the rejoiner, whose fresh
        // count is ~0 anyway — and the completing `NewRound` advances it.
        Some(DownMsg::NewRound { round: coord.round, p: coord.p })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SingleCounterSim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn rejects_bad_eps() {
        let _ = HyzProtocol::new(0.0);
    }

    #[test]
    fn exact_below_first_threshold() {
        // While p == 1 every arrival is reported: the estimate is exact.
        let eps = 0.1;
        let k = 4;
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        let mut rng = StdRng::seed_from_u64(1);
        let t0 = (k as f64).sqrt() / eps; // 20
        for i in 0..(t0 as u64 - 1) {
            sim.increment((i % k as u64) as usize, &mut rng);
            assert_eq!(sim.estimate(), sim.exact_total() as f64);
        }
    }

    #[test]
    fn unbiased_over_trials() {
        let eps = 0.2;
        let k = 5;
        let c: u64 = 5_000;
        let trials = 300;
        let mut sum = 0.0;
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..trials {
            let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
            for _ in 0..c {
                let s = rng.gen_range(0..k);
                sim.increment(s, &mut rng);
            }
            assert_eq!(sim.exact_total(), c);
            sum += sim.estimate();
        }
        let mean = sum / trials as f64;
        // Standard error of the mean <= eps*C/sqrt(trials) ~ 58; allow 4x.
        let tol = 4.0 * eps * c as f64 / (trials as f64).sqrt();
        assert!((mean - c as f64).abs() < tol, "mean {mean} deviates from {c} by more than {tol}");
    }

    #[test]
    fn variance_within_lemma4_bound() {
        let eps = 0.2;
        let k = 5;
        let c: u64 = 4_000;
        let trials = 300;
        let mut rng = StdRng::seed_from_u64(7);
        let mut sq = 0.0;
        for _ in 0..trials {
            let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
            for _ in 0..c {
                let s = rng.gen_range(0..k);
                sim.increment(s, &mut rng);
            }
            let d = sim.estimate() - c as f64;
            sq += d * d;
        }
        let var = sq / trials as f64;
        let bound = (eps * c as f64).powi(2);
        // Sampling noise on a variance estimate over 300 trials is ~±16%;
        // allow a 1.5x margin.
        assert!(var <= 1.5 * bound, "empirical var {var} exceeds bound {bound}");
    }

    #[test]
    fn communication_is_sublinear() {
        let eps = 0.1;
        let k = 10;
        let mut rng = StdRng::seed_from_u64(3);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        let m: u64 = 200_000;
        let mut at_half = 0;
        for i in 0..m {
            if i == m / 2 {
                at_half = sim.messages;
            }
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
        }
        // Far fewer messages than the exact counter's m.
        assert!(sim.messages < m / 10, "messages {} not sublinear", sim.messages);
        // Doubling the stream adds roughly one more round (~sqrt(k)/eps +
        // 3k messages), not a proportional amount.
        let second_half = sim.messages - at_half;
        let round_cost = (k as f64).sqrt() / eps + 3.0 * k as f64;
        assert!(
            (second_half as f64) < 6.0 * round_cost,
            "second half cost {second_half} not logarithmic (round ~{round_cost})"
        );
    }

    #[test]
    fn estimate_tracks_continuously() {
        // At *every* prefix the estimate must stay within a few eps of the
        // truth (Chebyshev at 5 sigma under the Lemma 4 variance bound).
        let eps = 0.1;
        let k = 6;
        let mut rng = StdRng::seed_from_u64(11);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        for i in 1..=100_000u64 {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
            if i % 1000 == 0 {
                let rel = (sim.estimate() - i as f64).abs() / i as f64;
                assert!(rel < 5.0 * eps, "at {i}: relative error {rel}");
            }
        }
    }

    #[test]
    fn stale_report_discarded() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(2);
        coord.round = 3;
        coord.p = 0.5;
        let before = proto.estimate(&coord);
        assert_eq!(proto.handle_up(&mut coord, 0, UpMsg::Report { round: 2, value: 10 }), None);
        assert_eq!(proto.estimate(&coord), before);
    }

    #[test]
    fn duplicate_sync_replies_ignored() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(3);
        coord.syncing = true;
        assert_eq!(proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 5 }), None);
        assert_eq!(proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 5 }), None);
        assert_eq!(coord.n_replies, 1);
        assert_eq!(proto.handle_up(&mut coord, 1, UpMsg::SyncReply { round: 0, value: 5 }), None);
        // Final reply finalizes the round and broadcasts the new p.
        let out = proto.handle_up(&mut coord, 2, UpMsg::SyncReply { round: 0, value: 5 });
        assert!(matches!(out, Some(DownMsg::NewRound { round: 1, .. })));
        assert_eq!(coord.s0, 15);
        assert!(!coord.syncing);
    }

    #[test]
    fn muted_site_keeps_counting() {
        let proto = HyzProtocol::new(0.1);
        let mut site = proto.new_site();
        let mut rng = StdRng::seed_from_u64(1);
        // Two arrivals, then a sync.
        assert!(proto.increment(&mut site, &mut rng).is_some());
        assert!(proto.increment(&mut site, &mut rng).is_some());
        let reply = proto.handle_down(&mut site, DownMsg::SyncRequest { round: 0 }, &mut rng);
        assert_eq!(reply, Some(UpMsg::SyncReply { round: 0, value: 2 }));
        // Muted: arrivals counted but unreported.
        assert_eq!(proto.increment(&mut site, &mut rng), None);
        assert_eq!(proto.site_local_count(&site), 3);
        // New round un-mutes; the arrival that happened while muted is
        // reported immediately (a catch-up report) so it is never stranded
        // if the stream ends here.
        assert_eq!(
            proto.handle_down(&mut site, DownMsg::NewRound { round: 1, p: 1.0 }, &mut rng),
            Some(UpMsg::Report { round: 1, value: 1 })
        );
        let up = proto.increment(&mut site, &mut rng);
        assert_eq!(up, Some(UpMsg::Report { round: 1, value: 2 }));
    }

    #[test]
    fn unmute_replays_muted_arrivals_through_sampler() {
        // A large muted backlog must surface in the next round's reports
        // even with no further arrivals (the end-of-stream case the cluster
        // runtime's quiescence handshake exposes). With sampling, the
        // catch-up report must appear with probability 1 - (1-p)^pending
        // and carry a value <= pending.
        let proto = HyzProtocol::new(0.1);
        let mut rng = StdRng::seed_from_u64(77);
        let pending = 10_000u64;
        let p = 0.01;
        let mut reported = 0u64;
        let trials = 200;
        for _ in 0..trials {
            let mut site = proto.new_site();
            for _ in 0..pending {
                let _ = proto.increment(&mut site, &mut rng);
            }
            let _ = proto.handle_down(&mut site, DownMsg::SyncRequest { round: 0 }, &mut rng);
            // Muted backlog.
            for _ in 0..pending {
                assert_eq!(proto.increment(&mut site, &mut rng), None);
            }
            match proto.handle_down(&mut site, DownMsg::NewRound { round: 1, p }, &mut rng) {
                Some(UpMsg::Report { round: 1, value }) => {
                    assert!(value >= 1 && value <= pending, "value {value}");
                    reported += 1;
                }
                None => {}
                other => panic!("unexpected {other:?}"),
            }
        }
        // 1 - (1-0.01)^10000 ~ 1: essentially every trial must report.
        assert!(reported >= trials - 1, "only {reported}/{trials} caught up");
    }

    #[test]
    fn stale_new_round_ignored_by_site() {
        let proto = HyzProtocol::new(0.1);
        let mut site = proto.new_site();
        let mut rng = StdRng::seed_from_u64(2);
        site.round = 5;
        site.p = 0.25;
        assert_eq!(
            proto.handle_down(&mut site, DownMsg::NewRound { round: 4, p: 1.0 }, &mut rng),
            None
        );
        assert_eq!(site.p, 0.25);
        assert_eq!(site.round, 5);
    }

    #[test]
    fn single_site_works() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(0.3), 1);
        for _ in 0..50_000 {
            sim.increment(0, &mut rng);
        }
        let rel = (sim.estimate() - 50_000.0).abs() / 50_000.0;
        assert!(rel < 1.0, "relative error {rel}");
        assert!(sim.messages < 20_000);
    }

    #[test]
    fn skewed_site_distribution_still_tracks() {
        // Paper future-work (1): skew across sites. The counter itself is
        // already robust to skew; verify.
        let eps = 0.1;
        let k = 8;
        let mut rng = StdRng::seed_from_u64(21);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        let m = 100_000u64;
        for _ in 0..m {
            // 90% of traffic on site 0.
            let s = if rng.gen_bool(0.9) { 0 } else { rng.gen_range(1..k) };
            sim.increment(s, &mut rng);
        }
        let rel = (sim.estimate() - m as f64).abs() / m as f64;
        assert!(rel < 5.0 * eps, "relative error {rel}");
    }

    #[test]
    fn crash_completes_pending_sync_over_survivors() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(3);
        coord.syncing = true;
        assert_eq!(proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 7 }), None);
        assert_eq!(proto.handle_up(&mut coord, 1, UpMsg::SyncReply { round: 0, value: 5 }), None);
        // Site 2 dies with its reply outstanding: the sync must complete
        // over the two survivors instead of wedging forever.
        let out = proto.site_crashed(&mut coord, 2);
        assert!(matches!(out, Some(DownMsg::NewRound { round: 1, .. })), "{out:?}");
        assert_eq!(coord.s0, 12);
        assert!(!coord.syncing);
        // Idempotent.
        assert_eq!(proto.site_crashed(&mut coord, 2), None);
    }

    #[test]
    fn crash_forgets_anchor_and_contribution() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(2);
        // Complete a sync so both sites hold anchors inside s0.
        coord.syncing = true;
        let _ = proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 30 });
        let out = proto.handle_up(&mut coord, 1, UpMsg::SyncReply { round: 0, value: 10 });
        assert!(matches!(out, Some(DownMsg::NewRound { round: 1, .. })));
        assert_eq!(coord.s0, 40);
        // A within-round report from site 1, then its crash: both its
        // anchor and its round contribution must vanish from the estimate.
        let _ = proto.handle_up(&mut coord, 1, UpMsg::Report { round: 1, value: 4 });
        assert!(proto.estimate(&coord) > 40.0);
        assert_eq!(proto.site_crashed(&mut coord, 1), None);
        assert_eq!(coord.s0, 30);
        let est = proto.estimate(&coord);
        // Survivor anchor only, plus site 0's (empty) contribution.
        assert!((est - 30.0).abs() < 1e-9, "estimate {est}");
    }

    #[test]
    fn sync_opened_after_crash_prefills_dead_site() {
        let proto = HyzProtocol::new(0.9);
        let k = 3;
        let mut coord = proto.new_coord(k);
        assert_eq!(proto.site_crashed(&mut coord, 1), None);
        // Drive reports until the threshold opens a sync; the dead site
        // must be pre-filled so only the two live replies complete it.
        let mut opened = false;
        for v in 1..100u64 {
            if let Some(DownMsg::SyncRequest { round: 0 }) =
                proto.handle_up(&mut coord, 0, UpMsg::Report { round: 0, value: v })
            {
                opened = true;
                break;
            }
        }
        assert!(opened);
        assert_eq!(coord.n_replies, 1); // the dead slot
        assert_eq!(proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 50 }), None);
        let out = proto.handle_up(&mut coord, 2, UpMsg::SyncReply { round: 0, value: 3 });
        assert!(matches!(out, Some(DownMsg::NewRound { round: 1, .. })), "{out:?}");
        assert_eq!(coord.s0, 53);
    }

    #[test]
    fn rejoin_returns_catchup_and_restores_quorum() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(2);
        coord.syncing = true;
        let _ = proto.handle_up(&mut coord, 0, UpMsg::SyncReply { round: 0, value: 20 });
        let out = proto.handle_up(&mut coord, 1, UpMsg::SyncReply { round: 0, value: 20 });
        assert!(matches!(out, Some(DownMsg::NewRound { round: 1, .. })));
        let _ = proto.site_crashed(&mut coord, 1);
        // Rejoin: catch-up carries the *current* round and p.
        let catchup = proto.rejoin_site(&mut coord, 1);
        match catchup {
            Some(DownMsg::NewRound { round, p }) => {
                assert_eq!(round, coord.round);
                assert_eq!(p, coord.p);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Not dead: rejoin is idempotent, and the next sync waits on it.
        assert_eq!(proto.rejoin_site(&mut coord, 1), None);
        // A fresh site fast-forwarded by that catch-up answers the next
        // sync normally.
        let mut rng = StdRng::seed_from_u64(4);
        let mut site = proto.new_site();
        let reply = proto.handle_down(
            &mut site,
            DownMsg::NewRound { round: coord.round, p: coord.p },
            &mut rng,
        );
        assert_eq!(reply, None); // fresh site: nothing pending to replay
        assert_eq!(site.round, coord.round);
    }

    #[test]
    fn catchup_at_round_zero_is_noop_at_site() {
        let proto = HyzProtocol::new(0.1);
        let mut coord = proto.new_coord(2);
        let _ = proto.site_crashed(&mut coord, 0);
        let catchup = proto.rejoin_site(&mut coord, 0);
        assert_eq!(catchup, Some(DownMsg::NewRound { round: 0, p: 1.0 }));
        // The site's stale guard (`round <= site.round`) discards it.
        let mut rng = StdRng::seed_from_u64(6);
        let mut site = proto.new_site();
        assert_eq!(proto.handle_down(&mut site, catchup.unwrap(), &mut rng), None);
        assert_eq!(site.round, 0);
        assert_eq!(site.p, 1.0);
    }

    #[test]
    fn gap_distribution_is_geometric() {
        let mut rng = StdRng::seed_from_u64(5);
        let p: f64 = 0.25;
        let ln_1mp = (1.0 - p).ln();
        let n = 200_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let g = draw_gap(&mut rng, ln_1mp);
            assert!(g >= 1);
            sum += g as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 1.0 / p).abs() < 0.05, "mean gap {mean} vs {}", 1.0 / p);
    }
}
