//! # dsbn-counters — distributed counter protocols
//!
//! The communication primitive underneath the paper's trackers: continuously
//! maintain the count of events observed across `k` distributed sites at a
//! coordinator, trading accuracy for communication.
//!
//! Three protocols, all expressed as pure state machines over the message
//! types in [`msg`] (so they run identically under the synchronous simulator
//! and the threaded cluster runtime of `dsbn-monitor`):
//!
//! | protocol | guarantee | messages |
//! |---|---|---|
//! | [`exact::ExactProtocol`] | exact | `O(C)` (Lemma 5 strawman) |
//! | [`deterministic::DeterministicProtocol`] | `(1-eps)C <= A <= C` | `O(k log C / eps)` |
//! | [`hyz::HyzProtocol`] | `E[A] = C`, `Var[A] <= (eps C)^2` (Lemma 4) | `O((sqrt(k)/eps + k) log C)` |
//!
//! [`epoch`] wraps any of them for time-decayed tracking (the paper's
//! future work (2)): monotone counting within epochs of `B` events, a ring
//! of the last `K` closed-epoch estimates at the coordinator, and a
//! `lambda^age`-weighted read — Lemma 4 applies unchanged per epoch.

pub mod deterministic;
pub mod epoch;
pub mod exact;
pub mod hyz;
pub mod msg;
pub mod protocol;
pub mod wire;

pub use deterministic::DeterministicProtocol;
pub use epoch::{EpochRing, EpochRoller};
pub use exact::ExactProtocol;
pub use hyz::HyzProtocol;
pub use msg::{DownMsg, UpMsg};
pub use protocol::{snapshot_into, CounterProtocol, SingleCounterSim};
pub use wire::{decode_packet, encode, visit_packet, Frame, WireError, WireItem};
