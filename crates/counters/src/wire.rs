//! Wire format for counter protocol messages.
//!
//! The simulator counts abstract messages; a real deployment (and the
//! threaded cluster runtime's byte accounting) needs concrete frames. The
//! encoding is deliberately simple and fixed-width-tagged:
//!
//! ```text
//! frame := u8 tag, payload
//!   tag 0 Increment                 payload: u32 counter
//!   tag 1 Cumulative                payload: u32 counter, u64 value
//!   tag 2 Report                    payload: u32 counter, u32 round, u64 value
//!   tag 3 SyncReply                 payload: u32 counter, u32 round, u64 value
//!   tag 4 SyncRequest               payload: u32 counter, u32 round
//!   tag 5 NewRound                  payload: u32 counter, u32 round, f64 p
//!   tag 6 UpBatch                   payload: u16 n_inc, u16 n_rep,
//!                                            n_inc x u32 counter,
//!                                            n_rep x (u8 kind, u32 counter,
//!                                                     kind payload)
//!   tag 7 EpochRoll                 payload: u32 epoch
//!   tag 8 EpochAck                  payload: u32 epoch
//! ```
//!
//! All integers little-endian. A *packet* is any number of concatenated
//! frames.
//!
//! `UpBatch` is the event-level bundling of the paper's UPDATE ("we merge
//! the resulting updates for all counters into a single message"): the
//! `2n` up messages one event triggers travel as one length-prefixed frame.
//! Counters that emitted a bare [`UpMsg::Increment`] — the hot path under
//! exact maintenance — are listed as raw `u32` ids in the `n_inc` section,
//! amortizing the per-frame tag byte; everything else rides in the `n_rep`
//! section as `(kind, counter, payload)` triples whose `kind` reuses the
//! single-frame tags `0..=3`. Use [`encode_event`] to emit the cheapest
//! correct packet for a drained event batch (small batches encode as
//! concatenated plain frames, which beat the batch header).
//!
//! `EpochRoll` / `EpochAck` are the epoch-ring control frames of the
//! time-decay scheme (`crate::epoch`, DESIGN.md §5): unlike every other
//! frame they carry no counter id — a roll closes the current epoch of
//! *every* counter in the array at once. `EpochRoll` travels coordinator →
//! sites; each site answers with one `EpochAck` after resetting its
//! per-epoch counter state.

use crate::msg::{DownMsg, UpMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A direction-tagged frame: one counter update — or one event's bundled
/// updates — on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Site → coordinator, single update.
    Up { counter: u32, msg: UpMsg },
    /// Coordinator → site.
    Down { counter: u32, msg: DownMsg },
    /// Site → coordinator: every update one event triggered, in one frame.
    /// `increments` are the counters whose update is [`UpMsg::Increment`];
    /// `reports` carry the remaining `(counter, msg)` pairs in order.
    UpBatch { increments: Vec<u32>, reports: Vec<(u32, UpMsg)> },
    /// Coordinator → site: close epoch `epoch` for every counter in the
    /// array and open the next one (epoch-ring decay, DESIGN.md §5).
    EpochRoll { epoch: u32 },
    /// Site → coordinator: the site has closed epoch `epoch` — everything
    /// it sent before this ack belongs to epochs `<= epoch`.
    EpochAck { epoch: u32 },
}

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-frame.
    Truncated,
    /// Unknown frame tag.
    BadTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Single-frame tag for an up message; doubles as the `kind` byte inside an
/// [`Frame::UpBatch`] report section.
fn up_tag(msg: &UpMsg) -> u8 {
    match msg {
        UpMsg::Increment => 0,
        UpMsg::Cumulative { .. } => 1,
        UpMsg::Report { .. } => 2,
        UpMsg::SyncReply { .. } => 3,
    }
}

/// Payload size of an up message (excluding tag and counter id).
fn up_payload_len(msg: &UpMsg) -> usize {
    match msg {
        UpMsg::Increment => 0,
        UpMsg::Cumulative { .. } => 8,
        UpMsg::Report { .. } | UpMsg::SyncReply { .. } => 12,
    }
}

fn put_up_payload(msg: &UpMsg, buf: &mut BytesMut) {
    match msg {
        UpMsg::Increment => {}
        UpMsg::Cumulative { value } => buf.put_u64_le(*value),
        UpMsg::Report { round, value } | UpMsg::SyncReply { round, value } => {
            buf.put_u32_le(*round);
            buf.put_u64_le(*value);
        }
    }
}

/// Append one frame to a packet buffer. Returns the encoded size in bytes.
pub fn encode(frame: &Frame, buf: &mut BytesMut) -> usize {
    let start = buf.len();
    match frame {
        Frame::Up { counter, msg } => {
            buf.put_u8(up_tag(msg));
            buf.put_u32_le(*counter);
            put_up_payload(msg, buf);
        }
        Frame::Down { counter, msg } => match msg {
            DownMsg::SyncRequest { round } => {
                buf.put_u8(4);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
            }
            DownMsg::NewRound { round, p } => {
                buf.put_u8(5);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
                buf.put_f64_le(*p);
            }
        },
        Frame::UpBatch { increments, reports } => {
            // Checked conversions: a section beyond the u16 length prefix
            // must never wrap into a silently-wrong count on the wire.
            // (`encode_event`, the production encoder, never builds such a
            // frame — `batch_wins` falls back to plain `Frame::Up`s first.)
            let n_inc = u16::try_from(increments.len())
                .expect("UpBatch increment section exceeds the u16 length prefix");
            let n_rep = u16::try_from(reports.len())
                .expect("UpBatch report section exceeds the u16 length prefix");
            buf.put_u8(6);
            buf.put_u16_le(n_inc);
            buf.put_u16_le(n_rep);
            for counter in increments {
                buf.put_u32_le(*counter);
            }
            for (counter, msg) in reports {
                buf.put_u8(up_tag(msg));
                buf.put_u32_le(*counter);
                put_up_payload(msg, buf);
            }
        }
        Frame::EpochRoll { epoch } => {
            buf.put_u8(7);
            buf.put_u32_le(*epoch);
        }
        Frame::EpochAck { epoch } => {
            buf.put_u8(8);
            buf.put_u32_le(*epoch);
        }
    }
    buf.len() - start
}

/// Encoded size of a frame without materializing it.
pub fn frame_len(frame: &Frame) -> usize {
    match frame {
        Frame::Up { msg, .. } => 1 + 4 + up_payload_len(msg),
        Frame::Down { msg, .. } => {
            let payload = match msg {
                DownMsg::SyncRequest { .. } => 4,
                DownMsg::NewRound { .. } => 12,
            };
            1 + 4 + payload
        }
        Frame::UpBatch { increments, reports } => {
            1 + 2
                + 2
                + 4 * increments.len()
                + reports.iter().map(|(_, m)| 1 + 4 + up_payload_len(m)).sum::<usize>()
        }
        Frame::EpochRoll { .. } | Frame::EpochAck { .. } => 1 + 4,
    }
}

/// [`Frame::UpBatch`] header size: tag byte plus the two `u16` section
/// lengths. An increment entry saves exactly its tag byte inside a batch,
/// so batching wins precisely when an event triggers more than this many
/// increments — Algorithm 2's `2n` updates clear the bar for any `n >= 3`.
const UP_BATCH_HEADER: usize = 1 + 2 + 2;

/// Whether a batch with this shape ships as one [`Frame::UpBatch`]: the
/// amortized header must beat per-frame tags (more than
/// [`UP_BATCH_HEADER`] increments — report-style messages cost the same
/// either way), and both sections must fit the `u16` length prefixes
/// (batches beyond that fall back to plain frames, which have no length
/// limit, instead of panicking in [`encode`]).
#[inline]
fn batch_wins(n_inc: usize, n_rep: usize) -> bool {
    n_inc > UP_BATCH_HEADER && n_inc <= u16::MAX as usize && n_rep <= u16::MAX as usize
}

/// Encode one event's triggered `(counter, msg)` updates into `buf` as the
/// cheapest packet, draining `batch`: one [`Frame::UpBatch`] when the
/// batch shape wins (see `batch_wins`), concatenated single [`Frame::Up`]s
/// otherwise. Returns the encoded size — always equal to
/// [`event_batch_len`] of the batch.
pub fn encode_event(batch: &mut Vec<(u32, UpMsg)>, buf: &mut BytesMut) -> usize {
    let start = buf.len();
    let n_inc = batch.iter().filter(|(_, m)| matches!(m, UpMsg::Increment)).count();
    if batch_wins(n_inc, batch.len() - n_inc) {
        // Write the UpBatch sections straight from the batch slice — this
        // runs once per event on the cluster send path, so no intermediate
        // frame or section Vecs are materialized.
        buf.put_u8(6);
        buf.put_u16_le(n_inc as u16);
        buf.put_u16_le((batch.len() - n_inc) as u16);
        for (counter, msg) in batch.iter() {
            if matches!(msg, UpMsg::Increment) {
                buf.put_u32_le(*counter);
            }
        }
        for (counter, msg) in batch.iter() {
            if !matches!(msg, UpMsg::Increment) {
                buf.put_u8(up_tag(msg));
                buf.put_u32_le(*counter);
                put_up_payload(msg, buf);
            }
        }
        batch.clear();
    } else {
        for (counter, msg) in batch.drain(..) {
            encode(&Frame::Up { counter, msg }, buf);
        }
    }
    buf.len() - start
}

/// Wire cost of one event bundle, decomposed: `n_inc` bare increments plus
/// `n_rep` non-increment messages whose single-frame sizes sum to
/// `rep_bytes`. Always equals what [`encode_event`] ships for a batch of
/// that shape — the decomposition lets the simulator account bundled bytes
/// from three scalars without materializing packets it never sends.
#[inline]
pub fn bundle_len(n_inc: usize, n_rep: usize, rep_bytes: usize) -> usize {
    if batch_wins(n_inc, n_rep) {
        UP_BATCH_HEADER + 4 * n_inc + rep_bytes
    } else {
        (1 + 4) * n_inc + rep_bytes
    }
}

/// Wire size [`encode_event`] would produce for this batch, without
/// encoding: the single-frame sizes, minus one tag byte per increment plus
/// one batch header when batching wins.
pub fn event_batch_len(batch: &[(u32, UpMsg)]) -> usize {
    let n_inc = batch.iter().filter(|(_, m)| matches!(m, UpMsg::Increment)).count();
    let rep_bytes: usize = batch
        .iter()
        .filter(|(_, m)| !matches!(m, UpMsg::Increment))
        .map(|(_, m)| 1 + 4 + up_payload_len(m))
        .sum();
    bundle_len(n_inc, batch.len() - n_inc, rep_bytes)
}

/// Decode the payload of an up message whose tag/kind byte is `kind`.
fn get_up_msg(kind: u8, buf: &mut Bytes) -> Result<UpMsg, WireError> {
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    match kind {
        0 => Ok(UpMsg::Increment),
        1 => {
            need(buf, 8)?;
            Ok(UpMsg::Cumulative { value: buf.get_u64_le() })
        }
        2 => {
            need(buf, 12)?;
            let round = buf.get_u32_le();
            let value = buf.get_u64_le();
            Ok(UpMsg::Report { round, value })
        }
        3 => {
            need(buf, 12)?;
            let round = buf.get_u32_le();
            let value = buf.get_u64_le();
            Ok(UpMsg::SyncReply { round, value })
        }
        other => Err(WireError::BadTag(other)),
    }
}

/// Decode one frame from the front of `buf`, advancing it.
pub fn decode(buf: &mut Bytes) -> Result<Frame, WireError> {
    if buf.remaining() < 1 {
        return Err(WireError::Truncated);
    }
    let tag = buf.get_u8();
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    let frame = match tag {
        0..=3 => {
            need(buf, 4)?;
            let counter = buf.get_u32_le();
            Frame::Up { counter, msg: get_up_msg(tag, buf)? }
        }
        4 => {
            need(buf, 8)?;
            let counter = buf.get_u32_le();
            Frame::Down { counter, msg: DownMsg::SyncRequest { round: buf.get_u32_le() } }
        }
        5 => {
            need(buf, 16)?;
            let counter = buf.get_u32_le();
            let round = buf.get_u32_le();
            let p = buf.get_f64_le();
            Frame::Down { counter, msg: DownMsg::NewRound { round, p } }
        }
        6 => {
            need(buf, 4)?;
            let n_inc = buf.get_u16_le() as usize;
            let n_rep = buf.get_u16_le() as usize;
            need(buf, 4 * n_inc)?;
            let mut increments = Vec::with_capacity(n_inc);
            for _ in 0..n_inc {
                increments.push(buf.get_u32_le());
            }
            let mut reports = Vec::with_capacity(n_rep);
            for _ in 0..n_rep {
                need(buf, 5)?;
                let kind = buf.get_u8();
                let counter = buf.get_u32_le();
                reports.push((counter, get_up_msg(kind, buf)?));
            }
            Frame::UpBatch { increments, reports }
        }
        7 => {
            need(buf, 4)?;
            Frame::EpochRoll { epoch: buf.get_u32_le() }
        }
        8 => {
            need(buf, 4)?;
            Frame::EpochAck { epoch: buf.get_u32_le() }
        }
        other => return Err(WireError::BadTag(other)),
    };
    Ok(frame)
}

/// Decode a whole packet (concatenated frames).
pub fn decode_packet(mut bytes: Bytes) -> Result<Vec<Frame>, WireError> {
    let mut frames = Vec::new();
    while bytes.has_remaining() {
        frames.push(decode(&mut bytes)?);
    }
    Ok(frames)
}

/// One logical item of a decoded packet, with [`Frame::UpBatch`] flattened
/// into its per-update entries (increments first, then reports, matching
/// the batch's section order) — the streaming view of
/// [`visit_packet`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireItem {
    /// One site → coordinator counter update.
    Up { counter: u32, msg: UpMsg },
    /// One coordinator → site broadcast.
    Down { counter: u32, msg: DownMsg },
    /// Epoch-roll broadcast (counterless control frame).
    EpochRoll { epoch: u32 },
    /// Epoch-roll acknowledgement (counterless control frame).
    EpochAck { epoch: u32 },
}

/// Decode a whole packet without materializing frames: `f` is called once
/// per logical item, with every [`Frame::UpBatch`] flattened into its
/// per-update entries. This is the receive path of the multi-event packet
/// container — a packet built by appending [`encode_event`] sections for
/// `C` events decodes in one loop over one buffer, with no per-event or
/// per-batch allocation. Equivalent to flattening [`decode_packet`]
/// (pinned by the wire property suite); on a malformed packet the items
/// decoded before the error have already been visited.
pub fn visit_packet<F>(mut bytes: Bytes, mut f: F) -> Result<(), WireError>
where
    F: FnMut(WireItem),
{
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    while bytes.has_remaining() {
        let tag = bytes.get_u8();
        match tag {
            0..=3 => {
                need(&bytes, 4)?;
                let counter = bytes.get_u32_le();
                f(WireItem::Up { counter, msg: get_up_msg(tag, &mut bytes)? });
            }
            4 => {
                need(&bytes, 8)?;
                let counter = bytes.get_u32_le();
                let round = bytes.get_u32_le();
                f(WireItem::Down { counter, msg: DownMsg::SyncRequest { round } });
            }
            5 => {
                need(&bytes, 16)?;
                let counter = bytes.get_u32_le();
                let round = bytes.get_u32_le();
                let p = bytes.get_f64_le();
                f(WireItem::Down { counter, msg: DownMsg::NewRound { round, p } });
            }
            6 => {
                need(&bytes, 4)?;
                let n_inc = bytes.get_u16_le() as usize;
                let n_rep = bytes.get_u16_le() as usize;
                need(&bytes, 4 * n_inc)?;
                for _ in 0..n_inc {
                    f(WireItem::Up { counter: bytes.get_u32_le(), msg: UpMsg::Increment });
                }
                for _ in 0..n_rep {
                    need(&bytes, 5)?;
                    let kind = bytes.get_u8();
                    let counter = bytes.get_u32_le();
                    f(WireItem::Up { counter, msg: get_up_msg(kind, &mut bytes)? });
                }
            }
            7 => {
                need(&bytes, 4)?;
                f(WireItem::EpochRoll { epoch: bytes.get_u32_le() });
            }
            8 => {
                need(&bytes, 4)?;
                f(WireItem::EpochAck { epoch: bytes.get_u32_le() });
            }
            other => return Err(WireError::BadTag(other)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Up { counter: 0, msg: UpMsg::Increment },
            Frame::Up { counter: 7, msg: UpMsg::Cumulative { value: 99 } },
            Frame::Up { counter: u32::MAX, msg: UpMsg::Report { round: 3, value: u64::MAX } },
            Frame::Up { counter: 12, msg: UpMsg::SyncReply { round: 0, value: 0 } },
            Frame::Down { counter: 5, msg: DownMsg::SyncRequest { round: 9 } },
            Frame::Down { counter: 6, msg: DownMsg::NewRound { round: 10, p: 0.125 } },
            Frame::UpBatch { increments: vec![], reports: vec![] },
            Frame::UpBatch {
                increments: vec![1, 2, u32::MAX],
                reports: vec![
                    (9, UpMsg::Report { round: 4, value: 17 }),
                    (10, UpMsg::Cumulative { value: 3 }),
                    (11, UpMsg::Increment),
                ],
            },
            Frame::EpochRoll { epoch: 0 },
            Frame::EpochRoll { epoch: u32::MAX },
            Frame::EpochAck { epoch: 42 },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for frame in all_frames() {
            let mut buf = BytesMut::new();
            let n = encode(&frame, &mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, frame_len(&frame));
            let mut bytes = buf.freeze();
            let back = decode(&mut bytes).unwrap();
            assert_eq!(back, frame);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn packet_round_trip() {
        let frames = all_frames();
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        let back = decode_packet(buf.freeze()).unwrap();
        assert_eq!(back, frames);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 1, msg: UpMsg::Report { round: 1, value: 2 } }, &mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            let mut partial = full.slice(0..cut);
            assert_eq!(decode(&mut partial), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(42);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        let mut bytes = buf.freeze();
        assert_eq!(decode(&mut bytes), Err(WireError::BadTag(42)));
    }

    #[test]
    fn exact_update_is_five_bytes() {
        // The cheapest frame — what EXACTMLE pays per counter update.
        let f = Frame::Up { counter: 3, msg: UpMsg::Increment };
        assert_eq!(frame_len(&f), 5);
        // A randomized report costs 17 bytes but is sent rarely.
        let f = Frame::Up { counter: 3, msg: UpMsg::Report { round: 0, value: 1 } };
        assert_eq!(frame_len(&f), 17);
    }

    #[test]
    fn epoch_frames_are_five_bytes_and_counterless() {
        // Rolls apply to the whole counter array, so they pay no counter
        // id: tag + u32 epoch, both directions.
        for f in [Frame::EpochRoll { epoch: 7 }, Frame::EpochAck { epoch: 7 }] {
            assert_eq!(frame_len(&f), 5);
            let mut buf = BytesMut::new();
            assert_eq!(encode(&f, &mut buf), 5);
            let mut bytes = buf.freeze();
            assert_eq!(decode(&mut bytes).unwrap(), f);
        }
    }

    #[test]
    fn batch_amortizes_increment_tags() {
        // One ALARM event under exact maintenance: 2n = 74 increments.
        // Singles: 74 * 5 = 370 bytes. Batched: 5-byte header + 4 per id.
        let increments: Vec<u32> = (0..74).collect();
        let batch = Frame::UpBatch { increments, reports: vec![] };
        assert_eq!(frame_len(&batch), 5 + 74 * 4);
        assert!(frame_len(&batch) < 74 * 5);
    }

    #[test]
    fn encode_event_picks_cheapest_encoding() {
        // Empty: nothing on the wire.
        let mut batch: Vec<(u32, UpMsg)> = vec![];
        let mut buf = BytesMut::new();
        assert_eq!(encode_event(&mut batch, &mut buf), 0);
        assert_eq!(event_batch_len(&[]), 0);

        // Small batches: concatenated plain frames beat the batch header.
        let mut batch = vec![(3, UpMsg::Increment), (4, UpMsg::Increment)];
        assert_eq!(event_batch_len(&batch), 10);
        let mut buf = BytesMut::new();
        assert_eq!(encode_event(&mut batch, &mut buf), 10);
        assert!(batch.is_empty());
        let frames = decode_packet(buf.freeze()).unwrap();
        assert_eq!(
            frames,
            vec![
                Frame::Up { counter: 3, msg: UpMsg::Increment },
                Frame::Up { counter: 4, msg: UpMsg::Increment },
            ]
        );

        // A real UPDATE batch (2n increments, n >= 3): one UpBatch frame,
        // strictly cheaper than singles, reports split out in order.
        let mut batch: Vec<(u32, UpMsg)> = (0..6).map(|c| (c, UpMsg::Increment)).collect();
        batch.push((9, UpMsg::Report { round: 1, value: 5 }));
        let singles: usize =
            batch.iter().map(|(c, m)| frame_len(&Frame::Up { counter: *c, msg: *m })).sum();
        let estimated = event_batch_len(&batch);
        assert!(estimated < singles, "batching must save bytes: {estimated} vs {singles}");
        let mut buf = BytesMut::new();
        assert_eq!(encode_event(&mut batch, &mut buf), estimated);
        let frames = decode_packet(buf.freeze()).unwrap();
        assert_eq!(
            frames,
            vec![Frame::UpBatch {
                increments: (0..6).collect(),
                reports: vec![(9, UpMsg::Report { round: 1, value: 5 })],
            }]
        );
    }

    #[test]
    fn event_batch_len_matches_encoder() {
        let cases: Vec<Vec<(u32, UpMsg)>> = vec![
            vec![],
            vec![(7, UpMsg::Cumulative { value: 1 })],
            vec![(0, UpMsg::Increment), (1, UpMsg::Increment)],
            (0..40u32).map(|c| (c, UpMsg::Increment)).collect(),
            vec![
                (0, UpMsg::SyncReply { round: 2, value: 8 }),
                (5, UpMsg::Increment),
                (6, UpMsg::Cumulative { value: 2 }),
            ],
        ];
        for mut batch in cases {
            let estimated = event_batch_len(&batch);
            let mut buf = BytesMut::new();
            assert_eq!(encode_event(&mut batch, &mut buf), estimated);
        }
    }

    #[test]
    fn visit_packet_flattens_batches_in_section_order() {
        // A multi-event packet: two encode_event sections back to back.
        let mut buf = BytesMut::new();
        let mut ev1: Vec<(u32, UpMsg)> = (0..6).map(|c| (c, UpMsg::Increment)).collect();
        ev1.push((9, UpMsg::Report { round: 1, value: 5 }));
        encode_event(&mut ev1, &mut buf);
        let mut ev2 = vec![(3, UpMsg::Increment), (4, UpMsg::Cumulative { value: 7 })];
        encode_event(&mut ev2, &mut buf);
        let mut seen = Vec::new();
        visit_packet(buf.freeze(), |item| seen.push(item)).unwrap();
        let mut expect: Vec<WireItem> =
            (0..6).map(|c| WireItem::Up { counter: c, msg: UpMsg::Increment }).collect();
        expect.push(WireItem::Up { counter: 9, msg: UpMsg::Report { round: 1, value: 5 } });
        expect.push(WireItem::Up { counter: 3, msg: UpMsg::Increment });
        expect.push(WireItem::Up { counter: 4, msg: UpMsg::Cumulative { value: 7 } });
        assert_eq!(seen, expect);
    }

    #[test]
    fn visit_packet_handles_control_and_down_frames() {
        let mut buf = BytesMut::new();
        encode(&Frame::Down { counter: 5, msg: DownMsg::SyncRequest { round: 9 } }, &mut buf);
        encode(&Frame::EpochRoll { epoch: 2 }, &mut buf);
        encode(&Frame::EpochAck { epoch: 2 }, &mut buf);
        let mut seen = Vec::new();
        visit_packet(buf.freeze(), |item| seen.push(item)).unwrap();
        assert_eq!(
            seen,
            vec![
                WireItem::Down { counter: 5, msg: DownMsg::SyncRequest { round: 9 } },
                WireItem::EpochRoll { epoch: 2 },
                WireItem::EpochAck { epoch: 2 },
            ]
        );
    }

    #[test]
    fn visit_packet_errors_match_decode() {
        let mut buf = BytesMut::new();
        buf.put_u8(42);
        assert_eq!(visit_packet(buf.freeze(), |_| {}), Err(WireError::BadTag(42)));
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 1, msg: UpMsg::Report { round: 1, value: 2 } }, &mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            assert_eq!(
                visit_packet(full.slice(0..cut), |_| {}),
                Err(WireError::Truncated),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_batches_fall_back_to_plain_frames() {
        // More increments than a u16 section can hold: encode_event must
        // ship plain frames (no length limit) instead of panicking on the
        // UpBatch length prefix, and the estimate must agree.
        let n = u16::MAX as usize + 10;
        let mut batch: Vec<(u32, UpMsg)> = (0..n as u32).map(|c| (c, UpMsg::Increment)).collect();
        let estimated = event_batch_len(&batch);
        assert_eq!(estimated, 5 * n);
        let mut buf = BytesMut::new();
        assert_eq!(encode_event(&mut batch, &mut buf), estimated);
        let frames = decode_packet(buf.freeze()).unwrap();
        assert_eq!(frames.len(), n);
        assert_eq!(frames[0], Frame::Up { counter: 0, msg: UpMsg::Increment });
    }

    #[test]
    fn u16_length_prefix_boundary_is_exact() {
        // 65535 increments: the largest batch a u16 section can hold —
        // ships as one UpBatch and round-trips every entry.
        let n = u16::MAX as usize;
        let mut batch: Vec<(u32, UpMsg)> = (0..n as u32).map(|c| (c, UpMsg::Increment)).collect();
        let mut buf = BytesMut::new();
        let len = encode_event(&mut batch, &mut buf);
        assert_eq!(len, 5 + 4 * n, "one UpBatch header plus raw u32 ids");
        let frames = decode_packet(buf.freeze()).unwrap();
        assert_eq!(frames.len(), 1);
        match &frames[0] {
            Frame::UpBatch { increments, reports } => {
                assert_eq!(increments.len(), n);
                assert_eq!(*increments.last().unwrap(), n as u32 - 1);
                assert!(reports.is_empty());
            }
            other => panic!("expected UpBatch, got {other:?}"),
        }

        // 65536: one past the prefix — must fall back to plain frames with
        // the count intact, never wrap the prefix to 0.
        let n = u16::MAX as usize + 1;
        let mut batch: Vec<(u32, UpMsg)> = (0..n as u32).map(|c| (c, UpMsg::Increment)).collect();
        let mut buf = BytesMut::new();
        assert_eq!(encode_event(&mut batch, &mut buf), 5 * n);
        let frames = decode_packet(buf.freeze()).unwrap();
        assert_eq!(frames.len(), n);
        assert_eq!(frames[n - 1], Frame::Up { counter: n as u32 - 1, msg: UpMsg::Increment });
    }

    #[test]
    #[should_panic(expected = "u16 length prefix")]
    fn direct_oversized_up_batch_encode_is_rejected() {
        // Hand-built frames (not via encode_event) hit the checked
        // conversion instead of silently wrapping the section count.
        let frame =
            Frame::UpBatch { increments: (0..=u16::MAX as u32).collect(), reports: Vec::new() };
        let mut buf = BytesMut::new();
        encode(&frame, &mut buf);
    }
}
