//! Wire format for counter protocol messages.
//!
//! The simulator counts abstract messages; a real deployment (and the
//! threaded cluster runtime's byte accounting) needs concrete frames. The
//! encoding is deliberately simple and fixed-width-tagged:
//!
//! ```text
//! frame := u8 tag, u32 counter_id, payload
//!   tag 0 Increment                 payload: -
//!   tag 1 Cumulative                payload: u64 value
//!   tag 2 Report                    payload: u32 round, u64 value
//!   tag 3 SyncReply                 payload: u32 round, u64 value
//!   tag 4 SyncRequest               payload: u32 round
//!   tag 5 NewRound                  payload: u32 round, f64 p
//! ```
//!
//! All integers little-endian. A *packet* is any number of concatenated
//! frames (the paper's per-event bundling).

use crate::msg::{DownMsg, UpMsg};
use bytes::{Buf, BufMut, Bytes, BytesMut};

/// A direction-tagged frame: one counter update on the wire.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Frame {
    /// Site → coordinator.
    Up { counter: u32, msg: UpMsg },
    /// Coordinator → site.
    Down { counter: u32, msg: DownMsg },
}

/// Encoding/decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Ran out of bytes mid-frame.
    Truncated,
    /// Unknown frame tag.
    BadTag(u8),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "truncated frame"),
            WireError::BadTag(t) => write!(f, "unknown frame tag {t}"),
        }
    }
}

impl std::error::Error for WireError {}

/// Append one frame to a packet buffer. Returns the encoded size in bytes.
pub fn encode(frame: &Frame, buf: &mut BytesMut) -> usize {
    let start = buf.len();
    match frame {
        Frame::Up { counter, msg } => match msg {
            UpMsg::Increment => {
                buf.put_u8(0);
                buf.put_u32_le(*counter);
            }
            UpMsg::Cumulative { value } => {
                buf.put_u8(1);
                buf.put_u32_le(*counter);
                buf.put_u64_le(*value);
            }
            UpMsg::Report { round, value } => {
                buf.put_u8(2);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
                buf.put_u64_le(*value);
            }
            UpMsg::SyncReply { round, value } => {
                buf.put_u8(3);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
                buf.put_u64_le(*value);
            }
        },
        Frame::Down { counter, msg } => match msg {
            DownMsg::SyncRequest { round } => {
                buf.put_u8(4);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
            }
            DownMsg::NewRound { round, p } => {
                buf.put_u8(5);
                buf.put_u32_le(*counter);
                buf.put_u32_le(*round);
                buf.put_f64_le(*p);
            }
        },
    }
    buf.len() - start
}

/// Encoded size of a frame without materializing it.
pub fn frame_len(frame: &Frame) -> usize {
    let payload = match frame {
        Frame::Up { msg, .. } => match msg {
            UpMsg::Increment => 0,
            UpMsg::Cumulative { .. } => 8,
            UpMsg::Report { .. } | UpMsg::SyncReply { .. } => 12,
        },
        Frame::Down { msg, .. } => match msg {
            DownMsg::SyncRequest { .. } => 4,
            DownMsg::NewRound { .. } => 12,
        },
    };
    1 + 4 + payload
}

/// Decode one frame from the front of `buf`, advancing it.
pub fn decode(buf: &mut Bytes) -> Result<Frame, WireError> {
    if buf.remaining() < 5 {
        return Err(WireError::Truncated);
    }
    let tag = buf.get_u8();
    let counter = buf.get_u32_le();
    let need = |buf: &Bytes, n: usize| {
        if buf.remaining() < n {
            Err(WireError::Truncated)
        } else {
            Ok(())
        }
    };
    let frame = match tag {
        0 => Frame::Up { counter, msg: UpMsg::Increment },
        1 => {
            need(buf, 8)?;
            Frame::Up { counter, msg: UpMsg::Cumulative { value: buf.get_u64_le() } }
        }
        2 => {
            need(buf, 12)?;
            let round = buf.get_u32_le();
            let value = buf.get_u64_le();
            Frame::Up { counter, msg: UpMsg::Report { round, value } }
        }
        3 => {
            need(buf, 12)?;
            let round = buf.get_u32_le();
            let value = buf.get_u64_le();
            Frame::Up { counter, msg: UpMsg::SyncReply { round, value } }
        }
        4 => {
            need(buf, 4)?;
            Frame::Down { counter, msg: DownMsg::SyncRequest { round: buf.get_u32_le() } }
        }
        5 => {
            need(buf, 12)?;
            let round = buf.get_u32_le();
            let p = buf.get_f64_le();
            Frame::Down { counter, msg: DownMsg::NewRound { round, p } }
        }
        other => return Err(WireError::BadTag(other)),
    };
    Ok(frame)
}

/// Decode a whole packet (concatenated frames).
pub fn decode_packet(mut bytes: Bytes) -> Result<Vec<Frame>, WireError> {
    let mut frames = Vec::new();
    while bytes.has_remaining() {
        frames.push(decode(&mut bytes)?);
    }
    Ok(frames)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Up { counter: 0, msg: UpMsg::Increment },
            Frame::Up { counter: 7, msg: UpMsg::Cumulative { value: 99 } },
            Frame::Up { counter: u32::MAX, msg: UpMsg::Report { round: 3, value: u64::MAX } },
            Frame::Up { counter: 12, msg: UpMsg::SyncReply { round: 0, value: 0 } },
            Frame::Down { counter: 5, msg: DownMsg::SyncRequest { round: 9 } },
            Frame::Down { counter: 6, msg: DownMsg::NewRound { round: 10, p: 0.125 } },
        ]
    }

    #[test]
    fn round_trip_every_variant() {
        for frame in all_frames() {
            let mut buf = BytesMut::new();
            let n = encode(&frame, &mut buf);
            assert_eq!(n, buf.len());
            assert_eq!(n, frame_len(&frame));
            let mut bytes = buf.freeze();
            let back = decode(&mut bytes).unwrap();
            assert_eq!(back, frame);
            assert!(!bytes.has_remaining());
        }
    }

    #[test]
    fn packet_round_trip() {
        let frames = all_frames();
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        let back = decode_packet(buf.freeze()).unwrap();
        assert_eq!(back, frames);
    }

    #[test]
    fn truncation_detected() {
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 1, msg: UpMsg::Report { round: 1, value: 2 } }, &mut buf);
        let full = buf.freeze();
        for cut in 1..full.len() {
            let mut partial = full.slice(0..cut);
            assert_eq!(decode(&mut partial), Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn bad_tag_detected() {
        let mut buf = BytesMut::new();
        buf.put_u8(42);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        let mut bytes = buf.freeze();
        assert_eq!(decode(&mut bytes), Err(WireError::BadTag(42)));
    }

    #[test]
    fn exact_update_is_five_bytes() {
        // The cheapest frame — what EXACTMLE pays per counter update.
        let f = Frame::Up { counter: 3, msg: UpMsg::Increment };
        assert_eq!(frame_len(&f), 5);
        // A randomized report costs 17 bytes but is sent rarely.
        let f = Frame::Up { counter: 3, msg: UpMsg::Report { round: 0, value: 1 } };
        assert_eq!(frame_len(&f), 17);
    }
}
