//! Epoch-ring machinery for distributed time-decay tracking.
//!
//! The paper leaves time-decay models as future work (2); the obstacle is
//! that the HYZ estimator of Lemma 4 requires counts to be non-decreasing,
//! which exponential decay violates. The epoch-ring scheme sidesteps it:
//! the stream is cut into *epochs* of `B` events; within an epoch every
//! counter runs an unmodified monotone protocol (exact / deterministic /
//! HYZ — Lemma 4 applies per epoch), and when an epoch closes the
//! coordinator freezes the current estimates into a ring of the last `K`
//! closed epochs. A decayed count is then read as the `lambda^age`-weighted
//! sum over the ring plus the open epoch — no protocol ever sees a
//! decreasing count, and the only extra communication is one
//! [`crate::wire::Frame::EpochRoll`] broadcast plus `k` acks per roll.
//!
//! Two pieces live here, shared by the synchronous simulator and the
//! threaded cluster runtime in `dsbn-monitor`:
//!
//! - [`EpochRing`] — the per-counter ring of closed-epoch values with the
//!   decayed-sum read.
//! - [`EpochRoller`] — the coordinator-side roll state machine: which
//!   sites have acknowledged the in-flight roll, and therefore whether an
//!   arriving update still belongs to the closing epoch. It is what makes
//!   the roll safe under asynchronous delivery (see the `is_stale`
//!   invariant below and DESIGN.md §5).

use std::collections::VecDeque;

/// Ring of the last `K` closed-epoch values of one counter, newest last.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochRing {
    cap: usize,
    closed: VecDeque<f64>,
}

impl EpochRing {
    /// Ring retaining the `cap` most recent closed epochs (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        assert!(cap >= 1, "epoch ring needs capacity >= 1");
        EpochRing { cap, closed: VecDeque::with_capacity(cap) }
    }

    /// Capacity `K`.
    pub fn cap(&self) -> usize {
        self.cap
    }

    /// Number of closed epochs currently retained (`<= cap`).
    pub fn len(&self) -> usize {
        self.closed.len()
    }

    /// Whether no epoch has been closed yet.
    pub fn is_empty(&self) -> bool {
        self.closed.is_empty()
    }

    /// Close an epoch with value `value`; the oldest retained epoch falls
    /// off once the ring is full (its weight `lambda^K` is negligible for
    /// any sensible `K`).
    pub fn push(&mut self, value: f64) {
        if self.closed.len() == self.cap {
            self.closed.pop_front();
        }
        self.closed.push_back(value);
    }

    /// Closed values, oldest first.
    pub fn closed(&self) -> impl Iterator<Item = f64> + '_ {
        self.closed.iter().copied()
    }

    /// Export the closed-epoch values into a caller-owned slab, oldest
    /// first — the snapshot-minting fast path: one bounded memcpy-shaped
    /// pass, no iterator chasing, no allocation. `out` must be exactly
    /// [`Self::len`] long.
    pub fn snapshot_into(&self, out: &mut [f64]) {
        assert_eq!(out.len(), self.closed.len(), "snapshot slab length mismatch");
        let (front, back) = self.closed.as_slices();
        out[..front.len()].copy_from_slice(front);
        out[front.len()..].copy_from_slice(back);
    }

    /// The decayed count: `current + sum_a lambda^a * closed[age a]`, where
    /// the most recently closed epoch has age 1 and the open epoch
    /// (contributing `current`) has age 0 / weight 1. With an empty ring
    /// this returns `current` unchanged (bit-for-bit — the degenerate
    /// no-roll configuration must be indistinguishable from no decay).
    pub fn decayed(&self, current: f64, lambda: f64) -> f64 {
        let mut total = current;
        let mut weight = 1.0;
        for value in self.closed.iter().rev() {
            weight *= lambda;
            total += weight * value;
        }
        total
    }
}

/// Coordinator-side epoch-roll state machine.
///
/// A roll proceeds as a handshake: the coordinator broadcasts
/// `EpochRoll { epoch }` down every (FIFO) site channel and keeps serving
/// traffic; each site resets its per-epoch counter state on receipt and
/// answers `EpochAck { epoch }` on its (FIFO) up path. Until a site's ack
/// arrives, any update from that site was sent *before* it rolled and
/// belongs to the closing epoch ([`EpochRoller::is_stale`]); once all `k`
/// acks are in, no closing-epoch traffic can still be in flight and the
/// epoch's coordinator states can be frozen into the ring.
///
/// Rolls serialize: a roll requested while one is in flight is queued and
/// started by [`EpochRoller::finish`]. The struct is protocol-agnostic —
/// the caller owns the two coordinator state sets (closing + open) and
/// routes updates by `is_stale`.
#[derive(Debug, Clone)]
pub struct EpochRoller {
    acked: Vec<bool>,
    n_acked: usize,
    rolling: bool,
    queued: u64,
    epochs_closed: u32,
    /// Crashed sites: pre-acked in every roll (they can never answer, and
    /// their per-epoch counts are wiped anyway) until marked live again.
    dead: Vec<bool>,
}

impl EpochRoller {
    /// Roller for `k` sites; epoch 0 is open, nothing in flight.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        EpochRoller {
            acked: vec![false; k],
            n_acked: 0,
            rolling: false,
            queued: 0,
            epochs_closed: 0,
            dead: vec![false; k],
        }
    }

    /// A roll was requested. Returns `Some(epoch)` — the epoch to close,
    /// which the caller must broadcast as `EpochRoll { epoch }` — when the
    /// roll starts now; `None` when one is already in flight (the request
    /// is queued and surfaces from [`Self::finish`]).
    ///
    /// Dead sites are pre-acked, so the caller must check
    /// [`Self::all_acked`] after broadcasting: with every live site already
    /// accounted for (e.g. all sites dead) the roll is complete on arrival.
    pub fn request(&mut self) -> Option<u32> {
        if self.rolling {
            self.queued += 1;
            return None;
        }
        self.rolling = true;
        self.n_acked = 0;
        for (a, d) in self.acked.iter_mut().zip(&self.dead) {
            *a = *d;
            self.n_acked += *d as usize;
        }
        Some(self.epochs_closed)
    }

    /// Mark `site` crashed: it is excluded from the in-flight roll (if any)
    /// and pre-acked in every future roll until [`Self::mark_live`].
    /// Returns `true` when removing the site completed the in-flight roll —
    /// the caller must then freeze and [`Self::finish`], exactly as for a
    /// completing [`Self::ack`]. Idempotent.
    pub fn mark_dead(&mut self, site: usize) -> bool {
        self.dead[site] = true;
        if self.rolling && !self.acked[site] {
            self.acked[site] = true;
            self.n_acked += 1;
            return self.n_acked == self.acked.len();
        }
        false
    }

    /// Mark `site` live again after a rejoin. An in-flight roll keeps its
    /// pre-ack (the site rolled as dead — its settlement is an exact zero);
    /// the next roll waits on it normally.
    pub fn mark_live(&mut self, site: usize) {
        self.dead[site] = false;
    }

    /// All acks (including dead-site pre-acks) are in for the in-flight
    /// roll. `false` when no roll is in flight.
    pub fn all_acked(&self) -> bool {
        self.rolling && self.n_acked == self.acked.len()
    }

    /// Record `EpochAck { epoch }` from `site`. Returns `true` when this
    /// ack completes the roll — the caller must then freeze the closing
    /// coordinator states into the ring and call [`Self::finish`].
    pub fn ack(&mut self, site: usize, epoch: u32) -> bool {
        debug_assert!(self.rolling, "ack with no roll in flight");
        debug_assert_eq!(epoch, self.epochs_closed, "ack for a different epoch");
        if !self.acked[site] {
            self.acked[site] = true;
            self.n_acked += 1;
        }
        self.n_acked == self.acked.len()
    }

    /// Complete the in-flight roll. Returns `Some(next_epoch)` when a
    /// queued request starts immediately (broadcast it), `None` otherwise.
    pub fn finish(&mut self) -> Option<u32> {
        debug_assert!(self.rolling && self.n_acked == self.acked.len());
        self.rolling = false;
        self.epochs_closed += 1;
        if self.queued > 0 {
            self.queued -= 1;
            self.request()
        } else {
            None
        }
    }

    /// Whether an update arriving now from `site` belongs to the *closing*
    /// epoch: a roll is in flight and this site has not acked it yet. The
    /// FIFO channel discipline makes this exact — a site's post-roll
    /// updates can only arrive after its ack.
    pub fn is_stale(&self, site: usize) -> bool {
        self.rolling && !self.acked[site]
    }

    /// A roll is in flight.
    pub fn rolling(&self) -> bool {
        self.rolling
    }

    /// Epochs fully closed so far.
    pub fn epochs_closed(&self) -> u32 {
        self.epochs_closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_decays_by_age() {
        let mut r = EpochRing::new(4);
        assert!(r.is_empty());
        r.push(100.0); // oldest: age 2 at read time
        r.push(10.0); // newest closed: age 1
        let lambda = 0.5;
        // current 1.0 + 0.5*10 + 0.25*100 = 31.
        assert_eq!(r.decayed(1.0, lambda), 1.0 + 5.0 + 25.0);
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn empty_ring_is_bitwise_identity() {
        let r = EpochRing::new(1);
        for v in [0.0, 1.5, f64::MAX, 3.141592653589793e-7] {
            assert_eq!(r.decayed(v, 0.3).to_bits(), v.to_bits());
        }
    }

    #[test]
    fn ring_drops_oldest_beyond_cap() {
        let mut r = EpochRing::new(2);
        r.push(1.0);
        r.push(2.0);
        r.push(3.0);
        assert_eq!(r.closed().collect::<Vec<_>>(), vec![2.0, 3.0]);
        // lambda = 1: plain sum of retained epochs plus current.
        assert_eq!(r.decayed(4.0, 1.0), 9.0);
    }

    #[test]
    fn snapshot_into_exports_oldest_first() {
        let mut r = EpochRing::new(3);
        for v in [1.0, 2.0, 3.0, 4.0] {
            r.push(v);
        }
        let mut out = vec![0.0; r.len()];
        r.snapshot_into(&mut out);
        assert_eq!(out, vec![2.0, 3.0, 4.0]);
        assert_eq!(out, r.closed().collect::<Vec<_>>());
        // Wrapped ring (pop_front happened), both VecDeque slices covered.
        r.push(5.0);
        r.snapshot_into(&mut out);
        assert_eq!(out, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    #[should_panic(expected = "slab length mismatch")]
    fn snapshot_into_checks_length() {
        let mut r = EpochRing::new(2);
        r.push(1.0);
        r.snapshot_into(&mut [0.0; 2]);
    }

    #[test]
    #[should_panic(expected = "capacity >= 1")]
    fn zero_cap_rejected() {
        let _ = EpochRing::new(0);
    }

    #[test]
    fn roller_handshake_and_staleness() {
        let mut roller = EpochRoller::new(3);
        assert!(!roller.rolling());
        assert_eq!(roller.request(), Some(0));
        // Everybody is stale until they ack.
        assert!(roller.is_stale(0) && roller.is_stale(2));
        assert!(!roller.ack(1, 0));
        assert!(!roller.is_stale(1));
        assert!(roller.is_stale(0));
        assert!(!roller.ack(0, 0));
        assert!(roller.ack(2, 0));
        assert_eq!(roller.finish(), None);
        assert_eq!(roller.epochs_closed(), 1);
        assert!(!roller.is_stale(0));
    }

    #[test]
    fn roller_queues_overlapping_requests() {
        let mut roller = EpochRoller::new(2);
        assert_eq!(roller.request(), Some(0));
        assert_eq!(roller.request(), None); // queued
        assert!(!roller.ack(0, 0));
        assert!(roller.ack(1, 0));
        // Finishing starts the queued roll immediately.
        assert_eq!(roller.finish(), Some(1));
        assert!(roller.rolling());
        assert!(!roller.ack(0, 1));
        assert!(roller.ack(1, 1));
        assert_eq!(roller.finish(), None);
        assert_eq!(roller.epochs_closed(), 2);
    }

    #[test]
    fn dead_site_completes_inflight_roll() {
        let mut roller = EpochRoller::new(3);
        assert_eq!(roller.request(), Some(0));
        assert!(!roller.ack(0, 0));
        assert!(!roller.ack(1, 0));
        // Site 2 crashes with its ack outstanding: the roll completes.
        assert!(roller.mark_dead(2));
        assert!(roller.all_acked());
        assert_eq!(roller.finish(), None);
        assert_eq!(roller.epochs_closed(), 1);
        // Idempotent while already dead and not rolling.
        assert!(!roller.mark_dead(2));
    }

    #[test]
    fn dead_site_preacked_in_future_rolls() {
        let mut roller = EpochRoller::new(3);
        assert!(!roller.mark_dead(1));
        assert_eq!(roller.request(), Some(0));
        // The dead slot is pre-acked and its (impossible) updates are not
        // attributed to the closing epoch.
        assert!(!roller.is_stale(1));
        assert!(roller.is_stale(0) && roller.is_stale(2));
        assert!(!roller.ack(0, 0));
        assert!(roller.ack(2, 0));
        assert_eq!(roller.finish(), None);
        // After rejoin the next roll waits on it again.
        roller.mark_live(1);
        assert_eq!(roller.request(), Some(1));
        assert!(roller.is_stale(1));
        assert!(!roller.all_acked());
    }

    #[test]
    fn all_dead_roll_completes_on_request() {
        let mut roller = EpochRoller::new(2);
        roller.mark_dead(0);
        roller.mark_dead(1);
        assert_eq!(roller.request(), Some(0));
        // No ack can ever arrive; the caller's post-broadcast check sees
        // the roll already complete.
        assert!(roller.all_acked());
        assert_eq!(roller.finish(), None);
        assert_eq!(roller.epochs_closed(), 1);
    }

    #[test]
    fn duplicate_acks_ignored() {
        let mut roller = EpochRoller::new(2);
        roller.request();
        assert!(!roller.ack(0, 0));
        assert!(!roller.ack(0, 0));
        assert!(roller.ack(1, 0));
    }
}
