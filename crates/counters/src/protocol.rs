//! The distributed counter protocol abstraction.
//!
//! A *distributed counter* tracks the total number of events observed across
//! `k` sites, with the current estimate held at a coordinator. Protocols are
//! written as pure state machines — site state, coordinator state, and the
//! messages of [`crate::msg`] — so the same protocol code runs under the
//! synchronous simulator and the asynchronous threaded cluster runtime in
//! `dsbn-monitor`.

use crate::msg::{DownMsg, UpMsg};
use rand::Rng;

/// A distributed counting protocol as a pair of state machines.
///
/// Contract expected by the runtimes:
/// - [`increment`](Self::increment) is called on a site for each local
///   arrival and may emit one up message.
/// - Every emitted [`UpMsg`] is eventually delivered to the coordinator via
///   [`handle_up`](Self::handle_up), which may emit a broadcast.
/// - Every broadcast is delivered to *all* sites via
///   [`handle_down`](Self::handle_down), each of which may reply.
/// - [`estimate`](Self::estimate) may be read at any time.
pub trait CounterProtocol {
    /// Per-site state.
    type Site;
    /// Coordinator state.
    type Coord;

    /// Fresh site state.
    fn new_site(&self) -> Self::Site;

    /// Fresh coordinator state for `k` sites.
    fn new_coord(&self, k: usize) -> Self::Coord;

    /// Record one arrival at a site; optionally emit an up message.
    fn increment<R: Rng + ?Sized>(&self, site: &mut Self::Site, rng: &mut R) -> Option<UpMsg>;

    /// Batched UPDATE entry point: record `count` arrivals at a site in one
    /// call, appending every triggered up message — paired with this
    /// counter's wire id `counter` — to the event batch. Runtimes that
    /// bundle all of an event's updates into one packet (the paper's
    /// transmission optimization) drive counters through this method so a
    /// protocol can amortize per-arrival work.
    ///
    /// The default implementation loops [`Self::increment`]. Overrides must
    /// emit the *identical* message sequence and end in the identical site
    /// state — the batched and per-increment pipelines are required to stay
    /// bit-for-bit equivalent (see the equivalence suite in
    /// `tests/batched_equivalence.rs`).
    fn increment_batch<R: Rng + ?Sized>(
        &self,
        site: &mut Self::Site,
        counter: u32,
        count: u64,
        batch: &mut Vec<(u32, UpMsg)>,
        rng: &mut R,
    ) {
        for _ in 0..count {
            if let Some(up) = self.increment(site, rng) {
                batch.push((counter, up));
            }
        }
    }

    /// Deliver a broadcast to a site; optionally emit a reply.
    fn handle_down<R: Rng + ?Sized>(
        &self,
        site: &mut Self::Site,
        msg: DownMsg,
        rng: &mut R,
    ) -> Option<UpMsg>;

    /// Deliver an up message from `site_id` to the coordinator; optionally
    /// emit a broadcast.
    fn handle_up(&self, coord: &mut Self::Coord, site_id: usize, msg: UpMsg) -> Option<DownMsg>;

    /// The coordinator's current estimate of the global count.
    fn estimate(&self, coord: &Self::Coord) -> f64;

    /// The exact count a site has seen locally (for tests and sync audits).
    fn site_local_count(&self, site: &Self::Site) -> u64;

    /// A site crashed (fail-stop): all of its unsettled local state is gone
    /// and no further message from it will arrive until
    /// [`rejoin_site`](Self::rejoin_site). The coordinator must *forget* the
    /// site's unsettled contribution so the estimate tracks the surviving
    /// counts, and must stop waiting on the site in any reply quorum — a
    /// crash may therefore complete an in-flight collective step, in which
    /// case the completing broadcast is returned. Idempotent. The default
    /// is a no-op for protocols with no per-site coordinator state and no
    /// reply quorums.
    fn site_crashed(&self, _coord: &mut Self::Coord, _site_id: usize) -> Option<DownMsg> {
        None
    }

    /// A crashed site rejoined with *fresh* site state (`new_site`). The
    /// coordinator marks it live again and may return a catch-up broadcast
    /// to fast-forward the returning site into the current round; the
    /// runtime delivers it to the rejoining site only (ahead of any later
    /// broadcast, on the same FIFO link). Idempotent; the default is a
    /// no-op.
    fn rejoin_site(&self, _coord: &mut Self::Coord, _site_id: usize) -> Option<DownMsg> {
        None
    }

    /// Export the estimates of a homogeneous coordinator bank into a
    /// caller-owned slab: `out[i] = estimate(&coords[i])`. One bounded pass
    /// over contiguous state — the snapshot-minting fast path. The default
    /// loops [`Self::estimate`]; overrides must stay bit-identical.
    fn snapshot_into(&self, coords: &[Self::Coord], out: &mut [f64]) {
        assert_eq!(coords.len(), out.len(), "snapshot slab length mismatch");
        for (o, c) in out.iter_mut().zip(coords) {
            *o = self.estimate(c);
        }
    }
}

/// Export the estimates of a per-counter protocol bank (one instance per
/// counter, as the multi-counter runtimes hold them — the NONUNIFORM
/// scheme gives every counter its own error budget) into a caller-owned
/// slab: `out[c] = protocols[c].estimate(&coords[c])`. The slab export the
/// snapshot-minting layer in `dsbn-monitor` drives: a bounded linear sweep
/// over the flat coordinator state, never a per-query walk.
pub fn snapshot_into<P: CounterProtocol>(protocols: &[P], coords: &[P::Coord], out: &mut [f64]) {
    assert_eq!(protocols.len(), coords.len(), "protocol/coord bank length mismatch");
    assert_eq!(coords.len(), out.len(), "snapshot slab length mismatch");
    for ((o, p), c) in out.iter_mut().zip(protocols).zip(coords) {
        *o = p.estimate(c);
    }
}

/// A single-counter synchronous test harness: `k` sites and one coordinator
/// with instantaneous message delivery. Counts messages with the paper's
/// convention (broadcast = `k` messages). The full multi-counter runtime
/// lives in `dsbn-monitor`; this harness exists so counter protocols can be
/// tested and benchmarked in isolation.
pub struct SingleCounterSim<P: CounterProtocol> {
    protocol: P,
    sites: Vec<P::Site>,
    coord: P::Coord,
    /// Total messages, paper convention.
    pub messages: u64,
    /// Up messages only.
    pub up_messages: u64,
    /// Broadcast count (each contributing `k` to `messages`).
    pub broadcasts: u64,
}

impl<P: CounterProtocol> SingleCounterSim<P> {
    /// Build a harness over `k` sites.
    pub fn new(protocol: P, k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        let sites = (0..k).map(|_| protocol.new_site()).collect();
        let coord = protocol.new_coord(k);
        SingleCounterSim { protocol, sites, coord, messages: 0, up_messages: 0, broadcasts: 0 }
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.sites.len()
    }

    /// Deliver an up message and run any triggered broadcast cascade to
    /// quiescence.
    fn deliver_up<R: Rng + ?Sized>(&mut self, site_id: usize, msg: UpMsg, rng: &mut R) {
        self.messages += 1;
        self.up_messages += 1;
        let mut pending_down = self.protocol.handle_up(&mut self.coord, site_id, msg);
        while let Some(down) = pending_down.take() {
            self.broadcasts += 1;
            self.messages += self.sites.len() as u64;
            let mut replies = Vec::new();
            for (sid, site) in self.sites.iter_mut().enumerate() {
                if let Some(up) = self.protocol.handle_down(site, down, rng) {
                    replies.push((sid, up));
                }
            }
            for (sid, up) in replies {
                self.messages += 1;
                self.up_messages += 1;
                if let Some(d) = self.protocol.handle_up(&mut self.coord, sid, up) {
                    // At most one cascade level is ever pending in the
                    // provided protocols; keep the last.
                    pending_down = Some(d);
                }
            }
        }
    }

    /// One arrival at `site_id`.
    pub fn increment<R: Rng + ?Sized>(&mut self, site_id: usize, rng: &mut R) {
        if let Some(up) = self.protocol.increment(&mut self.sites[site_id], rng) {
            self.deliver_up(site_id, up, rng);
        }
    }

    /// Coordinator estimate.
    pub fn estimate(&self) -> f64 {
        self.protocol.estimate(&self.coord)
    }

    /// Exact total across sites (test oracle).
    pub fn exact_total(&self) -> u64 {
        self.sites.iter().map(|s| self.protocol.site_local_count(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactProtocol;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn harness_counts_messages() {
        let mut sim = SingleCounterSim::new(ExactProtocol, 4);
        let mut rng = StdRng::seed_from_u64(0);
        for i in 0..100 {
            sim.increment(i % 4, &mut rng);
        }
        assert_eq!(sim.estimate(), 100.0);
        assert_eq!(sim.exact_total(), 100);
        assert_eq!(sim.messages, 100);
        assert_eq!(sim.up_messages, 100);
        assert_eq!(sim.broadcasts, 0);
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_rejected() {
        let _ = SingleCounterSim::new(ExactProtocol, 0);
    }

    #[test]
    fn default_increment_batch_is_bit_identical_to_looping() {
        // The default impl must consume the rng exactly like the
        // per-arrival loop, for a randomized protocol.
        let proto = crate::hyz::HyzProtocol::new(0.3);
        let mut rng_a = StdRng::seed_from_u64(7);
        let mut rng_b = StdRng::seed_from_u64(7);
        let mut site_a = proto.new_site();
        let mut site_b = proto.new_site();
        let mut batch_a = Vec::new();
        let mut batch_b = Vec::new();
        proto.increment_batch(&mut site_a, 4, 500, &mut batch_a, &mut rng_a);
        for _ in 0..500 {
            if let Some(up) = proto.increment(&mut site_b, &mut rng_b) {
                batch_b.push((4, up));
            }
        }
        assert_eq!(batch_a, batch_b);
        assert_eq!(proto.site_local_count(&site_a), proto.site_local_count(&site_b));
    }

    #[test]
    fn snapshot_into_matches_estimate_loop() {
        use crate::hyz::HyzProtocol;
        // A heterogeneous bank (per-counter eps, NONUNIFORM-style): the
        // free-function export must equal estimate() per counter, bitwise.
        let protocols: Vec<HyzProtocol> =
            (1..=5).map(|i| HyzProtocol::new(0.1 * i as f64)).collect();
        let mut rng = StdRng::seed_from_u64(9);
        let mut sites: Vec<_> = protocols.iter().map(|p| p.new_site()).collect();
        let mut coords: Vec<_> = protocols.iter().map(|p| p.new_coord(1)).collect();
        for i in 0..3_000usize {
            let c = i % 5;
            if let Some(up) = protocols[c].increment(&mut sites[c], &mut rng) {
                let mut down = protocols[c].handle_up(&mut coords[c], 0, up);
                while let Some(d) = down.take() {
                    if let Some(reply) = protocols[c].handle_down(&mut sites[c], d, &mut rng) {
                        down = protocols[c].handle_up(&mut coords[c], 0, reply);
                    }
                }
            }
        }
        let mut out = vec![0.0; 5];
        super::snapshot_into(&protocols, &coords, &mut out);
        for c in 0..5 {
            assert_eq!(out[c].to_bits(), protocols[c].estimate(&coords[c]).to_bits());
        }
        // The homogeneous trait-method export agrees on a uniform bank.
        let mut uniform = vec![0.0; 5];
        protocols[0].snapshot_into(&coords, &mut uniform);
        assert_eq!(uniform[0].to_bits(), protocols[0].estimate(&coords[0]).to_bits());
    }
}
