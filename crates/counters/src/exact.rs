//! The strawman exact counter (§IV-A): every arrival is forwarded to the
//! coordinator, giving an exact count at a communication cost linear in the
//! stream length (Lemma 5).

use crate::msg::{DownMsg, UpMsg};
use crate::protocol::CounterProtocol;
use rand::Rng;

/// Exact distributed counter protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactProtocol;

/// Site state: the local count (kept only for auditing).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSite {
    local: u64,
}

/// Coordinator state: the exact count, attributed per site so a site crash
/// can forget exactly the crashed site's (wiped) contribution. The global
/// estimate is the sum — an integer-exact fold, so attribution changes
/// nothing on the no-fault path.
#[derive(Debug, Clone, Default)]
pub struct ExactCoord {
    per_site: Vec<u64>,
}

impl CounterProtocol for ExactProtocol {
    type Site = ExactSite;
    type Coord = ExactCoord;

    fn new_site(&self) -> ExactSite {
        ExactSite::default()
    }

    fn new_coord(&self, k: usize) -> ExactCoord {
        ExactCoord { per_site: vec![0; k] }
    }

    #[inline]
    fn increment<R: Rng + ?Sized>(&self, site: &mut ExactSite, _rng: &mut R) -> Option<UpMsg> {
        site.local += 1;
        Some(UpMsg::Increment)
    }

    /// Every arrival always emits one [`UpMsg::Increment`], so the batch
    /// path can skip the per-arrival `Option` plumbing entirely while
    /// producing the identical message sequence.
    #[inline]
    fn increment_batch<R: Rng + ?Sized>(
        &self,
        site: &mut ExactSite,
        counter: u32,
        count: u64,
        batch: &mut Vec<(u32, UpMsg)>,
        _rng: &mut R,
    ) {
        site.local += count;
        batch.extend(std::iter::repeat_n((counter, UpMsg::Increment), count as usize));
    }

    fn handle_down<R: Rng + ?Sized>(
        &self,
        _site: &mut ExactSite,
        _msg: DownMsg,
        _rng: &mut R,
    ) -> Option<UpMsg> {
        None // the exact protocol never broadcasts
    }

    fn handle_up(&self, coord: &mut ExactCoord, site_id: usize, msg: UpMsg) -> Option<DownMsg> {
        debug_assert!(matches!(msg, UpMsg::Increment));
        coord.per_site[site_id] += 1;
        None
    }

    #[inline]
    fn estimate(&self, coord: &ExactCoord) -> f64 {
        coord.per_site.iter().sum::<u64>() as f64
    }

    fn site_local_count(&self, site: &ExactSite) -> u64 {
        site.local
    }

    fn site_crashed(&self, coord: &mut ExactCoord, site_id: usize) -> Option<DownMsg> {
        // Fail-stop semantics: the site's unsettled local counts are gone,
        // so the delivered increments they backed are forgotten too — the
        // coordinator's total stays bit-for-bit equal to the surviving
        // sites' exact counts (the reconciliation identity the churn suite
        // pins). Idempotent: the slot is simply zero on a repeat.
        coord.per_site[site_id] = 0;
        None
    }

    // `rejoin_site` default: nothing to restore — the rejoining site starts
    // a fresh local count and its slot re-accumulates from zero.
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SingleCounterSim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = SingleCounterSim::new(ExactProtocol, 7);
        for _ in 0..5000 {
            let s = rng.gen_range(0..7);
            sim.increment(s, &mut rng);
        }
        assert_eq!(sim.estimate(), 5000.0);
        assert_eq!(sim.messages, 5000);
    }

    #[test]
    fn batch_override_matches_per_arrival_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let proto = ExactProtocol;
        let mut site_a = proto.new_site();
        let mut site_b = proto.new_site();
        let mut batch_a = Vec::new();
        let mut batch_b = Vec::new();
        proto.increment_batch(&mut site_a, 9, 100, &mut batch_a, &mut rng);
        for _ in 0..100 {
            if let Some(up) = proto.increment(&mut site_b, &mut rng) {
                batch_b.push((9, up));
            }
        }
        assert_eq!(batch_a, batch_b);
        assert_eq!(proto.site_local_count(&site_a), proto.site_local_count(&site_b));
    }

    #[test]
    fn crash_forgets_exactly_the_dead_sites_share() {
        let proto = ExactProtocol;
        let mut coord = proto.new_coord(3);
        for (site, n) in [(0usize, 5u64), (1, 7), (2, 11)] {
            for _ in 0..n {
                assert_eq!(proto.handle_up(&mut coord, site, UpMsg::Increment), None);
            }
        }
        assert_eq!(proto.estimate(&coord), 23.0);
        assert_eq!(proto.site_crashed(&mut coord, 1), None);
        assert_eq!(proto.estimate(&coord), 16.0);
        // Idempotent; rejoin restores nothing (fresh site counts from 0).
        assert_eq!(proto.site_crashed(&mut coord, 1), None);
        assert_eq!(proto.rejoin_site(&mut coord, 1), None);
        assert_eq!(proto.estimate(&coord), 16.0);
        proto.handle_up(&mut coord, 1, UpMsg::Increment);
        assert_eq!(proto.estimate(&coord), 17.0);
    }

    #[test]
    fn cost_is_linear_in_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        for &m in &[10u64, 100, 1000] {
            let mut sim = SingleCounterSim::new(ExactProtocol, 3);
            for i in 0..m {
                sim.increment((i % 3) as usize, &mut rng);
            }
            assert_eq!(sim.messages, m);
        }
    }
}
