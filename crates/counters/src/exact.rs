//! The strawman exact counter (§IV-A): every arrival is forwarded to the
//! coordinator, giving an exact count at a communication cost linear in the
//! stream length (Lemma 5).

use crate::msg::{DownMsg, UpMsg};
use crate::protocol::CounterProtocol;
use rand::Rng;

/// Exact distributed counter protocol.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactProtocol;

/// Site state: the local count (kept only for auditing).
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactSite {
    local: u64,
}

/// Coordinator state: the exact global count.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExactCoord {
    total: u64,
}

impl CounterProtocol for ExactProtocol {
    type Site = ExactSite;
    type Coord = ExactCoord;

    fn new_site(&self) -> ExactSite {
        ExactSite::default()
    }

    fn new_coord(&self, _k: usize) -> ExactCoord {
        ExactCoord::default()
    }

    #[inline]
    fn increment<R: Rng + ?Sized>(&self, site: &mut ExactSite, _rng: &mut R) -> Option<UpMsg> {
        site.local += 1;
        Some(UpMsg::Increment)
    }

    /// Every arrival always emits one [`UpMsg::Increment`], so the batch
    /// path can skip the per-arrival `Option` plumbing entirely while
    /// producing the identical message sequence.
    #[inline]
    fn increment_batch<R: Rng + ?Sized>(
        &self,
        site: &mut ExactSite,
        counter: u32,
        count: u64,
        batch: &mut Vec<(u32, UpMsg)>,
        _rng: &mut R,
    ) {
        site.local += count;
        batch.extend(std::iter::repeat_n((counter, UpMsg::Increment), count as usize));
    }

    fn handle_down<R: Rng + ?Sized>(
        &self,
        _site: &mut ExactSite,
        _msg: DownMsg,
        _rng: &mut R,
    ) -> Option<UpMsg> {
        None // the exact protocol never broadcasts
    }

    fn handle_up(&self, coord: &mut ExactCoord, _site_id: usize, msg: UpMsg) -> Option<DownMsg> {
        debug_assert!(matches!(msg, UpMsg::Increment));
        coord.total += 1;
        None
    }

    #[inline]
    fn estimate(&self, coord: &ExactCoord) -> f64 {
        coord.total as f64
    }

    fn site_local_count(&self, site: &ExactSite) -> u64 {
        site.local
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::SingleCounterSim;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn always_exact() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sim = SingleCounterSim::new(ExactProtocol, 7);
        for _ in 0..5000 {
            let s = rng.gen_range(0..7);
            sim.increment(s, &mut rng);
        }
        assert_eq!(sim.estimate(), 5000.0);
        assert_eq!(sim.messages, 5000);
    }

    #[test]
    fn batch_override_matches_per_arrival_path() {
        let mut rng = StdRng::seed_from_u64(3);
        let proto = ExactProtocol;
        let mut site_a = proto.new_site();
        let mut site_b = proto.new_site();
        let mut batch_a = Vec::new();
        let mut batch_b = Vec::new();
        proto.increment_batch(&mut site_a, 9, 100, &mut batch_a, &mut rng);
        for _ in 0..100 {
            if let Some(up) = proto.increment(&mut site_b, &mut rng) {
                batch_b.push((9, up));
            }
        }
        assert_eq!(batch_a, batch_b);
        assert_eq!(proto.site_local_count(&site_a), proto.site_local_count(&site_b));
    }

    #[test]
    fn cost_is_linear_in_stream() {
        let mut rng = StdRng::seed_from_u64(2);
        for &m in &[10u64, 100, 1000] {
            let mut sim = SingleCounterSim::new(ExactProtocol, 3);
            for i in 0..m {
                sim.increment((i % 3) as usize, &mut rng);
            }
            assert_eq!(sim.messages, m);
        }
    }
}
