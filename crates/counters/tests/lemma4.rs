//! Statistical validation of the paper's counter guarantees over seeded
//! trials (complementing the per-run invariants in `properties.rs`):
//!
//! - Deterministic protocol (§II / Lemma 3 setting): the final estimate
//!   respects `(1 - eps) C <= A <= C` up to the documented one-count
//!   rounding slack, for any site pattern.
//! - HYZ randomized protocol (Lemma 4): the estimator is unbiased
//!   (`E[A] = C`) and its variance stays within the `(eps C)^2` bound.
//!   Checked empirically across 64 independent seeded runs per
//!   configuration; tolerances are 4 standard errors for the mean and a
//!   1.3x chi-square allowance for the sample variance.

use dsbn_counters::{DeterministicProtocol, HyzProtocol, SingleCounterSim};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run `m` increments on uniformly random sites and return the estimate.
fn hyz_final_estimate(k: usize, eps: f64, m: u64, seed: u64) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
    for _ in 0..m {
        let s = rng.gen_range(0..k);
        sim.increment(s, &mut rng);
    }
    assert_eq!(sim.exact_total(), m, "sites must never lose counts");
    sim.estimate()
}

#[test]
fn hyz_is_unbiased_and_within_lemma4_variance() {
    const TRIALS: usize = 64;
    for &(k, eps, m) in &[(4usize, 0.2f64, 4000u64), (8, 0.1, 8000), (2, 0.3, 2000)] {
        let estimates: Vec<f64> = (0..TRIALS)
            .map(|t| hyz_final_estimate(k, eps, m, 0xC0FFEE + t as u64 * 7919))
            .collect();
        let c = m as f64;
        let mean = estimates.iter().sum::<f64>() / TRIALS as f64;
        let var = estimates.iter().map(|e| (e - mean).powi(2)).sum::<f64>() / (TRIALS - 1) as f64;

        // Lemma 4 variance bound: Var[A] <= (eps C)^2. The sample variance
        // of 64 trials fluctuates ~sqrt(2/63) around the truth; 1.3x covers
        // that at far beyond 4 sigma when the true variance meets the bound.
        let var_bound = (eps * c).powi(2);
        assert!(
            var <= 1.3 * var_bound,
            "k={k} eps={eps} m={m}: sample variance {var:.1} exceeds Lemma 4 bound {var_bound:.1}"
        );

        // Unbiasedness: the empirical mean must sit within 4 standard
        // errors of C (standard error from the *observed* spread), with a
        // floor for round-quantization effects on short streams.
        let sem = (var / TRIALS as f64).sqrt();
        let tol = (4.0 * sem).max(0.25 * eps * c);
        assert!(
            (mean - c).abs() <= tol,
            "k={k} eps={eps} m={m}: mean {mean:.1} deviates from {c} by more than {tol:.1}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Deterministic protocol final-value guarantee, any (k, eps, m, seed):
    /// `(1-eps) C <= A <= C` up to one count of rounding slack.
    #[test]
    fn deterministic_final_estimate_in_band(
        k in 1usize..16,
        m in 1u64..5000,
        eps in 0.05f64..0.9,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(eps), k);
        for _ in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
        }
        let c = m as f64;
        let a = sim.estimate();
        prop_assert!(a <= c + 1e-9, "estimate {a} overshoots true count {c}");
        prop_assert!(
            a >= (1.0 - eps) * c - 1.0 - 1e-9,
            "estimate {} below (1-eps)C - 1 = {}",
            a,
            (1.0 - eps) * c - 1.0
        );
    }

    /// The deterministic estimate is monotone non-decreasing in time: sites
    /// only ever report growth.
    #[test]
    fn deterministic_estimate_is_monotone(
        k in 1usize..8,
        m in 1u64..2000,
        eps in 0.05f64..0.9,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(eps), k);
        let mut prev = sim.estimate();
        for _ in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
            let now = sim.estimate();
            prop_assert!(now >= prev, "estimate regressed: {prev} -> {now}");
            prev = now;
        }
    }
}
