//! Property-based tests for the distributed counter protocols.

use dsbn_counters::{
    CounterProtocol, DeterministicProtocol, DownMsg, ExactProtocol, HyzProtocol, SingleCounterSim,
    UpMsg,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The exact protocol is exact for any site pattern.
    #[test]
    fn exact_counter_is_exact(k in 1usize..12, m in 0u64..5000, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(ExactProtocol, k);
        for _ in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
        }
        prop_assert_eq!(sim.estimate(), m as f64);
        prop_assert_eq!(sim.messages, m);
    }

    /// Deterministic counter invariant at EVERY prefix:
    /// (1-eps) C <= estimate <= C.
    #[test]
    fn deterministic_invariant_holds_at_every_prefix(
        k in 1usize..8,
        m in 1u64..3000,
        eps in 0.05f64..0.9,
        seed: u64,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(DeterministicProtocol::new(eps), k);
        for i in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
            let c = (i + 1) as f64;
            prop_assert!(sim.estimate() <= c + 1e-9);
            prop_assert!(sim.estimate() >= (1.0 - eps) * c - 1.0 - 1e-9);
        }
    }

    /// HYZ estimates stay non-negative and within a loose multiple of the
    /// truth for any parameters (Chebyshev at high confidence), and exact
    /// totals are always preserved at the sites.
    #[test]
    fn hyz_tracks_within_loose_bound(
        k in 1usize..10,
        m in 100u64..20_000,
        eps_pct in 5u32..50,
        seed: u64,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        for _ in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
        }
        prop_assert_eq!(sim.exact_total(), m);
        let est = sim.estimate();
        prop_assert!(est >= 0.0);
        // 10-sigma Chebyshev band: |A - C| <= 10 eps C (plus slack for
        // tiny streams where integer effects dominate).
        let band = 10.0 * eps * m as f64 + 20.0;
        prop_assert!((est - m as f64).abs() <= band, "est {} vs {}", est, m);
    }

    /// HYZ never spends more messages than the exact counter plus the
    /// round-synchronization overhead.
    #[test]
    fn hyz_cost_never_pathological(
        k in 1usize..8,
        m in 1u64..10_000,
        eps_pct in 10u32..60,
        seed: u64,
    ) {
        let eps = eps_pct as f64 / 100.0;
        let mut rng = StdRng::seed_from_u64(seed);
        let mut sim = SingleCounterSim::new(HyzProtocol::new(eps), k);
        for _ in 0..m {
            let s = rng.gen_range(0..k);
            sim.increment(s, &mut rng);
        }
        // Rounds double, so there are at most log2(m) + 2 of them, each
        // costing at most 3k sync/new-round messages on top of reports,
        // and reports never exceed arrivals.
        let rounds = (m as f64).log2().ceil() as u64 + 2;
        let bound = m + rounds * 3 * k as u64;
        prop_assert!(sim.messages <= bound, "messages {} > bound {}", sim.messages, bound);
    }

    /// Protocol state machines ignore arbitrary stale messages without
    /// panicking or corrupting the estimate sign.
    #[test]
    fn hyz_coordinator_robust_to_stale_garbage(
        k in 1usize..6,
        rounds in 0u32..5,
        msgs in proptest::collection::vec((0usize..6, 0u32..8, 0u64..1000), 0..40),
    ) {
        let proto = HyzProtocol::new(0.3);
        let mut coord = proto.new_coord(k);
        // Drive the coordinator to some round via legitimate syncs.
        for _ in 0..rounds {
            // Trigger sync by a huge report.
            let r = coord.round();
            let out = proto.handle_up(&mut coord, 0, UpMsg::Report { round: r, value: 1_000_000 });
            if out.is_some() {
                for s in 0..k {
                    proto.handle_up(&mut coord, s, UpMsg::SyncReply { round: r, value: 1_000_000 });
                }
            }
        }
        for (site, round, value) in msgs {
            if site < k {
                let _ = proto.handle_up(&mut coord, site, UpMsg::Report { round, value });
                let _ = proto.handle_up(&mut coord, site, UpMsg::SyncReply { round, value });
            }
        }
        prop_assert!(proto.estimate(&coord) >= 0.0);
    }

    /// Sites ignore stale downs and never lose local counts.
    #[test]
    fn hyz_site_never_loses_counts(
        downs in proptest::collection::vec((0u32..6, 0u8..2), 0..30),
        arrivals in 0u64..500,
        seed: u64,
    ) {
        let proto = HyzProtocol::new(0.2);
        let mut site = proto.new_site();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut n = 0u64;
        let mut down_iter = downs.into_iter();
        for i in 0..arrivals {
            let _ = proto.increment(&mut site, &mut rng);
            n += 1;
            if i % 7 == 0 {
                if let Some((round, kind)) = down_iter.next() {
                    let msg = if kind == 0 {
                        DownMsg::SyncRequest { round }
                    } else {
                        DownMsg::NewRound { round, p: 0.5 }
                    };
                    let _ = proto.handle_down(&mut site, msg, &mut rng);
                }
            }
        }
        prop_assert_eq!(proto.site_local_count(&site), n);
    }
}
