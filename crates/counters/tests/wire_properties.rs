//! Property-based tests for the wire format: arbitrary frame sequences
//! round-trip; arbitrary byte garbage never panics the decoder.

use bytes::{Bytes, BytesMut};
use dsbn_counters::msg::{DownMsg, UpMsg};
use dsbn_counters::wire::{decode_packet, encode, Frame};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        any::<u32>().prop_map(|c| Frame::Up { counter: c, msg: UpMsg::Increment }),
        (any::<u32>(), any::<u64>())
            .prop_map(|(c, v)| Frame::Up { counter: c, msg: UpMsg::Cumulative { value: v } }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(c, r, v)| Frame::Up {
            counter: c,
            msg: UpMsg::Report { round: r, value: v }
        }),
        (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(c, r, v)| Frame::Up {
            counter: c,
            msg: UpMsg::SyncReply { round: r, value: v }
        }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(c, r)| Frame::Down { counter: c, msg: DownMsg::SyncRequest { round: r } }),
        (any::<u32>(), any::<u32>(), 0.0f64..1.0).prop_map(|(c, r, p)| Frame::Down {
            counter: c,
            msg: DownMsg::NewRound { round: r, p }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packets_round_trip(frames in proptest::collection::vec(arb_frame(), 0..50)) {
        let mut buf = BytesMut::new();
        let mut total = 0usize;
        for f in &frames {
            total += encode(f, &mut buf);
        }
        prop_assert_eq!(total, buf.len());
        let decoded = decode_packet(buf.freeze()).unwrap();
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any byte soup either decodes or errors; it must never panic.
        let _ = decode_packet(Bytes::from(bytes));
    }

    #[test]
    fn truncated_valid_packets_error_cleanly(
        frames in proptest::collection::vec(arb_frame(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let partial = full.slice(0..cut);
        // A clean error is fine; a successful decode must be a prefix.
        if let Ok(decoded) = decode_packet(partial) {
            prop_assert!(decoded.len() <= frames.len());
        }
    }
}
