//! Property-based audit of the wire format, run before the codec went on
//! the cluster's hot transport path: arbitrary frame sequences round-trip,
//! `frame_len` agrees with `encode` and with what `decode` consumes, and
//! adversarial truncation/garbage always yields a clean `WireError`, never
//! a panic. (The audit surfaced no length/offset defect; these properties
//! pin the behavior so none can creep in.) The audit covers the
//! event-batched `Frame::UpBatch` variant and the `encode_event` /
//! `event_batch_len` bundling entry points the runtimes ship events with,
//! plus the counterless epoch-ring control frames (`Frame::EpochRoll` /
//! `Frame::EpochAck`) the time-decay scheme rolls epochs with — both ride
//! in `arb_frame`, so every generic property exercises them, and they get
//! a dedicated round-trip/truncation property below.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use dsbn_counters::msg::{DownMsg, UpMsg};
use dsbn_counters::wire::{
    decode, decode_packet, encode, encode_event, event_batch_len, frame_len, visit_packet, Frame,
    WireError, WireItem,
};
use proptest::prelude::*;

/// Flatten decoded frames the way `visit_packet` flattens a packet: one
/// item per logical update, `UpBatch` expanded increments-then-reports.
fn flatten(frames: &[Frame]) -> Vec<WireItem> {
    let mut items = Vec::new();
    for frame in frames {
        match frame {
            Frame::Up { counter, msg } => items.push(WireItem::Up { counter: *counter, msg: *msg }),
            Frame::Down { counter, msg } => {
                items.push(WireItem::Down { counter: *counter, msg: *msg })
            }
            Frame::UpBatch { increments, reports } => {
                items.extend(
                    increments.iter().map(|&c| WireItem::Up { counter: c, msg: UpMsg::Increment }),
                );
                items.extend(reports.iter().map(|&(c, m)| WireItem::Up { counter: c, msg: m }));
            }
            Frame::EpochRoll { epoch } => items.push(WireItem::EpochRoll { epoch: *epoch }),
            Frame::EpochAck { epoch } => items.push(WireItem::EpochAck { epoch: *epoch }),
        }
    }
    items
}

/// Any f64 bit pattern except NaN (frames are compared with `==`), so the
/// codec is exercised on infinities, subnormals, and negative zero too.
fn arb_p() -> impl Strategy<Value = f64> {
    any::<u64>().prop_map(|bits| {
        let p = f64::from_bits(bits);
        if p.is_nan() {
            0.5
        } else {
            p
        }
    })
}

fn arb_up_msg() -> impl Strategy<Value = UpMsg> {
    prop_oneof![
        Just(UpMsg::Increment),
        any::<u64>().prop_map(|v| UpMsg::Cumulative { value: v }),
        (any::<u32>(), any::<u64>()).prop_map(|(r, v)| UpMsg::Report { round: r, value: v }),
        (any::<u32>(), any::<u64>()).prop_map(|(r, v)| UpMsg::SyncReply { round: r, value: v }),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        (any::<u32>(), arb_up_msg()).prop_map(|(c, msg)| Frame::Up { counter: c, msg }),
        (any::<u32>(), any::<u32>())
            .prop_map(|(c, r)| Frame::Down { counter: c, msg: DownMsg::SyncRequest { round: r } }),
        (any::<u32>(), any::<u32>(), arb_p()).prop_map(|(c, r, p)| Frame::Down {
            counter: c,
            msg: DownMsg::NewRound { round: r, p }
        }),
        (
            proptest::collection::vec(any::<u32>(), 0..60),
            proptest::collection::vec((any::<u32>(), arb_up_msg()), 0..6),
        )
            .prop_map(|(increments, reports)| Frame::UpBatch { increments, reports }),
        any::<u32>().prop_map(|epoch| Frame::EpochRoll { epoch }),
        any::<u32>().prop_map(|epoch| Frame::EpochAck { epoch }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn packets_round_trip(frames in proptest::collection::vec(arb_frame(), 0..50)) {
        let mut buf = BytesMut::new();
        let mut total = 0usize;
        for f in &frames {
            total += encode(f, &mut buf);
        }
        prop_assert_eq!(total, buf.len());
        let decoded = decode_packet(buf.freeze()).unwrap();
        prop_assert_eq!(decoded, frames);
    }

    #[test]
    fn frame_len_is_exact(frame in arb_frame()) {
        // `frame_len` (used for sizing and for the simulator's byte
        // accounting) must agree with the real encoder, and `decode` must
        // consume exactly that many bytes — no drift between the three.
        let mut buf = BytesMut::new();
        let encoded = encode(&frame, &mut buf);
        prop_assert_eq!(encoded, frame_len(&frame));
        let mut bytes = buf.freeze();
        let before = bytes.remaining();
        let back = decode(&mut bytes).unwrap();
        prop_assert_eq!(before - bytes.remaining(), frame_len(&frame));
        prop_assert_eq!(back, frame);
    }

    #[test]
    fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        // Any byte soup either decodes or errors; it must never panic.
        let _ = decode_packet(Bytes::from(bytes));
    }

    #[test]
    fn garbage_tail_never_panics(
        frames in proptest::collection::vec(arb_frame(), 0..10),
        tail in proptest::collection::vec(any::<u8>(), 1..40),
    ) {
        // A valid packet with trailing garbage must decode the prefix or
        // error cleanly; never panic, never invent extra valid frames
        // beyond what the tail happens to spell.
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        for b in &tail {
            buf.put_u8(*b);
        }
        if let Ok(decoded) = decode_packet(buf.freeze()) {
            prop_assert!(decoded.len() >= frames.len());
            prop_assert_eq!(&decoded[..frames.len()], &frames[..]);
        }
    }

    #[test]
    fn truncated_single_frames_always_error(frame in arb_frame()) {
        // Every strict prefix of every frame is a clean Truncated error.
        let mut buf = BytesMut::new();
        encode(&frame, &mut buf);
        let full = buf.freeze();
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            prop_assert_eq!(decode(&mut partial), Err(WireError::Truncated), "cut at {}", cut);
        }
    }

    #[test]
    fn event_bundling_round_trips_and_never_costs_more(
        batch in proptest::collection::vec((any::<u32>(), arb_up_msg()), 0..100),
    ) {
        // `encode_event` must agree with `event_batch_len`, drain its
        // input, decode back to the same logical updates, and never exceed
        // the unbatched per-frame encoding.
        let mut work = batch.clone();
        let mut buf = BytesMut::new();
        let n = encode_event(&mut work, &mut buf);
        prop_assert!(work.is_empty());
        prop_assert_eq!(n, buf.len());
        prop_assert_eq!(n, event_batch_len(&batch));
        let singles: usize =
            batch.iter().map(|(c, m)| frame_len(&Frame::Up { counter: *c, msg: *m })).sum();
        prop_assert!(n <= singles, "bundled {} > singles {}", n, singles);

        let mut decoded: Vec<(u32, UpMsg)> = Vec::new();
        for frame in decode_packet(buf.freeze()).unwrap() {
            match frame {
                Frame::Up { counter, msg } => decoded.push((counter, msg)),
                Frame::UpBatch { increments, reports } => {
                    decoded.extend(increments.into_iter().map(|c| (c, UpMsg::Increment)));
                    decoded.extend(reports);
                }
                Frame::Down { .. } | Frame::EpochRoll { .. } | Frame::EpochAck { .. } => {
                    prop_assert!(false, "non-event frame from an event bundle")
                }
            }
        }
        // Bundling may hoist increments ahead of reports but preserves
        // order within each class and loses nothing.
        type Pairs = Vec<(u32, UpMsg)>;
        let split = |v: &[(u32, UpMsg)]| -> (Pairs, Pairs) {
            v.iter().partition(|(_, m)| matches!(m, UpMsg::Increment))
        };
        let (dec_inc, dec_rep) = split(&decoded);
        let (orig_inc, orig_rep) = split(&batch);
        prop_assert_eq!(dec_inc, orig_inc);
        prop_assert_eq!(dec_rep, orig_rep);
    }

    #[test]
    fn epoch_frames_round_trip_exactly(epoch in any::<u32>(), roll: bool) {
        // The epoch control frames, audited in the `UpBatch` style:
        // round-trip, `frame_len` = encoded size = decoded consumption,
        // every strict prefix a clean `Truncated`, and a garbage tail
        // never corrupting the decoded prefix.
        let frame =
            if roll { Frame::EpochRoll { epoch } } else { Frame::EpochAck { epoch } };
        let mut buf = BytesMut::new();
        let n = encode(&frame, &mut buf);
        prop_assert_eq!(n, frame_len(&frame));
        prop_assert_eq!(n, 5);
        let full = buf.freeze();
        let mut bytes = full.clone();
        prop_assert_eq!(decode(&mut bytes).unwrap(), frame.clone());
        prop_assert!(!bytes.has_remaining());
        for cut in 0..full.len() {
            let mut partial = full.slice(0..cut);
            prop_assert_eq!(decode(&mut partial), Err(WireError::Truncated));
        }
        // Garbage tail: the prefix must still decode to the same frame.
        let mut tailed = BytesMut::new();
        encode(&frame, &mut tailed);
        tailed.put_u8(0xff); // 0xff is no valid tag
        let mut bytes = tailed.freeze();
        prop_assert_eq!(decode(&mut bytes).unwrap(), frame);
        prop_assert_eq!(decode(&mut bytes), Err(WireError::BadTag(0xff)));
    }

    #[test]
    fn multi_event_packets_round_trip_with_exact_framing(
        events in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), arb_up_msg()), 0..40), 0..20,
        ),
    ) {
        // The multi-event packet container: the concatenation of one
        // `encode_event` section per event. Its length must be exactly the
        // sum of the per-event `event_batch_len`s (no container overhead —
        // chunking coalesces channel sends, never adds bytes), and both
        // decoders must recover every event's logical updates in order.
        let mut buf = BytesMut::new();
        let mut expect_len = 0usize;
        let mut expect_items: Vec<WireItem> = Vec::new();
        for batch in &events {
            expect_len += event_batch_len(batch);
            // The container is *exactly* the concatenation of its
            // sections: its items are each section's items, in section
            // order, where a section decoded alone yields the event's
            // updates (hoisting is the section encoder's business).
            let mut section = BytesMut::new();
            let mut work = batch.clone();
            encode_event(&mut work, &mut section);
            prop_assert!(work.is_empty());
            visit_packet(section.freeze(), |item| expect_items.push(item)).unwrap();
            let mut work = batch.clone();
            encode_event(&mut work, &mut buf);
        }
        prop_assert_eq!(buf.len(), expect_len, "container adds bytes over its sections");
        let packet = buf.freeze();

        // Streaming decode: one pass, every event's updates in order
        // (increments hoisted ahead of reports within an event, order
        // preserved within each class — `encode_event`'s section order).
        let mut visited = Vec::new();
        visit_packet(packet.clone(), |item| visited.push(item)).unwrap();
        prop_assert_eq!(&visited, &expect_items);

        // And the materializing decoder agrees with the streaming one.
        let frames = decode_packet(packet).unwrap();
        prop_assert_eq!(flatten(&frames), expect_items);
    }

    #[test]
    fn visit_packet_matches_decode_packet_on_any_frames(
        frames in proptest::collection::vec(arb_frame(), 0..30),
    ) {
        // On arbitrary (not just event-bundled) packets the streaming
        // visitor is exactly the flattened materializing decoder.
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        let packet = buf.freeze();
        let mut visited = Vec::new();
        visit_packet(packet.clone(), |item| visited.push(item)).unwrap();
        prop_assert_eq!(visited, flatten(&decode_packet(packet).unwrap()));
    }

    #[test]
    fn truncated_multi_event_packets_error_or_decode_a_prefix(
        events in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), arb_up_msg()), 1..20), 1..10,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        // Any cut of a multi-event packet either errors cleanly (both
        // decoders agreeing on the error) or yields a prefix of the
        // flattened updates — never a panic, never invented items.
        let mut buf = BytesMut::new();
        for batch in &events {
            let mut work = batch.clone();
            encode_event(&mut work, &mut buf);
        }
        let mut full_items: Vec<WireItem> = Vec::new();
        visit_packet(buf.clone().freeze(), |item| full_items.push(item)).unwrap();
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let partial = full.slice(0..cut);
        let mut visited = Vec::new();
        let res = visit_packet(partial.clone(), |item| visited.push(item));
        match decode_packet(partial) {
            Ok(frames) => {
                prop_assert!(res.is_ok());
                prop_assert_eq!(&visited, &flatten(&frames));
                // A clean decode of a cut is a prefix of the full packet's
                // logical updates (cuts at section boundaries).
                prop_assert!(visited.len() <= full_items.len());
                prop_assert_eq!(&visited[..], &full_items[..visited.len()]);
            }
            Err(e) => prop_assert_eq!(res, Err(e)),
        }
    }

    #[test]
    fn multi_event_packets_with_garbage_tails_never_panic(
        events in proptest::collection::vec(
            proptest::collection::vec((any::<u32>(), arb_up_msg()), 1..10), 1..6,
        ),
        tail in proptest::collection::vec(any::<u8>(), 1..30),
    ) {
        let mut buf = BytesMut::new();
        let mut n_updates = 0usize;
        for batch in &events {
            n_updates += batch.len();
            let mut work = batch.clone();
            encode_event(&mut work, &mut buf);
        }
        for b in &tail {
            buf.put_u8(*b);
        }
        let mut visited = Vec::new();
        let res = visit_packet(buf.freeze(), |item| visited.push(item));
        // The genuine updates always precede whatever the tail spells.
        if res.is_ok() {
            prop_assert!(visited.len() >= n_updates);
        }
    }

    #[test]
    fn truncated_valid_packets_error_cleanly(
        frames in proptest::collection::vec(arb_frame(), 1..10),
        cut_frac in 0.0f64..1.0,
    ) {
        let mut buf = BytesMut::new();
        for f in &frames {
            encode(f, &mut buf);
        }
        let full = buf.freeze();
        let cut = ((full.len() as f64) * cut_frac) as usize;
        let partial = full.slice(0..cut);
        // A clean error is fine; a successful decode must be a prefix.
        if let Ok(decoded) = decode_packet(partial) {
            prop_assert!(decoded.len() <= frames.len());
        }
    }
}
