//! Shared experiment engine: train every algorithm over the same stream
//! with checkpoints, and measure the paper's three quantities — error to
//! ground truth, error to the exact MLE, and communication.

use dsbn_bayes::BayesianNetwork;
use dsbn_core::evaluate::ErrorSummary;
use dsbn_core::{
    build_tracker, run_cluster_tracker, AnyTracker, ClusterTrackerRun, Scheme, Smoothing,
    TrackerConfig,
};
use dsbn_datagen::{generate_queries, QueryConfig, TrainingStream};
use serde::Serialize;

/// Sweep parameters (paper defaults: `eps = 0.1`, `k = 30`, 1000 queries,
/// checkpoints 5K/50K/500K/5M, median of 5 runs).
#[derive(Debug, Clone)]
pub struct SweepConfig {
    pub eps: f64,
    pub k: usize,
    pub seed: u64,
    /// Cumulative stream positions at which models are evaluated.
    pub checkpoints: Vec<u64>,
    pub n_queries: usize,
    pub schemes: Vec<Scheme>,
    /// Independent runs; reported values are medians across runs (§VI-A).
    pub runs: usize,
}

impl SweepConfig {
    /// Library defaults (reduced checkpoints; pass `--scale paper` in the
    /// binaries for the full 5K..5M sweep).
    pub fn new(checkpoints: Vec<u64>) -> Self {
        SweepConfig {
            eps: 0.1,
            k: 30,
            seed: 1,
            checkpoints,
            n_queries: 1000,
            schemes: Scheme::ALL.to_vec(),
            runs: 1,
        }
    }
}

/// One (network, scheme, checkpoint) measurement.
#[derive(Debug, Clone, Serialize)]
pub struct CheckpointRecord {
    pub network: String,
    pub scheme: String,
    pub m: u64,
    pub messages: u64,
    /// Relative error vs. the ground-truth distribution.
    pub err_truth: ErrorSummary,
    /// Relative error vs. the exact-MLE model on the same stream
    /// (`None` for EXACTMLE itself).
    pub err_mle: Option<ErrorSummary>,
}

/// Run one network's sweep: all schemes trained on the *same* stream so the
/// error-to-MLE metric isolates approximation error (§VI-B).
pub fn sweep_network(net: &BayesianNetwork, cfg: &SweepConfig) -> Vec<CheckpointRecord> {
    let mut per_run: Vec<Vec<CheckpointRecord>> =
        (0..cfg.runs).map(|r| sweep_once(net, cfg, cfg.seed + 1000 * r as u64)).collect();
    if cfg.runs == 1 {
        return per_run.pop().unwrap();
    }
    median_records(per_run)
}

fn sweep_once(net: &BayesianNetwork, cfg: &SweepConfig, seed: u64) -> Vec<CheckpointRecord> {
    let queries = generate_queries(
        net,
        &QueryConfig { n_queries: cfg.n_queries, ..QueryConfig::default() },
        seed ^ QUERY_SEED_SALT,
    );
    assert!(!queries.is_empty(), "query generation produced nothing");
    // The exact tracker is always needed as the MLE reference.
    let mut schemes = cfg.schemes.clone();
    if !schemes.contains(&Scheme::ExactMle) {
        schemes.insert(0, Scheme::ExactMle);
    }
    let mut trackers: Vec<(Scheme, AnyTracker)> = schemes
        .iter()
        .map(|&s| {
            let tc = TrackerConfig::new(s).with_eps(cfg.eps).with_k(cfg.k).with_seed(seed);
            (s, build_tracker(net, &tc))
        })
        .collect();

    let mut stream = TrainingStream::new(net, seed);
    let mut records = Vec::new();
    let mut position = 0u64;
    let mut event = Vec::new();
    for &checkpoint in &cfg.checkpoints {
        while position < checkpoint {
            stream.next_into(&mut event);
            for (_, t) in trackers.iter_mut() {
                t.observe(&event);
            }
            position += 1;
        }
        // Evaluate every tracker at this checkpoint.
        let exact_logs: Vec<f64> = {
            let exact = &trackers.iter().find(|(s, _)| *s == Scheme::ExactMle).unwrap().1;
            queries.iter().map(|q| exact.log_query(q)).collect()
        };
        for (scheme, t) in &trackers {
            if !cfg.schemes.contains(scheme) {
                continue; // exact added only as a reference
            }
            let mut errs_truth = Vec::with_capacity(queries.len());
            let mut errs_mle = Vec::with_capacity(queries.len());
            for (q, &le) in queries.iter().zip(&exact_logs) {
                let lm = t.log_query(q);
                errs_truth.push(((lm - net.joint_log_prob(q)).exp() - 1.0).abs());
                errs_mle.push(((lm - le).exp() - 1.0).abs());
            }
            records.push(CheckpointRecord {
                network: net.name().to_owned(),
                scheme: scheme.name().to_owned(),
                m: checkpoint,
                messages: t.stats().total(),
                err_truth: ErrorSummary::from_errors(errs_truth),
                err_mle: if *scheme == Scheme::ExactMle {
                    None
                } else {
                    Some(ErrorSummary::from_errors(errs_mle))
                },
            });
        }
    }
    records
}

/// Salt so query sampling is decoupled from stream sampling.
const QUERY_SEED_SALT: u64 = 0x51_75_65_72_79; // "Query"

/// Per-field median across runs (records must align across runs, which
/// `sweep_once` guarantees).
fn median_records(runs: Vec<Vec<CheckpointRecord>>) -> Vec<CheckpointRecord> {
    let n = runs[0].len();
    for r in &runs {
        assert_eq!(r.len(), n, "runs misaligned");
    }
    let med = |mut v: Vec<f64>| -> f64 {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        v[v.len() / 2]
    };
    (0..n)
        .map(|i| {
            let base = &runs[0][i];
            let collect = |f: &dyn Fn(&CheckpointRecord) -> f64| -> f64 {
                med(runs.iter().map(|r| f(&r[i])).collect())
            };
            let summary = |g: &dyn Fn(&CheckpointRecord) -> ErrorSummary| -> ErrorSummary {
                ErrorSummary {
                    mean: med(runs.iter().map(|r| g(&r[i]).mean).collect()),
                    p10: med(runs.iter().map(|r| g(&r[i]).p10).collect()),
                    p25: med(runs.iter().map(|r| g(&r[i]).p25).collect()),
                    median: med(runs.iter().map(|r| g(&r[i]).median).collect()),
                    p75: med(runs.iter().map(|r| g(&r[i]).p75).collect()),
                    p90: med(runs.iter().map(|r| g(&r[i]).p90).collect()),
                    max: med(runs.iter().map(|r| g(&r[i]).max).collect()),
                    n: g(base).n,
                }
            };
            CheckpointRecord {
                network: base.network.clone(),
                scheme: base.scheme.clone(),
                m: base.m,
                messages: collect(&|r| r.messages as f64) as u64,
                err_truth: summary(&|r| r.err_truth),
                err_mle: base.err_mle.map(|_| summary(&|r| r.err_mle.expect("aligned records"))),
            }
        })
        .collect()
}

/// Sweep several networks in parallel (one OS thread each).
pub fn sweep_networks(nets: &[BayesianNetwork], cfg: &SweepConfig) -> Vec<CheckpointRecord> {
    let mut results: Vec<Vec<CheckpointRecord>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> =
            nets.iter().map(|net| scope.spawn(move || sweep_network(net, cfg))).collect();
        for h in handles {
            results.push(h.join().expect("sweep thread panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// Run one scheme's *full tracker* through the threaded cluster runtime
/// (Figs. 7–8): UPDATE on site threads, QUERY-able model at the
/// coordinator. The same `TrackerConfig` semantics as `build_tracker`.
pub fn cluster_run(
    net: &BayesianNetwork,
    scheme: Scheme,
    eps: f64,
    k: usize,
    m: u64,
    seed: u64,
) -> ClusterTrackerRun {
    let tc = TrackerConfig::new(scheme)
        .with_eps(eps)
        .with_k(k)
        .with_seed(seed)
        .with_smoothing(default_smoothing());
    run_cluster_tracker(net, &tc, TrainingStream::new(net, seed).take(m as usize))
        .expect("cluster run failed")
}

/// Parse the scale argument shared by the binaries into the checkpoint
/// list: `small` (default) = 2K/20K/200K, `medium` = 5K/50K/500K,
/// `paper` = 5K/50K/500K/5M.
pub fn checkpoints_for_scale(scale: &str) -> Vec<u64> {
    match scale {
        "small" => vec![2_000, 20_000, 200_000],
        "medium" => vec![5_000, 50_000, 500_000],
        "paper" | "full" => vec![5_000, 50_000, 500_000, 5_000_000],
        other => {
            eprintln!("error: unknown --scale {other:?} (small|medium|paper)");
            std::process::exit(2);
        }
    }
}

/// Shared smoothing used across experiment binaries (identical for exact
/// and approximate models).
pub fn default_smoothing() -> Smoothing {
    Smoothing::Pseudocount(0.5)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;

    #[test]
    fn sweep_produces_aligned_records() {
        let net = sprinkler_network();
        let mut cfg = SweepConfig::new(vec![500, 2000]);
        cfg.k = 4;
        cfg.n_queries = 100;
        let records = sweep_network(&net, &cfg);
        // 4 schemes x 2 checkpoints.
        assert_eq!(records.len(), 8);
        // Messages are monotone in m per scheme.
        for scheme in Scheme::ALL {
            let ms: Vec<u64> =
                records.iter().filter(|r| r.scheme == scheme.name()).map(|r| r.messages).collect();
            assert_eq!(ms.len(), 2);
            assert!(ms[0] <= ms[1], "{}: {:?}", scheme.name(), ms);
        }
        // Exact tracker: error-to-MLE must be absent, error to truth finite.
        let exact: Vec<_> = records.iter().filter(|r| r.scheme == "exact").collect();
        assert!(exact.iter().all(|r| r.err_mle.is_none()));
        assert!(exact.iter().all(|r| r.err_truth.mean.is_finite()));
        // Approximate schemes carry an error-to-MLE summary.
        let approx: Vec<_> = records.iter().filter(|r| r.scheme != "exact").collect();
        assert!(approx.iter().all(|r| r.err_mle.is_some()));
    }

    #[test]
    fn error_to_truth_decreases_with_m() {
        let net = sprinkler_network();
        let mut cfg = SweepConfig::new(vec![200, 20_000]);
        cfg.k = 4;
        cfg.n_queries = 200;
        cfg.schemes = vec![Scheme::ExactMle];
        let records = sweep_network(&net, &cfg);
        assert!(records[0].err_truth.mean > records[1].err_truth.mean);
    }

    #[test]
    fn median_of_runs_is_stable() {
        let net = sprinkler_network();
        let mut cfg = SweepConfig::new(vec![1000]);
        cfg.k = 4;
        cfg.n_queries = 50;
        cfg.runs = 3;
        cfg.schemes = vec![Scheme::Uniform];
        let records = sweep_network(&net, &cfg);
        assert_eq!(records.len(), 1);
        assert!(records[0].err_truth.mean.is_finite());
        assert!(records[0].messages > 0);
    }

    #[test]
    fn cluster_run_smoke() {
        let net = sprinkler_network();
        let run = cluster_run(&net, Scheme::NonUniform, 0.2, 3, 2000, 5);
        assert_eq!(run.report.events, 2000);
        assert!(run.report.stats.total() > 0);
        assert!(run.report.stats.bytes > 0);
        let n_counters = dsbn_core::CounterLayout::new(&net).n_counters();
        assert_eq!(run.report.exact_totals.len(), n_counters);
        // The coordinator model answers queries.
        let q = run.model.query(&[1, 0, 1, 1]);
        assert!(q.is_finite() && q > 0.0, "query {q}");
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(checkpoints_for_scale("small").len(), 3);
        assert_eq!(checkpoints_for_scale("paper").last(), Some(&5_000_000));
    }
}
