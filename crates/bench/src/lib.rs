//! # dsbn-bench — experiment harness
//!
//! Shared machinery for the `exp_*` binaries that regenerate every table
//! and figure of the paper (see DESIGN.md §4 for the per-experiment index
//! and EXPERIMENTS.md for paper-vs-measured results):
//!
//! - [`args`] — `--key value` CLI parsing.
//! - [`output`] — CSV + markdown result tables under `results/`.
//! - [`runner`] — checkpointed sweeps over the paper's three metrics
//!   (error to truth, error to MLE, communication), cluster runs, and the
//!   `--scale small|medium|paper` stream-size presets.
//!
//! Criterion microbenchmarks live in `benches/`.

pub mod args;
pub mod output;
pub mod runner;

pub use args::Args;
pub use output::{json, LatencyRecorder, Table};
pub use runner::{
    checkpoints_for_scale, cluster_run, sweep_network, sweep_networks, CheckpointRecord,
    SweepConfig,
};

use dsbn_bayes::{BayesianNetwork, NetworkSpec};

/// Resolve `--nets alarm,hepar2,...` names into generated networks
/// (`new-alarm` resolves to the §VI-B NEW-ALARM construction, `sprinkler`
/// to the fixed 4-node fixture).
pub fn resolve_networks(names: &[String], seed: u64) -> Vec<BayesianNetwork> {
    names
        .iter()
        .map(|name| match name.to_ascii_lowercase().as_str() {
            "sprinkler" => dsbn_bayes::sprinkler_network(),
            "new-alarm" | "newalarm" => {
                dsbn_bayes::new_alarm(seed).expect("new-alarm generation failed")
            }
            other => match NetworkSpec::by_name(other) {
                Some(spec) => spec.generate(seed).expect("network generation failed"),
                None => {
                    eprintln!(
                        "error: unknown network {name:?} \
                         (sprinkler|alarm|hepar2|link|munin|new-alarm|munin-stress|big<N>)"
                    );
                    std::process::exit(2);
                }
            },
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_presets() {
        let nets = resolve_networks(&["alarm".into(), "new-alarm".into(), "sprinkler".into()], 1);
        assert_eq!(nets.len(), 3);
        assert_eq!(nets[0].n_vars(), 37);
        assert_eq!(nets[1].n_vars(), 37);
        assert_eq!(nets[2].n_vars(), 4);
    }
}
