//! Minimal `--key value` command-line parsing for the experiment binaries
//! (no CLI crate in the approved offline dependency set).

use std::collections::HashMap;
use std::str::FromStr;

/// Parsed `--key value` arguments. Bare `--flag` (no value) stores `"true"`.
#[derive(Debug, Clone, Default)]
pub struct Args {
    map: HashMap<String, String>,
}

impl FromIterator<String> for Args {
    /// Parse from an explicit argument iterator (testable).
    fn from_iter<I: IntoIterator<Item = String>>(iter: I) -> Args {
        let mut map = HashMap::new();
        let mut iter = iter.into_iter().peekable();
        while let Some(arg) = iter.next() {
            if let Some(key) = arg.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(v) if !v.starts_with("--") => iter.next().unwrap(),
                    _ => "true".to_owned(),
                };
                map.insert(key.to_owned(), value);
            } else {
                eprintln!("warning: ignoring positional argument {arg:?}");
            }
        }
        Args { map }
    }
}

impl Args {
    /// Parse from the process arguments.
    pub fn parse() -> Args {
        std::env::args().skip(1).collect()
    }

    /// Typed lookup with default. Exits with a message on a malformed value
    /// (an experiment binary should fail loudly, not guess).
    pub fn get<T: FromStr>(&self, key: &str, default: T) -> T {
        match self.map.get(key) {
            None => default,
            Some(raw) => raw.parse().unwrap_or_else(|_| {
                eprintln!("error: --{key} {raw:?} is not a valid value");
                std::process::exit(2);
            }),
        }
    }

    /// String lookup with default.
    pub fn get_str(&self, key: &str, default: &str) -> String {
        self.map.get(key).cloned().unwrap_or_else(|| default.to_owned())
    }

    /// Whether a flag was passed at all.
    pub fn has(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Comma-separated list lookup.
    pub fn get_list(&self, key: &str, default: &[&str]) -> Vec<String> {
        match self.map.get(key) {
            None => default.iter().map(|s| s.to_string()).collect(),
            Some(raw) => raw.split(',').map(|s| s.trim().to_owned()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Args {
        Args::from_iter(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn typed_and_defaults() {
        let a = args(&["--m", "5000", "--eps", "0.2", "--full"]);
        assert_eq!(a.get("m", 0u64), 5000);
        assert_eq!(a.get("eps", 0.1f64), 0.2);
        assert_eq!(a.get("k", 30usize), 30);
        assert!(a.has("full"));
        assert!(!a.has("absent"));
    }

    #[test]
    fn lists() {
        let a = args(&["--nets", "alarm, link"]);
        assert_eq!(a.get_list("nets", &["x"]), vec!["alarm", "link"]);
        assert_eq!(a.get_list("other", &["x", "y"]), vec!["x", "y"]);
    }

    #[test]
    fn flag_followed_by_flag() {
        let a = args(&["--verbose", "--k", "5"]);
        assert_eq!(a.get_str("verbose", ""), "true");
        assert_eq!(a.get("k", 0usize), 5);
    }
}
