//! Experiment output: CSV files under `results/` plus aligned markdown
//! tables on stdout, mirroring the rows/series the paper's tables and
//! figures report.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as an aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = *w)).collect();
            format!("| {} |", parts.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Write CSV to `results/<name>.csv` (creating the directory) and print
    /// the markdown rendering. Returns the CSV path.
    pub fn emit(&self, name: &str) -> PathBuf {
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        println!("{}", self.to_markdown());
        println!("(csv: {})\n", path.display());
        path
    }
}

/// `results/` next to the workspace root when available, else CWD.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; hop to the workspace root.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Path::new(&dir).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Minimal JSON construction for machine-readable bench output (no JSON
/// crate in the approved offline dependency set). Values are rendered
/// strictly: non-finite floats become `null`, strings are escaped.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value ready to be rendered.
    #[derive(Debug, Clone)]
    pub enum Json {
        Null,
        Bool(bool),
        /// Integers render without a decimal point.
        Int(i64),
        /// `u64` counters (message/byte tallies exceed `i64` range in
        /// principle).
        UInt(u64),
        /// Non-finite values render as `null` — a JSON document with a bare
        /// `NaN` token is not JSON.
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        /// Insertion-ordered object (deterministic output for diffs).
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience object builder.
        pub fn obj() -> Json {
            Json::Obj(Vec::new())
        }

        /// Append a field (panics on non-object — builder misuse).
        pub fn field(mut self, key: &str, value: Json) -> Json {
            match &mut self {
                Json::Obj(fields) => fields.push((key.to_owned(), value)),
                other => panic!("field() on non-object {other:?}"),
            }
            self
        }

        /// Render to a compact JSON string.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::UInt(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::Num(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(out, "\\u{:04x}", c as u32);
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Json::Str(k.clone()).write(out);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Write a JSON document to `results/<name>.json`, returning the path.
    pub fn emit(value: &Json, name: &str) -> std::path::PathBuf {
        let dir = super::results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, value.render() + "\n") {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// Human formatting helpers shared by experiment binaries.
pub mod fmt {
    /// `1.23e6`-style compact count formatting (Table III style).
    pub fn sci(v: f64) -> String {
        if v == 0.0 {
            return "0".into();
        }
        if v.abs() >= 1e5 {
            format!("{v:.2e}")
        } else if v.abs() >= 10.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Fixed-precision error formatting.
    pub fn err(v: f64) -> String {
        if v == 0.0 {
            "0".into()
        } else if v.abs() < 1e-4 {
            format!("{v:.2e}")
        } else {
            format!("{v:.4}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_markdown_shapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "x".into()]);
        t.row(&["22".into(), "yy".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,b\n"));
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a  | b  |"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_rendering() {
        use super::json::Json;
        let doc = Json::obj()
            .field("name", Json::Str("thro\"ughput\n".into()))
            .field("events", Json::UInt(u64::MAX))
            .field("rate", Json::Num(1.5))
            .field("nan_is_null", Json::Num(f64::NAN))
            .field("inf_is_null", Json::Num(f64::INFINITY))
            .field("list", Json::Arr(vec![Json::Int(-1), Json::Bool(true), Json::Null]));
        assert_eq!(
            doc.render(),
            "{\"name\":\"thro\\\"ughput\\n\",\"events\":18446744073709551615,\
             \"rate\":1.5,\"nan_is_null\":null,\"inf_is_null\":null,\
             \"list\":[-1,true,null]}"
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt::sci(3_700_000.0), "3.70e6");
        assert_eq!(fmt::sci(0.0), "0");
        assert_eq!(fmt::sci(42.0), "42");
        assert_eq!(fmt::err(0.012345), "0.0123");
        assert_eq!(fmt::err(0.0000123), "1.23e-5");
    }
}
