//! Experiment output: CSV files under `results/` plus aligned markdown
//! tables on stdout, mirroring the rows/series the paper's tables and
//! figures report.

use std::fmt::Write as _;
use std::fs;
use std::path::{Path, PathBuf};

/// A rectangular result table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with column names.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Table {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header arity).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Render as an aligned markdown table.
    pub fn to_markdown(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "### {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let parts: Vec<String> =
                cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}", w = *w)).collect();
            format!("| {} |", parts.join(" | "))
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "{}", fmt_row(&sep, &widths));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Write CSV to `results/<name>.csv` (creating the directory) and print
    /// the markdown rendering. Returns the CSV path.
    pub fn emit(&self, name: &str) -> PathBuf {
        let dir = results_dir();
        let _ = fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = fs::write(&path, self.to_csv()) {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        println!("{}", self.to_markdown());
        println!("(csv: {})\n", path.display());
        path
    }
}

/// `results/` next to the workspace root when available, else CWD.
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR points at crates/bench; hop to the workspace root.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(dir) => Path::new(&dir).join("../..").join("results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Retained-sample cap for [`LatencyRecorder`]: small enough that a
/// recorder per reader thread is cache-friendly, large enough that the
/// nearest-rank p99 sits on ~82 samples even after heavy decimation.
const RECORDER_CAP: usize = 8192;

/// Fixed-footprint latency recorder shared by the `throughput` and
/// `mixed_workload` binaries: exact count/min/max/mean over every
/// observation plus a bounded, evenly-strided sample buffer for rank
/// statistics (p50/p99), so per-query timing under load costs O(1)
/// amortized and never grows with the run.
///
/// Sampling is deterministic stride decimation, not randomized reservoir
/// sampling: when the buffer fills, every other retained sample is
/// dropped and the keep-stride doubles. The retained samples stay an
/// evenly spaced subsample of the observation sequence — honest rank
/// estimates for the stationary-ish latency streams a bench produces,
/// with zero RNG and no allocation in the measured path after the first
/// `RECORDER_CAP` records.
#[derive(Debug, Clone)]
pub struct LatencyRecorder {
    samples: Vec<f64>,
    /// Keep every `stride`-th observation.
    stride: u64,
    /// Observations to skip before the next keep.
    skip: u64,
    count: u64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Default for LatencyRecorder {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> LatencyRecorder {
        LatencyRecorder {
            samples: Vec::new(),
            stride: 1,
            skip: 0,
            count: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation (any unit; callers pick one and stick to it).
    pub fn record(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        if self.skip > 0 {
            self.skip -= 1;
            return;
        }
        if self.samples.len() == RECORDER_CAP {
            self.decimate();
        }
        self.samples.push(value);
        self.skip = self.stride - 1;
    }

    /// Drop every other retained sample and double the keep-stride.
    fn decimate(&mut self) {
        let mut keep = 0;
        for i in (0..self.samples.len()).step_by(2) {
            self.samples[keep] = self.samples[i];
            keep += 1;
        }
        self.samples.truncate(keep);
        self.stride *= 2;
    }

    /// Total observations recorded (not the retained-sample count).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Smallest observation (`NaN` when empty). Exact, not sampled.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Largest observation (`NaN` when empty). Exact, not sampled.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Mean over every observation (`NaN` when empty). Exact, not sampled.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.sum / self.count as f64
        }
    }

    /// Nearest-rank percentile over the retained samples (`q` in `[0,1]`;
    /// `NaN` when empty). At `q = 0.5` this is the lower-middle median:
    /// `idx = ceil(q·n) − 1`, so odd sample counts match the textbook
    /// median exactly.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "percentile wants q in [0,1], got {q}");
        if self.samples.is_empty() {
            return f64::NAN;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite latency sample"));
        let n = sorted.len();
        let idx = ((q * n as f64).ceil() as usize).saturating_sub(1).min(n - 1);
        sorted[idx]
    }

    /// Fold another recorder in (per-thread recorders merged after a run).
    /// Count/min/max/mean stay exact; percentiles become approximate when
    /// the two strides differ (each retained sample should weigh by its
    /// own stride, but under a shared workload the strides match and the
    /// merge is a plain union).
    pub fn merge(&mut self, other: &LatencyRecorder) {
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.samples.extend_from_slice(&other.samples);
        self.stride = self.stride.max(other.stride);
        while self.samples.len() > RECORDER_CAP {
            self.decimate();
        }
    }

    /// The standard summary object (`count`, `p50`, `p99`, `min`, `max`,
    /// `mean`) in whatever unit was recorded; empty recorders render the
    /// statistics as `null`.
    pub fn to_json(&self) -> json::Json {
        json::Json::obj()
            .field("count", json::Json::UInt(self.count))
            .field("p50", json::Json::Num(self.percentile(0.5)))
            .field("p99", json::Json::Num(self.percentile(0.99)))
            .field("min", json::Json::Num(self.min()))
            .field("max", json::Json::Num(self.max()))
            .field("mean", json::Json::Num(self.mean()))
    }
}

/// Minimal JSON construction for machine-readable bench output (no JSON
/// crate in the approved offline dependency set). Values are rendered
/// strictly: non-finite floats become `null`, strings are escaped.
pub mod json {
    use std::fmt::Write as _;

    /// A JSON value ready to be rendered.
    #[derive(Debug, Clone)]
    pub enum Json {
        Null,
        Bool(bool),
        /// Integers render without a decimal point.
        Int(i64),
        /// `u64` counters (message/byte tallies exceed `i64` range in
        /// principle).
        UInt(u64),
        /// Non-finite values render as `null` — a JSON document with a bare
        /// `NaN` token is not JSON.
        Num(f64),
        Str(String),
        Arr(Vec<Json>),
        /// Insertion-ordered object (deterministic output for diffs).
        Obj(Vec<(String, Json)>),
    }

    impl Json {
        /// Convenience object builder.
        pub fn obj() -> Json {
            Json::Obj(Vec::new())
        }

        /// Append a field (panics on non-object — builder misuse).
        pub fn field(mut self, key: &str, value: Json) -> Json {
            match &mut self {
                Json::Obj(fields) => fields.push((key.to_owned(), value)),
                other => panic!("field() on non-object {other:?}"),
            }
            self
        }

        /// Render to a compact JSON string.
        pub fn render(&self) -> String {
            let mut out = String::new();
            self.write(&mut out);
            out
        }

        fn write(&self, out: &mut String) {
            match self {
                Json::Null => out.push_str("null"),
                Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
                Json::Int(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::UInt(v) => {
                    let _ = write!(out, "{v}");
                }
                Json::Num(v) => {
                    if v.is_finite() {
                        let _ = write!(out, "{v}");
                    } else {
                        out.push_str("null");
                    }
                }
                Json::Str(s) => {
                    out.push('"');
                    for c in s.chars() {
                        match c {
                            '"' => out.push_str("\\\""),
                            '\\' => out.push_str("\\\\"),
                            '\n' => out.push_str("\\n"),
                            '\r' => out.push_str("\\r"),
                            '\t' => out.push_str("\\t"),
                            c if (c as u32) < 0x20 => {
                                let _ = write!(out, "\\u{:04x}", c as u32);
                            }
                            c => out.push(c),
                        }
                    }
                    out.push('"');
                }
                Json::Arr(items) => {
                    out.push('[');
                    for (i, item) in items.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        item.write(out);
                    }
                    out.push(']');
                }
                Json::Obj(fields) => {
                    out.push('{');
                    for (i, (k, v)) in fields.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        Json::Str(k.clone()).write(out);
                        out.push(':');
                        v.write(out);
                    }
                    out.push('}');
                }
            }
        }
    }

    /// Write a JSON document to `results/<name>.json`, returning the path.
    pub fn emit(value: &Json, name: &str) -> std::path::PathBuf {
        let dir = super::results_dir();
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, value.render() + "\n") {
            eprintln!("warning: could not write {}: {e}", path.display());
        }
        path
    }
}

/// Human formatting helpers shared by experiment binaries.
pub mod fmt {
    /// `1.23e6`-style compact count formatting (Table III style).
    pub fn sci(v: f64) -> String {
        if v == 0.0 {
            return "0".into();
        }
        if v.abs() >= 1e5 {
            format!("{v:.2e}")
        } else if v.abs() >= 10.0 {
            format!("{v:.0}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Fixed-precision error formatting.
    pub fn err(v: f64) -> String {
        if v == 0.0 {
            "0".into()
        } else if v.abs() < 1e-4 {
            format!("{v:.2e}")
        } else {
            format!("{v:.4}")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_and_markdown_shapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["1".into(), "x".into()]);
        t.row(&["22".into(), "yy".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("a,b\n"));
        let md = t.to_markdown();
        assert!(md.contains("### demo"));
        assert!(md.contains("| a  | b  |"));
        assert_eq!(t.n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_rendering() {
        use super::json::Json;
        let doc = Json::obj()
            .field("name", Json::Str("thro\"ughput\n".into()))
            .field("events", Json::UInt(u64::MAX))
            .field("rate", Json::Num(1.5))
            .field("nan_is_null", Json::Num(f64::NAN))
            .field("inf_is_null", Json::Num(f64::INFINITY))
            .field("list", Json::Arr(vec![Json::Int(-1), Json::Bool(true), Json::Null]));
        assert_eq!(
            doc.render(),
            "{\"name\":\"thro\\\"ughput\\n\",\"events\":18446744073709551615,\
             \"rate\":1.5,\"nan_is_null\":null,\"inf_is_null\":null,\
             \"list\":[-1,true,null]}"
        );
    }

    #[test]
    fn recorder_empty_is_nan() {
        let r = LatencyRecorder::new();
        assert!(r.is_empty());
        assert_eq!(r.count(), 0);
        assert!(r.percentile(0.5).is_nan());
        assert!(r.min().is_nan() && r.max().is_nan() && r.mean().is_nan());
        // Empty statistics render as null, never as a bare NaN token.
        assert!(r.to_json().render().contains("\"p50\":null"));
    }

    #[test]
    fn recorder_small_counts_match_the_textbook_median() {
        let mut r = LatencyRecorder::new();
        for v in [3.0, 1.0, 2.0] {
            r.record(v);
        }
        // ceil(0.5 * 3) - 1 = 1: the middle of the sorted samples, exactly
        // what `throughput`'s old `values[len / 2]` median picked at n = 3.
        assert_eq!(r.percentile(0.5), 2.0);
        assert_eq!(r.percentile(0.0), 1.0);
        assert_eq!(r.percentile(1.0), 3.0);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 3.0);
        assert_eq!(r.mean(), 2.0);
        assert_eq!(r.count(), 3);
    }

    #[test]
    fn recorder_decimates_to_a_bounded_buffer() {
        let mut r = LatencyRecorder::new();
        let n = 100_000u64;
        for i in 0..n {
            r.record(i as f64);
        }
        assert_eq!(r.count(), n);
        assert!(r.samples.len() <= RECORDER_CAP, "buffer grew: {}", r.samples.len());
        assert!(r.samples.len() > RECORDER_CAP / 4, "over-decimated: {}", r.samples.len());
        // Exact statistics are unaffected by decimation.
        assert_eq!(r.min(), 0.0);
        assert_eq!(r.max(), (n - 1) as f64);
        // The strided subsample keeps rank estimates within one stride or
        // so of truth on a monotone stream.
        let p50 = r.percentile(0.5);
        assert!((p50 - n as f64 / 2.0).abs() < 100.0, "p50 drifted: {p50}");
        let p99 = r.percentile(0.99);
        assert!((p99 - 0.99 * n as f64).abs() < 100.0, "p99 drifted: {p99}");
        assert!(r.percentile(0.5) <= r.percentile(0.99));
    }

    #[test]
    fn recorder_merge_combines_exact_stats() {
        let mut a = LatencyRecorder::new();
        let mut b = LatencyRecorder::new();
        for v in [1.0, 2.0] {
            a.record(v);
        }
        for v in [10.0, 20.0] {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 20.0);
        assert_eq!(a.mean(), 8.25);
        // ceil(0.5 * 4) - 1 = 1 over sorted [1, 2, 10, 20].
        assert_eq!(a.percentile(0.5), 2.0);
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt::sci(3_700_000.0), "3.70e6");
        assert_eq!(fmt::sci(0.0), "0");
        assert_eq!(fmt::sci(42.0), "42");
        assert_eq!(fmt::err(0.012345), "0.0123");
        assert_eq!(fmt::err(0.0000123), "1.23e-5");
    }
}
