//! Figure 9: sensitivity of communication cost to network size. The paper
//! scales the LINK network by iteratively removing sink nodes, producing
//! sub-networks with 24, 124, ..., 724 variables, then reports messages
//! for 500K training instances (Fig. 9a vs variables, Fig. 9b vs edges).
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig9
//!   cargo run --release -p dsbn-bench --bin exp_fig9 -- --m 500000
//!
//! Options: --m 50000 --eps --k --seed --sizes 24,124,...

use dsbn_bayes::NetworkSpec;
use dsbn_bench::output::fmt;
use dsbn_bench::{sweep_network, Args, SweepConfig, Table};

fn main() {
    let args = Args::parse();
    let m: u64 = args.get("m", 50_000);
    let seed: u64 = args.get("seed", 1);
    let sizes: Vec<usize> = args
        .get_list("sizes", &["24", "124", "224", "324", "424", "524", "624", "724"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let link = NetworkSpec::link().generate(seed).unwrap();
    let mut cfg = SweepConfig::new(vec![m]);
    cfg.eps = args.get("eps", 0.1);
    cfg.k = args.get("k", 30);
    cfg.seed = seed;
    cfg.n_queries = 50;

    let mut table = Table::new(
        "Fig. 9: communication cost vs network size (LINK sink-stripped, 500K instances in the paper)",
        &["variables", "edges", "scheme", "messages"],
    );
    // Build all sub-networks first, then sweep them in parallel.
    let subs: Vec<_> =
        sizes.iter().map(|&n| link.strip_sinks_to(n).expect("strip failed")).collect();
    let mut rows: Vec<(usize, usize, String, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = subs
            .iter()
            .map(|sub| {
                let cfg = &cfg;
                scope.spawn(move || {
                    let records = sweep_network(sub, cfg);
                    records
                        .into_iter()
                        .map(|r| (sub.n_vars(), sub.dag().n_edges(), r.scheme, r.messages))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("sweep thread panicked"));
        }
    });
    rows.sort_by(|a, b| (a.0, &a.2).cmp(&(b.0, &b.2)));
    for (n, e, scheme, messages) in rows {
        table.row(&[n.to_string(), e.to_string(), scheme, fmt::sci(messages as f64)]);
    }
    table.emit("fig9");
}
