//! Figures 4 and 5: testing error relative to the exact MLE.
//!
//! Fig. 4 reports the error distribution for UNIFORM and NONUNIFORM per
//! network; Fig. 5 the mean error (BASELINE included). Both come from one
//! sweep here: every approximate model is compared against the EXACTMLE
//! model trained on the *same* stream, isolating approximation error from
//! statistical error (§VI-B).
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig4_5
//!   cargo run --release -p dsbn-bench --bin exp_fig4_5 -- --nets link --scale paper
//!
//! Options: --nets a,b,... --scale small|medium|paper --eps --k --seed
//!          --runs --queries

use dsbn_bench::output::fmt;
use dsbn_bench::{
    checkpoints_for_scale, resolve_networks, sweep_networks, Args, SweepConfig, Table,
};
use dsbn_core::Scheme;

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["alarm", "hepar2", "link", "munin"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let mut cfg = SweepConfig::new(checkpoints_for_scale(&args.get_str("scale", "small")));
    cfg.eps = args.get("eps", 0.1);
    cfg.k = args.get("k", 30);
    cfg.seed = args.get("seed", 1);
    cfg.runs = args.get("runs", 1);
    cfg.n_queries = args.get("queries", 1000);
    cfg.schemes = vec![Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform];

    let records = sweep_networks(&nets, &cfg);

    let mut fig4 = Table::new(
        "Fig. 4: error to EXACTMLE vs training instances (boxplot data, UNIFORM & NONUNIFORM)",
        &["network", "scheme", "m", "p10", "p25", "median", "p75", "p90"],
    );
    let mut fig5 = Table::new(
        "Fig. 5: mean error to EXACTMLE vs training instances",
        &["network", "scheme", "m", "mean error to MLE"],
    );
    for r in &records {
        let Some(e) = r.err_mle else { continue };
        if r.scheme != "baseline" {
            fig4.row(&[
                r.network.clone(),
                r.scheme.clone(),
                r.m.to_string(),
                fmt::err(e.p10),
                fmt::err(e.p25),
                fmt::err(e.median),
                fmt::err(e.p75),
                fmt::err(e.p90),
            ]);
        }
        fig5.row(&[r.network.clone(), r.scheme.clone(), r.m.to_string(), fmt::err(e.mean)]);
    }
    fig4.emit("fig4");
    fig5.emit("fig5");
}
