//! Tables II and III: Bayesian classification error rate and the
//! communication cost to learn the classifier, at 50K training instances
//! and 1000 test cases (§V-VI).
//!
//! For each test case a random variable is hidden and predicted from the
//! rest via its Markov blanket under the tracked parameters.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_table2_3
//!   cargo run --release -p dsbn-bench --bin exp_table2_3 -- --nets alarm --m 50000
//!
//! Options: --nets a,b,... --m 50000 --cases 1000 --eps --k --seed

use dsbn_bayes::BayesianNetwork;
use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, Args, Table};
use dsbn_core::{build_tracker, classification_error_rate, Scheme, TrackerConfig};
use dsbn_datagen::{generate_classification_cases, TrainingStream};

struct Row {
    network: String,
    scheme: &'static str,
    error_rate: f64,
    messages: u64,
}

fn run_network(
    net: &BayesianNetwork,
    m: u64,
    cases: usize,
    eps: f64,
    k: usize,
    seed: u64,
) -> Vec<Row> {
    let tests = generate_classification_cases(net, cases, seed ^ 0xc1a55);
    let mut rows = Vec::new();
    for scheme in Scheme::ALL {
        let mut t =
            build_tracker(net, &TrackerConfig::new(scheme).with_eps(eps).with_k(k).with_seed(seed));
        t.train(TrainingStream::new(net, seed), m);
        let rate = classification_error_rate(net, &t, &tests);
        rows.push(Row {
            network: net.name().to_owned(),
            scheme: scheme.name(),
            error_rate: rate,
            messages: t.stats().total(),
        });
    }
    rows
}

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["alarm", "hepar2", "link", "munin"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let m: u64 = args.get("m", 50_000);
    let cases: usize = args.get("cases", 1000);
    let eps: f64 = args.get("eps", 0.1);
    let k: usize = args.get("k", 30);
    let seed: u64 = args.get("seed", 1);

    let mut rows: Vec<Row> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = nets
            .iter()
            .map(|net| scope.spawn(move || run_network(net, m, cases, eps, k, seed)))
            .collect();
        for h in handles {
            rows.extend(h.join().expect("classification thread panicked"));
        }
    });

    let mut t2 = Table::new(
        format!("Table II: error rate for Bayesian classification ({m} training instances)"),
        &["dataset", "exact", "baseline", "uniform", "non-uniform"],
    );
    let mut t3 = Table::new(
        "Table III: communication cost (messages) to learn a Bayesian classifier",
        &["dataset", "exact", "baseline", "uniform", "non-uniform"],
    );
    for name in &names {
        let of = |scheme: &str| -> &Row {
            rows.iter()
                .find(|r| {
                    r.network.to_ascii_lowercase().contains(&name.to_ascii_lowercase())
                        && r.scheme == scheme
                })
                .expect("row present")
        };
        t2.row(&[
            name.clone(),
            format!("{:.3}", of("exact").error_rate),
            format!("{:.3}", of("baseline").error_rate),
            format!("{:.3}", of("uniform").error_rate),
            format!("{:.3}", of("non-uniform").error_rate),
        ]);
        t3.row(&[
            name.clone(),
            fmt::sci(of("exact").messages as f64),
            fmt::sci(of("baseline").messages as f64),
            fmt::sci(of("uniform").messages as f64),
            fmt::sci(of("non-uniform").messages as f64),
        ]);
    }
    t2.emit("table2");
    t3.emit("table3");
}
