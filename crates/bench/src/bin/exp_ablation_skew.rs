//! Ablation B (the paper's future work (1)): skewed event distribution
//! across sites. Events are routed by a Zipf law over sites instead of
//! uniformly; theta = 0 recovers the paper's setting. The HYZ counter's
//! variance analysis assumes nothing about balance (each site's estimator
//! is independently unbiased), so accuracy should hold while communication
//! shifts.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_ablation_skew
//!
//! Options: --net alarm --m 100000 --eps --k --seed --thetas 0,0.5,1,2

use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, Args, Table};
use dsbn_core::{build_tracker, Scheme, TrackerConfig};
use dsbn_datagen::{generate_queries, QueryConfig, TrainingStream};
use dsbn_monitor::Partitioner;

fn main() {
    let args = Args::parse();
    let nets = resolve_networks(&[args.get_str("net", "alarm")], args.get("seed", 1));
    let net = &nets[0];
    let m: u64 = args.get("m", 100_000);
    let eps: f64 = args.get("eps", 0.1);
    let k: usize = args.get("k", 30);
    let seed: u64 = args.get("seed", 1);
    let thetas: Vec<f64> = args
        .get_list("thetas", &["0", "0.5", "1", "2"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let queries =
        generate_queries(net, &QueryConfig { n_queries: 300, ..Default::default() }, seed);

    let mut table = Table::new(
        "Ablation B: Zipf-skewed site assignment (theta=0 is the paper's uniform routing)",
        &["scheme", "theta", "messages", "mean error to MLE"],
    );
    for &theta in &thetas {
        let partitioner = Partitioner::Zipf { theta };
        let mut exact = build_tracker(
            net,
            &TrackerConfig::new(Scheme::ExactMle)
                .with_k(k)
                .with_seed(seed)
                .with_partitioner(partitioner),
        );
        let mut trackers: Vec<_> = [Scheme::Uniform, Scheme::NonUniform]
            .iter()
            .map(|&s| {
                (
                    s,
                    build_tracker(
                        net,
                        &TrackerConfig::new(s)
                            .with_eps(eps)
                            .with_k(k)
                            .with_seed(seed)
                            .with_partitioner(partitioner),
                    ),
                )
            })
            .collect();
        let mut stream = TrainingStream::new(net, seed);
        let mut event = Vec::new();
        for _ in 0..m {
            stream.next_into(&mut event);
            exact.observe(&event);
            for (_, t) in trackers.iter_mut() {
                t.observe(&event);
            }
        }
        for (s, t) in &trackers {
            let errs: Vec<f64> = queries
                .iter()
                .map(|q| ((t.log_query(q) - exact.log_query(q)).exp() - 1.0).abs())
                .collect();
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            table.row(&[
                s.name().to_owned(),
                format!("{theta}"),
                fmt::sci(t.stats().total() as f64),
                fmt::err(mean),
            ]);
        }
    }
    table.emit("ablation_skew");
}
