//! Figures 1 and 2: distribution (boxplot data) of testing error relative
//! to the ground truth vs. number of training instances, for all four
//! algorithms. Fig. 1 is HEPAR II, Fig. 2 is LINK.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig1_2 -- --net hepar2
//!   cargo run --release -p dsbn-bench --bin exp_fig1_2 -- --net link --scale paper
//!
//! Options: --net NAME --scale small|medium|paper --eps 0.1 --k 30
//!          --seed 1 --runs 1 --queries 1000

use dsbn_bench::output::fmt;
use dsbn_bench::{
    checkpoints_for_scale, resolve_networks, sweep_network, Args, SweepConfig, Table,
};

fn main() {
    let args = Args::parse();
    let net_name = args.get_str("net", "hepar2");
    let nets = resolve_networks(std::slice::from_ref(&net_name), args.get("seed", 1));
    let mut cfg = SweepConfig::new(checkpoints_for_scale(&args.get_str("scale", "small")));
    cfg.eps = args.get("eps", 0.1);
    cfg.k = args.get("k", 30);
    cfg.seed = args.get("seed", 1);
    cfg.runs = args.get("runs", 1);
    cfg.n_queries = args.get("queries", 1000);

    let fig = if net_name == "link" { "fig2" } else { "fig1" };
    let records = sweep_network(&nets[0], &cfg);

    let mut table = Table::new(
        format!("Fig. 1/2: error to ground truth vs training instances ({net_name}, boxplot data)"),
        &["scheme", "m", "p10", "p25", "median", "p75", "p90", "mean", "max"],
    );
    for r in &records {
        let e = r.err_truth;
        table.row(&[
            r.scheme.clone(),
            r.m.to_string(),
            fmt::err(e.p10),
            fmt::err(e.p25),
            fmt::err(e.median),
            fmt::err(e.p75),
            fmt::err(e.p90),
            fmt::err(e.mean),
            fmt::err(e.max),
        ]);
    }
    table.emit(&format!("{fig}_{net_name}"));
}
