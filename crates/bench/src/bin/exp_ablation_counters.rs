//! Ablation A: counter protocol choice. The same NONUNIFORM error
//! allocation drives (a) exact counters, (b) deterministic (1+eps)
//! threshold counters (Keralapura et al., the paper's ref \[22\]), and
//! (c) randomized HYZ counters (Lemma 4), isolating what the randomized
//! counter itself buys. Expectation: deterministic cost grows with
//! `k/eps'` per counter vs. HYZ's `sqrt(k)/eps'`, so HYZ wins as `k`
//! grows.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_ablation_counters
//!
//! Options: --net alarm --m 100000 --eps 0.1 --ks 5,10,30,60 --seed

use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, Args, Table};
use dsbn_core::{build_deterministic_tracker, build_tracker, Scheme, TrackerConfig};
use dsbn_datagen::{generate_queries, QueryConfig, TrainingStream};

fn main() {
    let args = Args::parse();
    let nets = resolve_networks(&[args.get_str("net", "alarm")], args.get("seed", 1));
    let net = &nets[0];
    let m: u64 = args.get("m", 100_000);
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let ks: Vec<usize> =
        args.get_list("ks", &["5", "10", "30", "60"]).iter().map(|s| s.parse().unwrap()).collect();

    let queries =
        generate_queries(net, &QueryConfig { n_queries: 300, ..Default::default() }, seed);

    let mut table = Table::new(
        "Ablation A: counter protocols under the NONUNIFORM allocation",
        &["counter", "k", "messages", "mean error to MLE"],
    );
    for &k in &ks {
        let cfg = TrackerConfig::new(Scheme::NonUniform).with_eps(eps).with_k(k).with_seed(seed);
        let mut exact =
            build_tracker(net, &TrackerConfig::new(Scheme::ExactMle).with_k(k).with_seed(seed));
        let mut hyz = build_tracker(net, &cfg);
        let mut det = build_deterministic_tracker(net, &cfg);
        let mut stream = TrainingStream::new(net, seed);
        let mut event = Vec::new();
        for _ in 0..m {
            stream.next_into(&mut event);
            exact.observe(&event);
            hyz.observe(&event);
            det.observe(&event);
        }
        let mean_err = |t: &dsbn_core::AnyTracker| -> f64 {
            let errs: Vec<f64> = queries
                .iter()
                .map(|q| ((t.log_query(q) - exact.log_query(q)).exp() - 1.0).abs())
                .collect();
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        table.row(&[
            "exact".into(),
            k.to_string(),
            fmt::sci(exact.stats().total() as f64),
            "0".into(),
        ]);
        table.row(&[
            "deterministic".into(),
            k.to_string(),
            fmt::sci(det.stats().total() as f64),
            fmt::err(mean_err(&det)),
        ]);
        table.row(&[
            "randomized-hyz".into(),
            k.to_string(),
            fmt::sci(hyz.stats().total() as f64),
            fmt::err(mean_err(&hyz)),
        ]);
    }
    table.emit("ablation_counters");
}
