//! Figures 7 and 8: live cluster runtime and throughput vs. number of
//! sites, with the *full trackers* (Algorithms 1–3) running on the threaded
//! cluster runtime (the EC2 stand-in, `crates/monitor/DESIGN.md`).
//!
//! Fig. 7: training runtime (first-to-last packet at the coordinator).
//! Fig. 8: throughput (events per second of coordinator busy time;
//! reported as `n/a` when the busy window is below clock resolution).
//!
//! Each run also answers a held-out QUERY workload at the coordinator
//! (Algorithm 3) and reports the mean log-likelihood, demonstrating the
//! full UPDATE-on-sites / QUERY-at-coordinator path; `wire KB` is the byte
//! volume that actually crossed the channels in the
//! `dsbn_counters::wire` encoding.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig7_8
//!   cargo run --release -p dsbn-bench --bin exp_fig7_8 -- --m 500000 --nets alarm,hepar2
//!
//! Options: --nets a,b --m 100000 --ks 2,4,6,8,10 --eps --seed --queries

use dsbn_bench::output::fmt;
use dsbn_bench::{cluster_run, resolve_networks, Args, Table};
use dsbn_core::Scheme;
use dsbn_datagen::TrainingStream;

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["sprinkler", "alarm"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let m: u64 = args.get("m", 100_000);
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let n_queries: usize = args.get("queries", 200);
    let ks: Vec<usize> = args
        .get_list("ks", &["2", "4", "6", "8", "10"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let mut table = Table::new(
        "Figs. 7-8: cluster training runtime and throughput vs number of sites",
        &[
            "network",
            "scheme",
            "k",
            "runtime (s)",
            "throughput (events/s)",
            "messages",
            "packets",
            "wire KB",
            "mean logP (held-out)",
        ],
    );
    for net in &nets {
        for &k in &ks {
            for scheme in Scheme::ALL {
                let run = cluster_run(net, scheme, eps, k, m, seed);
                let throughput = run.report.throughput();
                // A sub-resolution busy window has no meaningful rate.
                let throughput_cell =
                    if throughput.is_nan() { "n/a".to_owned() } else { format!("{throughput:.0}") };
                let mean_logp_cell = if n_queries == 0 {
                    "n/a".to_owned()
                } else {
                    let mean = TrainingStream::new(net, seed ^ 0x5eed)
                        .take(n_queries)
                        .map(|x| run.model.log_query(&x))
                        .sum::<f64>()
                        / n_queries as f64;
                    format!("{mean:.4}")
                };
                table.row(&[
                    net.name().to_owned(),
                    scheme.name().to_owned(),
                    k.to_string(),
                    format!("{:.3}", run.report.coordinator_busy.as_secs_f64()),
                    throughput_cell,
                    fmt::sci(run.report.stats.total() as f64),
                    fmt::sci(run.report.stats.packets as f64),
                    format!("{:.1}", run.report.stats.bytes as f64 / 1024.0),
                    mean_logp_cell,
                ]);
                eprintln!(
                    "done: {} {} k={k} ({:.2}s, {} flush epochs)",
                    net.name(),
                    scheme.name(),
                    run.report.coordinator_busy.as_secs_f64(),
                    run.report.flush_epochs,
                );
            }
        }
    }
    table.emit("fig7_8");
}
