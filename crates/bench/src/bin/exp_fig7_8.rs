//! Figures 7 and 8: live cluster runtime and throughput vs. number of
//! sites, on the threaded cluster runtime (the EC2 stand-in, DESIGN.md §3).
//!
//! Fig. 7: training runtime (first-to-last packet at the coordinator).
//! Fig. 8: throughput (events per second of coordinator busy time).
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig7_8
//!   cargo run --release -p dsbn-bench --bin exp_fig7_8 -- --m 500000 --nets alarm,hepar2
//!
//! Options: --nets a,b --m 100000 --ks 2,4,6,8,10 --eps --seed

use dsbn_bench::output::fmt;
use dsbn_bench::{cluster_run, resolve_networks, Args, Table};
use dsbn_core::Scheme;

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["alarm", "hepar2"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let m: u64 = args.get("m", 100_000);
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let ks: Vec<usize> = args
        .get_list("ks", &["2", "4", "6", "8", "10"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let mut table = Table::new(
        "Figs. 7-8: cluster training runtime and throughput vs number of sites",
        &["network", "scheme", "k", "runtime (s)", "throughput (events/s)", "messages", "packets"],
    );
    for net in &nets {
        for &k in &ks {
            for scheme in Scheme::ALL {
                let report = cluster_run(net, scheme, eps, k, m, seed);
                table.row(&[
                    net.name().to_owned(),
                    scheme.name().to_owned(),
                    k.to_string(),
                    format!("{:.3}", report.coordinator_busy.as_secs_f64()),
                    format!("{:.0}", report.throughput()),
                    fmt::sci(report.stats.total() as f64),
                    fmt::sci(report.stats.packets as f64),
                ]);
                eprintln!(
                    "done: {} {} k={k} ({:.2}s)",
                    net.name(),
                    scheme.name(),
                    report.coordinator_busy.as_secs_f64()
                );
            }
        }
    }
    table.emit("fig7_8");
}
