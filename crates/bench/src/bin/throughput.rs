//! UPDATE-pipeline throughput bench: drives the *same* trackers the
//! experiments use — the synchronous simulator ([`dsbn_core::build_tracker`])
//! and the threaded cluster ([`dsbn_core::run_cluster_tracker`]) — over
//! seeded streams and emits machine-readable JSON under `results/`, so the
//! hot path's performance trajectory is measurable PR over PR.
//!
//! ```sh
//! cargo run --release -p dsbn-bench --bin throughput               # full
//! cargo run --release -p dsbn-bench --bin throughput -- --quick   # CI
//! ```
//!
//! Flags: `--nets sprinkler,alarm` `--schemes exact,baseline,uniform,non-uniform`
//! `--m <sim events>` `--cluster-m <cluster events>` `--k` `--eps` `--seed`
//! `--runs <medians over N>` `--chunk 1,16,256` (cluster ingest chunk-size
//! sweep) `--coord-workers 1,2,4` (coordinator decode-worker sweep; `1` is
//! the single-thread coordinator) `--churn <faults>` (inject a seeded
//! crash/rejoin schedule of up to that many site faults into every cluster
//! run — throughput under churn, DESIGN.md §8; `0`, the default, runs
//! fault-free) `--out <results/<out>.json>` `--quick` `--check` (exit
//! non-zero unless every events/s is finite and positive).
//!
//! Throughput figures reported per (network, scheme):
//!
//! - `sim`: wall-clock events/s of the UPDATE loop over a pre-materialized
//!   stream (pure tracker cost, no sampling in the timed region).
//! - `cluster`, once per `--chunk` entry: events/s against the
//!   coordinator's busy window (`ClusterReport::throughput`, the paper's
//!   Fig. 8 metric) plus the whole-run wall time. `chunk = 1` is the
//!   per-event pipeline; larger chunks exercise the cross-event ingest
//!   batching (one channel send / one packet / one decode per chunk).
//!
//! Every (record, configuration) runs one untimed warmup before the timed
//! medians, so cold caches and thread spin-up never pollute the figures.
//!
//! Byte figures come from `MessageStats::bytes` (wire-frame accounting), so
//! `bytes / events` exposes the per-event framing cost the event-batched
//! pipeline amortizes (chunking coalesces packets but never changes bytes).

use dsbn_bayes::BayesianNetwork;
use dsbn_bench::json::Json;
use dsbn_bench::{json, resolve_networks, Args, LatencyRecorder};
use dsbn_core::{build_tracker, run_cluster_tracker, Scheme, TrackerConfig};
use dsbn_datagen::TrainingStream;
use dsbn_monitor::SiteFault;
use std::time::Instant;

/// One runtime measurement.
struct Record {
    network: String,
    scheme: &'static str,
    runtime: &'static str,
    /// Cluster ingest chunk size; `None` for the simulator (whose internal
    /// chunking is bit-identical at any size and not a knob here).
    chunk: Option<u64>,
    /// Coordinator decode workers (`1` = single-thread coordinator); `None`
    /// for the simulator. Recorded even when sharding cannot speed anything
    /// up (e.g. a 1-CPU container), so the sweep documents the machine it
    /// ran on.
    coord_workers: Option<u64>,
    events: u64,
    secs: f64,
    events_per_sec: f64,
    messages: u64,
    packets: u64,
    bytes: u64,
    /// Churn accounting of the last run (cluster runs with `--churn` only):
    /// `(kills, revives, events_lost)`.
    churn: Option<(u64, u64, u64)>,
}

impl Record {
    fn to_json(&self) -> Json {
        let bytes_per_event =
            if self.events == 0 { f64::NAN } else { self.bytes as f64 / self.events as f64 };
        let mut obj = Json::obj()
            .field("network", Json::Str(self.network.clone()))
            .field("scheme", Json::Str(self.scheme.into()))
            .field("runtime", Json::Str(self.runtime.into()));
        if let Some(chunk) = self.chunk {
            obj = obj.field("chunk", Json::UInt(chunk));
        }
        if let Some(w) = self.coord_workers {
            obj = obj.field("coord_workers", Json::UInt(w));
        }
        obj = obj
            .field("events", Json::UInt(self.events))
            .field("secs", Json::Num(self.secs))
            .field("events_per_sec", Json::Num(self.events_per_sec))
            .field("messages", Json::UInt(self.messages))
            .field("packets", Json::UInt(self.packets))
            .field("bytes", Json::UInt(self.bytes))
            .field("bytes_per_event", Json::Num(bytes_per_event));
        if let Some((kills, revives, events_lost)) = self.churn {
            obj = obj
                .field("kills", Json::UInt(kills))
                .field("revives", Json::UInt(revives))
                .field("events_lost", Json::UInt(events_lost));
        }
        obj
    }
}

/// Median of a non-empty slice via the shared [`LatencyRecorder`]
/// nearest-rank percentile (identical to the old `values[len / 2]` pick
/// at the odd run counts this bench uses; even counts take the lower
/// middle instead of the upper).
fn median(values: &[f64]) -> f64 {
    let mut rec = LatencyRecorder::new();
    for &v in values {
        rec.record(v);
    }
    rec.percentile(0.5)
}

fn sim_record(
    net: &BayesianNetwork,
    scheme: Scheme,
    m: u64,
    k: usize,
    eps: f64,
    seed: u64,
    runs: usize,
) -> Record {
    let events: Vec<Vec<usize>> = TrainingStream::new(net, seed).take(m as usize).collect();
    let mut secs = Vec::with_capacity(runs);
    let mut last = None;
    // Every repeat uses the same seed: runs sample *timing* noise over an
    // identical workload, so the traffic tallies below correspond to every
    // timed run, not just the last one. Iteration 0 is an untimed warmup.
    for run in 0..=runs {
        let tc = TrackerConfig::new(scheme).with_k(k).with_eps(eps).with_seed(seed);
        let mut tracker = build_tracker(net, &tc);
        let start = Instant::now();
        for x in &events {
            tracker.observe(x);
        }
        if run > 0 {
            secs.push(start.elapsed().as_secs_f64());
        }
        last = Some(tracker.stats());
    }
    let stats = last.expect("at least one run");
    let secs = median(&secs);
    Record {
        network: net.name().to_owned(),
        scheme: scheme.name(),
        runtime: "sim",
        chunk: None,
        coord_workers: None,
        events: m,
        secs,
        events_per_sec: if secs > 0.0 { m as f64 / secs } else { f64::NAN },
        messages: stats.total(),
        packets: stats.packets,
        bytes: stats.bytes,
        churn: None,
    }
}

#[allow(clippy::too_many_arguments)]
fn cluster_record(
    net: &BayesianNetwork,
    scheme: Scheme,
    m: u64,
    k: usize,
    eps: f64,
    seed: u64,
    runs: usize,
    chunk: usize,
    coord_workers: usize,
    churn_faults: usize,
) -> Record {
    // Pre-materialize the stream outside the measured window, exactly as
    // `sim_record` does ("pure tracker cost, no sampling in the timed
    // region"): ancestral sampling costs ~0.6 µs/event on ALARM, which on
    // a small machine would otherwise dominate the coordinator's busy
    // window and measure the generator, not the pipeline.
    let events: Vec<Vec<usize>> = TrainingStream::new(net, seed).take(m as usize).collect();
    let mut rates = Vec::with_capacity(runs);
    let mut walls = Vec::with_capacity(runs);
    let mut last = None;
    // Same seed per repeat (see sim_record): the cluster's message tallies
    // still vary slightly across runs with thread interleaving, but the
    // workload and protocol randomness are held fixed. Iteration 0 is an
    // untimed warmup (thread spin-up, first-touch allocation).
    for run in 0..=runs {
        let mut tc = TrackerConfig::new(scheme)
            .with_k(k)
            .with_eps(eps)
            .with_seed(seed)
            .with_chunk(chunk)
            .with_coord_workers(coord_workers);
        if churn_faults > 0 {
            tc = tc.with_faults(SiteFault::schedule(k, m, churn_faults, seed));
        }
        let run_out =
            run_cluster_tracker(net, &tc, events.iter().cloned()).expect("cluster run failed");
        if run > 0 {
            rates.push(run_out.report.throughput());
            walls.push(run_out.report.wall_time.as_secs_f64());
        }
        last = Some(run_out.report);
    }
    let report = last.expect("at least one run");
    Record {
        network: net.name().to_owned(),
        scheme: scheme.name(),
        runtime: "cluster",
        chunk: Some(chunk as u64),
        coord_workers: Some(coord_workers as u64),
        events: report.events,
        secs: median(&walls),
        events_per_sec: median(&rates),
        messages: report.stats.total(),
        packets: report.stats.packets,
        bytes: report.stats.bytes,
        churn: (churn_faults > 0).then_some((
            report.churn.kills,
            report.churn.revives,
            report.churn.events_lost,
        )),
    }
}

fn parse_schemes(names: &[String]) -> Vec<Scheme> {
    names
        .iter()
        .map(|name| {
            Scheme::ALL.into_iter().find(|s| s.name() == name.to_ascii_lowercase()).unwrap_or_else(
                || {
                    eprintln!(
                        "error: unknown scheme {name:?} (exact|baseline|uniform|non-uniform)"
                    );
                    std::process::exit(2);
                },
            )
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let default_nets: &[&str] = if quick { &["sprinkler"] } else { &["sprinkler", "alarm"] };
    let nets = resolve_networks(&args.get_list("nets", default_nets), args.get("net-seed", 1u64));
    let schemes =
        parse_schemes(&args.get_list("schemes", &["exact", "baseline", "uniform", "non-uniform"]));
    let m: u64 = args.get("m", if quick { 50_000 } else { 200_000 });
    let cluster_m: u64 = args.get("cluster-m", if quick { 20_000 } else { 100_000 });
    let k: usize = args.get("k", if quick { 4 } else { 8 });
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    let chunks: Vec<usize> = args
        .get_list("chunk", &["1", "16", "256"])
        .iter()
        .map(|s| {
            s.parse::<usize>().ok().filter(|&c| c >= 1).unwrap_or_else(|| {
                eprintln!("error: bad chunk size {s:?} (want integers >= 1)");
                std::process::exit(2);
            })
        })
        .collect();
    let coord_workers: Vec<usize> = args
        .get_list("coord-workers", &["1"])
        .iter()
        .map(|s| {
            s.parse::<usize>().ok().filter(|&w| w >= 1).unwrap_or_else(|| {
                eprintln!("error: bad coord-workers count {s:?} (want integers >= 1)");
                std::process::exit(2);
            })
        })
        .collect();
    let churn: usize = args.get("churn", 0usize);
    let out = args.get_str("out", "throughput");

    let mut records = Vec::new();
    for net in &nets {
        for &scheme in &schemes {
            eprintln!("measuring {} / {} (sim) ...", net.name(), scheme.name());
            records.push(sim_record(net, scheme, m, k, eps, seed, runs));
            for &chunk in &chunks {
                for &workers in &coord_workers {
                    eprintln!(
                        "measuring {} / {} (cluster, chunk {chunk}, coord workers {workers}) ...",
                        net.name(),
                        scheme.name()
                    );
                    records.push(cluster_record(
                        net, scheme, cluster_m, k, eps, seed, runs, chunk, workers, churn,
                    ));
                }
            }
        }
    }

    let doc = Json::obj()
        .field("bench", Json::Str("throughput".into()))
        .field("quick", Json::Bool(quick))
        .field("m", Json::UInt(m))
        .field("cluster_m", Json::UInt(cluster_m))
        .field("k", Json::UInt(k as u64))
        .field("eps", Json::Num(eps))
        .field("seed", Json::UInt(seed))
        .field("runs", Json::UInt(runs as u64))
        .field("churn", Json::UInt(churn as u64))
        .field("chunks", Json::Arr(chunks.iter().map(|&c| Json::UInt(c as u64)).collect()))
        .field(
            "coord_workers",
            Json::Arr(coord_workers.iter().map(|&w| Json::UInt(w as u64)).collect()),
        )
        .field("records", Json::Arr(records.iter().map(Record::to_json).collect()));
    let path = json::emit(&doc, &out);

    // Human-readable summary alongside the JSON.
    let mut table = dsbn_bench::Table::new(
        "UPDATE throughput",
        &[
            "network",
            "scheme",
            "runtime",
            "chunk",
            "workers",
            "events",
            "events/s",
            "messages",
            "bytes/event",
        ],
    );
    for r in &records {
        let bpe = if r.events == 0 { f64::NAN } else { r.bytes as f64 / r.events as f64 };
        table.row(&[
            r.network.clone(),
            r.scheme.into(),
            r.runtime.into(),
            r.chunk.map_or_else(|| "-".into(), |c| c.to_string()),
            r.coord_workers.map_or_else(|| "-".into(), |w| w.to_string()),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
            r.messages.to_string(),
            format!("{bpe:.1}"),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("(json: {})", path.display());

    if args.has("check") {
        let bad: Vec<String> = records
            .iter()
            .filter(|r| !(r.events_per_sec.is_finite() && r.events_per_sec > 0.0))
            .map(|r| format!("{}/{}/{}", r.network, r.scheme, r.runtime))
            .collect();
        if !bad.is_empty() {
            eprintln!("error: non-finite or zero events/s for: {}", bad.join(", "));
            std::process::exit(1);
        }
        eprintln!("check ok: all {} throughput figures finite and positive", records.len());
    }
}
