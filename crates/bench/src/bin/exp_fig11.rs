//! Figure 11: communication cost vs. number of sites `k` (ALARM). The
//! paper observes sub-linear growth in `k` — the HYZ counter's cost scales
//! with `sqrt(k)` plus a `k` term for round synchronization.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig11
//!   cargo run --release -p dsbn-bench --bin exp_fig11 -- --m 500000 --ks 10,20,...,70
//!
//! Options: --net alarm --m 100000 --ks 10,...  --eps --seed

use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, sweep_network, Args, SweepConfig, Table};
use dsbn_core::Scheme;

fn main() {
    let args = Args::parse();
    let nets = resolve_networks(&[args.get_str("net", "alarm")], args.get("seed", 1));
    let m: u64 = args.get("m", 100_000);
    let ks: Vec<usize> = args
        .get_list("ks", &["10", "20", "30", "40", "50", "60", "70"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    let mut table = Table::new(
        "Fig. 11: communication cost vs number of sites (ALARM)",
        &["scheme", "k", "messages"],
    );
    let mut rows: Vec<(String, usize, u64)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = ks
            .iter()
            .map(|&k| {
                let net = &nets[0];
                let args = &args;
                scope.spawn(move || {
                    let mut cfg = SweepConfig::new(vec![m]);
                    cfg.eps = args.get("eps", 0.1);
                    cfg.k = k;
                    cfg.seed = args.get("seed", 1);
                    cfg.n_queries = 50;
                    cfg.schemes = vec![Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform];
                    sweep_network(net, &cfg)
                        .into_iter()
                        .map(|r| (r.scheme, k, r.messages))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("sweep thread panicked"));
        }
    });
    rows.sort_by(|a, b| (&a.0, a.1).cmp(&(&b.0, b.1)));
    for (scheme, k, messages) in rows {
        table.row(&[scheme, k.to_string(), fmt::sci(messages as f64)]);
    }
    table.emit("fig11");
}
