//! Figure 3: mean testing error (relative to the ground truth) vs. number
//! of training instances, across all four networks and all four
//! algorithms.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig3
//!   cargo run --release -p dsbn-bench --bin exp_fig3 -- --nets alarm,hepar2 --scale medium
//!
//! Options: --nets a,b,... --scale small|medium|paper --eps --k --seed
//!          --runs --queries

use dsbn_bench::output::fmt;
use dsbn_bench::{
    checkpoints_for_scale, resolve_networks, sweep_networks, Args, SweepConfig, Table,
};

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["alarm", "hepar2", "link", "munin"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let mut cfg = SweepConfig::new(checkpoints_for_scale(&args.get_str("scale", "small")));
    cfg.eps = args.get("eps", 0.1);
    cfg.k = args.get("k", 30);
    cfg.seed = args.get("seed", 1);
    cfg.runs = args.get("runs", 1);
    cfg.n_queries = args.get("queries", 1000);

    let records = sweep_networks(&nets, &cfg);

    let mut table = Table::new(
        "Fig. 3: mean testing error to ground truth vs training instances",
        &["network", "scheme", "m", "mean error to truth", "messages"],
    );
    for r in &records {
        table.row(&[
            r.network.clone(),
            r.scheme.clone(),
            r.m.to_string(),
            fmt::err(r.err_truth.mean),
            r.messages.to_string(),
        ]);
    }
    table.emit("fig3");
}
