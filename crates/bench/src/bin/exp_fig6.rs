//! Figure 6: communication cost (number of messages, log scale in the
//! paper) vs. number of training instances, for all four networks and all
//! four algorithms.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig6
//!   cargo run --release -p dsbn-bench --bin exp_fig6 -- --nets alarm --scale paper
//!
//! Options: --nets a,b,... --scale small|medium|paper --eps --k --seed --runs

use dsbn_bench::output::fmt;
use dsbn_bench::{
    checkpoints_for_scale, resolve_networks, sweep_networks, Args, SweepConfig, Table,
};

fn main() {
    let args = Args::parse();
    let names = args.get_list("nets", &["alarm", "hepar2", "link", "munin"]);
    let nets = resolve_networks(&names, args.get("seed", 1));
    let mut cfg = SweepConfig::new(checkpoints_for_scale(&args.get_str("scale", "small")));
    cfg.eps = args.get("eps", 0.1);
    cfg.k = args.get("k", 30);
    cfg.seed = args.get("seed", 1);
    cfg.runs = args.get("runs", 1);
    // Queries are irrelevant to communication; keep a handful so the same
    // sweep machinery applies.
    cfg.n_queries = args.get("queries", 50);

    let records = sweep_networks(&nets, &cfg);

    let mut table = Table::new(
        "Fig. 6: communication cost vs training instances",
        &["network", "scheme", "m", "messages", "messages/exact"],
    );
    for r in &records {
        let exact = records
            .iter()
            .find(|e| e.network == r.network && e.m == r.m && e.scheme == "exact")
            .map(|e| e.messages)
            .unwrap_or(0);
        let ratio = if exact > 0 { r.messages as f64 / exact as f64 } else { f64::NAN };
        table.row(&[
            r.network.clone(),
            r.scheme.clone(),
            r.m.to_string(),
            fmt::sci(r.messages as f64),
            format!("{ratio:.3}"),
        ]);
    }
    table.emit("fig6");
}
