//! Figure 10: HEPAR II mean error against ground truth vs. the
//! approximation factor eps, for BASELINE and NONUNIFORM at several
//! training sizes. The paper's observation: for small eps the testing
//! error is dominated by statistical error and barely moves; for larger
//! eps the approximation error starts to show.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_fig10
//!   cargo run --release -p dsbn-bench --bin exp_fig10 -- --scale paper
//!
//! Options: --net hepar2 --scale small|medium|paper --epss 0.05,0.1,...
//!          --k --seed --queries

use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, sweep_network, Args, SweepConfig, Table};
use dsbn_core::Scheme;

fn main() {
    let args = Args::parse();
    let nets = resolve_networks(&[args.get_str("net", "hepar2")], args.get("seed", 1));
    let epss: Vec<f64> = args
        .get_list("epss", &["0.05", "0.1", "0.15", "0.2", "0.25", "0.3"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let checkpoints: Vec<u64> = match args.get_str("scale", "small").as_str() {
        "small" => vec![5_000, 50_000, 200_000],
        "medium" => vec![50_000, 500_000, 1_000_000],
        "paper" | "full" => vec![50_000, 500_000, 1_000_000, 2_000_000],
        other => {
            eprintln!("error: unknown --scale {other:?}");
            std::process::exit(2);
        }
    };

    let mut table = Table::new(
        "Fig. 10: mean error to ground truth vs approximation factor eps (HEPAR II)",
        &["scheme", "eps", "m", "mean error to truth"],
    );
    // One sweep per eps, in parallel.
    let mut rows: Vec<(String, f64, u64, f64)> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = epss
            .iter()
            .map(|&eps| {
                let net = &nets[0];
                let checkpoints = checkpoints.clone();
                let args = &args;
                scope.spawn(move || {
                    let mut cfg = SweepConfig::new(checkpoints);
                    cfg.eps = eps;
                    cfg.k = args.get("k", 30);
                    cfg.seed = args.get("seed", 1);
                    cfg.n_queries = args.get("queries", 1000);
                    cfg.schemes = vec![Scheme::Baseline, Scheme::NonUniform];
                    sweep_network(net, &cfg)
                        .into_iter()
                        .map(|r| (r.scheme, eps, r.m, r.err_truth.mean))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            rows.extend(h.join().expect("sweep thread panicked"));
        }
    });
    rows.sort_by(|a, b| {
        (&a.0, a.2).cmp(&(&b.0, b.2)).then(a.1.partial_cmp(&b.1).expect("eps not NaN"))
    });
    for (scheme, eps, m, err) in rows {
        table.row(&[scheme, format!("{eps}"), m.to_string(), fmt::err(err)]);
    }
    table.emit("fig10");
}
