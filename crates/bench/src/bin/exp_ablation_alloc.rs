//! Ablation D: is the Lagrange closed form (Eq. 7/8) actually optimal?
//! For each preset network, compare the closed-form NONUNIFORM allocation
//! against the independent projected-gradient solver on (a) the convex
//! objective `sum JK/nu` and (b) the variance constraint residual; then
//! report how the predicted communication exponent Γ (Theorem 2) orders
//! the networks.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_ablation_alloc

use dsbn_bayes::NetworkSpec;
use dsbn_bench::{Args, Table};
use dsbn_core::allocation::{closed_form_inverse_sum, minimize_inverse_sum};
use dsbn_core::{allocate, gamma_exponent, Scheme};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.1);

    let mut table = Table::new(
        "Ablation D: closed-form allocation vs numeric solver",
        &[
            "network",
            "objective (closed form)",
            "objective (numeric)",
            "ratio",
            "constraint residual",
            "Gamma (Thm 2)",
        ],
    );
    for spec in NetworkSpec::paper_presets() {
        let net = spec.generate(seed).unwrap();
        let weights: Vec<f64> = (0..net.n_vars())
            .map(|i| (net.cardinality(i) * net.parent_configs(i)) as f64)
            .collect();
        let budget = eps * eps / 256.0;
        let closed = closed_form_inverse_sum(&weights, budget);
        let numeric = minimize_inverse_sum(&weights, budget, 50_000);
        let obj = |nu: &[f64]| -> f64 { weights.iter().zip(nu).map(|(w, v)| w / v).sum() };
        let co = obj(&closed);
        let no = obj(&numeric);
        // Cross-check: the allocate() API must agree with the raw closed form.
        let alloc = allocate(Scheme::NonUniform, &net, eps);
        let residual: f64 =
            (alloc.family_eps.iter().map(|v| v * v).sum::<f64>() - budget).abs() / budget;
        table.row(&[
            net.name().to_owned(),
            format!("{co:.4e}"),
            format!("{no:.4e}"),
            format!("{:.6}", co / no),
            format!("{residual:.2e}"),
            format!("{:.3e}", gamma_exponent(&net)),
        ]);
    }
    table.emit("ablation_alloc");
}
