//! Ablation C (the paper's future work (2)): time-decayed tracking under
//! concept drift — centralized *and* distributed.
//!
//! The generating distribution switches mid-stream (fresh CPTs on the same
//! structure, a [`DriftWorkload`] parameter drift); we track the mean
//! error to the *current* ground truth for
//!
//! - (a) the plain cumulative MLE,
//! - (b) exponentially decayed MLEs at several half-lives (centralized,
//!   per-event decay),
//! - (c) the distributed epoch-ring [`dsbn_core::DecayedTracker`] on the
//!   simulator (exact and NONUNIFORM counters), and
//! - (d) the same tracker live on the threaded cluster
//!   ([`dsbn_core::run_decayed_cluster_tracker`]).
//!
//! The expected picture: before the drift the plain MLE is best (it uses
//! all data); after the drift it stays polluted by pre-drift mass while
//! decayed models re-converge at a rate set by their half-life — and the
//! distributed epoch-ring models match the centralized decayed accuracy
//! while communicating far less than forwarding every event, which is
//! what maintaining a centralized decayed MLE would require. The `wire`
//! section of the JSON pins that comparison: messages and bytes for the
//! NONUNIFORM epoch tracker vs the forward-everything (exact) epoch
//! tracker on the same stream.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_ablation_decay
//!
//! Options: --m 100000 (events per phase) --seed --half-lives 5000,20000
//!   --nets sprinkler,alarm --eps 0.2 --k 5 --lambda 0.5 (per epoch)
//!   --boundary m/4 --ring 16 --quick (sprinkler only, m=20000)
//!   --out ablation_decay (JSON under results/)

use dsbn_bayes::BayesianNetwork;
use dsbn_bench::json::Json;
use dsbn_bench::output::fmt;
use dsbn_bench::{json, resolve_networks, Args, Table};
use dsbn_core::{
    build_decayed_tracker, run_decayed_cluster_tracker, DecayConfig, DecayedMle, EpochDecayConfig,
    Scheme, Smoothing, TrackerConfig,
};
use dsbn_datagen::{generate_queries, DriftWorkload, QueryConfig};
use dsbn_monitor::MessageStats;

/// Mean absolute log error (nats) to the post-drift truth: additive over
/// factors, so it stays interpretable for 37-variable joints.
fn mean_err(
    log_query: impl Fn(&[usize]) -> f64,
    truth: &BayesianNetwork,
    queries: &[Vec<usize>],
) -> f64 {
    let sum: f64 = queries.iter().map(|q| (log_query(q) - truth.joint_log_prob(q)).abs()).sum();
    sum / queries.len() as f64
}

struct Record {
    net: String,
    model: String,
    events: u64,
    err: f64,
    stats: Option<MessageStats>,
}

impl Record {
    fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("net", Json::Str(self.net.clone()))
            .field("model", Json::Str(self.model.clone()))
            .field("events", Json::UInt(self.events))
            .field("mean_abs_log_err", Json::Num(self.err));
        if let Some(s) = self.stats {
            j = j
                .field("messages", Json::UInt(s.total()))
                .field("bytes", Json::UInt(s.bytes))
                .field("bytes_per_event", Json::Num(s.bytes as f64 / self.events as f64));
        }
        j
    }
}

#[allow(clippy::too_many_arguments)]
fn run_net(
    net: &BayesianNetwork,
    m: u64,
    seed: u64,
    half_lives: &[f64],
    eps: f64,
    k: usize,
    decay: &EpochDecayConfig,
    records: &mut Vec<Record>,
    wire: &mut Vec<Json>,
) {
    let workload = DriftWorkload::parameter_drift(net, 2, m, 0.8, 0.01, seed ^ 0xd21f7)
        .expect("drift generation");
    let after = &workload.phases()[1].0;
    let queries =
        generate_queries(after, &QueryConfig { n_queries: 300, ..Default::default() }, seed);
    let smoothing = Smoothing::Pseudocount(0.5);

    // Centralized models (per-event decay) and distributed sim trackers
    // (epoch-ring decay), all fed the same stream in lockstep.
    let mut plain = DecayedMle::new(net, DecayConfig { lambda: 1.0, smoothing });
    let mut decayed: Vec<(f64, DecayedMle)> = half_lives
        .iter()
        .map(|&h| (h, DecayedMle::new(net, DecayConfig::with_half_life(h, smoothing))))
        .collect();
    let tc_exact =
        TrackerConfig::new(Scheme::ExactMle).with_k(k).with_seed(seed).with_smoothing(smoothing);
    let tc_hyz = TrackerConfig::new(Scheme::NonUniform)
        .with_k(k)
        .with_eps(eps)
        .with_seed(seed)
        .with_smoothing(smoothing);
    let mut dist_exact = build_decayed_tracker(net, &tc_exact, decay);
    let mut dist_hyz = build_decayed_tracker(net, &tc_hyz, decay);

    let checkpoints: Vec<u64> = vec![m / 2, m, m + m / 10, m + m / 2, 2 * m];
    let mut position = 0u64;
    let mut iter = workload.stream(seed).take((2 * m) as usize);
    for &cp in &checkpoints {
        while position < cp {
            let x = iter.next().expect("stream long enough");
            plain.observe(&x);
            for (_, d) in decayed.iter_mut() {
                d.observe(&x);
            }
            dist_exact.observe(&x);
            dist_hyz.observe(&x);
            position += 1;
        }
        let mut push = |model: String, err: f64, stats: Option<MessageStats>| {
            records.push(Record { net: net.name().to_owned(), model, events: cp, err, stats });
        };
        push("plain-mle".into(), mean_err(|q| plain.log_query(q), after, &queries), None);
        for (h, d) in &decayed {
            push(format!("decay-hl-{h}"), mean_err(|q| d.log_query(q), after, &queries), None);
        }
        push(
            "dist-epoch-exact-sim".into(),
            mean_err(|q| dist_exact.log_query(q), after, &queries),
            Some(dist_exact.stats()),
        );
        push(
            "dist-epoch-non-uniform-sim".into(),
            mean_err(|q| dist_hyz.log_query(q), after, &queries),
            Some(dist_hyz.stats()),
        );
    }

    // The same epoch trackers live on the threaded cluster (final models).
    let total = 2 * m;
    let fwd = run_decayed_cluster_tracker(
        net,
        &tc_exact,
        decay,
        workload.stream(seed).take(total as usize),
    )
    .expect("cluster run failed");
    let hyz = run_decayed_cluster_tracker(
        net,
        &tc_hyz,
        decay,
        workload.stream(seed).take(total as usize),
    )
    .expect("cluster run failed");
    records.push(Record {
        net: net.name().to_owned(),
        model: "dist-epoch-exact-cluster".into(),
        events: total,
        err: mean_err(|q| fwd.model.log_query(q), after, &queries),
        stats: Some(fwd.report.stats),
    });
    records.push(Record {
        net: net.name().to_owned(),
        model: "dist-epoch-non-uniform-cluster".into(),
        events: total,
        err: mean_err(|q| hyz.model.log_query(q), after, &queries),
        stats: Some(hyz.report.stats),
    });

    // Wire comparison: epoch-ring NONUNIFORM vs forwarding every event
    // (the exact epoch tracker — what a remotely maintained centralized
    // decayed MLE would cost), cluster accounting.
    wire.push(
        Json::obj()
            .field("net", Json::Str(net.name().to_owned()))
            .field("events", Json::UInt(total))
            .field("epochs", Json::UInt(hyz.report.epochs))
            .field("forward_messages", Json::UInt(fwd.report.stats.total()))
            .field("epoch_messages", Json::UInt(hyz.report.stats.total()))
            .field(
                "message_ratio",
                Json::Num(hyz.report.stats.total() as f64 / fwd.report.stats.total() as f64),
            )
            .field("forward_bytes", Json::UInt(fwd.report.stats.bytes))
            .field("epoch_bytes", Json::UInt(hyz.report.stats.bytes))
            .field(
                "byte_ratio",
                Json::Num(hyz.report.stats.bytes as f64 / fwd.report.stats.bytes as f64),
            ),
    );
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let m: u64 = args.get("m", if quick { 20_000 } else { 100_000 });
    let seed: u64 = args.get("seed", 1);
    let eps: f64 = args.get("eps", 0.2);
    let k: usize = args.get("k", 5);
    let lambda: f64 = args.get("lambda", 0.5);
    let boundary: u64 = args.get("boundary", m / 4);
    let ring: usize = args.get("ring", 16);
    let half_lives: Vec<f64> = args
        .get_list("half-lives", &["5000", "20000"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let default_nets: &[&str] = if quick { &["sprinkler"] } else { &["sprinkler", "alarm"] };
    let nets = resolve_networks(&args.get_list("nets", default_nets), args.get("net-seed", 1u64));
    let out = args.get_str("out", "ablation_decay");
    let decay = EpochDecayConfig::new(lambda, boundary, ring);

    let mut records = Vec::new();
    let mut wire = Vec::new();
    for net in &nets {
        eprintln!("drifting {} ({} events/phase) ...", net.name(), m);
        run_net(net, m, seed, &half_lives, eps, k, &decay, &mut records, &mut wire);
    }

    let doc = Json::obj()
        .field("bench", Json::Str("ablation_decay".into()))
        .field("quick", Json::Bool(quick))
        .field("m_per_phase", Json::UInt(m))
        .field("seed", Json::UInt(seed))
        .field("eps", Json::Num(eps))
        .field("k", Json::UInt(k as u64))
        .field("lambda_epoch", Json::Num(lambda))
        .field("boundary", Json::UInt(boundary))
        .field("ring", Json::UInt(ring as u64))
        .field(
            "epoch_half_life_events",
            Json::Num(boundary as f64 * std::f64::consts::LN_2 / (1.0 / lambda).ln()),
        )
        .field("records", Json::Arr(records.iter().map(Record::to_json).collect()))
        .field("wire", Json::Arr(wire));
    let path = json::emit(&doc, &out);

    let mut table = Table::new(
        format!("Ablation C: drift at event {m}; mean error to the POST-drift truth"),
        &["net", "model", "events seen", "mean |log err| (nats)", "messages", "bytes"],
    );
    for r in &records {
        let (msgs, bytes) = match r.stats {
            Some(s) => (s.total().to_string(), s.bytes.to_string()),
            None => ("-".into(), "-".into()),
        };
        table.row(&[
            r.net.clone(),
            r.model.clone(),
            r.events.to_string(),
            fmt::err(r.err),
            msgs,
            bytes,
        ]);
    }
    table.emit("ablation_decay");
    println!("(json: {})", path.display());
}
