//! Ablation C (the paper's future work (2)): time-decayed tracking under
//! concept drift. The generating distribution is switched mid-stream
//! (fresh CPTs on the same ALARM structure); we track the mean error to
//! the *current* ground truth for (a) the plain cumulative MLE and
//! (b) exponentially decayed MLEs at several half-lives.
//!
//! The expected picture: before the drift the plain MLE is best (it uses
//! all data); after the drift it stays polluted by pre-drift mass while
//! decayed models re-converge at a rate set by their half-life.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_ablation_decay
//!
//! Options: --m 200000 (events per phase) --seed --half-lives 5000,20000

use dsbn_bayes::NetworkSpec;
use dsbn_bench::output::fmt;
use dsbn_bench::{Args, Table};
use dsbn_core::{DecayConfig, DecayedMle, Smoothing};
use dsbn_datagen::{generate_queries, DriftingStream, QueryConfig};

fn main() {
    let args = Args::parse();
    let m: u64 = args.get("m", 100_000);
    let seed: u64 = args.get("seed", 1);
    let half_lives: Vec<f64> = args
        .get_list("half-lives", &["5000", "20000"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();

    // Same structure and domains, re-drawn CPTs: a pure parameter drift.
    let before = NetworkSpec::alarm().generate(seed).unwrap();
    let after = dsbn_bayes::generate::redraw_cpts(&before, 0.8, 0.01, seed ^ 0xd21f7).unwrap();
    let queries_after =
        generate_queries(&after, &QueryConfig { n_queries: 300, ..Default::default() }, seed);

    let smoothing = Smoothing::Pseudocount(0.5);
    let mut plain = DecayedMle::new(&before, DecayConfig { lambda: 1.0, smoothing });
    let mut decayed: Vec<(f64, DecayedMle)> = half_lives
        .iter()
        .map(|&h| (h, DecayedMle::new(&before, DecayConfig::with_half_life(h, smoothing))))
        .collect();

    let checkpoints: Vec<u64> = vec![m / 2, m, m + m / 10, m + m / 2, 2 * m];
    let mut table = Table::new(
        format!("Ablation C: drift at event {m}; mean error to the POST-drift truth"),
        &["model", "events seen", "mean |log err| (nats) to post-drift truth"],
    );
    let stream = DriftingStream::new(&[(&before, m), (&after, m)], seed);
    let mut position = 0u64;
    let mut iter = stream.take((2 * m) as usize);
    for &cp in &checkpoints {
        while position < cp {
            let x = iter.next().expect("stream long enough");
            plain.observe(&x);
            for (_, d) in decayed.iter_mut() {
                d.observe(&x);
            }
            position += 1;
        }
        // Mean absolute log error (nats): additive over factors, so it
        // stays interpretable for 37-variable joints (the relative joint
        // error compounds per-factor discrepancies exponentially in n).
        let mean_err = |model: &DecayedMle| -> f64 {
            let errs: Vec<f64> = queries_after
                .iter()
                .map(|q| (model.log_query(q) - after.joint_log_prob(q)).abs())
                .collect();
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        table.row(&["plain-mle".into(), cp.to_string(), fmt::err(mean_err(&plain))]);
        for (h, d) in &decayed {
            table.row(&[format!("decay-hl-{h}"), cp.to_string(), fmt::err(mean_err(d))]);
        }
    }
    table.emit("ablation_decay");
}
