//! MIXED-workload bench: serve classify/QUERY traffic *while* the cluster
//! ingests at full rate — the split read/ingest pipeline of DESIGN.md §7,
//! measured. One cluster run ([`dsbn_core::run_cluster_tracker`]) with
//! epoch settlements publishing to a [`dsbn_core::SnapshotHub`] ingests a
//! seeded stream to completion while `R` reader threads hammer a shared
//! [`dsbn_core::SnapshotServer`]; the bench records ingest events/s,
//! aggregate queries/s, and per-query latency percentiles into
//! `results/mixed_workload.json`.
//!
//! ```sh
//! cargo run --release -p dsbn-bench --bin mixed_workload              # full
//! cargo run --release -p dsbn-bench --bin mixed_workload -- --quick  # CI
//! ```
//!
//! Flags: `--net alarm` `--scheme non-uniform` `--m <events>` `--k`
//! `--eps` `--seed` `--readers <R>` `--snapshot-every <events/epoch>`
//! `--chunk` `--coord-workers` `--out <results/<out>.json>` `--quick`
//! `--check` (exit non-zero unless both rates are finite and positive,
//! the latency percentiles are sane, at least one snapshot was published,
//! and the final served answers are byte-identical to the end-of-run
//! model — the PR's acceptance anchor, under concurrency).
//!
//! The reader hot path is lock-free — two RCU loads per query, no lock
//! held, no message sent, no coordination with ingest (see
//! `dsbn_core::SnapshotServer`) — so queries/s should hold up while
//! ingest saturates the coordinator. That is the claim this bench pins
//! with numbers. Readers time `snapshot()` + evaluate together, so the
//! latency figures include the once-per-settlement resolve fault that one
//! reader absorbs when a new epoch lands.

use dsbn_bench::json::Json;
use dsbn_bench::{json, resolve_networks, Args, LatencyRecorder, Table};
use dsbn_core::{run_cluster_tracker, Scheme, SnapshotHub, SnapshotServer, TrackerConfig};
use dsbn_datagen::TrainingStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// What one reader thread brings home.
struct ReaderOut {
    queries: u64,
    /// Per-query latency in microseconds.
    latency: LatencyRecorder,
    /// Distinct snapshot sequences this reader served from; `> 1` means
    /// the reader really followed settlements mid-stream rather than
    /// answering from one frozen state the whole run.
    seqs_seen: u64,
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let net_name = args.get_str("net", if quick { "sprinkler" } else { "alarm" });
    let nets = resolve_networks(std::slice::from_ref(&net_name), args.get("net-seed", 1u64));
    let net = &nets[0];
    let scheme_name = args.get_str("scheme", "non-uniform");
    let scheme = Scheme::ALL
        .into_iter()
        .find(|s| s.name() == scheme_name.to_ascii_lowercase())
        .unwrap_or_else(|| {
            eprintln!("error: unknown scheme {scheme_name:?} (exact|baseline|uniform|non-uniform)");
            std::process::exit(2);
        });
    let m: u64 = args.get("m", if quick { 40_000 } else { 300_000 });
    let k: usize = args.get("k", if quick { 3 } else { 8 });
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let readers: usize = args.get("readers", if quick { 2 } else { 4 });
    let snapshot_every: u64 = args.get("snapshot-every", if quick { 2_000 } else { 10_000 });
    let chunk: usize = args.get("chunk", 64);
    let coord_workers: usize = args.get("coord-workers", 1);
    let out = args.get_str("out", "mixed_workload");

    // Pre-materialize both workloads outside every measured window: the
    // ingest stream (as `throughput` does) and a pool of query points the
    // readers cycle through, so neither side samples in the hot loop.
    let events: Vec<Vec<usize>> = TrainingStream::new(net, seed).take(m as usize).collect();
    let queries: Vec<Vec<usize>> =
        TrainingStream::new(net, seed ^ 0x9e37_79b9).take(1024).collect();

    let hub = SnapshotHub::new();
    let tc = TrackerConfig::new(scheme)
        .with_k(k)
        .with_eps(eps)
        .with_seed(seed)
        .with_chunk(chunk)
        .with_coord_workers(coord_workers)
        .with_snapshot_every(snapshot_every)
        .with_publish(hub.clone());
    let server = SnapshotServer::new(net, tc.smoothing, hub.clone());

    eprintln!(
        "mixed workload: {} / {} — {m} events, {readers} readers, settlement every \
         {snapshot_every} events ...",
        net.name(),
        scheme.name()
    );

    let stop = AtomicBool::new(false);
    let mut outs: Vec<ReaderOut> = Vec::new();
    let mut run = None;
    let mut ingest_wall = 0.0f64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..readers)
            .map(|r| {
                let (server, stop, queries) = (&server, &stop, &queries);
                scope.spawn(move || {
                    let mut latency = LatencyRecorder::new();
                    let mut n = 0u64;
                    let mut seqs_seen = 0u64;
                    let mut last_seq = u64::MAX;
                    // Offset per reader so threads don't walk the pool in
                    // lockstep. Do-while shape: every reader answers at
                    // least one query even if ingest finishes instantly.
                    let mut i = r;
                    loop {
                        let x = &queries[i % queries.len()];
                        i += 1;
                        let t0 = Instant::now();
                        let snap = server.snapshot();
                        let logp = server.evaluator(&snap).log_query(x);
                        latency.record(t0.elapsed().as_secs_f64() * 1e6);
                        n += 1;
                        assert!(logp.is_finite(), "non-finite answer under serving");
                        if snap.seq != last_seq {
                            last_seq = snap.seq;
                            seqs_seen += 1;
                        }
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                    }
                    ReaderOut { queries: n, latency, seqs_seen }
                })
            })
            .collect();

        let start = Instant::now();
        let res =
            run_cluster_tracker(net, &tc, events.iter().cloned()).expect("cluster run failed");
        ingest_wall = start.elapsed().as_secs_f64();
        stop.store(true, Ordering::Relaxed);
        run = Some(res);
        for h in handles {
            outs.push(h.join().expect("reader thread panicked"));
        }
    });
    let run = run.expect("ingest ran");
    let report = &run.report;

    let total_queries: u64 = outs.iter().map(|o| o.queries).sum();
    let mut latency = LatencyRecorder::new();
    for o in &outs {
        latency.merge(&o.latency);
    }
    let max_seqs_seen = outs.iter().map(|o| o.seqs_seen).max().unwrap_or(0);
    // Queries/s over the ingest window: the rate sustained *while* the
    // pipeline was busy, which is the figure that matters for co-located
    // serving (readers idle-spin a few extra queries during join; those
    // land in the latency sample but not in this rate's denominator).
    let qps = if ingest_wall > 0.0 { total_queries as f64 / ingest_wall } else { f64::NAN };
    let ingest_rate = report.throughput();
    let final_seq = hub.seq();

    // The acceptance anchor, checked live: after the run, the server must
    // answer byte-identically to the end-of-run cluster model.
    let final_bitwise = TrainingStream::new(net, seed ^ 0x51)
        .take(16)
        .all(|x| server.log_query(&x).to_bits() == run.model.log_query(&x).to_bits());

    let doc = Json::obj()
        .field("bench", Json::Str("mixed_workload".into()))
        .field("quick", Json::Bool(quick))
        .field("network", Json::Str(net.name().to_owned()))
        .field("scheme", Json::Str(scheme.name().into()))
        .field("m", Json::UInt(m))
        .field("k", Json::UInt(k as u64))
        .field("eps", Json::Num(eps))
        .field("seed", Json::UInt(seed))
        .field("readers", Json::UInt(readers as u64))
        .field("snapshot_every", Json::UInt(snapshot_every))
        .field("chunk", Json::UInt(chunk as u64))
        .field("coord_workers", Json::UInt(coord_workers as u64))
        .field(
            "ingest",
            Json::obj()
                .field("events", Json::UInt(report.events))
                .field("epochs", Json::UInt(report.epochs))
                .field("snapshots_published", Json::UInt(final_seq))
                .field("wall_secs", Json::Num(ingest_wall))
                .field("events_per_sec", Json::Num(ingest_rate)),
        )
        .field(
            "queries",
            Json::obj()
                .field("total", Json::UInt(total_queries))
                .field("per_sec", Json::Num(qps))
                .field("max_seqs_seen", Json::UInt(max_seqs_seen))
                .field("latency_us", latency.to_json()),
        )
        .field("final_snapshot_bitwise", Json::Bool(final_bitwise));
    let path = json::emit(&doc, &out);

    let mut table = Table::new(
        "mixed workload (ingest + serve)",
        &[
            "network",
            "scheme",
            "readers",
            "ingest ev/s",
            "queries/s",
            "p50 us",
            "p99 us",
            "snapshots",
        ],
    );
    table.row(&[
        net.name().to_owned(),
        scheme.name().into(),
        readers.to_string(),
        format!("{ingest_rate:.0}"),
        format!("{qps:.0}"),
        format!("{:.1}", latency.percentile(0.5)),
        format!("{:.1}", latency.percentile(0.99)),
        final_seq.to_string(),
    ]);
    println!("{}", table.to_markdown());
    println!("(json: {})", path.display());

    if args.has("check") {
        let p50 = latency.percentile(0.5);
        let p99 = latency.percentile(0.99);
        let mut bad: Vec<&str> = Vec::new();
        if !(ingest_rate.is_finite() && ingest_rate > 0.0) {
            bad.push("ingest events/s not finite/positive");
        }
        if !(qps.is_finite() && qps > 0.0) {
            bad.push("queries/s not finite/positive");
        }
        if !(p50.is_finite() && p99.is_finite() && p50 <= p99) {
            bad.push("latency percentiles not sane");
        }
        if final_seq == 0 {
            bad.push("no snapshot ever published");
        }
        if max_seqs_seen < 2 {
            bad.push("readers never observed a mid-stream settlement");
        }
        if !final_bitwise {
            bad.push("final served answers differ from the end-of-run model");
        }
        if !bad.is_empty() {
            eprintln!("error: mixed workload check failed: {}", bad.join("; "));
            std::process::exit(1);
        }
        eprintln!(
            "check ok: {total_queries} queries at {qps:.0}/s against {final_seq} snapshots, \
             final answers byte-identical"
        );
    }
}
