//! Table I: the networks used in the experiments (nodes, edges,
//! parameters), for the calibrated generator presets plus NEW-ALARM.
//!
//! Usage: `cargo run --release -p dsbn-bench --bin exp_table1 [--seed 1]`

use dsbn_bayes::{new_alarm, NetworkSpec};
use dsbn_bench::{Args, Table};

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);

    let paper = [
        ("alarm", 37usize, 46usize, 509usize),
        ("hepar2", 70, 123, 1453),
        ("link", 724, 1125, 14211),
        ("munin", 1041, 1397, 80592),
    ];

    let mut table = Table::new(
        "Table I: Bayesian networks used in the experiments",
        &[
            "dataset",
            "nodes",
            "edges",
            "parameters",
            "paper nodes",
            "paper edges",
            "paper parameters",
            "entries (A_i(x,u) counters)",
            "parent configs (A_i(u) counters)",
            "max |dom|",
            "max parents",
        ],
    );

    for (name, p_nodes, p_edges, p_params) in paper {
        let net = NetworkSpec::by_name(name).unwrap().generate(seed).unwrap();
        let s = net.stats();
        table.row(&[
            name.to_string(),
            s.n_nodes.to_string(),
            s.n_edges.to_string(),
            s.n_parameters.to_string(),
            p_nodes.to_string(),
            p_edges.to_string(),
            p_params.to_string(),
            s.n_entries.to_string(),
            s.n_parent_configs.to_string(),
            s.max_cardinality.to_string(),
            s.max_parents.to_string(),
        ]);
    }
    let na = new_alarm(seed).unwrap();
    let s = na.stats();
    table.row(&[
        "new-alarm".into(),
        s.n_nodes.to_string(),
        s.n_edges.to_string(),
        s.n_parameters.to_string(),
        "37".into(),
        "46".into(),
        "-".into(),
        s.n_entries.to_string(),
        s.n_parent_configs.to_string(),
        s.max_cardinality.to_string(),
        s.max_parents.to_string(),
    ]);

    table.emit("table1");
}
