//! Big-network hot-path bench: the Algorithm-2 id-mapping cost at 500–5000
//! variables, before and after the stride-table specialization, in the same
//! JSON document (`results/bignet.json`) so the improvement is *reported*,
//! not inferred across files.
//!
//! Every (network, scheme, runtime) cell runs twice — once with
//! [`MappingMode::Reference`] (the pre-stride Horner walk, preserved
//! verbatim) and once with [`MappingMode::Strided`] — over identical
//! seeded streams. The two modes are bit-identical in results (pinned in
//! `tests/bignet_equivalence.rs`); this bench measures only their speed.
//!
//! ```sh
//! cargo run --release -p dsbn-bench --bin bignet             # full sweep
//! cargo run --release -p dsbn-bench --bin bignet -- --quick  # CI (500-var)
//! ```
//!
//! Flags: `--nets big500,big1500,munin-stress,big5000` `--schemes
//! exact,non-uniform` `--touches <sim counter-touch budget>`
//! `--cluster-touches <cluster budget>` `--k` `--eps` `--seed` `--runs`
//! `--chunk` `--out <results/<out>.json>` `--quick` `--check` (exit
//! non-zero unless every events/s is finite and positive, and the two
//! mappings agree on messages and bytes wherever the run is deterministic).
//!
//! The per-event cost is `2n` counter touches, so event budgets are set in
//! *touches* and divided by `2n` per network: each preset does comparable
//! total work and the events/s figures expose the per-variable constant.
//! Three runtimes per preset: `map` is the id-mapping kernel in isolation
//! (`map_chunk` only, both modes timed interleaved so machine drift
//! cancels — the cleanest view of the stride-table delta); `sim` drives
//! [`AnyTracker::observe_chunk`] over pre-built [`EventChunk`]s (no
//! sampling or re-chunking in the timed region); `cluster` is the
//! end-to-end threaded pipeline, whose throughput on a 1-CPU container is
//! scheduler-noisy — compare within this file only.

use dsbn_bayes::BayesianNetwork;
use dsbn_bench::json::Json;
use dsbn_bench::{json, resolve_networks, Args, LatencyRecorder};
use dsbn_core::{build_tracker, run_cluster_tracker, MappingMode, Scheme, TrackerConfig};
use dsbn_datagen::{EventChunk, TrainingStream};
use std::time::Instant;

/// One runtime measurement under one mapping mode.
struct Record {
    network: String,
    n_vars: u64,
    n_counters: u64,
    scheme: &'static str,
    runtime: &'static str,
    mapping: &'static str,
    events: u64,
    secs: f64,
    events_per_sec: f64,
    messages: u64,
    bytes: u64,
}

impl Record {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("network", Json::Str(self.network.clone()))
            .field("n_vars", Json::UInt(self.n_vars))
            .field("n_counters", Json::UInt(self.n_counters))
            .field("scheme", Json::Str(self.scheme.into()))
            .field("runtime", Json::Str(self.runtime.into()))
            .field("mapping", Json::Str(self.mapping.into()))
            .field("events", Json::UInt(self.events))
            .field("secs", Json::Num(self.secs))
            .field("events_per_sec", Json::Num(self.events_per_sec))
            .field("messages", Json::UInt(self.messages))
            .field("bytes", Json::UInt(self.bytes))
    }

    /// Key of the (network, scheme, runtime) cell this record belongs to —
    /// the two mapping modes of one cell form a before/after pair.
    fn cell(&self) -> String {
        format!("{}/{}/{}", self.network, self.scheme, self.runtime)
    }
}

fn median(values: &[f64]) -> f64 {
    let mut rec = LatencyRecorder::new();
    for &v in values {
        rec.record(v);
    }
    rec.percentile(0.5)
}

fn mode_name(mode: MappingMode) -> &'static str {
    match mode {
        MappingMode::Strided => "strided",
        MappingMode::Reference => "reference",
    }
}

/// Events for a touch budget on an `n`-variable network (2n touches per
/// event), floored so tiny budgets still measure something.
fn events_for(touches: u64, n_vars: usize) -> u64 {
    (touches / (2 * n_vars as u64)).max(512)
}

/// Materialize `m` seeded events into 256-event slabs outside any timed
/// region.
fn materialize_chunks(net: &BayesianNetwork, seed: u64, m: u64) -> Vec<EventChunk> {
    let mut chunks = Vec::new();
    let mut stream = TrainingStream::new(net, seed).take(m as usize);
    loop {
        let mut chunk = EventChunk::with_capacity(net.n_vars(), 256);
        while chunk.len() < 256 {
            match stream.next() {
                Some(x) => chunk.push(&x),
                None => break,
            }
        }
        if chunk.is_empty() {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// The mapping kernel in isolation: `map_chunk` over the slabs, no counter
/// sweep — the cost the stride table attacks, measured without the
/// protocol work that dominates (and noises up) the end-to-end rows. The
/// two modes are timed interleaved within each repeat so slow machine
/// drift cancels out of the comparison.
fn map_records(net: &BayesianNetwork, m: u64, seed: u64, runs: usize) -> Vec<Record> {
    let chunks = materialize_chunks(net, seed, m);
    let mut layouts = Vec::new();
    for mode in [MappingMode::Reference, MappingMode::Strided] {
        let mut layout = dsbn_core::CounterLayout::new(net);
        layout.set_mapping(mode);
        layouts.push((mode, layout, Vec::with_capacity(runs)));
    }
    let mut ids = Vec::new();
    for run in 0..=runs {
        for (_, layout, secs) in layouts.iter_mut() {
            let start = Instant::now();
            for chunk in &chunks {
                layout.map_chunk(chunk, &mut ids);
                std::hint::black_box(ids.last().copied());
            }
            if run > 0 {
                secs.push(start.elapsed().as_secs_f64());
            }
        }
    }
    layouts
        .iter()
        .map(|(mode, layout, secs)| {
            let secs = median(secs);
            Record {
                network: net.name().to_owned(),
                n_vars: net.n_vars() as u64,
                n_counters: layout.n_counters() as u64,
                scheme: "-",
                runtime: "map",
                mapping: mode_name(*mode),
                events: m,
                secs,
                events_per_sec: if secs > 0.0 { m as f64 / secs } else { f64::NAN },
                messages: 0,
                bytes: 0,
            }
        })
        .collect()
}

#[allow(clippy::too_many_arguments)]
fn sim_record(
    net: &BayesianNetwork,
    scheme: Scheme,
    mode: MappingMode,
    m: u64,
    k: usize,
    eps: f64,
    seed: u64,
    runs: usize,
) -> Record {
    // Pre-chunk the stream outside the timed region: the timed loop is
    // exactly map_chunk + observe_chunk, the 2n-touch hot path.
    let chunks = materialize_chunks(net, seed, m);
    let mut secs = Vec::with_capacity(runs);
    let mut last = None;
    // Same seed per repeat; iteration 0 is an untimed warmup.
    for run in 0..=runs {
        let tc =
            TrackerConfig::new(scheme).with_k(k).with_eps(eps).with_seed(seed).with_mapping(mode);
        let mut tracker = build_tracker(net, &tc);
        let start = Instant::now();
        for chunk in &chunks {
            tracker.observe_chunk(chunk);
        }
        if run > 0 {
            secs.push(start.elapsed().as_secs_f64());
        }
        last = Some(tracker.stats());
    }
    let stats = last.expect("at least one run");
    let secs = median(&secs);
    Record {
        network: net.name().to_owned(),
        n_vars: net.n_vars() as u64,
        n_counters: dsbn_core::CounterLayout::new(net).n_counters() as u64,
        scheme: scheme.name(),
        runtime: "sim",
        mapping: mode_name(mode),
        events: m,
        secs,
        events_per_sec: if secs > 0.0 { m as f64 / secs } else { f64::NAN },
        messages: stats.total(),
        bytes: stats.bytes,
    }
}

#[allow(clippy::too_many_arguments)]
fn cluster_record(
    net: &BayesianNetwork,
    scheme: Scheme,
    mode: MappingMode,
    m: u64,
    k: usize,
    eps: f64,
    seed: u64,
    runs: usize,
    chunk: usize,
) -> Record {
    let events: Vec<Vec<usize>> = TrainingStream::new(net, seed).take(m as usize).collect();
    let mut rates = Vec::with_capacity(runs);
    let mut walls = Vec::with_capacity(runs);
    let mut last = None;
    for run in 0..=runs {
        let tc = TrackerConfig::new(scheme)
            .with_k(k)
            .with_eps(eps)
            .with_seed(seed)
            .with_chunk(chunk)
            .with_mapping(mode);
        let run_out =
            run_cluster_tracker(net, &tc, events.iter().cloned()).expect("cluster run failed");
        if run > 0 {
            rates.push(run_out.report.throughput());
            walls.push(run_out.report.wall_time.as_secs_f64());
        }
        last = Some(run_out.report);
    }
    let report = last.expect("at least one run");
    Record {
        network: net.name().to_owned(),
        n_vars: net.n_vars() as u64,
        n_counters: dsbn_core::CounterLayout::new(net).n_counters() as u64,
        scheme: scheme.name(),
        runtime: "cluster",
        mapping: mode_name(mode),
        events: report.events,
        secs: median(&walls),
        events_per_sec: median(&rates),
        messages: report.stats.total(),
        bytes: report.stats.bytes,
    }
}

fn parse_schemes(names: &[String]) -> Vec<Scheme> {
    names
        .iter()
        .map(|name| {
            Scheme::parse(name).unwrap_or_else(|| {
                eprintln!("error: unknown scheme {name:?} (exact|baseline|uniform|non-uniform)");
                std::process::exit(2);
            })
        })
        .collect()
}

fn main() {
    let args = Args::parse();
    let quick = args.has("quick");
    let default_nets: &[&str] =
        if quick { &["big500"] } else { &["big500", "big1500", "munin-stress", "big5000"] };
    let nets = resolve_networks(&args.get_list("nets", default_nets), args.get("net-seed", 1u64));
    let schemes = parse_schemes(&args.get_list("schemes", &["exact", "non-uniform"]));
    // Counter-touch budgets (events = touches / 2n per net).
    let touches: u64 = args.get("touches", if quick { 4_000_000 } else { 40_000_000 });
    let cluster_touches: u64 =
        args.get("cluster-touches", if quick { 2_000_000 } else { 10_000_000 });
    let k: usize = args.get("k", if quick { 4 } else { 8 });
    let eps: f64 = args.get("eps", 0.1);
    let seed: u64 = args.get("seed", 1);
    let runs: usize = args.get("runs", if quick { 1 } else { 3 });
    let chunk: usize = args.get("chunk", 256usize);
    let out = args.get_str("out", "bignet");
    const MODES: [MappingMode; 2] = [MappingMode::Reference, MappingMode::Strided];

    let mut records = Vec::new();
    for net in &nets {
        let m = events_for(touches, net.n_vars());
        let cm = events_for(cluster_touches, net.n_vars());
        eprintln!("measuring {} / map kernel ({m} events, modes interleaved) ...", net.name());
        records.extend(map_records(net, m, seed, runs.max(5)));
        for &scheme in &schemes {
            for mode in MODES {
                eprintln!(
                    "measuring {} / {} / {} (sim, {m} events) ...",
                    net.name(),
                    scheme.name(),
                    mode_name(mode)
                );
                records.push(sim_record(net, scheme, mode, m, k, eps, seed, runs));
            }
            for mode in MODES {
                eprintln!(
                    "measuring {} / {} / {} (cluster, {cm} events) ...",
                    net.name(),
                    scheme.name(),
                    mode_name(mode)
                );
                records.push(cluster_record(net, scheme, mode, cm, k, eps, seed, runs, chunk));
            }
        }
    }

    // Before/after speedups per (network, scheme, runtime) cell.
    let mut speedups = Vec::new();
    for r in &records {
        if r.mapping != "strided" {
            continue;
        }
        let Some(reference) =
            records.iter().find(|b| b.mapping == "reference" && b.cell() == r.cell())
        else {
            continue;
        };
        speedups.push((r.cell(), reference.events_per_sec, r.events_per_sec));
    }

    let doc = Json::obj()
        .field("bench", Json::Str("bignet".into()))
        .field("quick", Json::Bool(quick))
        .field("touches", Json::UInt(touches))
        .field("cluster_touches", Json::UInt(cluster_touches))
        .field("k", Json::UInt(k as u64))
        .field("eps", Json::Num(eps))
        .field("seed", Json::UInt(seed))
        .field("runs", Json::UInt(runs as u64))
        .field("chunk", Json::UInt(chunk as u64))
        .field("records", Json::Arr(records.iter().map(Record::to_json).collect()))
        .field(
            "speedups",
            Json::Arr(
                speedups
                    .iter()
                    .map(|(cell, before, after)| {
                        Json::obj()
                            .field("cell", Json::Str(cell.clone()))
                            .field("reference_events_per_sec", Json::Num(*before))
                            .field("strided_events_per_sec", Json::Num(*after))
                            .field("speedup", Json::Num(after / before))
                    })
                    .collect(),
            ),
        );
    let path = json::emit(&doc, &out);

    let mut table = dsbn_bench::Table::new(
        "Big-network hot path (before/after)",
        &["network", "n", "counters", "scheme", "runtime", "mapping", "events", "events/s"],
    );
    for r in &records {
        table.row(&[
            r.network.clone(),
            r.n_vars.to_string(),
            r.n_counters.to_string(),
            r.scheme.into(),
            r.runtime.into(),
            r.mapping.into(),
            r.events.to_string(),
            format!("{:.0}", r.events_per_sec),
        ]);
    }
    println!("{}", table.to_markdown());
    for (cell, before, after) in &speedups {
        println!("speedup {cell}: {:.2}x ({before:.0} -> {after:.0} events/s)", after / before);
    }
    println!("(json: {})", path.display());

    if args.has("check") {
        let mut bad = Vec::new();
        for r in &records {
            if !(r.events_per_sec.is_finite() && r.events_per_sec > 0.0) {
                bad.push(format!("{}: non-finite or zero events/s", r.cell()));
            }
        }
        // Where the pipeline is deterministic, the two mappings must agree
        // on the paper's traffic tallies exactly: always in the sim (one
        // thread, one rng sequence), and for the exact scheme on the
        // cluster (HYZ cluster tallies vary with thread interleaving).
        for r in records.iter().filter(|r| r.mapping == "strided") {
            let deterministic = r.runtime == "sim" || r.scheme == "exact";
            if !deterministic {
                continue;
            }
            if let Some(reference) =
                records.iter().find(|b| b.mapping == "reference" && b.cell() == r.cell())
            {
                if (r.messages, r.bytes) != (reference.messages, reference.bytes) {
                    bad.push(format!(
                        "{}: mapping modes disagree: strided {}msg/{}B vs reference {}msg/{}B",
                        r.cell(),
                        r.messages,
                        r.bytes,
                        reference.messages,
                        reference.bytes
                    ));
                }
            }
        }
        if !bad.is_empty() {
            for b in &bad {
                eprintln!("error: {b}");
            }
            std::process::exit(1);
        }
        eprintln!(
            "check ok: {} records finite and positive, mappings agree on deterministic tallies",
            records.len()
        );
    }
}
