//! §VI-B NEW-ALARM experiment: on a network with *unbalanced* domain
//! cardinalities (ALARM with 6 variables inflated to 20 values), the
//! NONUNIFORM allocation should beat UNIFORM noticeably (the paper
//! measures ~35% fewer messages), whereas on the stock networks the two
//! are close.
//!
//! Usage:
//!   cargo run --release -p dsbn-bench --bin exp_new_alarm
//!   cargo run --release -p dsbn-bench --bin exp_new_alarm -- --m 500000
//!
//! Options: --m 200000 --eps --k --seed

use dsbn_bench::output::fmt;
use dsbn_bench::{resolve_networks, sweep_network, Args, SweepConfig, Table};
use dsbn_core::Scheme;

fn main() {
    let args = Args::parse();
    let seed: u64 = args.get("seed", 1);
    let checkpoints: Vec<u64> = args
        .get_list("ms", &["200000", "1000000", "4000000"])
        .iter()
        .map(|s| s.parse().unwrap())
        .collect();
    let nets = resolve_networks(&["alarm".into(), "new-alarm".into()], seed);

    // Under strictly variance-faithful counters, NONUNIFORM's advantage
    // appears once the inflated-domain counters leave the exact-counting
    // phase (per-counter count > sqrt(k)/nu_i) — hence the m sweep: the
    // saving grows from ~0 toward the paper's ~35% as m grows.
    let mut cfg = SweepConfig::new(checkpoints);
    cfg.eps = args.get("eps", 0.2);
    cfg.k = args.get("k", 10);
    cfg.seed = seed;
    cfg.n_queries = 500;
    cfg.schemes = vec![Scheme::Uniform, Scheme::NonUniform];

    let mut table = Table::new(
        "NEW-ALARM: UNIFORM vs NONUNIFORM on unbalanced cardinalities",
        &["network", "scheme", "m", "messages", "mean error to MLE", "saving vs uniform"],
    );
    for net in &nets {
        let records = sweep_network(net, &cfg);
        for r in &records {
            let uniform = records.iter().find(|u| u.scheme == "uniform" && u.m == r.m).unwrap();
            let saving = 1.0 - r.messages as f64 / uniform.messages as f64;
            table.row(&[
                net.name().to_owned(),
                r.scheme.clone(),
                r.m.to_string(),
                fmt::sci(r.messages as f64),
                fmt::err(r.err_mle.map(|e| e.mean).unwrap_or(0.0)),
                format!("{:.1}%", 100.0 * saving),
            ]);
        }
    }
    table.emit("new_alarm");
}
