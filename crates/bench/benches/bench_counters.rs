//! Microbenchmark: per-arrival cost of each distributed counter protocol
//! (the primitive on the tracker's hot path — every event touches 2n
//! counters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsbn_counters::msg::DownMsg;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol, SingleCounterSim};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: u64 = 50_000;
const K: usize = 10;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_increment");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("exact", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(ExactProtocol, K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.bench_function(BenchmarkId::new("deterministic_eps0.01", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(DeterministicProtocol::new(0.01), K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.bench_function(BenchmarkId::new("hyz_eps0.01", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(HyzProtocol::new(0.01), K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.finish();
}

/// The HYZ *site* increment in isolation — the per-arrival cost every one
/// of a tracker's `2n` counter touches pays, with no coordinator in the
/// loop. A site mid-round at sampling probability `p < 1` exercises the
/// geometric gap draw, whose `ln(1 - p)` is cached in the site state (paid
/// once per round, not once per draw).
fn bench_hyz_site_increment(c: &mut Criterion) {
    let mut group = c.benchmark_group("hyz_site_increment");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);
    for p in [0.5f64, 0.01] {
        group.bench_function(BenchmarkId::new("p", p), |b| {
            let proto = HyzProtocol::new(0.1);
            b.iter(|| {
                let mut rng = SmallRng::seed_from_u64(3);
                let mut site = proto.new_site();
                // Move the site into round 1 at probability p.
                let _ = proto.handle_down(&mut site, DownMsg::NewRound { round: 1, p }, &mut rng);
                let mut reports = 0u64;
                for _ in 0..N {
                    if proto.increment(&mut site, &mut rng).is_some() {
                        reports += 1;
                    }
                }
                black_box(reports)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_counters, bench_hyz_site_increment);
criterion_main!(benches);
