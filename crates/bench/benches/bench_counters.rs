//! Microbenchmark: per-arrival cost of each distributed counter protocol
//! (the primitive on the tracker's hot path — every event touches 2n
//! counters).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol, SingleCounterSim};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

const N: u64 = 50_000;
const K: usize = 10;

fn bench_counters(c: &mut Criterion) {
    let mut group = c.benchmark_group("counter_increment");
    group.throughput(Throughput::Elements(N));
    group.sample_size(10);

    group.bench_function(BenchmarkId::new("exact", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(ExactProtocol, K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.bench_function(BenchmarkId::new("deterministic_eps0.01", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(DeterministicProtocol::new(0.01), K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.bench_function(BenchmarkId::new("hyz_eps0.01", K), |b| {
        b.iter(|| {
            let mut rng = SmallRng::seed_from_u64(1);
            let mut sim = SingleCounterSim::new(HyzProtocol::new(0.01), K);
            for i in 0..N {
                sim.increment((i % K as u64) as usize, &mut rng);
            }
            black_box(sim.estimate())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_counters);
criterion_main!(benches);
