//! Microbenchmark: Algorithm-2 id mapping and the sim counter sweep at
//! small (ALARM, n=37) through big-network (n=500, n=5000) scale.
//!
//! Three kernels per network size:
//!
//! - `map_chunk/strided` — the stride-table mapping (the default).
//! - `map_chunk/reference` — the original Horner walk, kept as
//!   [`MappingMode::Reference`] for before/after comparison.
//! - `observe_chunk` — mapping plus the full per-event counter sweep on
//!   the exact tracker (the end-to-end sim UPDATE hot path).
//!
//! Throughput is reported in *events*; one event touches `2n` counters.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsbn_bayes::{BayesianNetwork, NetworkSpec};
use dsbn_core::{build_tracker, CounterLayout, MappingMode, Scheme, TrackerConfig};
use dsbn_datagen::{EventChunk, TrainingStream};
use std::hint::black_box;

const CHUNK: usize = 256;

fn net_for(name: &str) -> BayesianNetwork {
    match name {
        "alarm" => NetworkSpec::alarm().generate(1).unwrap(),
        other => NetworkSpec::by_name(other).unwrap().generate(1).unwrap(),
    }
}

fn sample_chunk(net: &BayesianNetwork) -> EventChunk {
    let mut chunk = EventChunk::with_capacity(net.n_vars(), CHUNK);
    for x in TrainingStream::new(net, 7).take(CHUNK) {
        chunk.push(&x);
    }
    chunk
}

fn bench_map_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("map_chunk");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CHUNK as u64));
    for name in ["alarm", "big500", "big5000"] {
        let net = net_for(name);
        let chunk = sample_chunk(&net);
        let mut ids = Vec::new();
        for mode in [MappingMode::Strided, MappingMode::Reference] {
            let mut layout = CounterLayout::new(&net);
            layout.set_mapping(mode);
            let label = match mode {
                MappingMode::Strided => "strided",
                MappingMode::Reference => "reference",
            };
            group.bench_function(BenchmarkId::new(label, name), |b| {
                b.iter(|| {
                    layout.map_chunk(black_box(&chunk), &mut ids);
                    black_box(ids.last().copied())
                })
            });
        }
    }
    group.finish();
}

fn bench_observe_chunk(c: &mut Criterion) {
    let mut group = c.benchmark_group("observe_chunk");
    group.sample_size(10);
    group.throughput(Throughput::Elements(CHUNK as u64));
    for name in ["alarm", "big500", "big5000"] {
        let net = net_for(name);
        let chunk = sample_chunk(&net);
        for mode in [MappingMode::Strided, MappingMode::Reference] {
            let tc = TrackerConfig::new(Scheme::ExactMle).with_k(8).with_mapping(mode);
            let mut tracker = build_tracker(&net, &tc);
            let label = match mode {
                MappingMode::Strided => "strided",
                MappingMode::Reference => "reference",
            };
            group.bench_function(BenchmarkId::new(label, name), |b| {
                b.iter(|| tracker.observe_chunk(black_box(&chunk)))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_map_chunk, bench_observe_chunk);
criterion_main!(benches);
