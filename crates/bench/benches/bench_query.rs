//! Microbenchmark: QUERY latency (Algorithm 3) and Markov-blanket
//! classification latency on trained trackers.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsbn_bayes::NetworkSpec;
use dsbn_core::{build_tracker, Scheme, TrackerConfig};
use dsbn_datagen::{generate_queries, QueryConfig, TrainingStream};
use std::hint::black_box;

fn bench_query(c: &mut Criterion) {
    let net = NetworkSpec::alarm().generate(1).unwrap();
    let queries = generate_queries(&net, &QueryConfig { n_queries: 64, ..Default::default() }, 3);
    let mut group = c.benchmark_group("query_alarm");
    group.sample_size(20);
    for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
        let mut t = build_tracker(&net, &TrackerConfig::new(scheme).with_k(10));
        t.train(TrainingStream::new(&net, 4), 20_000);
        group.bench_function(BenchmarkId::new("log_query", scheme.name()), |b| {
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % queries.len();
                black_box(t.log_query(&queries[i]))
            })
        });
        group.bench_function(BenchmarkId::new("classify", scheme.name()), |b| {
            let mut x = queries[0].clone();
            let mut target = 0;
            b.iter(|| {
                target = (target + 1) % net.n_vars();
                black_box(t.classify(target, &mut x))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
