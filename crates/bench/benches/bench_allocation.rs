//! Microbenchmark: error-budget allocation — the closed-form Lagrange
//! solution (Eq. 7/8) vs. the numeric projected-gradient solver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dsbn_bayes::NetworkSpec;
use dsbn_core::allocation::{closed_form_inverse_sum, minimize_inverse_sum};
use dsbn_core::{allocate, Scheme};
use std::hint::black_box;

fn bench_allocation(c: &mut Criterion) {
    let mut group = c.benchmark_group("allocation");
    group.sample_size(20);
    for name in ["alarm", "munin"] {
        let net = NetworkSpec::by_name(name).unwrap().generate(1).unwrap();
        group.bench_function(BenchmarkId::new("closed_form", name), |b| {
            b.iter(|| black_box(allocate(Scheme::NonUniform, &net, 0.1)))
        });
        let weights: Vec<f64> = (0..net.n_vars())
            .map(|i| (net.cardinality(i) * net.parent_configs(i)) as f64)
            .collect();
        group.bench_function(BenchmarkId::new("numeric_1k_iters", name), |b| {
            b.iter(|| black_box(minimize_inverse_sum(&weights, 0.01, 1000)))
        });
        group.bench_function(BenchmarkId::new("closed_form_raw", name), |b| {
            b.iter(|| black_box(closed_form_inverse_sum(&weights, 0.01)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_allocation);
criterion_main!(benches);
