//! Microbenchmark: tracker UPDATE throughput (Algorithm 2) per algorithm
//! on ALARM — the end-to-end per-event cost driving every experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsbn_bayes::NetworkSpec;
use dsbn_core::{build_tracker, Scheme, TrackerConfig};
use dsbn_datagen::TrainingStream;
use std::hint::black_box;

const EVENTS: u64 = 5_000;

fn bench_update(c: &mut Criterion) {
    let net = NetworkSpec::alarm().generate(1).unwrap();
    let events: Vec<_> = TrainingStream::new(&net, 2).take(EVENTS as usize).collect();
    let mut group = c.benchmark_group("tracker_update_alarm");
    group.throughput(Throughput::Elements(EVENTS));
    group.sample_size(10);
    for scheme in Scheme::ALL {
        group.bench_function(BenchmarkId::from_parameter(scheme.name()), |b| {
            b.iter(|| {
                let mut t =
                    build_tracker(&net, &TrackerConfig::new(scheme).with_k(10).with_eps(0.1));
                for x in &events {
                    t.observe(x);
                }
                black_box(t.stats().total())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_update);
criterion_main!(benches);
