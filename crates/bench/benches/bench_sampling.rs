//! Microbenchmark: ancestral sampling rate (§VI-A training data
//! generation) on a small and a large network.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dsbn_bayes::{AncestralSampler, NetworkSpec};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ancestral_sampling");
    group.sample_size(20);
    for name in ["alarm", "link"] {
        let net = NetworkSpec::by_name(name).unwrap().generate(1).unwrap();
        let sampler = AncestralSampler::new(&net);
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let mut rng = SmallRng::seed_from_u64(7);
            let mut x = Vec::new();
            b.iter(|| {
                sampler.sample_into(&mut rng, &mut x);
                black_box(x.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);
