//! Flat counter addressing for a Bayesian network.
//!
//! A tracker maintains two counter groups per variable `i` (Algorithm 1):
//! family counters `A_i(x_i, u)` — one per CPD entry — and parent counters
//! `A_i(u)` — one per parent configuration. [`CounterLayout`] assigns every
//! counter a dense `u32` id:
//!
//! ```text
//! [ var 0 families | var 0 parents | var 1 families | var 1 parents | ... ]
//! ```
//!
//! and maps an event to the `2n` ids it increments (Algorithm 2). The
//! layout is self-contained (it copies the structure out of the network) so
//! it can be shared with site threads in the cluster runtime.

use dsbn_bayes::BayesianNetwork;
use dsbn_datagen::EventChunk;
use serde::{Deserialize, Serialize};

/// Dense counter addressing for one network structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterLayout {
    /// Cardinality `J_i` per variable.
    cards: Vec<u32>,
    /// Sorted parent lists in CSR form: variable `i`'s parents are
    /// `parent_flat[parent_start[i]..parent_start[i+1]]`. One contiguous
    /// allocation, so the per-event id mapping (`map_event`, the UPDATE
    /// hot path) walks memory linearly instead of chasing one heap
    /// pointer per variable.
    parent_flat: Vec<u32>,
    /// `n_vars + 1` offsets into `parent_flat`.
    parent_start: Vec<u32>,
    /// Offset of variable `i`'s family block.
    family_offset: Vec<u32>,
    /// Offset of variable `i`'s parent block.
    parent_offset: Vec<u32>,
    /// Parent-configuration count `K_i`.
    parent_configs: Vec<u32>,
    n_counters: u32,
}

impl CounterLayout {
    /// Extract the layout from a network's structure.
    pub fn new(net: &BayesianNetwork) -> Self {
        let n = net.n_vars();
        let mut cards = Vec::with_capacity(n);
        let mut parent_flat = Vec::new();
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut family_offset = Vec::with_capacity(n);
        let mut parent_offset = Vec::with_capacity(n);
        let mut parent_configs = Vec::with_capacity(n);
        let mut next: u64 = 0;
        parent_start.push(0);
        for i in 0..n {
            let j = net.cardinality(i) as u64;
            let k = net.parent_configs(i) as u64;
            cards.push(j as u32);
            parent_flat.extend(net.dag().parents(i).iter().map(|&p| p as u32));
            parent_start.push(parent_flat.len() as u32);
            family_offset.push(next as u32);
            next += j * k;
            parent_offset.push(next as u32);
            next += k;
            parent_configs.push(k as u32);
            assert!(next <= u32::MAX as u64, "counter space exceeds u32");
        }
        CounterLayout {
            cards,
            parent_flat,
            parent_start,
            family_offset,
            parent_offset,
            parent_configs,
            n_counters: next as u32,
        }
    }

    /// Total number of counters (`sum_i J_i K_i + K_i`).
    pub fn n_counters(&self) -> usize {
        self.n_counters as usize
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.cards.len()
    }

    /// Cardinality `J_i`.
    #[inline]
    pub fn cardinality(&self, i: usize) -> usize {
        self.cards[i] as usize
    }

    /// Parent-configuration count `K_i`.
    #[inline]
    pub fn parent_configs(&self, i: usize) -> usize {
        self.parent_configs[i] as usize
    }

    /// Parent configuration index of variable `i` under assignment `x`
    /// (same convention as [`dsbn_bayes::Cpt::parent_config_index`]).
    #[inline]
    pub fn parent_config_of(&self, i: usize, x: &[usize]) -> usize {
        let s = self.parent_start[i] as usize;
        let e = self.parent_start[i + 1] as usize;
        let mut u = 0usize;
        for &p in &self.parent_flat[s..e] {
            u = u * self.cards[p as usize] as usize + x[p as usize];
        }
        u
    }

    /// Id of family counter `A_i(x_i, u)`.
    #[inline]
    pub fn family_id(&self, i: usize, value: usize, u: usize) -> u32 {
        debug_assert!(value < self.cards[i] as usize);
        debug_assert!(u < self.parent_configs[i] as usize);
        self.family_offset[i] + (u * self.cards[i] as usize + value) as u32
    }

    /// Id of parent counter `A_i(u)`.
    #[inline]
    pub fn parent_id(&self, i: usize, u: usize) -> u32 {
        debug_assert!(u < self.parent_configs[i] as usize);
        self.parent_offset[i] + u as u32
    }

    /// Algorithm 2: the `2n` counter ids incremented by event `x`, written
    /// into `out`.
    pub fn map_event(&self, x: &[usize], out: &mut Vec<u32>) {
        debug_assert_eq!(x.len(), self.n_vars());
        out.clear();
        out.reserve(2 * self.n_vars());
        for i in 0..self.n_vars() {
            let u = self.parent_config_of(i, x);
            out.push(self.family_id(i, x[i], u));
            out.push(self.parent_id(i, u));
        }
    }

    /// [`Self::map_event`] for an event already in `u32` form (the cluster
    /// runtime's [`EventChunk`] slab representation).
    pub fn map_event_u32(&self, x: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(x.len(), self.n_vars());
        out.clear();
        out.reserve(2 * self.n_vars());
        self.append_event_ids(x, out);
    }

    /// The `2n` ids of one `u32` event, appended without clearing.
    #[inline]
    fn append_event_ids(&self, x: &[u32], out: &mut Vec<u32>) {
        for i in 0..self.n_vars() {
            let s = self.parent_start[i] as usize;
            let e = self.parent_start[i + 1] as usize;
            let mut u = 0usize;
            for &p in &self.parent_flat[s..e] {
                u = u * self.cards[p as usize] as usize + x[p as usize] as usize;
            }
            debug_assert!((x[i] as usize) < self.cards[i] as usize, "value out of range");
            out.push(self.family_id(i, x[i] as usize, u));
            out.push(self.parent_id(i, u));
        }
    }

    /// Bulk Algorithm 2 over a whole [`EventChunk`]: one CSR sweep writes
    /// every event's `2n` counter ids into the caller's scratch buffer,
    /// back to back (fixed stride `2 * n_vars`, so event `e`'s ids are
    /// `out[e * 2n .. (e + 1) * 2n]`). Ids are identical to per-event
    /// [`Self::map_event`] calls in event order; the chunk sweep just
    /// amortizes the per-event call and `clear`/`reserve` overhead and
    /// walks the CSR parent lists linearly over a hot slab.
    pub fn map_chunk(&self, chunk: &EventChunk, out: &mut Vec<u32>) {
        out.clear();
        if chunk.is_empty() {
            return;
        }
        assert_eq!(chunk.n_vars(), self.n_vars(), "chunk width must match the layout");
        out.reserve(2 * self.n_vars() * chunk.len());
        for ev in chunk.iter() {
            self.append_event_ids(ev, out);
        }
    }

    /// Range starts for sharding the counter space across `workers`
    /// coordinator decode workers (`dsbn_monitor::ShardPlan::from_starts`
    /// input): cut points land only on variable-block boundaries (the
    /// start of a variable's family block), as close to the even split
    /// `w * n / workers` as the blocks allow, so a shard always owns whole
    /// variables — a query's family/parent counter pair never straddles
    /// two workers.
    pub fn shard_starts(&self, workers: usize) -> Vec<u32> {
        assert!(workers >= 1, "need at least one worker");
        let n = self.n_counters;
        let mut starts = Vec::with_capacity(workers);
        starts.push(0u32);
        for w in 1..workers {
            let target = (w as u64 * n as u64 / workers as u64) as u32;
            // Boundaries: each variable's family-block start, plus n.
            let cut = self
                .family_offset
                .iter()
                .copied()
                .chain(std::iter::once(n))
                .min_by_key(|&b| b.abs_diff(target))
                .unwrap_or(n);
            // Keep monotone: a tiny tail variable can pull the nearest
            // boundary below the previous cut.
            starts.push(cut.max(*starts.last().unwrap()));
        }
        starts
    }

    /// Build the per-counter value vector `f(counter) -> value` from
    /// per-variable family/parent values, in layout order. Used to assign
    /// per-counter error budgets from an
    /// [`crate::allocation::EpsAllocation`].
    pub fn per_counter<T: Copy>(&self, family: &[T], parent: &[T]) -> Vec<T> {
        assert_eq!(family.len(), self.n_vars());
        assert_eq!(parent.len(), self.n_vars());
        let mut out = Vec::with_capacity(self.n_counters());
        for i in 0..self.n_vars() {
            let jk = self.cards[i] as usize * self.parent_configs[i] as usize;
            out.extend(std::iter::repeat_n(family[i], jk));
            out.extend(std::iter::repeat_n(parent[i], self.parent_configs[i] as usize));
        }
        debug_assert_eq!(out.len(), self.n_counters());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, NetworkSpec};

    #[test]
    fn sprinkler_layout_shape() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        // Families: 2 + 4 + 4 + 8 = 18; parents: 1 + 2 + 2 + 4 = 9.
        assert_eq!(l.n_counters(), 27);
        assert_eq!(l.n_vars(), 4);
        // Block boundaries are disjoint and ordered.
        assert_eq!(l.family_id(0, 0, 0), 0);
        assert_eq!(l.parent_id(0, 0), 2);
        assert_eq!(l.family_id(1, 0, 0), 3);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        let mut seen = vec![false; l.n_counters()];
        for i in 0..l.n_vars() {
            for u in 0..l.parent_configs(i) {
                for v in 0..l.cardinality(i) {
                    let id = l.family_id(i, v, u) as usize;
                    assert!(!seen[id], "duplicate id {id}");
                    seen[id] = true;
                }
                let id = l.parent_id(i, u) as usize;
                assert!(!seen[id], "duplicate id {id}");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "ids not dense");
    }

    #[test]
    fn map_event_gives_2n_consistent_ids() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        let x = vec![1usize, 0, 1, 1];
        let mut ids = Vec::new();
        l.map_event(&x, &mut ids);
        assert_eq!(ids.len(), 8);
        // WetGrass (var 3): parents (S=0, R=1) -> u = 0*2+1 = 1.
        assert_eq!(l.parent_config_of(3, &x), 1);
        assert_eq!(ids[6], l.family_id(3, 1, 1));
        assert_eq!(ids[7], l.parent_id(3, 1));
    }

    #[test]
    fn map_chunk_matches_per_event_mapping() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        let sampler = dsbn_bayes::AncestralSampler::new(&net);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let events: Vec<Vec<usize>> = (0..64).map(|_| sampler.sample(&mut rng)).collect();
        let mut chunk = EventChunk::with_capacity(l.n_vars(), events.len());
        for x in &events {
            chunk.push(x);
        }
        let mut bulk = Vec::new();
        l.map_chunk(&chunk, &mut bulk);
        assert_eq!(bulk.len(), 2 * l.n_vars() * events.len());
        let mut single = Vec::new();
        let mut single_u32 = Vec::new();
        for (e, x) in events.iter().enumerate() {
            l.map_event(x, &mut single);
            let ids = &bulk[e * 2 * l.n_vars()..(e + 1) * 2 * l.n_vars()];
            assert_eq!(ids, &single[..], "event {e}");
            // The u32 path agrees too.
            let x32: Vec<u32> = x.iter().map(|&v| v as u32).collect();
            l.map_event_u32(&x32, &mut single_u32);
            assert_eq!(single_u32, single, "event {e} (u32)");
        }
        // Empty chunk: no ids, no panic.
        l.map_chunk(&EventChunk::new(), &mut bulk);
        assert!(bulk.is_empty());
    }

    #[test]
    fn parent_config_matches_network() {
        let net = NetworkSpec::hepar2().generate(2).unwrap();
        let l = CounterLayout::new(&net);
        let sampler = dsbn_bayes::AncestralSampler::new(&net);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = sampler.sample(&mut rng);
            for i in 0..net.n_vars() {
                assert_eq!(l.parent_config_of(i, &x), net.parent_config_of(i, &x));
            }
        }
    }

    #[test]
    fn shard_starts_cut_on_variable_blocks() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        // Sprinkler: n = 27, family blocks start at 0, 3, 9, 15.
        let starts = l.shard_starts(4);
        assert_eq!(starts[0], 0);
        assert_eq!(starts.len(), 4);
        let boundaries = [0u32, 3, 9, 15, 27];
        for &s in &starts {
            assert!(boundaries.contains(&s), "cut {s} not on a variable block");
        }
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "not monotone: {starts:?}");
        // One worker owns everything.
        assert_eq!(l.shard_starts(1), vec![0]);
        // More workers than variables: monotone, still valid cut points.
        let many = l.shard_starts(9);
        assert_eq!(many.len(), 9);
        assert!(many.windows(2).all(|w| w[0] <= w[1]));
        for &s in &many {
            assert!(boundaries.contains(&s));
        }
    }

    #[test]
    fn shard_starts_feed_a_valid_plan() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        for workers in [1usize, 2, 4, 16] {
            let starts = l.shard_starts(workers);
            let plan = dsbn_monitor::ShardPlan::from_starts(starts, l.n_counters())
                .expect("layout starts must form a valid plan");
            assert_eq!(plan.workers(), workers);
            let covered: usize = (0..workers).map(|w| plan.range(w).len()).sum();
            assert_eq!(covered, l.n_counters());
        }
    }

    #[test]
    fn per_counter_expansion() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        let fam = vec![1.0, 2.0, 3.0, 4.0];
        let par = vec![10.0, 20.0, 30.0, 40.0];
        let v = l.per_counter(&fam, &par);
        assert_eq!(v.len(), 27);
        assert_eq!(v[l.family_id(2, 1, 0) as usize], 3.0);
        assert_eq!(v[l.parent_id(2, 1) as usize], 30.0);
        assert_eq!(v[l.family_id(0, 1, 0) as usize], 1.0);
        assert_eq!(v[l.parent_id(3, 3) as usize], 40.0);
    }
}
