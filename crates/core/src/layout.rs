//! Flat counter addressing for a Bayesian network.
//!
//! A tracker maintains two counter groups per variable `i` (Algorithm 1):
//! family counters `A_i(x_i, u)` — one per CPD entry — and parent counters
//! `A_i(u)` — one per parent configuration. [`CounterLayout`] assigns every
//! counter a dense `u32` id:
//!
//! ```text
//! [ var 0 families | var 0 parents | var 1 families | var 1 parents | ... ]
//! ```
//!
//! and maps an event to the `2n` ids it increments (Algorithm 2). The
//! layout is self-contained (it copies the structure out of the network) so
//! it can be shared with site threads in the cluster runtime.
//!
//! # The stride table (big-network hot path)
//!
//! On large networks (500–5000 variables) the id mapping *is* the per-event
//! cost: every event touches `2n` counters, and deriving each variable's
//! parent-configuration index `u` is the inner loop. The classic form is a
//! Horner walk over the sorted parent list,
//!
//! ```text
//! u = (((x[p0]) · J_{p1} + x[p1]) · J_{p2} + x[p2]) ...
//! ```
//!
//! which costs two dependent indirections per parent slot (`parent_flat[s]`
//! to find the parent, then `cards[parent]` to find its radix) and forms a
//! serial multiply–add dependency chain. The layout instead precomputes a
//! flat **stride table**: per parent slot, the pair `(parent, multiplier)`
//! with `M_j = Π_{l > j} J_{p_l}`, so that
//!
//! ```text
//! u = Σ_j x[p_j] · M_j
//! ```
//!
//! — the exact same integer (associativity is exact over the naturals), but
//! computed as an independent fused multiply–add per slot over one
//! contiguous slab, with the common fan-in widths dispatched without the
//! inner loop at all (0 parents: `u = 0`; 1 parent: `u = x[p]`, the
//! multiplier is 1 by construction; 2 parents: one multiply–add). All the
//! per-variable state the kernel needs (slot start, width, cardinality,
//! block offsets) lives in one packed [`VarPlan`] record so a variable
//! costs one sequential cache line, not five scattered array loads.
//!
//! The pre-stride mapping is preserved verbatim behind
//! [`MappingMode::Reference`] — it is the pinned original against which the
//! equivalence suites (`tests/bignet_equivalence.rs`) and the before/after
//! bench (`dsbn-bench --bin bignet`, `results/bignet.json`) compare the
//! specialized path, bit for bit.

use dsbn_bayes::BayesianNetwork;
use dsbn_datagen::EventChunk;
use serde::{Deserialize, Serialize};

/// Which Algorithm-2 id-mapping implementation a layout uses.
///
/// Both produce identical ids (pinned in `tests/bignet_equivalence.rs`);
/// `Reference` exists so the original mapping stays runnable end to end
/// for equivalence pinning and before/after benchmarking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum MappingMode {
    /// The specialized stride-table kernel (default).
    #[default]
    Strided,
    /// The pre-stride Horner walk over `parent_flat`/`cards`.
    Reference,
}

/// Per-variable record of the stride-table mapping: everything the
/// Algorithm-2 kernel needs for one variable, packed so the per-event sweep
/// reads one contiguous 20-byte record per variable instead of five
/// scattered arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct VarPlan {
    /// First parent slot: this variable's `(parent, multiplier)` pairs are
    /// `stride[2 * slot ..][.. 2 * width]`.
    slot: u32,
    /// Fan-in width (number of parents).
    width: u32,
    /// Cardinality `J_i`.
    card: u32,
    /// Offset of the family block.
    family_offset: u32,
    /// Offset of the parent block.
    parent_offset: u32,
}

/// Dense counter addressing for one network structure.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterLayout {
    /// Cardinality `J_i` per variable.
    cards: Vec<u32>,
    /// Sorted parent lists in CSR form: variable `i`'s parents are
    /// `parent_flat[parent_start[i]..parent_start[i+1]]`. Kept alongside
    /// the stride table: the reference mapping walks it, and block
    /// bookkeeping (`shard_starts`, `per_counter`) reads it.
    parent_flat: Vec<u32>,
    /// `n_vars + 1` offsets into `parent_flat`.
    parent_start: Vec<u32>,
    /// Offset of variable `i`'s family block.
    family_offset: Vec<u32>,
    /// Offset of variable `i`'s parent block.
    parent_offset: Vec<u32>,
    /// Parent-configuration count `K_i`.
    parent_configs: Vec<u32>,
    n_counters: u32,
    /// Interleaved `(parent, multiplier)` pairs, CSR-aligned with
    /// `parent_flat` (slot `s` is `stride[2s], stride[2s+1]`).
    stride: Vec<u32>,
    /// Packed per-variable kernel records, in variable order.
    plans: Vec<VarPlan>,
    /// Which mapping implementation [`Self::map_event`]/[`Self::map_chunk`]
    /// run (strided by default; see [`MappingMode`]).
    mapping: MappingMode,
}

impl CounterLayout {
    /// Extract the layout from a network's structure.
    pub fn new(net: &BayesianNetwork) -> Self {
        let n = net.n_vars();
        let mut cards = Vec::with_capacity(n);
        let mut parent_flat = Vec::new();
        let mut parent_start = Vec::with_capacity(n + 1);
        let mut family_offset = Vec::with_capacity(n);
        let mut parent_offset = Vec::with_capacity(n);
        let mut parent_configs = Vec::with_capacity(n);
        let mut next: u64 = 0;
        parent_start.push(0);
        for i in 0..n {
            let j = net.cardinality(i) as u64;
            let k = net.parent_configs(i) as u64;
            cards.push(j as u32);
            parent_flat.extend(net.dag().parents(i).iter().map(|&p| p as u32));
            parent_start.push(parent_flat.len() as u32);
            family_offset.push(next as u32);
            next += j * k;
            parent_offset.push(next as u32);
            next += k;
            parent_configs.push(k as u32);
            assert!(next <= u32::MAX as u64, "counter space exceeds u32");
        }
        // Build the stride table: per parent slot the mixed-radix
        // multiplier M_j = Π_{l > j} J_{p_l} (so the last slot's multiplier
        // is 1), interleaved with the parent index.
        let mut stride = vec![0u32; 2 * parent_flat.len()];
        let mut plans = Vec::with_capacity(n);
        for i in 0..n {
            let s = parent_start[i] as usize;
            let e = parent_start[i + 1] as usize;
            let mut mult: u64 = 1;
            for j in (s..e).rev() {
                let p = parent_flat[j];
                stride[2 * j] = p;
                debug_assert!(mult <= parent_configs[i] as u64);
                stride[2 * j + 1] = mult as u32;
                mult *= cards[p as usize] as u64;
            }
            debug_assert_eq!(mult, parent_configs[i] as u64);
            plans.push(VarPlan {
                slot: s as u32,
                width: (e - s) as u32,
                card: cards[i],
                family_offset: family_offset[i],
                parent_offset: parent_offset[i],
            });
        }
        CounterLayout {
            cards,
            parent_flat,
            parent_start,
            family_offset,
            parent_offset,
            parent_configs,
            n_counters: next as u32,
            stride,
            plans,
            mapping: MappingMode::default(),
        }
    }

    /// Total number of counters (`sum_i J_i K_i + K_i`).
    pub fn n_counters(&self) -> usize {
        self.n_counters as usize
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.cards.len()
    }

    /// Which mapping implementation this layout runs.
    pub fn mapping(&self) -> MappingMode {
        self.mapping
    }

    /// Select the mapping implementation (bit-identical either way; the
    /// reference mode exists for equivalence pinning and before/after
    /// benchmarking — see [`MappingMode`]).
    pub fn set_mapping(&mut self, mode: MappingMode) {
        self.mapping = mode;
    }

    /// Cardinality `J_i`.
    #[inline]
    pub fn cardinality(&self, i: usize) -> usize {
        self.cards[i] as usize
    }

    /// Parent-configuration count `K_i`.
    #[inline]
    pub fn parent_configs(&self, i: usize) -> usize {
        self.parent_configs[i] as usize
    }

    /// The strided parent-configuration index of variable `i`, where
    /// `get(v)` reads the event's value of variable `v` — the single
    /// Algorithm-2 inner kernel both the `usize` and `u32` event paths
    /// monomorphize (the pre-stride code kept one copy per element type).
    #[inline(always)]
    fn stride_config<G: Fn(usize) -> usize>(&self, plan: &VarPlan, get: &G) -> usize {
        let s = 2 * plan.slot as usize;
        // Width specialization: 0/1/2-parent variables (the overwhelming
        // majority under a bounded-fan-in DAG) skip the slot loop. The
        // trailing multiplier is 1 by construction, so width 1 is a pure
        // load and width 2 a single multiply–add.
        match plan.width {
            0 => 0,
            1 => get(self.stride[s] as usize),
            2 => {
                get(self.stride[s] as usize) * self.stride[s + 1] as usize
                    + get(self.stride[s + 2] as usize)
            }
            w => {
                let mut u = 0usize;
                for pair in self.stride[s..s + 2 * w as usize].chunks_exact(2) {
                    u += get(pair[0] as usize) * pair[1] as usize;
                }
                u
            }
        }
    }

    /// The reference (pre-stride) parent-configuration index: a Horner
    /// walk over the CSR parent list, two indirections per slot. Produces
    /// the same integer as [`Self::stride_config`] — `Σ x_j · M_j` is the
    /// expanded Horner form and both are exact over the naturals.
    #[inline(always)]
    fn reference_config<G: Fn(usize) -> usize>(&self, i: usize, get: &G) -> usize {
        let s = self.parent_start[i] as usize;
        let e = self.parent_start[i + 1] as usize;
        let mut u = 0usize;
        for &p in &self.parent_flat[s..e] {
            u = u * self.cards[p as usize] as usize + get(p as usize);
        }
        u
    }

    /// Parent configuration index of variable `i` under assignment `x`
    /// (same convention as [`dsbn_bayes::Cpt::parent_config_index`]).
    #[inline]
    pub fn parent_config_of(&self, i: usize, x: &[usize]) -> usize {
        let get = |v: usize| x[v];
        match self.mapping {
            MappingMode::Strided => self.stride_config(&self.plans[i], &get),
            MappingMode::Reference => self.reference_config(i, &get),
        }
    }

    /// Id of family counter `A_i(x_i, u)`.
    #[inline]
    pub fn family_id(&self, i: usize, value: usize, u: usize) -> u32 {
        debug_assert!(value < self.cards[i] as usize);
        debug_assert!(u < self.parent_configs[i] as usize);
        self.family_offset[i] + (u * self.cards[i] as usize + value) as u32
    }

    /// Id of parent counter `A_i(u)`.
    #[inline]
    pub fn parent_id(&self, i: usize, u: usize) -> u32 {
        debug_assert!(u < self.parent_configs[i] as usize);
        self.parent_offset[i] + u as u32
    }

    /// The strided Algorithm-2 kernel for one event: write the `2n` ids
    /// into `out` (callers size it; `out.len() == 2 * n_vars`). Writing
    /// through a pre-sized slice instead of `push` keeps the store stream
    /// free of capacity checks — the loop body is a handful of loads, one
    /// or two multiply–adds, and two sequential stores per variable.
    #[inline(always)]
    fn event_ids_into<G: Fn(usize) -> usize>(&self, get: G, out: &mut [u32]) {
        debug_assert_eq!(out.len(), 2 * self.plans.len());
        for (i, (plan, pair)) in self.plans.iter().zip(out.chunks_exact_mut(2)).enumerate() {
            let u = self.stride_config(plan, &get);
            let xi = get(i);
            debug_assert!(xi < plan.card as usize, "value out of range");
            pair[0] = plan.family_offset + (u * plan.card as usize + xi) as u32;
            pair[1] = plan.parent_offset + u as u32;
        }
    }

    /// The reference per-event mapping, `push`-based as it originally was.
    #[inline(always)]
    fn reference_append_ids<G: Fn(usize) -> usize>(&self, get: G, out: &mut Vec<u32>) {
        for i in 0..self.n_vars() {
            let u = self.reference_config(i, &get);
            let xi = get(i);
            debug_assert!(xi < self.cards[i] as usize, "value out of range");
            out.push(self.family_id(i, xi, u));
            out.push(self.parent_id(i, u));
        }
    }

    /// Algorithm 2: the `2n` counter ids incremented by event `x`, written
    /// into `out`.
    pub fn map_event(&self, x: &[usize], out: &mut Vec<u32>) {
        debug_assert_eq!(x.len(), self.n_vars());
        out.clear();
        match self.mapping {
            MappingMode::Strided => {
                out.resize(2 * self.n_vars(), 0);
                self.event_ids_into(|v| x[v], out);
            }
            MappingMode::Reference => {
                out.reserve(2 * self.n_vars());
                self.reference_append_ids(|v| x[v], out);
            }
        }
    }

    /// [`Self::map_event`] for an event already in `u32` form (the cluster
    /// runtime's [`EventChunk`] slab representation).
    pub fn map_event_u32(&self, x: &[u32], out: &mut Vec<u32>) {
        debug_assert_eq!(x.len(), self.n_vars());
        out.clear();
        match self.mapping {
            MappingMode::Strided => {
                out.resize(2 * self.n_vars(), 0);
                self.event_ids_into(|v| x[v] as usize, out);
            }
            MappingMode::Reference => {
                out.reserve(2 * self.n_vars());
                self.reference_append_ids(|v| x[v] as usize, out);
            }
        }
    }

    /// Bulk Algorithm 2 over a whole [`EventChunk`]: one stride-table sweep
    /// writes every event's `2n` counter ids into the caller's scratch
    /// buffer, back to back (fixed stride `2 * n_vars`, so event `e`'s ids
    /// are `out[e * 2n .. (e + 1) * 2n]`). Ids are identical to per-event
    /// [`Self::map_event`] calls in event order; the chunk sweep sizes the
    /// output once and streams plan records, event values, and output ids
    /// linearly — the kernel's working set (plans + stride table) stays
    /// cache-resident across the chunk's events.
    pub fn map_chunk(&self, chunk: &EventChunk, out: &mut Vec<u32>) {
        out.clear();
        if chunk.is_empty() {
            return;
        }
        assert_eq!(chunk.n_vars(), self.n_vars(), "chunk width must match the layout");
        match self.mapping {
            MappingMode::Strided => {
                let n2 = 2 * self.n_vars();
                out.resize(n2 * chunk.len(), 0);
                for (ev, ids) in chunk.iter().zip(out.chunks_exact_mut(n2)) {
                    self.event_ids_into(|v| ev[v] as usize, ids);
                }
            }
            MappingMode::Reference => {
                out.reserve(2 * self.n_vars() * chunk.len());
                for ev in chunk.iter() {
                    self.reference_append_ids(|v| ev[v] as usize, out);
                }
            }
        }
    }

    /// Range starts for sharding the counter space across `workers`
    /// coordinator decode workers (`dsbn_monitor::ShardPlan::from_starts`
    /// input): cut points land only on variable-block boundaries (the
    /// start of a variable's family block), as close to the even split
    /// `w * n / workers` as the blocks allow, so a shard always owns whole
    /// variables — a query's family/parent counter pair never straddles
    /// two workers. With more workers than variables the tail shards
    /// degenerate to empty ranges (duplicate cut points), which is valid:
    /// coverage of the counter space is exact either way, asserted below.
    pub fn shard_starts(&self, workers: usize) -> Vec<u32> {
        assert!(workers >= 1, "need at least one worker");
        let n = self.n_counters;
        let mut starts = Vec::with_capacity(workers);
        starts.push(0u32);
        for w in 1..workers {
            let target = (w as u64 * n as u64 / workers as u64) as u32;
            // Boundaries: each variable's family-block start, plus n.
            let cut = self
                .family_offset
                .iter()
                .copied()
                .chain(std::iter::once(n))
                .min_by_key(|&b| b.abs_diff(target))
                .unwrap_or(n);
            // Keep monotone: a tiny tail variable can pull the nearest
            // boundary below the previous cut.
            starts.push(cut.max(*starts.last().unwrap()));
        }
        // The implied plan covers the counter space exactly: half-open
        // ranges [starts[w], starts[w+1]) with an implicit final end of n,
        // starting at 0, monotone, every cut on a whole-variable boundary.
        debug_assert!(starts[0] == 0, "plan must start at counter 0");
        debug_assert!(starts.windows(2).all(|w| w[0] <= w[1]), "cuts not monotone: {starts:?}");
        debug_assert!(
            starts.iter().all(|&s| s == n || self.family_offset.binary_search(&s).is_ok()),
            "cut off a variable-block boundary: {starts:?}"
        );
        starts
    }

    /// Build the per-counter value vector `f(counter) -> value` from
    /// per-variable family/parent values, in layout order. Used to assign
    /// per-counter error budgets from an
    /// [`crate::allocation::EpsAllocation`].
    pub fn per_counter<T: Copy>(&self, family: &[T], parent: &[T]) -> Vec<T> {
        assert_eq!(family.len(), self.n_vars());
        assert_eq!(parent.len(), self.n_vars());
        let mut out = Vec::with_capacity(self.n_counters());
        for i in 0..self.n_vars() {
            let jk = self.cards[i] as usize * self.parent_configs[i] as usize;
            out.extend(std::iter::repeat_n(family[i], jk));
            out.extend(std::iter::repeat_n(parent[i], self.parent_configs[i] as usize));
        }
        debug_assert_eq!(out.len(), self.n_counters());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, NetworkSpec};

    #[test]
    fn sprinkler_layout_shape() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        // Families: 2 + 4 + 4 + 8 = 18; parents: 1 + 2 + 2 + 4 = 9.
        assert_eq!(l.n_counters(), 27);
        assert_eq!(l.n_vars(), 4);
        // Block boundaries are disjoint and ordered.
        assert_eq!(l.family_id(0, 0, 0), 0);
        assert_eq!(l.parent_id(0, 0), 2);
        assert_eq!(l.family_id(1, 0, 0), 3);
    }

    #[test]
    fn ids_are_unique_and_dense() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        let mut seen = vec![false; l.n_counters()];
        for i in 0..l.n_vars() {
            for u in 0..l.parent_configs(i) {
                for v in 0..l.cardinality(i) {
                    let id = l.family_id(i, v, u) as usize;
                    assert!(!seen[id], "duplicate id {id}");
                    seen[id] = true;
                }
                let id = l.parent_id(i, u) as usize;
                assert!(!seen[id], "duplicate id {id}");
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "ids not dense");
    }

    #[test]
    fn map_event_gives_2n_consistent_ids() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        let x = vec![1usize, 0, 1, 1];
        let mut ids = Vec::new();
        l.map_event(&x, &mut ids);
        assert_eq!(ids.len(), 8);
        // WetGrass (var 3): parents (S=0, R=1) -> u = 0*2+1 = 1.
        assert_eq!(l.parent_config_of(3, &x), 1);
        assert_eq!(ids[6], l.family_id(3, 1, 1));
        assert_eq!(ids[7], l.parent_id(3, 1));
    }

    #[test]
    fn map_chunk_matches_per_event_mapping() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        let sampler = dsbn_bayes::AncestralSampler::new(&net);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let events: Vec<Vec<usize>> = (0..64).map(|_| sampler.sample(&mut rng)).collect();
        let mut chunk = EventChunk::with_capacity(l.n_vars(), events.len());
        for x in &events {
            chunk.push(x);
        }
        let mut bulk = Vec::new();
        l.map_chunk(&chunk, &mut bulk);
        assert_eq!(bulk.len(), 2 * l.n_vars() * events.len());
        let mut single = Vec::new();
        let mut single_u32 = Vec::new();
        for (e, x) in events.iter().enumerate() {
            l.map_event(x, &mut single);
            let ids = &bulk[e * 2 * l.n_vars()..(e + 1) * 2 * l.n_vars()];
            assert_eq!(ids, &single[..], "event {e}");
            // The u32 path agrees too.
            let x32: Vec<u32> = x.iter().map(|&v| v as u32).collect();
            l.map_event_u32(&x32, &mut single_u32);
            assert_eq!(single_u32, single, "event {e} (u32)");
        }
        // Empty chunk: no ids, no panic.
        l.map_chunk(&EventChunk::new(), &mut bulk);
        assert!(bulk.is_empty());
    }

    #[test]
    fn strided_mapping_matches_reference_bit_for_bit() {
        // The stride-table kernel against the preserved pre-stride Horner
        // walk, on a network with the full width mix (0/1/2/3+ parents and
        // inflated domains): every id of every event identical, on the
        // usize path, the u32 path, and the chunk path.
        use rand::SeedableRng;
        for net in [
            sprinkler_network(),
            NetworkSpec::alarm().generate(2).unwrap(),
            dsbn_bayes::new_alarm(4).unwrap(),
            NetworkSpec::munin_stress().generate(1).unwrap(),
        ] {
            let strided = CounterLayout::new(&net);
            let mut reference = CounterLayout::new(&net);
            reference.set_mapping(MappingMode::Reference);
            assert_eq!(strided.mapping(), MappingMode::Strided);
            assert_eq!(reference.mapping(), MappingMode::Reference);
            let sampler = dsbn_bayes::AncestralSampler::new(&net);
            let mut rng = rand::rngs::StdRng::seed_from_u64(9);
            let events: Vec<Vec<usize>> = (0..32).map(|_| sampler.sample(&mut rng)).collect();
            let mut chunk = EventChunk::with_capacity(net.n_vars(), events.len());
            let (mut a, mut b) = (Vec::new(), Vec::new());
            for x in &events {
                chunk.push(x);
                strided.map_event(x, &mut a);
                reference.map_event(x, &mut b);
                assert_eq!(a, b, "{} usize path", net.name());
                let x32: Vec<u32> = x.iter().map(|&v| v as u32).collect();
                strided.map_event_u32(&x32, &mut a);
                reference.map_event_u32(&x32, &mut b);
                assert_eq!(a, b, "{} u32 path", net.name());
                for i in 0..net.n_vars() {
                    assert_eq!(
                        strided.parent_config_of(i, x),
                        reference.parent_config_of(i, x),
                        "{} var {i}",
                        net.name()
                    );
                }
            }
            strided.map_chunk(&chunk, &mut a);
            reference.map_chunk(&chunk, &mut b);
            assert_eq!(a, b, "{} chunk path", net.name());
        }
    }

    #[test]
    fn parent_config_matches_network() {
        let net = NetworkSpec::hepar2().generate(2).unwrap();
        let l = CounterLayout::new(&net);
        let sampler = dsbn_bayes::AncestralSampler::new(&net);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let x = sampler.sample(&mut rng);
            for i in 0..net.n_vars() {
                assert_eq!(l.parent_config_of(i, &x), net.parent_config_of(i, &x));
            }
        }
    }

    #[test]
    fn shard_starts_cut_on_variable_blocks() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        // Sprinkler: n = 27, family blocks start at 0, 3, 9, 15.
        let starts = l.shard_starts(4);
        assert_eq!(starts[0], 0);
        assert_eq!(starts.len(), 4);
        let boundaries = [0u32, 3, 9, 15, 27];
        for &s in &starts {
            assert!(boundaries.contains(&s), "cut {s} not on a variable block");
        }
        assert!(starts.windows(2).all(|w| w[0] <= w[1]), "not monotone: {starts:?}");
        // One worker owns everything.
        assert_eq!(l.shard_starts(1), vec![0]);
        // More workers than variables: monotone, still valid cut points.
        let many = l.shard_starts(9);
        assert_eq!(many.len(), 9);
        assert!(many.windows(2).all(|w| w[0] <= w[1]));
        for &s in &many {
            assert!(boundaries.contains(&s));
        }
    }

    #[test]
    fn shard_starts_at_scale_with_workers_near_and_above_n_vars() {
        // 5000-variable layout, worker counts bracketing the variable
        // count: cuts stay monotone, every cut is a whole-variable
        // boundary, and the implied plan covers the counter space exactly
        // even when the tail degenerates to empty one-variable shards.
        let net = NetworkSpec::big(5000).generate(1).unwrap();
        let l = CounterLayout::new(&net);
        assert_eq!(l.n_vars(), 5000);
        for workers in [4999usize, 5000, 5001, 6000, 8192] {
            let starts = l.shard_starts(workers);
            assert_eq!(starts.len(), workers);
            let plan = dsbn_monitor::ShardPlan::from_starts(starts.clone(), l.n_counters())
                .expect("starts must form a valid plan");
            let covered: usize = (0..workers).map(|w| plan.range(w).len()).sum();
            assert_eq!(covered, l.n_counters(), "workers={workers}");
            if workers > l.n_vars() {
                // More shards than variables forces degenerate (empty)
                // shards — duplicate cut points.
                assert!(
                    starts.windows(2).any(|w| w[0] == w[1]),
                    "workers={workers} should have empty shards"
                );
            }
        }
    }

    #[test]
    fn shard_starts_feed_a_valid_plan() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let l = CounterLayout::new(&net);
        for workers in [1usize, 2, 4, 16] {
            let starts = l.shard_starts(workers);
            let plan = dsbn_monitor::ShardPlan::from_starts(starts, l.n_counters())
                .expect("layout starts must form a valid plan");
            assert_eq!(plan.workers(), workers);
            let covered: usize = (0..workers).map(|w| plan.range(w).len()).sum();
            assert_eq!(covered, l.n_counters());
        }
    }

    #[test]
    fn per_counter_expansion() {
        let net = sprinkler_network();
        let l = CounterLayout::new(&net);
        let fam = vec![1.0, 2.0, 3.0, 4.0];
        let par = vec![10.0, 20.0, 30.0, 40.0];
        let v = l.per_counter(&fam, &par);
        assert_eq!(v.len(), 27);
        assert_eq!(v[l.family_id(2, 1, 0) as usize], 3.0);
        assert_eq!(v[l.parent_id(2, 1) as usize], 30.0);
        assert_eq!(v[l.family_id(0, 1, 0) as usize], 1.0);
        assert_eq!(v[l.parent_id(3, 3) as usize], 40.0);
    }
}
