//! Algorithm constructors: EXACTMLE, BASELINE, UNIFORM, NONUNIFORM
//! (Algorithm 1's INIT with the scheme-specific `epsfnA`/`epsfnB`), plus the
//! deterministic-counter variants used by the counter ablation.

use crate::allocation::{allocate, EpsAllocation, Scheme};
use crate::layout::{CounterLayout, MappingMode};
use crate::tracker::{BnTracker, Smoothing};
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol};
use dsbn_monitor::{MessageStats, Partitioner, SiteFault, SnapshotHub};

/// Common tracker parameters (paper defaults: `eps = 0.1`, `k = 30`,
/// uniform random routing).
#[derive(Debug, Clone)]
pub struct TrackerConfig {
    /// Which algorithm builds the tracker.
    pub scheme: Scheme,
    /// Overall approximation factor `eps` (ignored by EXACTMLE).
    pub eps: f64,
    /// Number of sites `k`.
    pub k: usize,
    /// RNG seed (site routing + counter randomness).
    pub seed: u64,
    /// Event routing.
    pub partitioner: Partitioner,
    /// Conditional-probability smoothing.
    pub smoothing: Smoothing,
    /// Cluster ingest chunk size: events per driver → site send and per
    /// site packet flush (`dsbn_monitor::ClusterConfig::chunk`). Ignored
    /// by the synchronous simulator, whose internal training chunks are
    /// bit-identical at any size. `1` is the per-event pipeline.
    pub chunk: usize,
    /// Coordinator decode workers for the cluster runtime
    /// (`dsbn_monitor::CoordMode`): `1` — the default — is the
    /// single-thread coordinator; `> 1` shards coordinator counter state
    /// by contiguous layout-aligned ranges. Ignored by the synchronous
    /// simulator; either setting produces bit-identical results.
    pub coord_workers: usize,
    /// Snapshot publish hub for the cluster runtime: when set, the
    /// coordinator publishes epoch-consistent counter snapshots here at
    /// every settlement and the driver publishes the finalized state at
    /// shutdown, for concurrent query serving through
    /// [`crate::serve::SnapshotServer`]. Ignored by the synchronous
    /// simulator (freeze a [`crate::BnTracker`] via
    /// [`crate::BnTracker::snapshot`] instead).
    pub publish: Option<SnapshotHub>,
    /// Mid-stream snapshot cadence in events for the *plain* cluster
    /// tracker: turns on epoch settlements every this many events purely
    /// as mint points (the served read is the cumulative `settled + open`
    /// count; no decay semantics). `None` — the default — mints only the
    /// final snapshot. The decayed cluster tracker ignores this: its decay
    /// boundary already defines the settlements.
    pub snapshot_every: Option<u64>,
    /// Site crash/rejoin fault schedule for the cluster runtime
    /// (`dsbn_monitor::ClusterConfig::faults`): each [`SiteFault`] kills a
    /// site once its local stream passes `kill_at` events and optionally
    /// revives it at `revive_at`. Empty — the default — runs fault-free.
    /// Build seeded random schedules with [`SiteFault::schedule`]. Ignored
    /// by the synchronous simulator.
    pub faults: Vec<SiteFault>,
    /// Which Algorithm-2 id-mapping implementation the tracker's layout
    /// runs ([`MappingMode::Strided`] by default). Both modes are
    /// bit-identical; `Reference` exists for equivalence pinning and
    /// before/after benchmarking of the stride-table hot path.
    pub mapping: MappingMode,
}

impl TrackerConfig {
    /// Paper defaults for a given scheme.
    pub fn new(scheme: Scheme) -> Self {
        TrackerConfig {
            scheme,
            eps: 0.1,
            k: 30,
            seed: 1,
            partitioner: Partitioner::UniformRandom,
            smoothing: Smoothing::default(),
            chunk: 256,
            coord_workers: 1,
            publish: None,
            snapshot_every: None,
            faults: Vec::new(),
            mapping: MappingMode::default(),
        }
    }

    /// Builder-style overrides.
    pub fn with_eps(mut self, eps: f64) -> Self {
        self.eps = eps;
        self
    }

    /// Set the number of sites.
    pub fn with_k(mut self, k: usize) -> Self {
        self.k = k;
        self
    }

    /// Set the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the partitioner.
    pub fn with_partitioner(mut self, p: Partitioner) -> Self {
        self.partitioner = p;
        self
    }

    /// Set the smoothing mode.
    pub fn with_smoothing(mut self, s: Smoothing) -> Self {
        self.smoothing = s;
        self
    }

    /// Set the cluster ingest chunk size (events per channel send / packet
    /// flush; `1` is the per-event pipeline).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be >= 1");
        self.chunk = chunk;
        self
    }

    /// Set the cluster coordinator's decode-worker count (`1` keeps the
    /// single-thread coordinator).
    pub fn with_coord_workers(mut self, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one coordinator worker");
        self.coord_workers = workers;
        self
    }

    /// Publish counter snapshots to `hub` during cluster runs (see
    /// [`Self::publish`]).
    pub fn with_publish(mut self, hub: SnapshotHub) -> Self {
        self.publish = Some(hub);
        self
    }

    /// Mint a mid-stream snapshot every `every` events during plain
    /// cluster runs (see [`Self::snapshot_every`]).
    pub fn with_snapshot_every(mut self, every: u64) -> Self {
        assert!(every >= 1, "snapshot cadence must be >= 1");
        self.snapshot_every = Some(every);
        self
    }

    /// Inject a site crash/rejoin schedule into cluster runs (see
    /// [`Self::faults`]).
    pub fn with_faults(mut self, faults: Vec<SiteFault>) -> Self {
        self.faults = faults;
        self
    }

    /// Select the layout's Algorithm-2 mapping implementation (see
    /// [`Self::mapping`]).
    pub fn with_mapping(mut self, mapping: MappingMode) -> Self {
        self.mapping = mapping;
        self
    }
}

/// A tracker built by any of the paper's algorithms (plus the
/// deterministic-counter ablation variant), with a uniform interface.
pub enum AnyTracker {
    /// Exact counters (EXACTMLE).
    Exact(BnTracker<ExactProtocol>),
    /// Randomized HYZ counters (BASELINE / UNIFORM / NONUNIFORM).
    Randomized(BnTracker<HyzProtocol>),
    /// Deterministic threshold counters with the same allocation
    /// (ablation only — not part of the paper's algorithm suite).
    Deterministic(BnTracker<DeterministicProtocol>),
}

/// Per-counter error budgets in layout order for an approximate scheme.
pub fn per_counter_eps(layout: &CounterLayout, alloc: &EpsAllocation) -> Vec<f64> {
    layout.per_counter(&alloc.family_eps, &alloc.parent_eps)
}

/// One HYZ protocol instance per counter under `scheme`'s error-budget
/// allocation — the INIT step every randomized tracker constructor
/// (plain, cluster, and decayed) shares, so a change to the allocation
/// plumbing lands in exactly one place.
pub(crate) fn hyz_protocols(
    net: &BayesianNetwork,
    layout: &CounterLayout,
    scheme: Scheme,
    eps: f64,
) -> Vec<HyzProtocol> {
    let alloc = allocate(scheme, net, eps);
    per_counter_eps(layout, &alloc).into_iter().map(HyzProtocol::new).collect()
}

/// Build a tracker per the paper's Algorithm 1 with the scheme's
/// `epsfnA`/`epsfnB`.
pub fn build_tracker(net: &BayesianNetwork, config: &TrackerConfig) -> AnyTracker {
    let layout = CounterLayout::new(net);
    let mut tracker = match config.scheme {
        Scheme::ExactMle => AnyTracker::Exact(BnTracker::new(
            net,
            vec![ExactProtocol; layout.n_counters()],
            config.k,
            config.partitioner,
            config.seed,
            config.smoothing,
        )),
        scheme => AnyTracker::Randomized(BnTracker::new(
            net,
            hyz_protocols(net, &layout, scheme, config.eps),
            config.k,
            config.partitioner,
            config.seed,
            config.smoothing,
        )),
    };
    tracker.set_mapping(config.mapping);
    tracker
}

/// Ablation: the same allocation driving deterministic threshold counters
/// instead of randomized ones. Panics for [`Scheme::ExactMle`].
pub fn build_deterministic_tracker(net: &BayesianNetwork, config: &TrackerConfig) -> AnyTracker {
    let layout = CounterLayout::new(net);
    let alloc = allocate(config.scheme, net, config.eps);
    let protocols: Vec<DeterministicProtocol> =
        per_counter_eps(&layout, &alloc).into_iter().map(DeterministicProtocol::new).collect();
    let mut tracker = AnyTracker::Deterministic(BnTracker::new(
        net,
        protocols,
        config.k,
        config.partitioner,
        config.seed,
        config.smoothing,
    ));
    tracker.set_mapping(config.mapping);
    tracker
}

macro_rules! delegate {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyTracker::Exact($t) => $body,
            AnyTracker::Randomized($t) => $body,
            AnyTracker::Deterministic($t) => $body,
        }
    };
}

impl AnyTracker {
    /// Observe one event (UPDATE).
    pub fn observe(&mut self, x: &[usize]) {
        delegate!(self, t => t.observe(x))
    }

    /// Select the layout's Algorithm-2 mapping implementation (see
    /// [`MappingMode`]).
    pub fn set_mapping(&mut self, mode: MappingMode) {
        delegate!(self, t => t.set_mapping(mode))
    }

    /// Feed `m` events from a stream.
    pub fn train<I: Iterator<Item = Assignment>>(&mut self, stream: I, m: u64) {
        delegate!(self, t => t.train(stream, m))
    }

    /// Observe a whole pre-built [`dsbn_datagen::EventChunk`] (the bulk
    /// UPDATE path: one `map_chunk` sweep, then the per-event counter
    /// sweeps — bit-identical to observing each event).
    pub fn observe_chunk(&mut self, chunk: &dsbn_datagen::EventChunk) {
        delegate!(self, t => t.observe_chunk(chunk))
    }

    /// `log P~[x]` (QUERY in log space).
    pub fn log_query(&self, x: &[usize]) -> f64 {
        delegate!(self, t => t.log_query(x))
    }

    /// `P~[x]` (QUERY).
    pub fn query(&self, x: &[usize]) -> f64 {
        delegate!(self, t => t.query(x))
    }

    /// Classify `target` given evidence `x` (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        delegate!(self, t => t.classify(target, x))
    }

    /// Posterior distribution over `target` given full evidence in `x`.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        delegate!(self, t => t.posterior(target, x))
    }

    /// Counter estimates for one CPD entry: `(A_i(x, u), A_i(u))`.
    pub fn counter_pair(&self, i: usize, value: usize, u: usize) -> (f64, f64) {
        delegate!(self, t => t.counter_pair(i, value, u))
    }

    /// Exact global count of a family counter (test oracle).
    pub fn exact_family_count(&self, i: usize, value: usize, u: usize) -> u64 {
        delegate!(self, t => t.exact_family_count(i, value, u))
    }

    /// Exact global count of a parent counter (test oracle).
    pub fn exact_parent_count(&self, i: usize, u: usize) -> u64 {
        delegate!(self, t => t.exact_parent_count(i, u))
    }

    /// Communication so far.
    pub fn stats(&self) -> MessageStats {
        delegate!(self, t => t.stats())
    }

    /// Events observed.
    pub fn events(&self) -> u64 {
        delegate!(self, t => t.events())
    }

    /// The network structure tracked.
    pub fn structure(&self) -> &BayesianNetwork {
        delegate!(self, t => t.structure())
    }
}

impl CpdSource for AnyTracker {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        delegate!(self, t => t.cond_prob(i, value, u))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, NetworkSpec};
    use dsbn_datagen::TrainingStream;

    #[test]
    fn all_schemes_build_and_train() {
        let net = sprinkler_network();
        for scheme in Scheme::ALL {
            let mut t = build_tracker(&net, &TrackerConfig::new(scheme).with_k(4).with_eps(0.2));
            t.train(TrainingStream::new(&net, 5), 2000);
            assert_eq!(t.events(), 2000);
            let x = vec![1usize, 0, 1, 1];
            let q = t.query(&x);
            assert!(q.is_finite() && q > 0.0, "{}: query {q}", scheme.name());
        }
    }

    #[test]
    fn approximate_schemes_cut_communication() {
        // At 50K events on ALARM the paper's Table III reports roughly a 9x
        // gap between EXACTMLE and BASELINE and ~11x for UNIFORM /
        // NONUNIFORM; assert the same ordering with slack. (At very small m
        // all algorithms cost alike — Fig. 6 — so m must be large enough.)
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let m = 50_000u64;
        let stream = || TrainingStream::new(&net, 2);
        let mut totals = Vec::new();
        for scheme in Scheme::ALL {
            let mut t = build_tracker(&net, &TrackerConfig::new(scheme).with_k(10));
            t.train(stream(), m);
            totals.push((scheme, t.stats().total()));
        }
        let exact = totals[0].1;
        assert_eq!(exact, 2 * 37 * m); // Lemma 5
        let baseline = totals[1].1;
        let uniform = totals[2].1;
        let nonuniform = totals[3].1;
        // With strictly Lemma-4-faithful counters, per-counter budgets of
        // ~1e-3 leave many ALARM counters exact at 50K events; savings are
        // modest here and grow with m (Fig. 6 / EXPERIMENTS.md). For n=37
        // the BASELINE and UNIFORM budgets are within 15% of each other
        // (3n = 111 vs 16 sqrt(n) = 97), matching Table III's near-parity.
        assert!(baseline < exact, "baseline {baseline} vs exact {exact}");
        assert!(uniform < baseline, "uniform {uniform} vs baseline {baseline}");
        assert!(
            (nonuniform as f64) < 1.2 * uniform as f64,
            "non-uniform {nonuniform} vs uniform {uniform}"
        );
    }

    #[test]
    fn communication_grows_sublinearly_with_stream() {
        // The core claim of Fig. 6: EXACTMLE grows linearly in m while the
        // randomized schemes grow logarithmically once counters leave the
        // exact phase. Use a small network so counters accumulate large
        // counts quickly.
        let net = sprinkler_network();
        let cfg = TrackerConfig::new(Scheme::Uniform).with_k(5).with_eps(0.1);
        let mut t = build_tracker(&net, &cfg);
        let mut stream = TrainingStream::new(&net, 8);
        let m = 100_000u64;
        t.train(&mut stream, m);
        let first = t.stats().total();
        t.train(&mut stream, m);
        let second = t.stats().total() - first;
        // Doubling the stream must cost far less than the first half.
        assert!(
            (second as f64) < 0.25 * first as f64,
            "second half {second} vs first half {first}"
        );
        // And the whole run is much cheaper than exact (2 n m per half).
        assert!(t.stats().total() < 2 * 4 * 2 * m / 4);
    }

    #[test]
    fn approximate_query_close_to_exact_mle() {
        let net = sprinkler_network();
        let m = 40_000u64;
        let mut exact = build_tracker(&net, &TrackerConfig::new(Scheme::ExactMle).with_k(5));
        let mut nonuni =
            build_tracker(&net, &TrackerConfig::new(Scheme::NonUniform).with_k(5).with_eps(0.1));
        // Identical streams (same seed).
        exact.train(TrainingStream::new(&net, 9), m);
        nonuni.train(TrainingStream::new(&net, 9), m);
        let x = vec![1usize, 0, 1, 1];
        let le = exact.log_query(&x);
        let ln = nonuni.log_query(&x);
        // e^{-eps} <= P~/P^ <= e^{eps} within noise; allow 3 eps.
        assert!((le - ln).abs() < 0.3, "log ratio {}", (le - ln).abs());
    }

    #[test]
    fn deterministic_ablation_builds() {
        let net = sprinkler_network();
        let mut t = build_deterministic_tracker(
            &net,
            &TrackerConfig::new(Scheme::NonUniform).with_k(4).with_eps(0.2),
        );
        t.train(TrainingStream::new(&net, 4), 5000);
        let x = vec![0usize, 1, 0, 1];
        assert!(t.query(&x) > 0.0);
        assert!(t.stats().total() < 2 * 4 * 5000);
    }

    #[test]
    #[should_panic(expected = "does not allocate")]
    fn deterministic_exact_rejected() {
        let net = sprinkler_network();
        let _ = build_deterministic_tracker(&net, &TrackerConfig::new(Scheme::ExactMle));
    }

    #[test]
    fn posterior_through_any_tracker() {
        let net = sprinkler_network();
        let mut t = build_tracker(&net, &TrackerConfig::new(Scheme::ExactMle).with_k(3));
        t.train(TrainingStream::new(&net, 7), 20_000);
        let mut x = vec![1usize, 0, 0, 1];
        let p = t.posterior(2, &mut x);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0], "rain should dominate given wet grass: {p:?}");
        assert_eq!(t.classify(2, &mut x), 1);
    }

    #[test]
    fn config_builders() {
        let c = TrackerConfig::new(Scheme::Uniform)
            .with_eps(0.25)
            .with_k(12)
            .with_seed(99)
            .with_partitioner(Partitioner::RoundRobin)
            .with_smoothing(Smoothing::None)
            .with_chunk(64);
        assert_eq!(c.eps, 0.25);
        assert_eq!(c.k, 12);
        assert_eq!(c.seed, 99);
        assert_eq!(c.partitioner, Partitioner::RoundRobin);
        assert_eq!(c.smoothing, Smoothing::None);
        assert_eq!(c.chunk, 64);
    }
}
