//! The streaming MLE tracker (Algorithms 1–3 of the paper).
//!
//! A [`BnTracker`] owns one distributed counter per CPD entry and per
//! parent configuration (via [`crate::layout::CounterLayout`]), routes each
//! observed event to a site, increments the event's `2n` counters
//! (UPDATE, Algorithm 2), and answers joint-probability queries from the
//! counter estimates (QUERY, Algorithm 3).

use crate::layout::CounterLayout;
use crate::snapshot::{CounterReads, CptEvaluator, CptSnapshot};
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_datagen::EventChunk;
use dsbn_monitor::{CounterArray, MessageStats, Partitioner, SiteAssigner};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Events per internal training chunk: [`BnTracker::train`] (and the
/// decayed variant) maps this many events' counter ids in one bulk CSR
/// sweep before sweeping the counter arrays. Chunking is an internal
/// batching of deterministic work — routing and protocol randomness are
/// drawn per event in stream order — so any chunk size is bit-for-bit
/// identical to the per-event pipeline (`tests/chunked_equivalence.rs`).
pub(crate) const TRAIN_CHUNK: usize = 256;

/// How conditional probabilities are read off the counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Smoothing {
    /// Raw Algorithm 3 ratio `A_i(x,u) / A_i(u)`; falls back to `1/J_i`
    /// when the denominator estimate is not positive.
    None,
    /// Jeffreys-style pseudocounts: `(A_i(x,u) + a) / (A_i(u) + a J_i)`.
    /// Applied identically to the exact and approximate trackers so the
    /// error-to-MLE metric isolates approximation error (§VI-B).
    Pseudocount(f64),
}

impl Default for Smoothing {
    fn default() -> Self {
        Smoothing::Pseudocount(0.5)
    }
}

/// A continuously maintained approximate-MLE model over a distributed
/// stream, generic in the counter protocol.
pub struct BnTracker<P: CounterProtocol> {
    /// Structure (CPTs unused — the tracker never sees ground truth).
    structure: BayesianNetwork,
    layout: CounterLayout,
    array: CounterArray<P>,
    assigner: SiteAssigner,
    rng: SmallRng,
    smoothing: Smoothing,
    ids_buf: Vec<u32>,
    events: u64,
}

impl<P: CounterProtocol> BnTracker<P> {
    /// Build a tracker over `k` sites with one protocol instance per
    /// counter, in [`CounterLayout`] id order (use
    /// [`CounterLayout::per_counter`] to expand a per-variable allocation).
    pub fn new(
        structure: &BayesianNetwork,
        protocols: Vec<P>,
        k: usize,
        partitioner: Partitioner,
        seed: u64,
        smoothing: Smoothing,
    ) -> Self {
        let layout = CounterLayout::new(structure);
        assert_eq!(
            protocols.len(),
            layout.n_counters(),
            "one protocol instance per counter required"
        );
        BnTracker {
            structure: structure.clone(),
            array: CounterArray::new(protocols, k),
            layout,
            assigner: SiteAssigner::new(partitioner, k),
            rng: SmallRng::seed_from_u64(seed),
            smoothing,
            ids_buf: Vec::new(),
            events: 0,
        }
    }

    /// The network structure the tracker maintains parameters for.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Counter addressing.
    pub fn layout(&self) -> &CounterLayout {
        &self.layout
    }

    /// Select the layout's Algorithm-2 mapping implementation
    /// (bit-identical either way; see [`crate::layout::MappingMode`]).
    pub fn set_mapping(&mut self, mode: crate::layout::MappingMode) {
        self.layout.set_mapping(mode);
    }

    /// Events observed so far.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Communication so far (paper message accounting).
    pub fn stats(&self) -> MessageStats {
        self.array.stats()
    }

    /// The smoothing mode.
    pub fn smoothing(&self) -> Smoothing {
        self.smoothing
    }

    /// Observe one event: route it to a site (uniformly at random by
    /// default, per §VI-A) and increment its `2n` counters (Algorithm 2).
    pub fn observe(&mut self, x: &[usize]) {
        let site = self.assigner.assign(&mut self.rng);
        self.observe_at(site, x);
    }

    /// Observe an event at an explicit site: the `2n` counter updates of
    /// Algorithm 2 run as one batched sweep over the site's state
    /// ([`CounterArray::observe_event`]), accounted as a single bundled
    /// wire packet.
    pub fn observe_at(&mut self, site: usize, x: &[usize]) {
        debug_assert!(self.structure.check_assignment(x).is_ok());
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_event(x, &mut ids);
        self.array.observe_event(site, &ids, &mut self.rng);
        self.ids_buf = ids;
        self.events += 1;
    }

    /// Observe a whole [`EventChunk`]: one bulk CSR sweep maps every
    /// event's `2n` counter ids into a reused scratch buffer
    /// ([`CounterLayout::map_chunk`]), then the counter array sweeps the
    /// flat id slab event by event ([`CounterArray::observe_chunk`]) —
    /// routing and protocol randomness interleave per event exactly as in
    /// [`Self::observe`], so the result is bit-for-bit the per-event
    /// pipeline's.
    pub fn observe_chunk(&mut self, chunk: &EventChunk) {
        if chunk.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_chunk(chunk, &mut ids);
        self.array.observe_chunk(&mut self.assigner, &ids, 2 * self.layout.n_vars(), &mut self.rng);
        self.ids_buf = ids;
        self.events += chunk.len() as u64;
    }

    /// Feed `m` events from a stream, in internal chunks of
    /// [`TRAIN_CHUNK`] events (bit-identical to observing each event
    /// individually; the chunking only amortizes per-event mapping costs).
    pub fn train<I: Iterator<Item = Assignment>>(&mut self, stream: I, m: u64) {
        let mut stream = stream.take(m as usize);
        let mut chunk = EventChunk::with_capacity(self.layout.n_vars(), TRAIN_CHUNK);
        loop {
            chunk.clear();
            while chunk.len() < TRAIN_CHUNK {
                match stream.next() {
                    Some(x) => {
                        debug_assert!(self.structure.check_assignment(&x).is_ok());
                        chunk.push(&x);
                    }
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            self.observe_chunk(&chunk);
        }
    }

    /// The pure read-only evaluator over this tracker's live counter
    /// estimates — all query methods below are thin delegations to it.
    pub fn evaluator(&self) -> CptEvaluator<'_, Self> {
        CptEvaluator::new(&self.structure, &self.layout, self, self.smoothing)
    }

    /// Freeze the current counter estimates (and the exact oracle) into an
    /// immutable query-ready [`CptSnapshot`] — the simulator-side analogue
    /// of a coordinator settlement mint. Queries evaluated against the
    /// snapshot are bit-identical to live queries at the freeze point.
    pub fn snapshot(&self) -> CptSnapshot {
        let n = self.layout.n_counters();
        CptSnapshot {
            seq: 0,
            events: self.events,
            epochs: 0,
            finalized: true,
            reads: (0..n).map(|c| self.array.estimate(c)).collect(),
            exact: Some((0..n).map(|c| self.array.exact_total(c)).collect()),
        }
    }

    /// Counter estimates for one CPD entry: `(A_i(x, u), A_i(u))`.
    pub fn counter_pair(&self, i: usize, value: usize, u: usize) -> (f64, f64) {
        self.evaluator().counter_pair(i, value, u)
    }

    /// `log P~[x]` — Algorithm 3, computed in log space for stability on
    /// networks with hundreds of variables.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        self.evaluator().log_query(x)
    }

    /// `P~[x]` (prefer [`Self::log_query`] for large `n`).
    pub fn query(&self, x: &[usize]) -> f64 {
        self.evaluator().query(x)
    }

    /// Classify `target` given full evidence in `x` (the entry at `target` is ignored),
    /// using the tracked parameters (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        self.evaluator().classify(target, x)
    }

    /// Posterior over `target` given full evidence.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        self.evaluator().posterior(target, x)
    }

    /// Exact global count of a family counter (test oracle).
    pub fn exact_family_count(&self, i: usize, value: usize, u: usize) -> u64 {
        self.array.exact_total(self.layout.family_id(i, value, u) as usize)
    }

    /// Exact global count of a parent counter (test oracle).
    pub fn exact_parent_count(&self, i: usize, u: usize) -> u64 {
        self.array.exact_total(self.layout.parent_id(i, u) as usize)
    }
}

impl<P: CounterProtocol> CounterReads for BnTracker<P> {
    fn read(&self, id: usize) -> f64 {
        self.array.estimate(id)
    }
}

impl<P: CounterProtocol> CpdSource for BnTracker<P> {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        self.evaluator().cond_prob(i, value, u)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;
    use dsbn_counters::ExactProtocol;
    use dsbn_datagen::TrainingStream;

    fn exact_tracker(k: usize, smoothing: Smoothing) -> BnTracker<ExactProtocol> {
        let net = sprinkler_network();
        let layout = CounterLayout::new(&net);
        BnTracker::new(
            &net,
            vec![ExactProtocol; layout.n_counters()],
            k,
            Partitioner::UniformRandom,
            7,
            smoothing,
        )
    }

    #[test]
    fn exact_tracker_reproduces_offline_mle() {
        let net = sprinkler_network();
        let mut t = exact_tracker(3, Smoothing::None);
        let events: Vec<_> = TrainingStream::new(&net, 1).take(2000).collect();
        // Offline counts.
        let mut fam = std::collections::HashMap::new();
        let mut par = std::collections::HashMap::new();
        for x in &events {
            t.observe(x);
            for i in 0..4 {
                let u = net.parent_config_of(i, x);
                *fam.entry((i, x[i], u)).or_insert(0u64) += 1;
                *par.entry((i, u)).or_insert(0u64) += 1;
            }
        }
        for (&(i, v, u), &c) in &fam {
            let (num, den) = t.counter_pair(i, v, u);
            assert_eq!(num, c as f64);
            assert_eq!(den, par[&(i, u)] as f64);
            // MLE ratio matches Lemma 2.
            let mle = c as f64 / par[&(i, u)] as f64;
            assert!((t.cond_prob(i, v, u) - mle).abs() < 1e-12);
        }
        assert_eq!(t.events(), 2000);
    }

    #[test]
    fn query_is_product_of_ratios() {
        let net = sprinkler_network();
        let mut t = exact_tracker(2, Smoothing::None);
        for x in TrainingStream::new(&net, 3).take(5000) {
            t.observe(&x);
        }
        let x = vec![1usize, 0, 1, 1];
        let mut expect = 1.0;
        for i in 0..4 {
            let u = net.parent_config_of(i, &x);
            let (num, den) = t.counter_pair(i, x[i], u);
            expect *= num / den;
        }
        assert!((t.query(&x) - expect).abs() < 1e-12);
        assert!((t.log_query(&x) - expect.ln()).abs() < 1e-9);
    }

    #[test]
    fn exact_tracker_message_cost_is_2nm() {
        // Lemma 5 / Table III accounting: 2 n m messages.
        let net = sprinkler_network();
        let mut t = exact_tracker(5, Smoothing::default());
        for x in TrainingStream::new(&net, 5).take(500) {
            t.observe(&x);
        }
        assert_eq!(t.stats().total(), 2 * 4 * 500);
    }

    #[test]
    fn learned_model_approaches_ground_truth() {
        let net = sprinkler_network();
        let mut t = exact_tracker(4, Smoothing::Pseudocount(0.5));
        for x in TrainingStream::new(&net, 11).take(50_000) {
            t.observe(&x);
        }
        // Check a few CPD entries against ground truth.
        // P(Sprinkler=on | Cloudy=yes) = 0.1.
        let p = t.cond_prob(1, 1, 1);
        assert!((p - 0.1).abs() < 0.02, "p={p}");
        // P(Rain=yes | Cloudy=no) = 0.2.
        let p = t.cond_prob(2, 1, 0);
        assert!((p - 0.2).abs() < 0.02, "p={p}");
    }

    #[test]
    fn smoothing_handles_unseen_configurations() {
        let t = exact_tracker(2, Smoothing::Pseudocount(1.0));
        // Nothing observed: every conditional must be uniform.
        for i in 0..4 {
            for u in 0..t.layout().parent_configs(i) {
                for v in 0..t.layout().cardinality(i) {
                    assert!((t.cond_prob(i, v, u) - 0.5).abs() < 1e-12);
                }
            }
        }
        // Raw mode falls back to uniform too (denominator zero).
        let t = exact_tracker(2, Smoothing::None);
        assert_eq!(t.cond_prob(3, 1, 2), 0.5);
    }

    #[test]
    fn classification_against_ground_truth_labels() {
        let net = sprinkler_network();
        let mut t = exact_tracker(3, Smoothing::Pseudocount(0.5));
        for x in TrainingStream::new(&net, 13).take(30_000) {
            t.observe(&x);
        }
        // The tracker's classifier must agree with the ground-truth
        // classifier on (almost) all evidence patterns.
        let mut agree = 0;
        let mut total = 0;
        for bits in 0..16usize {
            let x: Vec<usize> = (0..4).map(|b| (bits >> b) & 1).collect();
            for target in 0..4 {
                let mut xa = x.clone();
                let mut xb = x.clone();
                let a = t.classify(target, &mut xa);
                let b = dsbn_bayes::classify::classify(&net, &net, target, &mut xb);
                total += 1;
                if a == b {
                    agree += 1;
                }
            }
        }
        assert!(agree * 10 >= total * 9, "agreement {agree}/{total}");
    }

    #[test]
    fn observe_at_specific_site() {
        let mut t = exact_tracker(4, Smoothing::None);
        t.observe_at(2, &[0, 0, 0, 0]);
        assert_eq!(t.events(), 1);
        assert_eq!(t.exact_parent_count(0, 0), 1);
    }

    #[test]
    #[should_panic(expected = "one protocol instance per counter")]
    fn wrong_protocol_count_rejected() {
        let net = sprinkler_network();
        let _ = BnTracker::new(
            &net,
            vec![ExactProtocol; 3],
            2,
            Partitioner::UniformRandom,
            1,
            Smoothing::None,
        );
    }
}
