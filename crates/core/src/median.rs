//! Median-of-instances amplification.
//!
//! Theorem 1 turns UNIFORM's constant success probability (3/4) into
//! `1 - delta` "by taking the median of `O(log 1/delta)` independent
//! instances". [`MedianTracker`] runs `r` independent trackers over the
//! same stream (each with its own counter randomness and site routing) and
//! answers queries with the median estimate.
//!
//! The paper's own experiments run single instances; this wrapper exists
//! for deployments that need the explicit `(eps, delta)` guarantee.

use crate::tracker::BnTracker;
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_monitor::MessageStats;

/// Number of instances needed for failure probability `delta`, given a
/// per-instance failure probability of 1/4 (Lemmas 8–9): the median of `r`
/// instances fails only if at least `r/2` fail, which by a Chernoff bound
/// is at most `exp(-r/8)`; solve for `r` (rounded up to odd).
pub fn instances_for_delta(delta: f64) -> usize {
    assert!(delta > 0.0 && delta < 1.0, "delta must be in (0,1)");
    let r = (8.0 * (1.0 / delta).ln()).ceil() as usize;
    if r.is_multiple_of(2) {
        r + 1
    } else {
        r.max(1)
    }
}

/// `r` independent trackers answering with medians.
pub struct MedianTracker<P: CounterProtocol> {
    instances: Vec<BnTracker<P>>,
}

impl<P: CounterProtocol> MedianTracker<P> {
    /// Wrap pre-built instances (build each with a different seed).
    pub fn new(instances: Vec<BnTracker<P>>) -> Self {
        assert!(!instances.is_empty(), "need at least one instance");
        MedianTracker { instances }
    }

    /// Number of instances `r`.
    pub fn r(&self) -> usize {
        self.instances.len()
    }

    /// Observe an event on every instance.
    pub fn observe(&mut self, x: &[usize]) {
        for t in &mut self.instances {
            t.observe(x);
        }
    }

    /// Feed `m` events from a stream to every instance.
    pub fn train<I: Iterator<Item = Assignment>>(&mut self, stream: I, m: u64) {
        for x in stream.take(m as usize) {
            self.observe(&x);
        }
    }

    /// Median of the instances' log-queries.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        let mut vals: Vec<f64> = self.instances.iter().map(|t| t.log_query(x)).collect();
        median_in_place(&mut vals)
    }

    /// Median query.
    pub fn query(&self, x: &[usize]) -> f64 {
        self.log_query(x).exp()
    }

    /// Total communication across all instances (the `log 1/delta` factor
    /// in Theorem 1's cost).
    pub fn stats(&self) -> MessageStats {
        let mut s = MessageStats::default();
        for t in &self.instances {
            s.merge(&t.stats());
        }
        s
    }

    /// The structure tracked.
    pub fn structure(&self) -> &BayesianNetwork {
        self.instances[0].structure()
    }

    /// Classify via median conditionals.
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        dsbn_bayes::classify::classify(self.structure(), self, target, x)
    }
}

impl<P: CounterProtocol> CpdSource for MedianTracker<P> {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        let mut vals: Vec<f64> = self.instances.iter().map(|t| t.cond_prob(i, value, u)).collect();
        median_in_place(&mut vals)
    }
}

fn median_in_place(vals: &mut [f64]) -> f64 {
    debug_assert!(!vals.is_empty());
    vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in estimates"));
    let n = vals.len();
    if n % 2 == 1 {
        vals[n / 2]
    } else {
        0.5 * (vals[n / 2 - 1] + vals[n / 2])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{build_tracker, AnyTracker, TrackerConfig};
    use crate::allocation::Scheme;
    use dsbn_bayes::sprinkler_network;
    use dsbn_counters::HyzProtocol;
    use dsbn_datagen::TrainingStream;

    fn make(r: usize) -> MedianTracker<HyzProtocol> {
        let net = sprinkler_network();
        let instances: Vec<BnTracker<HyzProtocol>> = (0..r)
            .map(|i| {
                let cfg = TrackerConfig::new(Scheme::Uniform)
                    .with_k(4)
                    .with_eps(0.3)
                    .with_seed(100 + i as u64);
                match build_tracker(&net, &cfg) {
                    AnyTracker::Randomized(t) => t,
                    _ => unreachable!(),
                }
            })
            .collect();
        MedianTracker::new(instances)
    }

    #[test]
    fn instances_for_delta_grows_logarithmically() {
        let a = instances_for_delta(0.1);
        let b = instances_for_delta(0.01);
        let c = instances_for_delta(0.001);
        assert!(a < b && b < c);
        assert!(a % 2 == 1 && b % 2 == 1 && c % 2 == 1);
        // log growth: roughly +18-19 per decade.
        assert!(c - b <= 2 * (b - a) + 2);
    }

    #[test]
    #[should_panic(expected = "delta must be in (0,1)")]
    fn bad_delta_rejected() {
        let _ = instances_for_delta(0.0);
    }

    #[test]
    fn median_tracks_and_costs_r_times_more() {
        let net = sprinkler_network();
        let mut med = make(3);
        let mut single = make(1);
        med.train(TrainingStream::new(&net, 5), 20_000);
        single.train(TrainingStream::new(&net, 5), 20_000);
        let x = vec![1usize, 0, 1, 1];
        let truth = net.joint_log_prob(&x);
        assert!((med.log_query(&x) - truth).abs() < 0.5);
        // Cost scales with r (within noise across instances).
        let ratio = med.stats().total() as f64 / single.stats().total() as f64;
        assert!(ratio > 2.0 && ratio < 4.5, "ratio {ratio}");
        assert_eq!(med.r(), 3);
    }

    #[test]
    fn median_of_even_instances() {
        let mut vals = vec![4.0, 1.0, 3.0, 2.0];
        assert_eq!(median_in_place(&mut vals), 2.5);
        let mut vals = vec![5.0];
        assert_eq!(median_in_place(&mut vals), 5.0);
    }

    #[test]
    fn classify_via_median() {
        let net = sprinkler_network();
        let mut med = make(3);
        med.train(TrainingStream::new(&net, 1), 30_000);
        let mut x = vec![1usize, 0, 0, 1];
        assert_eq!(med.classify(2, &mut x), 1); // rain explains wet grass
    }

    #[test]
    #[should_panic(expected = "at least one instance")]
    fn empty_median_rejected() {
        let _: MedianTracker<HyzProtocol> = MedianTracker::new(vec![]);
    }
}
