//! Error-budget allocation across the counters of a Bayesian network.
//!
//! Approximating the MLE within `e^{±eps}` requires splitting the budget
//! `eps` across `2n` counter groups: for each variable `i`, the family
//! counters `A_i(x_i, u)` get error `epsfnA(i) = nu_i` and the parent
//! counters `A_i(u)` get `epsfnB(i) = mu_i`. The three schemes of §IV:
//!
//! - **BASELINE** (§IV-C): `nu_i = mu_i = eps / (3n)` — every counter within
//!   `(1 ± eps/3n)` makes the product within `e^{±eps}` in the worst case
//!   (Fact 1).
//! - **UNIFORM** (§IV-D): `nu_i = mu_i = eps / (16 sqrt(n))` — unbiasedness
//!   and independence let Chebyshev bound the *product*, improving the
//!   per-counter budget from `eps/n` to `eps/sqrt(n)` (Lemmas 7–9).
//! - **NONUNIFORM** (§IV-E): minimize communication `sum_i J_i K_i / nu_i`
//!   subject to the variance constraint `sum_i nu_i^2 = eps^2/256` (Eq. 5).
//!   The Lagrange closed form (Eq. 7/8):
//!   `nu_i = (J_i K_i)^{1/3} eps / (16 alpha)`,
//!   `alpha = (sum_i (J_i K_i)^{2/3})^{1/2}`, and analogously `mu_i` with
//!   weights `K_i`.
//!
//! [`minimize_inverse_sum`] is an independent numeric solver for the same
//! convex program (projected gradient on the sphere); tests verify the
//! closed form is optimal against it.

use dsbn_bayes::BayesianNetwork;
use serde::{Deserialize, Serialize};

/// The paper's algorithms (EXACTMLE is the strawman of §IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Scheme {
    /// Exact counters; no approximation (Lemma 5).
    ExactMle,
    /// `eps/3n` everywhere (§IV-C).
    Baseline,
    /// `eps/16 sqrt(n)` everywhere (§IV-D).
    Uniform,
    /// Cardinality-adapted budgets (§IV-E).
    NonUniform,
}

impl Scheme {
    /// All four, in the paper's presentation order.
    pub const ALL: [Scheme; 4] =
        [Scheme::ExactMle, Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform];

    /// Lowercase name used in experiment output (matches the paper's
    /// figure legends).
    pub fn name(&self) -> &'static str {
        match self {
            Scheme::ExactMle => "exact",
            Scheme::Baseline => "baseline",
            Scheme::Uniform => "uniform",
            Scheme::NonUniform => "non-uniform",
        }
    }

    /// Parse a name as produced by [`Self::name`].
    pub fn parse(s: &str) -> Option<Scheme> {
        match s.to_ascii_lowercase().as_str() {
            "exact" | "exactmle" => Some(Scheme::ExactMle),
            "baseline" => Some(Scheme::Baseline),
            "uniform" => Some(Scheme::Uniform),
            "non-uniform" | "nonuniform" => Some(Scheme::NonUniform),
            _ => None,
        }
    }
}

/// Per-variable error budgets: `family_eps[i]` = `epsfnA(i)` for the
/// `A_i(x, u)` counters, `parent_eps[i]` = `epsfnB(i)` for `A_i(u)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EpsAllocation {
    pub family_eps: Vec<f64>,
    pub parent_eps: Vec<f64>,
}

impl EpsAllocation {
    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.family_eps.len()
    }
}

/// Compute the allocation for an approximate scheme. Panics if called with
/// [`Scheme::ExactMle`] (exact counters have no error parameter) or with
/// `eps` outside `(0, 1)`.
pub fn allocate(scheme: Scheme, net: &BayesianNetwork, eps: f64) -> EpsAllocation {
    assert!(eps > 0.0 && eps < 1.0, "eps must be in (0,1), got {eps}");
    let n = net.n_vars();
    assert!(n > 0, "empty network");
    match scheme {
        Scheme::ExactMle => panic!("EXACTMLE does not allocate error budgets"),
        Scheme::Baseline => {
            let e = eps / (3.0 * n as f64);
            EpsAllocation { family_eps: vec![e; n], parent_eps: vec![e; n] }
        }
        Scheme::Uniform => {
            let e = eps / (16.0 * (n as f64).sqrt());
            EpsAllocation { family_eps: vec![e; n], parent_eps: vec![e; n] }
        }
        Scheme::NonUniform => {
            let jk: Vec<f64> =
                (0..n).map(|i| (net.cardinality(i) * net.parent_configs(i)) as f64).collect();
            let k: Vec<f64> = (0..n).map(|i| net.parent_configs(i) as f64).collect();
            let alpha: f64 = jk.iter().map(|v| v.powf(2.0 / 3.0)).sum::<f64>().sqrt();
            let beta: f64 = k.iter().map(|v| v.powf(2.0 / 3.0)).sum::<f64>().sqrt();
            EpsAllocation {
                family_eps: jk.iter().map(|v| v.cbrt() * eps / (16.0 * alpha)).collect(),
                parent_eps: k.iter().map(|v| v.cbrt() * eps / (16.0 * beta)).collect(),
            }
        }
    }
}

/// The paper's Γ communication exponent for NONUNIFORM (Theorem 2):
/// `Γ = (sum (J_i K_i)^{2/3})^{3/2} + (sum K_i^{2/3})^{3/2}`.
pub fn gamma_exponent(net: &BayesianNetwork) -> f64 {
    let n = net.n_vars();
    let a: f64 =
        (0..n).map(|i| ((net.cardinality(i) * net.parent_configs(i)) as f64).powf(2.0 / 3.0)).sum();
    let b: f64 = (0..n).map(|i| (net.parent_configs(i) as f64).powf(2.0 / 3.0)).sum();
    a.powf(1.5) + b.powf(1.5)
}

/// Numerically solve `min sum_i w_i / nu_i  s.t.  sum_i nu_i^2 = budget`
/// by projected gradient descent on the sphere. Used to validate the
/// closed-form Lagrange solution (and available for cost models beyond the
/// paper's). Returns the optimizing `nu`.
pub fn minimize_inverse_sum(weights: &[f64], budget: f64, iterations: usize) -> Vec<f64> {
    assert!(budget > 0.0, "budget must be positive");
    assert!(!weights.is_empty(), "need at least one weight");
    assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
    let n = weights.len();
    // Start uniform on the sphere.
    let mut nu = vec![(budget / n as f64).sqrt(); n];
    let mut step = 0.1 * (budget / n as f64);
    let objective = |nu: &[f64]| -> f64 { weights.iter().zip(nu).map(|(w, v)| w / v).sum() };
    let mut best = objective(&nu);
    for _ in 0..iterations {
        // Gradient of sum w_i/nu_i is -w_i/nu_i^2.
        let mut cand: Vec<f64> =
            nu.iter().zip(weights).map(|(&v, &w)| (v + step * w / (v * v)).max(1e-300)).collect();
        // Project back to the sphere.
        let norm: f64 = cand.iter().map(|v| v * v).sum::<f64>().sqrt();
        let scale = budget.sqrt() / norm;
        for v in cand.iter_mut() {
            *v *= scale;
        }
        let obj = objective(&cand);
        if obj < best {
            best = obj;
            nu = cand;
            step *= 1.2;
        } else {
            step *= 0.5;
            if step < 1e-18 {
                break;
            }
        }
    }
    nu
}

/// Closed-form solution of the same program (Eq. 7 shape):
/// `nu_i = sqrt(budget) * w_i^{1/3} / (sum_j w_j^{2/3})^{1/2}`.
pub fn closed_form_inverse_sum(weights: &[f64], budget: f64) -> Vec<f64> {
    let denom: f64 = weights.iter().map(|w| w.powf(2.0 / 3.0)).sum::<f64>().sqrt();
    weights.iter().map(|w| budget.sqrt() * w.cbrt() / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, NetworkSpec};

    #[test]
    fn scheme_names_round_trip() {
        for s in Scheme::ALL {
            assert_eq!(Scheme::parse(s.name()), Some(s));
        }
        assert_eq!(Scheme::parse("bogus"), None);
    }

    #[test]
    fn baseline_and_uniform_are_flat() {
        let net = sprinkler_network();
        let b = allocate(Scheme::Baseline, &net, 0.12);
        assert!(b.family_eps.iter().all(|&e| (e - 0.01).abs() < 1e-12));
        assert_eq!(b.family_eps, b.parent_eps);
        let u = allocate(Scheme::Uniform, &net, 0.1);
        let expect = 0.1 / (16.0 * 2.0);
        assert!(u.family_eps.iter().all(|&e| (e - expect).abs() < 1e-12));
    }

    #[test]
    #[should_panic(expected = "does not allocate")]
    fn exact_mle_has_no_allocation() {
        let _ = allocate(Scheme::ExactMle, &sprinkler_network(), 0.1);
    }

    #[test]
    #[should_panic(expected = "eps must be in (0,1)")]
    fn eps_bounds_enforced() {
        let _ = allocate(Scheme::Baseline, &sprinkler_network(), 1.5);
    }

    #[test]
    fn nonuniform_satisfies_variance_constraint() {
        // Eq. 5 constraint: sum nu_i^2 = eps^2 / 256 (and same for mu).
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let eps = 0.1;
        let a = allocate(Scheme::NonUniform, &net, eps);
        let sum_nu: f64 = a.family_eps.iter().map(|v| v * v).sum();
        let sum_mu: f64 = a.parent_eps.iter().map(|v| v * v).sum();
        let target = eps * eps / 256.0;
        assert!((sum_nu - target).abs() / target < 1e-9, "sum nu^2 {sum_nu} vs {target}");
        assert!((sum_mu - target).abs() / target < 1e-9, "sum mu^2 {sum_mu} vs {target}");
    }

    #[test]
    fn nonuniform_gives_larger_budgets_to_bigger_cpds() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let a = allocate(Scheme::NonUniform, &net, 0.1);
        // nu_i must be monotone in J_i * K_i.
        let mut pairs: Vec<(usize, f64)> = (0..net.n_vars())
            .map(|i| (net.cardinality(i) * net.parent_configs(i), a.family_eps[i]))
            .collect();
        pairs.sort_by_key(|p| p.0);
        for w in pairs.windows(2) {
            assert!(w[0].1 <= w[1].1 + 1e-15, "nu not monotone in JK");
        }
    }

    #[test]
    fn closed_form_matches_numeric_solver() {
        let weights = vec![1.0, 8.0, 27.0, 2.0, 5.5];
        let budget = 0.01;
        let closed = closed_form_inverse_sum(&weights, budget);
        let numeric = minimize_inverse_sum(&weights, budget, 20_000);
        let obj = |nu: &[f64]| -> f64 { weights.iter().zip(nu).map(|(w, v)| w / v).sum() };
        let co = obj(&closed);
        let no = obj(&numeric);
        // The closed form must be at least as good as the numeric optimum
        // (up to solver tolerance), and the constraint must hold for both.
        assert!(co <= no * 1.001, "closed {co} vs numeric {no}");
        let c_norm: f64 = closed.iter().map(|v| v * v).sum();
        assert!((c_norm - budget).abs() / budget < 1e-9);
        // And the numeric solution should approach the closed form.
        for (c, m) in closed.iter().zip(&numeric) {
            assert!((c - m).abs() / c < 0.05, "closed {c} vs numeric {m}");
        }
    }

    #[test]
    fn closed_form_kkt_conditions() {
        // KKT: w_i / nu_i^2 proportional to nu_i, i.e. w_i / nu_i^3 constant.
        let weights = vec![3.0, 1.0, 10.0, 0.25];
        let nu = closed_form_inverse_sum(&weights, 4.0);
        let ratios: Vec<f64> = weights.iter().zip(&nu).map(|(w, v)| w / v.powi(3)).collect();
        for r in &ratios[1..] {
            assert!((r - ratios[0]).abs() / ratios[0] < 1e-9);
        }
    }

    #[test]
    fn uniform_weights_reduce_nonuniform_to_uniform() {
        // When every variable has the same J and K, NONUNIFORM must match
        // the UNIFORM allocation exactly (both = eps/(16 sqrt n)).
        let weights = vec![6.0; 10];
        let budget = 0.1f64 * 0.1 / 256.0;
        let nu = closed_form_inverse_sum(&weights, budget);
        let expect = 0.1 / (16.0 * (10.0f64).sqrt());
        for v in nu {
            assert!((v - expect).abs() < 1e-12, "{v} vs {expect}");
        }
    }

    #[test]
    fn naive_bayes_special_case_matches_eq9() {
        // Build a Naive Bayes structure: root 0, features 1..n with parent 0.
        use dsbn_bayes::{Cpt, Dag, Variable};
        let n = 6usize;
        let j_class = 3usize;
        let j_feat = [2usize, 4, 2, 5, 3];
        let mut dag = Dag::new(n);
        let mut variables = vec![Variable::with_cardinality("class", j_class).unwrap()];
        let mut cpts = vec![Cpt::uniform(j_class, vec![])];
        for (f, &j) in j_feat.iter().enumerate() {
            dag.add_edge(0, f + 1).unwrap();
            variables.push(Variable::with_cardinality(format!("f{f}"), j).unwrap());
            cpts.push(Cpt::uniform(j, vec![j_class]));
        }
        let net = dsbn_bayes::BayesianNetwork::new("nb", variables, dag, cpts).unwrap();
        let eps = 0.1;
        let a = allocate(Scheme::NonUniform, &net, eps);
        // Eq. 9 (derived from Eq. 7 with K_i = J_1): for features i >= 2,
        // nu_i = eps * J_i^{1/3} / (16 * (sum_j (J_j J_1)^{2/3} / J_1^{2/3})^{1/2})
        // which equals the general closed form; verify the J_1 factor
        // cancels as the paper claims.
        let alpha: f64 = (0..n)
            .map(|i| ((net.cardinality(i) * net.parent_configs(i)) as f64).powf(2.0 / 3.0))
            .sum::<f64>()
            .sqrt();
        for (f, &j) in j_feat.iter().enumerate() {
            let i = f + 1;
            let expect = ((j * j_class) as f64).cbrt() * eps / (16.0 * alpha);
            assert!((a.family_eps[i] - expect).abs() < 1e-15);
        }
        // mu for features: K_i = J_1 identical => flat over features.
        let mu1 = a.parent_eps[1];
        for i in 2..n {
            assert!((a.parent_eps[i] - mu1).abs() < 1e-15);
        }
    }

    #[test]
    fn gamma_exponent_positive_and_monotone() {
        let small = sprinkler_network();
        let big = NetworkSpec::alarm().generate(1).unwrap();
        let gs = gamma_exponent(&small);
        let gb = gamma_exponent(&big);
        assert!(gs > 0.0);
        assert!(gb > gs, "alarm gamma {gb} should exceed sprinkler {gs}");
    }
}
