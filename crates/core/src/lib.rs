//! # dsbn-core — distributed streaming MLE approximation
//!
//! The paper's contribution (Zhang, Tirthapura & Cormode, *Learning
//! Graphical Models from a Distributed Stream*, ICDE 2018): continuously
//! maintain the parameters of a Bayesian network over a stream of events
//! partitioned across `k` sites, keeping the maintained joint distribution
//! within `e^{±eps}` of the exact MLE (Definition 2) while communicating
//! exponentially less than exact maintenance.
//!
//! - [`allocation`] — the BASELINE / UNIFORM / NONUNIFORM error-budget
//!   schemes (§IV-C/D/E), including the Lagrange closed form of Eq. 7/8 and
//!   a numeric solver that validates it.
//! - [`layout`] — dense counter addressing for the `A_i(x, u)` / `A_i(u)`
//!   counter banks.
//! - [`tracker`] — Algorithms 1–3: INIT / UPDATE / QUERY over any counter
//!   protocol, plus Markov-blanket classification (§V).
//! - [`algorithms`] — one-call constructors for EXACTMLE / BASELINE /
//!   UNIFORM / NONUNIFORM.
//! - [`cluster`] — the same trackers on the live threaded cluster runtime
//!   ([`cluster::run_cluster_tracker`]): UPDATE on site threads, QUERY at
//!   the coordinator (Figs. 7–8).
//! - [`snapshot`] — the pure read path split from ingest: the shared
//!   [`snapshot::CptEvaluator`] every tracker's query methods delegate
//!   to, and the frozen query-ready [`snapshot::CptSnapshot`].
//! - [`serve`] — the concurrent query-serving layer:
//!   [`serve::SnapshotServer`] answers classify/posterior/QUERY traffic
//!   from epoch-consistent snapshots, lock-free, while a cluster run
//!   ingests (DESIGN.md §7).
//! - [`median`] — median-of-instances delta-amplification (Theorem 1).
//! - [`decay`] — time-decayed tracking (the paper's future work (2)):
//!   the centralized [`decay::DecayedMle`] and the *distributed*
//!   epoch-ring [`decay::DecayedTracker`] /
//!   [`decay::run_decayed_cluster_tracker`].
//! - [`evaluate`] — §VI metrics (error to truth, error to MLE,
//!   classification error rate).
//!
//! ## Quick start
//!
//! ```
//! use dsbn_core::{build_tracker, Scheme, TrackerConfig};
//! use dsbn_bayes::sprinkler_network;
//! use dsbn_datagen::TrainingStream;
//!
//! let net = sprinkler_network();
//! let mut tracker = build_tracker(&net, &TrackerConfig::new(Scheme::NonUniform)
//!     .with_eps(0.1)
//!     .with_k(8));
//! tracker.train(TrainingStream::new(&net, 42), 10_000);
//! let p = tracker.query(&[1, 0, 1, 1]);
//! assert!(p > 0.0 && p < 1.0);
//! println!("P ~= {p}, messages = {}", tracker.stats().total());
//! ```

pub mod algorithms;
pub mod allocation;
pub mod cluster;
pub mod decay;
pub mod evaluate;
pub mod layout;
pub mod median;
pub mod serve;
pub mod snapshot;
pub mod tracker;

pub use algorithms::{build_deterministic_tracker, build_tracker, AnyTracker, TrackerConfig};
pub use allocation::{allocate, gamma_exponent, EpsAllocation, Scheme};
pub use cluster::{run_cluster_tracker, ClusterModel, ClusterTrackerRun};
pub use decay::{
    build_decayed_tracker, run_decayed_cluster_tracker, AnyDecayedTracker, DecayConfig,
    DecayedClusterModel, DecayedClusterRun, DecayedMle, DecayedTracker, EpochDecayConfig,
};
pub use dsbn_monitor::SnapshotHub;
pub use evaluate::{
    classification_error_rate, errors_to_truth, query_errors, sampled_kl, ErrorSummary,
};
pub use layout::{CounterLayout, MappingMode};
pub use median::{instances_for_delta, MedianTracker};
pub use serve::SnapshotServer;
pub use snapshot::{CounterReads, CptEvaluator, CptSnapshot, ExactReads};
pub use tracker::{BnTracker, Smoothing};
