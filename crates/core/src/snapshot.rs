//! The pure read path: QUERY (Algorithm 3), Markov-blanket classification
//! (§V), and smoothing, split from ingest.
//!
//! Every tracker in this crate answers queries the same way: per-counter
//! reads are paired into `(A_i(x,u), A_i(u))` by the
//! [`CounterLayout`], smoothed into conditional probabilities, and
//! multiplied (in log space) along the network structure. What differs
//! between trackers is only *where the reads come from* — live protocol
//! estimates, a frozen slab, decayed ring sums, or the exact oracle.
//!
//! [`CptEvaluator`] captures that shared logic once, generic over a
//! [`CounterReads`] source; the trackers' query methods and every
//! exact-oracle "view" delegate here. [`CptSnapshot`] is the frozen form:
//! per-counter reads resolved out of a monitor-layer
//! [`CounterSnapshot`] at a settlement, so query threads can serve
//! classify/posterior traffic from an immutable value with no access to
//! tracker state at all ([`crate::serve::SnapshotServer`]).

use crate::layout::CounterLayout;
use crate::tracker::Smoothing;
use dsbn_bayes::classify::{classify as mb_classify, posterior as mb_posterior, CpdSource};
use dsbn_bayes::BayesianNetwork;
use dsbn_monitor::CounterSnapshot;

/// A source of per-counter reads in [`CounterLayout`] id order.
///
/// The one point of variation between the trackers' read paths: live
/// coordinator estimates, frozen slabs, `lambda^age`-decayed ring sums,
/// and exact-oracle totals all present as this.
pub trait CounterReads {
    /// The read of counter `id`.
    fn read(&self, id: usize) -> f64;
}

impl CounterReads for [f64] {
    fn read(&self, id: usize) -> f64 {
        self[id]
    }
}

/// Exact-oracle totals as counter reads — the reference side of
/// Definition 2, read through the identical smoothing and query path as
/// the estimates so the reference can never drift from the tracked
/// model's read rules.
pub struct ExactReads<'a>(pub &'a [u64]);

impl CounterReads for ExactReads<'_> {
    fn read(&self, id: usize) -> f64 {
        self.0[id] as f64
    }
}

/// Smoothed conditional probability from a `(A_i(x,u), A_i(u))` counter
/// pair over a `J_i`-ary variable — the one place probabilities are read
/// off counters, shared by every tracker.
pub(crate) fn smoothed_cond_prob(num: f64, den: f64, j: f64, smoothing: Smoothing) -> f64 {
    match smoothing {
        Smoothing::None => {
            if den <= 0.0 {
                1.0 / j
            } else {
                (num / den).max(0.0)
            }
        }
        Smoothing::Pseudocount(a) => (num.max(0.0) + a) / (den.max(0.0) + a * j),
    }
}

/// `log P~[x]` over any conditional-probability source — Algorithm 3 in
/// log space.
pub(crate) fn log_query_via<S: CpdSource>(layout: &CounterLayout, src: &S, x: &[usize]) -> f64 {
    let mut lp = 0.0;
    for i in 0..layout.n_vars() {
        let u = layout.parent_config_of(i, x);
        lp += src.cond_prob(i, x[i], u).ln();
    }
    lp
}

/// The pure read-only query evaluator: Algorithm 3 and Markov-blanket
/// classification over a structure, a layout, a smoothing mode, and any
/// [`CounterReads`] source. Borrow-only and a few pointers wide — build
/// one per query. All tracker query methods delegate here, so the read
/// path is byte-identical no matter which tracker (or frozen snapshot)
/// the reads come from.
pub struct CptEvaluator<'a, R: CounterReads + ?Sized> {
    structure: &'a BayesianNetwork,
    layout: &'a CounterLayout,
    reads: &'a R,
    smoothing: Smoothing,
}

impl<'a, R: CounterReads + ?Sized> CptEvaluator<'a, R> {
    /// Evaluator over `reads` (in `layout` id order).
    pub fn new(
        structure: &'a BayesianNetwork,
        layout: &'a CounterLayout,
        reads: &'a R,
        smoothing: Smoothing,
    ) -> Self {
        CptEvaluator { structure, layout, reads, smoothing }
    }

    /// Counter reads for one CPD entry: `(A_i(x, u), A_i(u))`.
    pub fn counter_pair(&self, i: usize, value: usize, u: usize) -> (f64, f64) {
        let num = self.reads.read(self.layout.family_id(i, value, u) as usize);
        let den = self.reads.read(self.layout.parent_id(i, u) as usize);
        (num, den)
    }

    /// `log P~[x]` — QUERY (Algorithm 3) in log space.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        debug_assert!(self.structure.check_assignment(x).is_ok());
        log_query_via(self.layout, self, x)
    }

    /// `P~[x]` (prefer [`Self::log_query`] for large `n`).
    pub fn query(&self, x: &[usize]) -> f64 {
        self.log_query(x).exp()
    }

    /// Classify `target` given full evidence in `x` (the entry at `target`
    /// is ignored) — §V.
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        mb_classify(self.structure, self, target, x)
    }

    /// Posterior over `target` given full evidence.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        mb_posterior(self.structure, self, target, x)
    }
}

impl<R: CounterReads + ?Sized> CpdSource for CptEvaluator<'_, R> {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        let (num, den) = self.counter_pair(i, value, u);
        smoothed_cond_prob(num, den, self.layout.cardinality(i) as f64, self.smoothing)
    }
}

/// A query-ready frozen CPT state: per-counter reads resolved out of a
/// monitor-layer [`CounterSnapshot`] (or frozen off a live tracker via
/// [`crate::BnTracker::snapshot`]). Immutable — query threads evaluate
/// against it with no access to tracker or coordinator state.
#[derive(Debug, Clone, PartialEq)]
pub struct CptSnapshot {
    /// Publish sequence of the underlying counter snapshot (`0` = the
    /// empty pre-publish state).
    pub seq: u64,
    /// Events represented (settled lower bound for mid-stream mints).
    pub events: u64,
    /// Closed epochs at mint time.
    pub epochs: u64,
    /// Minted at the run's terminal settlement rather than mid-stream.
    pub finalized: bool,
    /// Resolved per-counter reads, layout id order: cumulative
    /// (`settled + open`) or `lambda^age`-decayed, per [`Self::resolve`].
    pub reads: Vec<f64>,
    /// Exact per-counter totals (final snapshots only — the test oracle).
    pub exact: Option<Vec<u64>>,
}

impl CptSnapshot {
    /// Resolve a counter-layer snapshot into query-ready reads.
    ///
    /// With `lambda = 1` each read is the *cumulative* count,
    /// [`CounterSnapshot::cumulative`] — with no closed epochs that is
    /// the open estimate verbatim, bit-for-bit, which is what pins the
    /// final-snapshot ≡ end-of-run equivalence. With `lambda < 1` each
    /// read is the `lambda^age`-weighted sum over the retained
    /// closed-epoch ring plus the open estimate — the identical
    /// operation order as `EpochRing::decayed`, so a served decayed read
    /// is bit-identical to [`crate::DecayedClusterModel`]'s.
    ///
    /// The empty pre-publish snapshot (`seq == 0`) resolves to all-zero
    /// reads — smoothing turns those into uniform conditionals, so a
    /// server is queryable before the first settlement.
    pub fn resolve(snap: &CounterSnapshot, n_counters: usize, lambda: f64) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1], got {lambda}");
        let reads: Vec<f64> = if snap.seq == 0 {
            vec![0.0; n_counters]
        } else {
            assert_eq!(
                snap.open.len(),
                n_counters,
                "counter snapshot does not match the network layout"
            );
            (0..n_counters)
                .map(|c| {
                    if lambda >= 1.0 {
                        snap.cumulative(c)
                    } else {
                        let mut total = snap.open[c];
                        let mut weight = 1.0;
                        for epoch in snap.closed.iter().rev() {
                            weight *= lambda;
                            total += weight * epoch[c];
                        }
                        total
                    }
                })
                .collect()
        };
        CptSnapshot {
            seq: snap.seq,
            events: snap.events,
            epochs: snap.epochs,
            finalized: snap.finalized,
            reads,
            exact: snap.exact.clone(),
        }
    }
}

impl CounterReads for CptSnapshot {
    fn read(&self, id: usize) -> f64 {
        self.reads[id]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;

    fn snap_with(open: Vec<f64>, closed: Vec<Vec<f64>>, epochs: u64) -> CounterSnapshot {
        let n = open.len();
        let mut s = CounterSnapshot::empty();
        s.seq = 1;
        s.epochs = epochs;
        s.settled = vec![0.0; n];
        for e in &closed {
            for (c, v) in e.iter().enumerate() {
                s.settled[c] += v;
            }
        }
        s.open = open;
        s.closed = closed;
        s
    }

    #[test]
    fn resolve_cumulative_with_no_epochs_is_the_open_slab_verbatim() {
        let open = vec![2.5, 0.0, 7.25];
        let snap = snap_with(open.clone(), vec![], 0);
        let cpt = CptSnapshot::resolve(&snap, 3, 1.0);
        for (r, o) in cpt.reads.iter().zip(&open) {
            assert_eq!(r.to_bits(), o.to_bits());
        }
    }

    #[test]
    fn resolve_decayed_matches_epoch_ring_read() {
        use dsbn_counters::epoch::EpochRing;
        let closed = vec![vec![100.0, 3.0], vec![10.0, 5.0]];
        let snap = snap_with(vec![1.0, 2.0], closed.clone(), 2);
        let lambda = 0.5;
        let cpt = CptSnapshot::resolve(&snap, 2, lambda);
        for c in 0..2 {
            let mut ring = EpochRing::new(4);
            for e in &closed {
                ring.push(e[c]);
            }
            assert_eq!(cpt.reads[c].to_bits(), ring.decayed(snap.open[c], lambda).to_bits());
        }
        // Cumulative read covers settled mass beyond the ring too.
        let cum = CptSnapshot::resolve(&snap, 2, 1.0);
        assert_eq!(cum.reads[0], 111.0);
    }

    #[test]
    fn empty_snapshot_resolves_to_uniform_conditionals() {
        let net = sprinkler_network();
        let layout = CounterLayout::new(&net);
        let cpt = CptSnapshot::resolve(&CounterSnapshot::empty(), layout.n_counters(), 1.0);
        let eval = CptEvaluator::new(&net, &layout, &cpt, Smoothing::Pseudocount(0.5));
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                for v in 0..layout.cardinality(i) {
                    assert!((eval.cond_prob(i, v, u) - 0.5).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn evaluator_reads_slices_and_oracles_identically() {
        let net = sprinkler_network();
        let layout = CounterLayout::new(&net);
        let n = layout.n_counters();
        let totals: Vec<u64> = (0..n as u64).map(|c| 10 * c + 1).collect();
        let floats: Vec<f64> = totals.iter().map(|&t| t as f64).collect();
        let via_slice =
            CptEvaluator::new(&net, &layout, floats.as_slice(), Smoothing::Pseudocount(0.5));
        let oracle = ExactReads(&totals);
        let via_oracle = CptEvaluator::new(&net, &layout, &oracle, Smoothing::Pseudocount(0.5));
        let x = vec![1usize, 0, 1, 1];
        assert_eq!(via_slice.log_query(&x).to_bits(), via_oracle.log_query(&x).to_bits());
        let (num, den) = via_slice.counter_pair(1, 1, 0);
        assert_eq!((num, den), via_oracle.counter_pair(1, 1, 0));
    }

    #[test]
    #[should_panic(expected = "does not match the network layout")]
    fn resolve_rejects_mismatched_layout() {
        let snap = snap_with(vec![1.0, 2.0], vec![], 0);
        let _ = CptSnapshot::resolve(&snap, 5, 1.0);
    }
}
