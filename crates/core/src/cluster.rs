//! The full tracker on the threaded cluster runtime.
//!
//! [`run_cluster_tracker`] lifts Algorithms 1–3 onto
//! [`dsbn_monitor::run_cluster`]: the same [`TrackerConfig`] that drives
//! [`crate::build_tracker`] on the synchronous simulator here drives a live
//! k-site cluster — INIT picks the per-counter protocols from the scheme's
//! error-budget allocation, UPDATE (the event → `2n` counter-ids mapping of
//! Algorithm 2) runs on the site threads, and QUERY (Algorithm 3) is
//! answered at the coordinator from the final counter estimates via
//! [`ClusterModel`].
//!
//! This is the paper's Fig. 7–8 configuration: the headline experiments
//! measure BASELINE/UNIFORM/NONUNIFORM running live on a cluster, not bare
//! counters.

use crate::algorithms::TrackerConfig;
use crate::allocation::Scheme;
use crate::layout::CounterLayout;
use crate::snapshot::{CptEvaluator, ExactReads};
use crate::tracker::Smoothing;
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_counters::ExactProtocol;
use dsbn_monitor::{chunk_events, run_cluster, ClusterConfig, ClusterError, ClusterReport};

/// Epoch-ring capacity used when [`TrackerConfig::snapshot_every`] turns
/// on settlement rolling purely for snapshot minting (no decay read ever
/// touches the ring, so a short ring suffices; cumulative reads come from
/// the never-truncating settled accumulator).
const SNAPSHOT_RING: usize = 8;

/// The model a cluster run leaves behind at the coordinator: a queryable
/// snapshot of the final counter estimates, read with the same smoothing
/// rules as [`crate::BnTracker`].
///
/// Also carries the exact per-counter totals (an oracle reconstructed from
/// site states at shutdown — not visible to a real coordinator) so tests
/// and experiments can check Definition 2's `e^{±eps}` band directly via
/// [`ClusterModel::exact_log_query`].
#[derive(Debug, Clone)]
pub struct ClusterModel {
    structure: BayesianNetwork,
    layout: CounterLayout,
    estimates: Vec<f64>,
    exact_totals: Vec<u64>,
    smoothing: Smoothing,
}

impl ClusterModel {
    /// The network structure the model maintains parameters for.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Counter addressing.
    pub fn layout(&self) -> &CounterLayout {
        &self.layout
    }

    /// The smoothing mode.
    pub fn smoothing(&self) -> Smoothing {
        self.smoothing
    }

    /// The pure read-only evaluator over the final coordinator estimates —
    /// every query method below is a thin delegation to it.
    pub fn evaluator(&self) -> CptEvaluator<'_, [f64]> {
        CptEvaluator::new(&self.structure, &self.layout, self.estimates.as_slice(), self.smoothing)
    }

    /// Coordinator estimates for one CPD entry: `(A_i(x, u), A_i(u))`.
    pub fn counter_pair(&self, i: usize, value: usize, u: usize) -> (f64, f64) {
        self.evaluator().counter_pair(i, value, u)
    }

    /// Exact global count of counter `id` (test oracle).
    pub fn exact_total(&self, id: usize) -> u64 {
        self.exact_totals[id]
    }

    /// `log P~[x]` — QUERY (Algorithm 3) at the coordinator.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        self.evaluator().log_query(x)
    }

    /// `P~[x]` (prefer [`Self::log_query`] for large `n`).
    pub fn query(&self, x: &[usize]) -> f64 {
        self.evaluator().query(x)
    }

    /// `log P^[x]` of the *exact MLE* over the same stream, computed from
    /// the oracle totals with identical smoothing — the reference of
    /// Definition 2, so `|log_query(x) - exact_log_query(x)| <= eps` is
    /// exactly the paper's `e^{±eps}` guarantee. Delegates to the same
    /// evaluator as the estimates, over [`ExactReads`], so the reference
    /// can never drift from the tracked model's read rules.
    pub fn exact_log_query(&self, x: &[usize]) -> f64 {
        let oracle = ExactReads(&self.exact_totals);
        CptEvaluator::new(&self.structure, &self.layout, &oracle, self.smoothing).log_query(x)
    }

    /// Classify `target` given full evidence in `x` (the entry at `target`
    /// is ignored), using the tracked parameters (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        self.evaluator().classify(target, x)
    }

    /// Posterior over `target` given full evidence.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        self.evaluator().posterior(target, x)
    }
}

impl CpdSource for ClusterModel {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        self.evaluator().cond_prob(i, value, u)
    }
}

/// Everything a cluster-tracker run produces: the queryable coordinator
/// model plus the runtime/communication report.
#[derive(Debug, Clone)]
pub struct ClusterTrackerRun {
    /// QUERY-able final model (Algorithm 3 at the coordinator).
    pub model: ClusterModel,
    /// Runtime, message, packet, and byte accounting.
    pub report: ClusterReport,
}

/// Run the full tracker for `config.scheme` over a live threaded cluster.
///
/// The same `TrackerConfig` accepted by [`crate::build_tracker`] runs
/// unchanged here: `k`, `seed`, `partitioner`, `eps`, and `smoothing` all
/// carry over, with events routed to site threads by the partitioner and
/// the `2n` counter increments of Algorithm 2 executed on-site. A
/// `faults` schedule injects seeded site crash/rejoin churn; the returned
/// report's `churn` section accounts for every kill, revive, and lost
/// event. With
/// `config.coord_workers > 1` the coordinator shards its counter state by
/// layout-aligned contiguous ranges ([`CounterLayout::shard_starts`]) —
/// bit-identical results, parallel decode/apply.
///
/// Fails with a typed [`ClusterError`] (never a panic or a hung join) when
/// a packet fails to decode or the transport errors.
pub fn run_cluster_tracker<I>(
    net: &BayesianNetwork,
    config: &TrackerConfig,
    events: I,
) -> Result<ClusterTrackerRun, ClusterError>
where
    I: Iterator<Item = Assignment>,
{
    let mut layout = CounterLayout::new(net);
    layout.set_mapping(config.mapping);
    let mut cluster = ClusterConfig::new(config.k, config.seed).with_chunk(config.chunk);
    cluster.partitioner = config.partitioner;
    cluster.faults = config.faults.clone();
    if config.coord_workers > 1 {
        cluster = cluster.with_sharded_coordinator(
            config.coord_workers,
            Some(layout.shard_starts(config.coord_workers)),
        );
    }
    // Mid-stream snapshots need settlements to mint at: `snapshot_every`
    // turns on epoch rolling at that boundary (with no decay semantics —
    // the cumulative read `settled + open` is what gets served).
    if let Some(every) = config.snapshot_every {
        cluster = cluster.with_epochs(every, SNAPSHOT_RING);
    }
    if let Some(hub) = &config.publish {
        cluster = cluster.with_publish(hub.clone());
    }
    let report = match config.scheme {
        Scheme::ExactMle => {
            let protocols = vec![ExactProtocol; layout.n_counters()];
            run_with(&protocols, &cluster, &layout, events)?
        }
        scheme => {
            let protocols = crate::algorithms::hyz_protocols(net, &layout, scheme, config.eps);
            run_with(&protocols, &cluster, &layout, events)?
        }
    };
    // With settlement rolling on, `report.estimates` covers only the open
    // epoch; the model's reads are the cumulative counts. Without rolling
    // the estimates pass through verbatim (bit-for-bit — `settled_totals`
    // is all zeros then, but even an add of 0.0 is skipped).
    let estimates = if report.epochs > 0 {
        report.settled_totals.iter().zip(&report.estimates).map(|(s, e)| s + e).collect()
    } else {
        report.estimates.clone()
    };
    let model = ClusterModel {
        structure: net.clone(),
        estimates,
        exact_totals: report.exact_totals.clone(),
        smoothing: config.smoothing,
        layout,
    };
    Ok(ClusterTrackerRun { model, report })
}

pub(crate) fn run_with<P, I>(
    protocols: &[P],
    cluster: &ClusterConfig,
    layout: &CounterLayout,
    events: I,
) -> Result<ClusterReport, ClusterError>
where
    P: CounterProtocol + Sync,
    P::Site: Send,
    I: Iterator<Item = Assignment>,
{
    // Transport the per-event stream to the driver in chunk-sized groups;
    // the driver re-chunks per destination site, so `cluster.chunk` is
    // what governs the wire behavior.
    run_cluster(protocols, cluster, chunk_events(events, cluster.chunk), |chunk, ids| {
        layout.map_chunk(chunk, ids)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::build_tracker;
    use dsbn_bayes::sprinkler_network;
    use dsbn_datagen::TrainingStream;

    #[test]
    fn exact_cluster_tracker_equals_sim_tracker() {
        // With exact counters the maintained counts depend only on the
        // event multiset, so the cluster tracker must agree with the
        // simulator tracker bit-for-bit on the same stream.
        let net = sprinkler_network();
        let m = 5_000u64;
        let tc = TrackerConfig::new(Scheme::ExactMle).with_k(4).with_seed(3);
        let mut sim = build_tracker(&net, &tc);
        sim.train(TrainingStream::new(&net, 17), m);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 17).take(m as usize))
            .expect("cluster run failed");
        assert_eq!(run.report.events, m);
        let layout = run.model.layout();
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                for v in 0..layout.cardinality(i) {
                    let (num, den) = run.model.counter_pair(i, v, u);
                    assert_eq!(
                        num,
                        run.model.exact_total(layout.family_id(i, v, u) as usize) as f64
                    );
                    assert_eq!(den, run.model.exact_total(layout.parent_id(i, u) as usize) as f64);
                    let d = (run.model.cond_prob(i, v, u) - sim.cond_prob(i, v, u)).abs();
                    assert!(d < 1e-12, "cpd ({i},{v},{u}) differs by {d}");
                }
            }
        }
        // QUERY at the coordinator matches the sim tracker exactly.
        for x in TrainingStream::new(&net, 99).take(20) {
            let d = (run.model.log_query(&x) - sim.log_query(&x)).abs();
            assert!(d < 1e-12, "log query differs by {d}");
            // And the exact-MLE reference is the model itself here.
            assert!((run.model.log_query(&x) - run.model.exact_log_query(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn randomized_cluster_tracker_stays_in_band() {
        let net = sprinkler_network();
        let m = 40_000usize;
        let eps = 0.1;
        let tc = TrackerConfig::new(Scheme::NonUniform).with_k(5).with_eps(eps).with_seed(1);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 23).take(m))
            .expect("cluster run failed");
        assert_eq!(run.report.events, m as u64);
        // Sublinear communication compared to exact maintenance (2 n m).
        assert!(run.report.stats.total() < 2 * 4 * m as u64);
        // Definition 2 band against the exact MLE on the same stream.
        for x in TrainingStream::new(&net, 7).take(50) {
            let gap = (run.model.log_query(&x) - run.model.exact_log_query(&x)).abs();
            assert!(gap < 3.0 * eps, "query band violated: {gap}");
        }
    }

    #[test]
    fn cluster_model_classifies_and_gives_posteriors() {
        let net = sprinkler_network();
        let tc = TrackerConfig::new(Scheme::Uniform).with_k(3).with_eps(0.1).with_seed(2);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 31).take(30_000))
            .expect("cluster run failed");
        let mut x = vec![1usize, 0, 0, 1];
        let p = run.model.posterior(2, &mut x);
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p[1] > p[0], "rain should dominate given wet grass: {p:?}");
        assert_eq!(run.model.classify(2, &mut x), 1);
    }
}
