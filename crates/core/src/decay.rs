//! Time-decayed parameter tracking (the paper's future work (2)).
//!
//! "Consider time-decay models which give higher weight to more recent
//! stream instances." [`DecayedMle`] maintains exponentially decayed
//! counts: an event observed `d` ticks ago contributes `lambda^d` to its
//! counters. Under concept drift, the decayed MLE converges to the
//! post-drift distribution at a rate set by the half-life, while the plain
//! MLE stays polluted by pre-drift mass (see `exp_ablation_decay`).
//!
//! This tracker is centralized (it sees every event, like EXACTMLE).
//! Combining decay with sublinear-communication counters is genuinely open
//! — the HYZ estimator relies on counts being non-decreasing — which is
//! exactly why the paper leaves it as future work; the centralized version
//! quantifies the *accuracy* benefit the distributed extension would chase.

use crate::layout::CounterLayout;
use crate::tracker::{log_query_via, smoothed_cond_prob, Smoothing};
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::BayesianNetwork;
use serde::{Deserialize, Serialize};

/// Exponential decay configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayConfig {
    /// Per-event decay factor `lambda` in `(0, 1]`; 1 disables decay.
    pub lambda: f64,
    /// Smoothing for conditional estimates.
    pub smoothing: Smoothing,
}

impl DecayConfig {
    /// Configure via half-life: after `half_life` events a count's weight
    /// has halved.
    pub fn with_half_life(half_life: f64, smoothing: Smoothing) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        DecayConfig { lambda: (-std::f64::consts::LN_2 / half_life).exp(), smoothing }
    }
}

/// Centralized exponentially decayed MLE.
pub struct DecayedMle {
    structure: BayesianNetwork,
    layout: CounterLayout,
    counts: Vec<f64>,
    last_tick: Vec<u64>,
    ln_lambda: f64,
    tick: u64,
    smoothing: Smoothing,
    ids_buf: Vec<u32>,
}

impl DecayedMle {
    /// Build over a network structure.
    pub fn new(structure: &BayesianNetwork, config: DecayConfig) -> Self {
        assert!(
            config.lambda > 0.0 && config.lambda <= 1.0,
            "lambda must be in (0,1], got {}",
            config.lambda
        );
        let layout = CounterLayout::new(structure);
        let n = layout.n_counters();
        DecayedMle {
            structure: structure.clone(),
            layout,
            counts: vec![0.0; n],
            last_tick: vec![0; n],
            ln_lambda: config.lambda.ln(),
            tick: 0,
            smoothing: config.smoothing,
            ids_buf: Vec::new(),
        }
    }

    /// Events observed.
    pub fn events(&self) -> u64 {
        self.tick
    }

    /// The tracked structure.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Observe one event (counts of all other counters implicitly decay).
    pub fn observe(&mut self, x: &[usize]) {
        self.tick += 1;
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_event(x, &mut ids);
        for &id in &ids {
            let id = id as usize;
            let dt = self.tick - self.last_tick[id];
            self.counts[id] = self.counts[id] * (self.ln_lambda * dt as f64).exp() + 1.0;
            self.last_tick[id] = self.tick;
        }
        self.ids_buf = ids;
    }

    /// A counter's decayed value as of the current tick.
    pub fn decayed_count(&self, id: usize) -> f64 {
        let dt = self.tick - self.last_tick[id];
        self.counts[id] * (self.ln_lambda * dt as f64).exp()
    }

    /// `log P~[x]` under the decayed model — the shared Algorithm 3 in log
    /// space, like every other tracker.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        log_query_via(&self.layout, self, x)
    }

    /// Classify under the decayed model.
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        dsbn_bayes::classify::classify(&self.structure, self, target, x)
    }
}

impl CpdSource for DecayedMle {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        let num = self.decayed_count(self.layout.family_id(i, value, u) as usize);
        let den = self.decayed_count(self.layout.parent_id(i, u) as usize);
        smoothed_cond_prob(num, den, self.layout.cardinality(i) as f64, self.smoothing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, Cpt, Dag, Variable};
    use dsbn_datagen::{DriftingStream, TrainingStream};

    fn coin(p_one: f64) -> BayesianNetwork {
        let variables = vec![Variable::with_cardinality("X", 2).unwrap()];
        let cpts = vec![Cpt::new(0, 2, vec![], vec![1.0 - p_one, p_one]).unwrap()];
        BayesianNetwork::new("coin", variables, Dag::new(1), cpts).unwrap()
    }

    #[test]
    fn lambda_one_matches_plain_mle() {
        let net = sprinkler_network();
        let mut d = DecayedMle::new(&net, DecayConfig { lambda: 1.0, smoothing: Smoothing::None });
        let events: Vec<_> = TrainingStream::new(&net, 3).take(3000).collect();
        let mut count_s1_c1 = 0u64;
        let mut count_c1 = 0u64;
        for x in &events {
            d.observe(x);
            if x[0] == 1 {
                count_c1 += 1;
                if x[1] == 1 {
                    count_s1_c1 += 1;
                }
            }
        }
        let mle = count_s1_c1 as f64 / count_c1 as f64;
        assert!((d.cond_prob(1, 1, 1) - mle).abs() < 1e-9);
    }

    #[test]
    fn half_life_config() {
        let c = DecayConfig::with_half_life(1000.0, Smoothing::None);
        assert!((c.lambda.powf(1000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0,1]")]
    fn bad_lambda_rejected() {
        let net = sprinkler_network();
        let _ = DecayedMle::new(&net, DecayConfig { lambda: 1.5, smoothing: Smoothing::None });
    }

    #[test]
    fn decayed_model_adapts_to_drift_faster_than_plain() {
        let before = coin(0.9);
        let after = coin(0.1);
        let cfg = DecayConfig::with_half_life(500.0, Smoothing::Pseudocount(0.5));
        let mut decayed = DecayedMle::new(&before, cfg);
        let mut plain = DecayedMle::new(
            &before,
            DecayConfig { lambda: 1.0, smoothing: Smoothing::Pseudocount(0.5) },
        );
        let stream = DriftingStream::new(&[(&before, 20_000), (&after, 5_000)], 7);
        for x in stream.take(25_000) {
            decayed.observe(&x);
            plain.observe(&x);
        }
        // After the drift, truth is P(X=1) = 0.1.
        let p_decayed = decayed.cond_prob(0, 1, 0);
        let p_plain = plain.cond_prob(0, 1, 0);
        assert!((p_decayed - 0.1).abs() < 0.05, "decayed {p_decayed}");
        // Plain MLE is still dominated by the 20k pre-drift events.
        assert!(p_plain > 0.6, "plain {p_plain}");
    }

    #[test]
    fn decayed_counts_shrink_over_time() {
        let net = coin(1.0);
        let mut d = DecayedMle::new(&net, DecayConfig { lambda: 0.99, smoothing: Smoothing::None });
        d.observe(&[1]);
        let c0 = d.decayed_count(d.layout.family_id(0, 1, 0) as usize);
        for _ in 0..100 {
            d.observe(&[1]);
        }
        // Steady state ~ 1/(1-lambda) = 100.
        let c1 = d.decayed_count(d.layout.family_id(0, 1, 0) as usize);
        assert!(c0 <= 1.0 + 1e-12);
        assert!(c1 > 50.0 && c1 < 100.5, "steady state {c1}");
    }

    #[test]
    fn classify_under_decay() {
        let net = sprinkler_network();
        let mut d =
            DecayedMle::new(&net, DecayConfig::with_half_life(5000.0, Smoothing::Pseudocount(0.5)));
        for x in TrainingStream::new(&net, 2).take(20_000) {
            d.observe(&x);
        }
        let mut x = vec![1usize, 0, 0, 1];
        assert_eq!(d.classify(2, &mut x), 1);
    }
}
