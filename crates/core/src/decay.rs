//! Time-decayed parameter tracking (the paper's future work (2)).
//!
//! "Consider time-decay models which give higher weight to more recent
//! stream instances." Two implementations live here:
//!
//! - [`DecayedMle`] — centralized per-event exponential decay: an event
//!   observed `d` ticks ago contributes `lambda^d` to its counters. It
//!   sees every event (like EXACTMLE), so it quantifies the *accuracy*
//!   benefit of decay with no communication story.
//! - [`DecayedTracker`] / [`run_decayed_cluster_tracker`] — **distributed**
//!   decay via the epoch-ring scheme (`dsbn_counters::epoch`, DESIGN.md
//!   §5). Decay can't be pushed into the counters directly — the HYZ
//!   estimator of Lemma 4 needs counts to be non-decreasing — so the
//!   stream is cut into epochs of `B` events; within an epoch the
//!   unmodified monotone protocols run (Lemma 4 holds per epoch), each
//!   roll closes its epoch with a *settlement* (every site reports its
//!   exact per-epoch counts — the terminal sync HYZ already ends every
//!   round with), the coordinator keeps a ring of the last `K` settled
//!   epochs, and a decayed count is the `lambda^age`-weighted ring sum
//!   plus the open epoch's live estimate. Closed epochs are thus exact;
//!   the `e^{±eps}` band comes from the open epoch. Communication stays
//!   far below forwarding: per roll, one `EpochRoll` broadcast plus `k`
//!   settlement/ack packets (a `Cumulative` frame per nonzero counter),
//!   and each epoch's counters pay the usual
//!   `O((sqrt(k)/eps + k) log B)`.
//!
//! Under concept drift the decayed models converge to the post-drift
//! distribution at a rate set by the half-life, while the plain MLE stays
//! polluted by pre-drift mass (see `exp_ablation_decay`).

use crate::algorithms::{hyz_protocols, TrackerConfig};
use crate::allocation::Scheme;
use crate::layout::CounterLayout;
use crate::snapshot::{CounterReads, CptEvaluator};
use crate::tracker::Smoothing;
use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_counters::epoch::EpochRing;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_counters::{ExactProtocol, HyzProtocol};
use dsbn_datagen::EventChunk;
use dsbn_monitor::{ClusterReport, CounterArray, MessageStats, Partitioner, SiteAssigner};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Exponential decay configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DecayConfig {
    /// Per-event decay factor `lambda` in `(0, 1]`; 1 disables decay.
    pub lambda: f64,
    /// Smoothing for conditional estimates.
    pub smoothing: Smoothing,
}

impl DecayConfig {
    /// Configure via half-life: after `half_life` events a count's weight
    /// has halved.
    pub fn with_half_life(half_life: f64, smoothing: Smoothing) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        DecayConfig { lambda: (-std::f64::consts::LN_2 / half_life).exp(), smoothing }
    }
}

/// Centralized exponentially decayed MLE.
pub struct DecayedMle {
    structure: BayesianNetwork,
    layout: CounterLayout,
    counts: Vec<f64>,
    last_tick: Vec<u64>,
    ln_lambda: f64,
    tick: u64,
    smoothing: Smoothing,
    ids_buf: Vec<u32>,
}

impl DecayedMle {
    /// Build over a network structure.
    pub fn new(structure: &BayesianNetwork, config: DecayConfig) -> Self {
        assert!(
            config.lambda > 0.0 && config.lambda <= 1.0,
            "lambda must be in (0,1], got {}",
            config.lambda
        );
        let layout = CounterLayout::new(structure);
        let n = layout.n_counters();
        DecayedMle {
            structure: structure.clone(),
            layout,
            counts: vec![0.0; n],
            last_tick: vec![0; n],
            ln_lambda: config.lambda.ln(),
            tick: 0,
            smoothing: config.smoothing,
            ids_buf: Vec::new(),
        }
    }

    /// Events observed.
    pub fn events(&self) -> u64 {
        self.tick
    }

    /// The tracked structure.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Observe one event (counts of all other counters implicitly decay).
    pub fn observe(&mut self, x: &[usize]) {
        self.tick += 1;
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_event(x, &mut ids);
        for &id in &ids {
            let id = id as usize;
            let dt = self.tick - self.last_tick[id];
            self.counts[id] = self.counts[id] * (self.ln_lambda * dt as f64).exp() + 1.0;
            self.last_tick[id] = self.tick;
        }
        self.ids_buf = ids;
    }

    /// A counter's decayed value as of the current tick.
    pub fn decayed_count(&self, id: usize) -> f64 {
        let dt = self.tick - self.last_tick[id];
        self.counts[id] * (self.ln_lambda * dt as f64).exp()
    }

    /// The pure read-only evaluator over the decayed counts.
    pub fn evaluator(&self) -> CptEvaluator<'_, Self> {
        CptEvaluator::new(&self.structure, &self.layout, self, self.smoothing)
    }

    /// `log P~[x]` under the decayed model — the shared Algorithm 3 in log
    /// space, like every other tracker.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        self.evaluator().log_query(x)
    }

    /// Classify under the decayed model.
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        self.evaluator().classify(target, x)
    }
}

impl CounterReads for DecayedMle {
    fn read(&self, id: usize) -> f64 {
        self.decayed_count(id)
    }
}

impl CpdSource for DecayedMle {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        self.evaluator().cond_prob(i, value, u)
    }
}

/// Epoch-ring decay configuration for the distributed trackers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochDecayConfig {
    /// Per-*epoch* decay factor `lambda` in `(0, 1]`: a closed epoch of
    /// age `a` is weighted `lambda^a`; the open epoch is weighted 1.
    pub lambda: f64,
    /// Epoch length `B` in events. `u64::MAX` never rolls — with
    /// `lambda = 1` that is exactly the undecayed tracker.
    pub boundary: u64,
    /// Closed epochs retained in the ring, `K >= 1`. Older epochs are
    /// dropped; their weight `lambda^K` bounds the truncation error.
    pub ring: usize,
}

impl EpochDecayConfig {
    /// Validated constructor.
    pub fn new(lambda: f64, boundary: u64, ring: usize) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1], got {lambda}");
        assert!(boundary >= 1, "epoch boundary must be >= 1");
        assert!(ring >= 1, "epoch ring must be >= 1");
        EpochDecayConfig { lambda, boundary, ring }
    }

    /// Decay disabled: one open epoch forever, no reweighting. A
    /// [`DecayedTracker`] under this configuration is bit-for-bit the
    /// plain [`crate::BnTracker`] (pinned by `tests/decay_drift.rs`).
    pub fn disabled() -> Self {
        EpochDecayConfig { lambda: 1.0, boundary: u64::MAX, ring: 1 }
    }

    /// Configure via half-life measured in epochs.
    pub fn with_half_life_epochs(half_life: f64, boundary: u64, ring: usize) -> Self {
        assert!(half_life > 0.0, "half-life must be positive");
        Self::new((-std::f64::consts::LN_2 / half_life).exp(), boundary, ring)
    }

    /// The per-event decay factor a [`DecayedMle`] needs to match this
    /// epoch-granular decay in expectation: `lambda^(1/B)`.
    pub fn per_event_lambda(&self) -> f64 {
        self.lambda.powf(1.0 / self.boundary as f64)
    }

    /// Whether rolling ever happens.
    pub fn rolls(&self) -> bool {
        self.boundary != u64::MAX
    }
}

/// Distributed time-decayed tracker on the synchronous simulator: the
/// paper's UPDATE pipeline (Algorithm 2 over a [`CounterArray`]) wrapped in
/// the epoch-ring scheme. Decayed conditional probabilities feed the shared
/// Algorithm 3 / Markov-blanket classification exactly like every other
/// tracker.
pub struct DecayedTracker<P: CounterProtocol> {
    structure: BayesianNetwork,
    layout: CounterLayout,
    array: CounterArray<P>,
    assigner: SiteAssigner,
    rng: SmallRng,
    smoothing: Smoothing,
    decay: EpochDecayConfig,
    /// Settled closed-epoch counts, one ring per counter (each roll ends
    /// with the sites' exact per-epoch settlement, so closed entries are
    /// exact; only the open epoch is a live protocol estimate).
    rings: Vec<EpochRing>,
    epochs: u64,
    events_in_epoch: u64,
    events: u64,
    ids_buf: Vec<u32>,
}

impl<P: CounterProtocol> DecayedTracker<P> {
    /// Build over `k` sites with one protocol instance per counter (layout
    /// id order) — the same shape as [`crate::BnTracker::new`] plus the
    /// epoch-decay configuration, and the identical RNG/routing sequence,
    /// so the disabled configuration stays bit-compatible.
    pub fn new(
        structure: &BayesianNetwork,
        protocols: Vec<P>,
        k: usize,
        partitioner: Partitioner,
        seed: u64,
        smoothing: Smoothing,
        decay: EpochDecayConfig,
    ) -> Self {
        let decay = EpochDecayConfig::new(decay.lambda, decay.boundary, decay.ring);
        let layout = CounterLayout::new(structure);
        assert_eq!(
            protocols.len(),
            layout.n_counters(),
            "one protocol instance per counter required"
        );
        let n = layout.n_counters();
        DecayedTracker {
            structure: structure.clone(),
            array: CounterArray::new(protocols, k),
            layout,
            assigner: SiteAssigner::new(partitioner, k),
            rng: SmallRng::seed_from_u64(seed),
            smoothing,
            decay,
            rings: vec![EpochRing::new(decay.ring); n],
            epochs: 0,
            events_in_epoch: 0,
            events: 0,
            ids_buf: Vec::new(),
        }
    }

    /// The tracked structure.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Counter addressing.
    pub fn layout(&self) -> &CounterLayout {
        &self.layout
    }

    /// Select the layout's Algorithm-2 mapping implementation
    /// (bit-identical either way; see [`crate::layout::MappingMode`]).
    pub fn set_mapping(&mut self, mode: crate::layout::MappingMode) {
        self.layout.set_mapping(mode);
    }

    /// Events observed so far (all epochs).
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Epochs closed so far.
    pub fn epochs(&self) -> u64 {
        self.epochs
    }

    /// The decay configuration.
    pub fn decay(&self) -> EpochDecayConfig {
        self.decay
    }

    /// Communication so far, cumulative across epochs (paper message
    /// accounting; roll control frames count bytes only).
    pub fn stats(&self) -> MessageStats {
        self.array.stats()
    }

    /// Observe one event: route to a site and run Algorithm 2's `2n`
    /// updates; when the event completes an epoch, freeze the epoch's
    /// estimates into the ring and roll the counter array.
    pub fn observe(&mut self, x: &[usize]) {
        let site = self.assigner.assign(&mut self.rng);
        self.observe_at(site, x);
    }

    /// Observe an event at an explicit site.
    pub fn observe_at(&mut self, site: usize, x: &[usize]) {
        debug_assert!(self.structure.check_assignment(x).is_ok());
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_event(x, &mut ids);
        self.array.observe_event(site, &ids, &mut self.rng);
        self.ids_buf = ids;
        self.events += 1;
        self.events_in_epoch += 1;
        if self.events_in_epoch == self.decay.boundary {
            self.roll_epoch();
        }
    }

    /// Observe a whole [`EventChunk`]: ids for every event are mapped in
    /// one bulk CSR sweep, then swept per event with the same per-event
    /// routing/randomness interleaving as [`Self::observe`] — including
    /// epoch rolls, which may fire mid-chunk at exactly the event they
    /// would have fired on per-event (mapping is layout-only, so the
    /// upfront sweep is unaffected by the roll's state reset).
    pub fn observe_chunk(&mut self, chunk: &EventChunk) {
        if chunk.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.ids_buf);
        self.layout.map_chunk(chunk, &mut ids);
        let stride = 2 * self.layout.n_vars();
        for event_ids in ids.chunks_exact(stride) {
            let site = self.assigner.assign(&mut self.rng);
            self.array.observe_event(site, event_ids, &mut self.rng);
            self.events += 1;
            self.events_in_epoch += 1;
            if self.events_in_epoch == self.decay.boundary {
                self.roll_epoch();
            }
        }
        self.ids_buf = ids;
    }

    /// Feed `m` events from a stream, in internal chunks (bit-identical to
    /// per-event observation, like [`crate::BnTracker::train`]).
    pub fn train<I: Iterator<Item = Assignment>>(&mut self, stream: I, m: u64) {
        let mut stream = stream.take(m as usize);
        let mut chunk =
            EventChunk::with_capacity(self.layout.n_vars(), crate::tracker::TRAIN_CHUNK);
        loop {
            chunk.clear();
            while chunk.len() < crate::tracker::TRAIN_CHUNK {
                match stream.next() {
                    Some(x) => {
                        debug_assert!(self.structure.check_assignment(&x).is_ok());
                        chunk.push(&x);
                    }
                    None => break,
                }
            }
            if chunk.is_empty() {
                break;
            }
            self.observe_chunk(&chunk);
        }
    }

    fn roll_epoch(&mut self) {
        // Settlement: the closed epoch enters the ring as its exact total
        // (what the sites' Cumulative settlement sums to — with the sim's
        // synchronous delivery, exactly `exact_total`); the byte cost of
        // the settlement exchange is accounted by `roll_epoch` below.
        for c in 0..self.layout.n_counters() {
            self.rings[c].push(self.array.exact_total(c) as f64);
        }
        self.array.roll_epoch(self.epochs as u32);
        self.epochs += 1;
        self.events_in_epoch = 0;
    }

    /// Decayed counter estimate: `lambda^age`-weighted sum of the settled
    /// ring plus the open epoch's live estimate.
    pub fn decayed_estimate(&self, id: usize) -> f64 {
        self.rings[id].decayed(self.array.estimate(id), self.decay.lambda)
    }

    /// Decayed *exact* count (oracle): the same weighting with the open
    /// epoch's exact count in place of its estimate — the centralized
    /// epoch-decayed MLE over exactly the events this tracker saw.
    pub fn exact_decayed_count(&self, id: usize) -> f64 {
        self.rings[id].decayed(self.array.exact_total(id) as f64, self.decay.lambda)
    }

    /// Decayed estimates for one CPD entry: `(A_i(x, u), A_i(u))`.
    pub fn decayed_pair(&self, i: usize, value: usize, u: usize) -> (f64, f64) {
        let num = self.decayed_estimate(self.layout.family_id(i, value, u) as usize);
        let den = self.decayed_estimate(self.layout.parent_id(i, u) as usize);
        (num, den)
    }

    /// The pure read-only evaluator over the decayed estimates.
    pub fn evaluator(&self) -> CptEvaluator<'_, Self> {
        CptEvaluator::new(&self.structure, &self.layout, self, self.smoothing)
    }

    /// `log P~[x]` under the decayed model — shared Algorithm 3.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        self.evaluator().log_query(x)
    }

    /// `P~[x]` (prefer [`Self::log_query`] for large `n`).
    pub fn query(&self, x: &[usize]) -> f64 {
        self.evaluator().query(x)
    }

    /// `log P^[x]` of the exact epoch-decayed MLE over the same stream,
    /// with identical smoothing — the reference for the per-epoch
    /// `e^{±eps}` band (closed epochs are settled exactly; the gap to
    /// this oracle is the open epoch's Lemma-4 estimation error).
    pub fn exact_decayed_log_query(&self, x: &[usize]) -> f64 {
        let oracle = ExactDecayedView(self);
        CptEvaluator::new(&self.structure, &self.layout, &oracle, self.smoothing).log_query(x)
    }

    /// Classify under the decayed model (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        self.evaluator().classify(target, x)
    }

    /// Posterior over `target` given full evidence.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        self.evaluator().posterior(target, x)
    }
}

impl<P: CounterProtocol> CounterReads for DecayedTracker<P> {
    fn read(&self, id: usize) -> f64 {
        self.decayed_estimate(id)
    }
}

impl<P: CounterProtocol> CpdSource for DecayedTracker<P> {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        self.evaluator().cond_prob(i, value, u)
    }
}

/// The tracker's exact decayed counts as counter reads, fed through the
/// same smoothing and query path as the estimates.
struct ExactDecayedView<'a, P: CounterProtocol>(&'a DecayedTracker<P>);

impl<P: CounterProtocol> CounterReads for ExactDecayedView<'_, P> {
    fn read(&self, id: usize) -> f64 {
        self.0.exact_decayed_count(id)
    }
}

/// A decayed tracker built by any of the paper's schemes.
pub enum AnyDecayedTracker {
    /// Exact counters per epoch (decayed EXACTMLE).
    Exact(DecayedTracker<ExactProtocol>),
    /// Randomized HYZ counters (BASELINE / UNIFORM / NONUNIFORM budgets).
    Randomized(DecayedTracker<HyzProtocol>),
}

/// Build a distributed decayed tracker: the scheme's INIT error-budget
/// allocation (Algorithm 1) drives the per-epoch counters, exactly as
/// [`crate::build_tracker`] does for the undecayed tracker.
pub fn build_decayed_tracker(
    net: &BayesianNetwork,
    config: &TrackerConfig,
    decay: &EpochDecayConfig,
) -> AnyDecayedTracker {
    let layout = CounterLayout::new(net);
    let mut tracker = match config.scheme {
        Scheme::ExactMle => AnyDecayedTracker::Exact(DecayedTracker::new(
            net,
            vec![ExactProtocol; layout.n_counters()],
            config.k,
            config.partitioner,
            config.seed,
            config.smoothing,
            *decay,
        )),
        scheme => AnyDecayedTracker::Randomized(DecayedTracker::new(
            net,
            hyz_protocols(net, &layout, scheme, config.eps),
            config.k,
            config.partitioner,
            config.seed,
            config.smoothing,
            *decay,
        )),
    };
    tracker.set_mapping(config.mapping);
    tracker
}

macro_rules! delegate_decayed {
    ($self:ident, $t:ident => $body:expr) => {
        match $self {
            AnyDecayedTracker::Exact($t) => $body,
            AnyDecayedTracker::Randomized($t) => $body,
        }
    };
}

impl AnyDecayedTracker {
    /// Observe one event (UPDATE + epoch bookkeeping).
    pub fn observe(&mut self, x: &[usize]) {
        delegate_decayed!(self, t => t.observe(x))
    }

    /// Select the layout's Algorithm-2 mapping implementation (see
    /// [`crate::layout::MappingMode`]).
    pub fn set_mapping(&mut self, mode: crate::layout::MappingMode) {
        delegate_decayed!(self, t => t.set_mapping(mode))
    }

    /// Feed `m` events from a stream.
    pub fn train<I: Iterator<Item = Assignment>>(&mut self, stream: I, m: u64) {
        delegate_decayed!(self, t => t.train(stream, m))
    }

    /// `log P~[x]` under the decayed model.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        delegate_decayed!(self, t => t.log_query(x))
    }

    /// `P~[x]`.
    pub fn query(&self, x: &[usize]) -> f64 {
        delegate_decayed!(self, t => t.query(x))
    }

    /// Exact epoch-decayed reference over the same stream (oracle).
    pub fn exact_decayed_log_query(&self, x: &[usize]) -> f64 {
        delegate_decayed!(self, t => t.exact_decayed_log_query(x))
    }

    /// Classify under the decayed model.
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        delegate_decayed!(self, t => t.classify(target, x))
    }

    /// Communication so far.
    pub fn stats(&self) -> MessageStats {
        delegate_decayed!(self, t => t.stats())
    }

    /// Events observed.
    pub fn events(&self) -> u64 {
        delegate_decayed!(self, t => t.events())
    }

    /// Epochs closed.
    pub fn epochs(&self) -> u64 {
        delegate_decayed!(self, t => t.epochs())
    }
}

impl CpdSource for AnyDecayedTracker {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        delegate_decayed!(self, t => t.cond_prob(i, value, u))
    }
}

/// The decayed model a cluster run leaves behind at the coordinator: the
/// open epoch's estimates plus the settled closed-epoch ring, queryable
/// with the same decayed read as [`DecayedTracker`], alongside the open
/// epoch's exact oracle reconstructed from site states.
#[derive(Debug, Clone)]
pub struct DecayedClusterModel {
    structure: BayesianNetwork,
    layout: CounterLayout,
    smoothing: Smoothing,
    lambda: f64,
    /// Open-epoch coordinator estimates.
    estimates: Vec<f64>,
    /// Settled closed-epoch counts (exact — each roll's settlement).
    rings: Vec<EpochRing>,
    /// Open-epoch exact totals (oracle).
    open_exact: Vec<u64>,
}

impl DecayedClusterModel {
    /// The tracked structure.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Counter addressing.
    pub fn layout(&self) -> &CounterLayout {
        &self.layout
    }

    /// Decayed counter estimate at the coordinator.
    pub fn decayed_estimate(&self, id: usize) -> f64 {
        self.rings[id].decayed(self.estimates[id], self.lambda)
    }

    /// Decayed exact count (oracle): the settled ring with the open
    /// epoch's exact count in place of its estimate.
    pub fn exact_decayed_count(&self, id: usize) -> f64 {
        self.rings[id].decayed(self.open_exact[id] as f64, self.lambda)
    }

    /// The pure read-only evaluator over the decayed estimates.
    pub fn evaluator(&self) -> CptEvaluator<'_, Self> {
        CptEvaluator::new(&self.structure, &self.layout, self, self.smoothing)
    }

    /// `log P~[x]` — QUERY under the decayed model at the coordinator.
    pub fn log_query(&self, x: &[usize]) -> f64 {
        self.evaluator().log_query(x)
    }

    /// `P~[x]`.
    pub fn query(&self, x: &[usize]) -> f64 {
        self.evaluator().query(x)
    }

    /// `log P^[x]` of the exact epoch-decayed MLE over the same stream,
    /// identical smoothing — the per-epoch `e^{±eps}` band reference.
    pub fn exact_decayed_log_query(&self, x: &[usize]) -> f64 {
        let oracle = ExactDecayedModelView(self);
        CptEvaluator::new(&self.structure, &self.layout, &oracle, self.smoothing).log_query(x)
    }

    /// Classify under the decayed model (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        self.evaluator().classify(target, x)
    }

    /// Posterior over `target` given full evidence.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        self.evaluator().posterior(target, x)
    }
}

impl CounterReads for DecayedClusterModel {
    fn read(&self, id: usize) -> f64 {
        self.decayed_estimate(id)
    }
}

impl CpdSource for DecayedClusterModel {
    fn cond_prob(&self, i: usize, value: usize, u: usize) -> f64 {
        self.evaluator().cond_prob(i, value, u)
    }
}

/// Oracle view of [`DecayedClusterModel`]: the exact decayed counts as
/// counter reads.
struct ExactDecayedModelView<'a>(&'a DecayedClusterModel);

impl CounterReads for ExactDecayedModelView<'_> {
    fn read(&self, id: usize) -> f64 {
        self.0.exact_decayed_count(id)
    }
}

/// Everything a decayed cluster run produces.
#[derive(Debug, Clone)]
pub struct DecayedClusterRun {
    /// QUERY-able decayed model at the coordinator.
    pub model: DecayedClusterModel,
    /// Runtime, message, packet, byte, and epoch accounting.
    pub report: ClusterReport,
}

/// Run the distributed epoch-ring decayed tracker live on the threaded
/// cluster: the same `TrackerConfig` as [`crate::run_cluster_tracker`]
/// (scheme, `eps`, `k`, seed, partitioner, smoothing) plus the epoch-decay
/// configuration. Epoch rolls travel as `Frame::EpochRoll` broadcasts; the
/// cluster's epoch boundaries are approximate (within channel depth of
/// `B`) while the per-epoch exact oracle stays exact.
///
/// Fails with a typed [`dsbn_monitor::ClusterError`] (never a panic) when
/// a packet fails to decode or the transport errors.
pub fn run_decayed_cluster_tracker<I>(
    net: &BayesianNetwork,
    config: &TrackerConfig,
    decay: &EpochDecayConfig,
    events: I,
) -> Result<DecayedClusterRun, dsbn_monitor::ClusterError>
where
    I: Iterator<Item = Assignment>,
{
    let decay = EpochDecayConfig::new(decay.lambda, decay.boundary, decay.ring);
    let mut layout = CounterLayout::new(net);
    layout.set_mapping(config.mapping);
    let mut cluster =
        dsbn_monitor::ClusterConfig::new(config.k, config.seed).with_chunk(config.chunk);
    cluster.partitioner = config.partitioner;
    cluster.faults = config.faults.clone();
    if decay.rolls() {
        cluster = cluster.with_epochs(decay.boundary, decay.ring);
    }
    if config.coord_workers > 1 {
        cluster = cluster.with_sharded_coordinator(
            config.coord_workers,
            Some(layout.shard_starts(config.coord_workers)),
        );
    }
    // Mid-stream serving rides the decay settlements; `snapshot_every` is
    // ignored here (the decay boundary already defines the settlements).
    if let Some(hub) = &config.publish {
        cluster = cluster.with_publish(hub.clone());
    }
    let report = match config.scheme {
        Scheme::ExactMle => {
            let protocols = vec![ExactProtocol; layout.n_counters()];
            crate::cluster::run_with(&protocols, &cluster, &layout, events)?
        }
        scheme => {
            let protocols = hyz_protocols(net, &layout, scheme, config.eps);
            crate::cluster::run_with(&protocols, &cluster, &layout, events)?
        }
    };
    let n = layout.n_counters();
    let mut rings = vec![EpochRing::new(decay.ring); n];
    for settled in &report.epoch_estimates {
        for c in 0..n {
            rings[c].push(settled[c]);
        }
    }
    let model = DecayedClusterModel {
        structure: net.clone(),
        smoothing: config.smoothing,
        lambda: decay.lambda,
        estimates: report.estimates.clone(),
        rings,
        open_exact: report.open_epoch_exact_totals.clone(),
        layout,
    };
    Ok(DecayedClusterRun { model, report })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::{sprinkler_network, Cpt, Dag, Variable};
    use dsbn_datagen::{DriftingStream, TrainingStream};

    fn coin(p_one: f64) -> BayesianNetwork {
        let variables = vec![Variable::with_cardinality("X", 2).unwrap()];
        let cpts = vec![Cpt::new(0, 2, vec![], vec![1.0 - p_one, p_one]).unwrap()];
        BayesianNetwork::new("coin", variables, Dag::new(1), cpts).unwrap()
    }

    #[test]
    fn lambda_one_matches_plain_mle() {
        let net = sprinkler_network();
        let mut d = DecayedMle::new(&net, DecayConfig { lambda: 1.0, smoothing: Smoothing::None });
        let events: Vec<_> = TrainingStream::new(&net, 3).take(3000).collect();
        let mut count_s1_c1 = 0u64;
        let mut count_c1 = 0u64;
        for x in &events {
            d.observe(x);
            if x[0] == 1 {
                count_c1 += 1;
                if x[1] == 1 {
                    count_s1_c1 += 1;
                }
            }
        }
        let mle = count_s1_c1 as f64 / count_c1 as f64;
        assert!((d.cond_prob(1, 1, 1) - mle).abs() < 1e-9);
    }

    #[test]
    fn half_life_config() {
        let c = DecayConfig::with_half_life(1000.0, Smoothing::None);
        assert!((c.lambda.powf(1000.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0,1]")]
    fn bad_lambda_rejected() {
        let net = sprinkler_network();
        let _ = DecayedMle::new(&net, DecayConfig { lambda: 1.5, smoothing: Smoothing::None });
    }

    #[test]
    fn decayed_model_adapts_to_drift_faster_than_plain() {
        let before = coin(0.9);
        let after = coin(0.1);
        let cfg = DecayConfig::with_half_life(500.0, Smoothing::Pseudocount(0.5));
        let mut decayed = DecayedMle::new(&before, cfg);
        let mut plain = DecayedMle::new(
            &before,
            DecayConfig { lambda: 1.0, smoothing: Smoothing::Pseudocount(0.5) },
        );
        let stream = DriftingStream::new(&[(&before, 20_000), (&after, 5_000)], 7);
        for x in stream.take(25_000) {
            decayed.observe(&x);
            plain.observe(&x);
        }
        // After the drift, truth is P(X=1) = 0.1.
        let p_decayed = decayed.cond_prob(0, 1, 0);
        let p_plain = plain.cond_prob(0, 1, 0);
        assert!((p_decayed - 0.1).abs() < 0.05, "decayed {p_decayed}");
        // Plain MLE is still dominated by the 20k pre-drift events.
        assert!(p_plain > 0.6, "plain {p_plain}");
    }

    #[test]
    fn decayed_counts_shrink_over_time() {
        let net = coin(1.0);
        let mut d = DecayedMle::new(&net, DecayConfig { lambda: 0.99, smoothing: Smoothing::None });
        d.observe(&[1]);
        let c0 = d.decayed_count(d.layout.family_id(0, 1, 0) as usize);
        for _ in 0..100 {
            d.observe(&[1]);
        }
        // Steady state ~ 1/(1-lambda) = 100.
        let c1 = d.decayed_count(d.layout.family_id(0, 1, 0) as usize);
        assert!(c0 <= 1.0 + 1e-12);
        assert!(c1 > 50.0 && c1 < 100.5, "steady state {c1}");
    }

    #[test]
    fn classify_under_decay() {
        let net = sprinkler_network();
        let mut d =
            DecayedMle::new(&net, DecayConfig::with_half_life(5000.0, Smoothing::Pseudocount(0.5)));
        for x in TrainingStream::new(&net, 2).take(20_000) {
            d.observe(&x);
        }
        let mut x = vec![1usize, 0, 0, 1];
        assert_eq!(d.classify(2, &mut x), 1);
    }

    #[test]
    fn epoch_decay_config_shapes() {
        let c = EpochDecayConfig::new(0.5, 1000, 8);
        assert!((c.per_event_lambda().powf(1000.0) - 0.5).abs() < 1e-12);
        assert!(c.rolls());
        let d = EpochDecayConfig::disabled();
        assert!(!d.rolls());
        assert_eq!(d.lambda, 1.0);
        let h = EpochDecayConfig::with_half_life_epochs(4.0, 100, 4);
        assert!((h.lambda.powf(4.0) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "lambda must be in (0,1]")]
    fn epoch_decay_bad_lambda_rejected() {
        let _ = EpochDecayConfig::new(0.0, 100, 4);
    }

    #[test]
    fn distributed_decayed_tracker_adapts_to_drift() {
        // Same drift scenario as the centralized test above, but the
        // decayed model is now maintained *distributed*: exact counters
        // per epoch over 4 sites, ring-decayed at the coordinator.
        let before = coin(0.9);
        let after = coin(0.1);
        let layout = CounterLayout::new(&before);
        let decay = EpochDecayConfig::new(0.5, 1_000, 16); // half-life 1 epoch
        let mk = |d: EpochDecayConfig| {
            DecayedTracker::new(
                &before,
                vec![ExactProtocol; layout.n_counters()],
                4,
                dsbn_monitor::Partitioner::UniformRandom,
                9,
                Smoothing::Pseudocount(0.5),
                d,
            )
        };
        let mut decayed = mk(decay);
        let mut plain = mk(EpochDecayConfig::disabled());
        let stream = DriftingStream::new(&[(&before, 20_000), (&after, 5_000)], 7);
        for x in stream.take(25_000) {
            decayed.observe(&x);
            plain.observe(&x);
        }
        assert_eq!(decayed.epochs(), 25);
        let p_decayed = decayed.cond_prob(0, 1, 0);
        let p_plain = plain.cond_prob(0, 1, 0);
        assert!((p_decayed - 0.1).abs() < 0.05, "decayed {p_decayed}");
        assert!(p_plain > 0.6, "plain {p_plain}");
    }

    #[test]
    fn decayed_tracker_estimates_match_oracle_exactly_for_exact_scheme() {
        // With exact counters every ring entry equals its exact total, so
        // the decayed query must equal the decayed-oracle query to the bit.
        let net = sprinkler_network();
        let tc = TrackerConfig::new(Scheme::ExactMle).with_k(3).with_seed(5);
        let decay = EpochDecayConfig::new(0.7, 500, 8);
        let mut t = build_decayed_tracker(&net, &tc, &decay);
        t.train(TrainingStream::new(&net, 11), 4_200);
        assert_eq!(t.epochs(), 8);
        for x in TrainingStream::new(&net, 13).take(20) {
            assert_eq!(t.log_query(&x).to_bits(), t.exact_decayed_log_query(&x).to_bits());
        }
    }

    #[test]
    fn decayed_cluster_run_exact_scheme_matches_oracle() {
        let net = sprinkler_network();
        let tc = TrackerConfig::new(Scheme::ExactMle).with_k(3).with_seed(2);
        let decay = EpochDecayConfig::new(0.6, 1_000, 6);
        let run = run_decayed_cluster_tracker(
            &net,
            &tc,
            &decay,
            TrainingStream::new(&net, 21).take(5_500),
        )
        .expect("cluster run failed");
        assert_eq!(run.report.events, 5_500);
        assert_eq!(run.report.epochs, 5);
        // Exact counters: closed-epoch estimates equal the per-epoch exact
        // totals, so decayed queries equal the oracle to the bit.
        for x in TrainingStream::new(&net, 23).take(20) {
            assert_eq!(
                run.model.log_query(&x).to_bits(),
                run.model.exact_decayed_log_query(&x).to_bits()
            );
        }
    }
}
