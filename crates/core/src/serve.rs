//! The concurrent query-serving layer: classify/posterior/QUERY traffic
//! answered from epoch-consistent snapshots while ingest runs.
//!
//! A [`SnapshotServer`] sits between the monitor layer's
//! [`SnapshotHub`] (where a cluster coordinator publishes
//! [`dsbn_monitor::CounterSnapshot`]s at settlements — see
//! `TrackerConfig::with_publish` / `with_snapshot_every`) and any number
//! of query threads. It resolves each published counter snapshot into a
//! query-ready [`CptSnapshot`] exactly once (per sequence number) and
//! caches the result in a second RCU cell, so the reader hot path is two
//! lock-free loads — no lock held, no message sent, no coordination with
//! ingest whatsoever:
//!
//! ```text
//! hub.load()  ──seq unchanged──▶ resolved.load()  ──▶ evaluate
//!      └──seq advanced──▶ resolve reads ──▶ resolved.store ──▶ evaluate
//! ```
//!
//! The resolve step is idempotent — it is a pure function of the
//! published snapshot — so concurrent resolvers racing on `store` are
//! benign: every stored value for a given sequence is identical, and a
//! stale store (a resolver delayed past the next settlement) heals on the
//! next read, which re-resolves because the cached sequence no longer
//! matches the hub's. Shared-`&self` querying means one server handle can
//! be borrowed by N reader threads (`thread::scope`) with zero
//! per-query allocation beyond the query itself.

use crate::layout::CounterLayout;
use crate::snapshot::{CptEvaluator, CptSnapshot};
use crate::tracker::Smoothing;
use arc_swap::ArcSwap;
use dsbn_bayes::BayesianNetwork;
use dsbn_monitor::SnapshotHub;
use std::sync::Arc;

/// Serves queries from the latest published counter snapshot: the read
/// half of the split read/ingest pipeline (DESIGN.md §7).
pub struct SnapshotServer {
    structure: BayesianNetwork,
    layout: CounterLayout,
    smoothing: Smoothing,
    /// Per-epoch decay for resolved reads; `1.0` serves cumulative counts.
    lambda: f64,
    hub: SnapshotHub,
    /// Resolve cache, keyed by the snapshot's publish sequence.
    resolved: ArcSwap<CptSnapshot>,
}

impl SnapshotServer {
    /// A server for cumulative reads (`settled + open` per counter): the
    /// plain tracker's semantics.
    pub fn new(net: &BayesianNetwork, smoothing: Smoothing, hub: SnapshotHub) -> Self {
        Self::with_decay(net, smoothing, hub, 1.0)
    }

    /// A server for `lambda^age`-decayed reads over the settled epoch
    /// ring: the decayed tracker's semantics (`lambda = 1` degenerates to
    /// cumulative reads).
    pub fn with_decay(
        net: &BayesianNetwork,
        smoothing: Smoothing,
        hub: SnapshotHub,
        lambda: f64,
    ) -> Self {
        assert!(lambda > 0.0 && lambda <= 1.0, "lambda must be in (0,1], got {lambda}");
        let layout = CounterLayout::new(net);
        let resolved =
            ArcSwap::from_pointee(CptSnapshot::resolve(&hub.load(), layout.n_counters(), lambda));
        SnapshotServer { structure: net.clone(), layout, smoothing, lambda, hub, resolved }
    }

    /// The network structure served.
    pub fn structure(&self) -> &BayesianNetwork {
        &self.structure
    }

    /// Counter addressing.
    pub fn layout(&self) -> &CounterLayout {
        &self.layout
    }

    /// The smoothing mode.
    pub fn smoothing(&self) -> Smoothing {
        self.smoothing
    }

    /// Publish sequence of the snapshot currently served (`0` = nothing
    /// published yet; queries then answer from the uniform prior).
    pub fn seq(&self) -> u64 {
        self.hub.seq()
    }

    /// The current query-ready snapshot: two RCU loads on the hot path; a
    /// resolve + store only on the first read after a new settlement.
    pub fn snapshot(&self) -> Arc<CptSnapshot> {
        let current = self.hub.load();
        let cached = self.resolved.load_full();
        if cached.seq == current.seq {
            return cached;
        }
        let fresh = Arc::new(CptSnapshot::resolve(&current, self.layout.n_counters(), self.lambda));
        self.resolved.store(Arc::clone(&fresh));
        fresh
    }

    /// The pure evaluator over a snapshot obtained from
    /// [`Self::snapshot`] — for callers batching several queries against
    /// one consistent state.
    pub fn evaluator<'a>(&'a self, snap: &'a CptSnapshot) -> CptEvaluator<'a, CptSnapshot> {
        CptEvaluator::new(&self.structure, &self.layout, snap, self.smoothing)
    }

    /// Classify `target` given full evidence in `x` against the latest
    /// snapshot (§V).
    pub fn classify(&self, target: usize, x: &mut [usize]) -> usize {
        let snap = self.snapshot();
        self.evaluator(&snap).classify(target, x)
    }

    /// Posterior over `target` given full evidence, latest snapshot.
    pub fn posterior(&self, target: usize, x: &mut [usize]) -> Vec<f64> {
        let snap = self.snapshot();
        self.evaluator(&snap).posterior(target, x)
    }

    /// `log P~[x]` against the latest snapshot (Algorithm 3).
    pub fn log_query(&self, x: &[usize]) -> f64 {
        let snap = self.snapshot();
        self.evaluator(&snap).log_query(x)
    }

    /// `P~[x]` against the latest snapshot.
    pub fn query(&self, x: &[usize]) -> f64 {
        self.log_query(x).exp()
    }
}

impl std::fmt::Debug for SnapshotServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SnapshotServer")
            .field("network", &self.structure.name())
            .field("seq", &self.seq())
            .field("lambda", &self.lambda)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::{build_tracker, TrackerConfig};
    use crate::allocation::Scheme;
    use crate::cluster::run_cluster_tracker;
    use dsbn_bayes::sprinkler_network;
    use dsbn_datagen::TrainingStream;

    #[test]
    fn fresh_server_answers_from_the_uniform_prior() {
        let net = sprinkler_network();
        let server = SnapshotServer::new(&net, Smoothing::Pseudocount(0.5), SnapshotHub::new());
        assert_eq!(server.seq(), 0);
        let mut x = vec![0usize, 0, 0, 0];
        let p = server.posterior(2, &mut x);
        assert!((p[0] - 0.5).abs() < 1e-12 && (p[1] - 0.5).abs() < 1e-12);
        assert!(server.log_query(&[0, 0, 0, 0]).is_finite());
    }

    #[test]
    fn final_snapshot_queries_equal_the_end_of_run_model() {
        // The acceptance anchor at unit scale: a cluster run publishing to
        // a hub must leave the server answering byte-identically to the
        // ClusterModel the run returned.
        let net = sprinkler_network();
        let hub = SnapshotHub::new();
        let tc =
            TrackerConfig::new(Scheme::ExactMle).with_k(3).with_seed(11).with_publish(hub.clone());
        let server = SnapshotServer::new(&net, tc.smoothing, hub);
        let run = run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 5).take(4_000))
            .expect("cluster run failed");
        assert_eq!(server.seq(), 1);
        assert!(server.snapshot().finalized);
        for x in TrainingStream::new(&net, 8).take(25) {
            assert_eq!(server.log_query(&x).to_bits(), run.model.log_query(&x).to_bits());
        }
        let mut x = vec![1usize, 0, 0, 1];
        let mut x2 = x.clone();
        assert_eq!(server.classify(2, &mut x), run.model.classify(2, &mut x2));
    }

    #[test]
    fn resolve_cache_returns_the_same_snapshot_until_a_new_publish() {
        let net = sprinkler_network();
        let hub = SnapshotHub::new();
        let tc = TrackerConfig::new(Scheme::ExactMle)
            .with_k(2)
            .with_seed(3)
            .with_snapshot_every(500)
            .with_publish(hub.clone());
        let server = SnapshotServer::new(&net, tc.smoothing, hub);
        let before = server.snapshot();
        assert_eq!(before.seq, 0);
        // Cached: identical Arc until the hub advances.
        assert!(Arc::ptr_eq(&before, &server.snapshot()));
        run_cluster_tracker(&net, &tc, TrainingStream::new(&net, 5).take(2_000))
            .expect("cluster run failed");
        let after = server.snapshot();
        assert!(after.seq > before.seq);
        assert!(after.finalized);
        assert!(Arc::ptr_eq(&after, &server.snapshot()));
    }

    #[test]
    fn sim_tracker_snapshot_freezes_live_answers() {
        let net = sprinkler_network();
        let mut t = build_tracker(&net, &TrackerConfig::new(Scheme::NonUniform).with_k(4));
        t.train(TrainingStream::new(&net, 21), 10_000);
        let (snap, layout, smoothing) = match &t {
            crate::AnyTracker::Randomized(t) => (t.snapshot(), t.layout(), t.smoothing()),
            _ => unreachable!(),
        };
        let eval = CptEvaluator::new(&net, layout, &snap, smoothing);
        for x in TrainingStream::new(&net, 22).take(25) {
            assert_eq!(eval.log_query(&x).to_bits(), t.log_query(&x).to_bits());
        }
        assert_eq!(snap.events, 10_000);
        assert!(snap.exact.is_some());
    }
}
