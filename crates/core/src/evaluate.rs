//! Evaluation metrics shared by tests, examples, and the experiment
//! harness: relative query error (to ground truth or to the exact MLE) and
//! classification error rate, matching §VI-A/B of the paper.

use dsbn_bayes::classify::CpdSource;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::BayesianNetwork;
use dsbn_datagen::ClassificationCase;
use serde::{Deserialize, Serialize};

/// Relative error of one estimate given log-probabilities:
/// `|P~/P_ref - 1|`, computed stably through the log ratio.
pub fn relative_error(log_model: f64, log_reference: f64) -> f64 {
    ((log_model - log_reference).exp() - 1.0).abs()
}

/// Distribution summary of per-query relative errors (the paper's boxplots
/// report medians and interquartile ranges; we add the mean used in
/// Figs. 3/5).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorSummary {
    pub mean: f64,
    pub p10: f64,
    pub p25: f64,
    pub median: f64,
    pub p75: f64,
    pub p90: f64,
    pub max: f64,
    pub n: usize,
}

impl ErrorSummary {
    /// Summarize a set of per-query errors. Panics on empty input.
    pub fn from_errors(mut errors: Vec<f64>) -> ErrorSummary {
        assert!(!errors.is_empty(), "no errors to summarize");
        errors.sort_by(|a, b| a.partial_cmp(b).expect("errors must not be NaN"));
        let n = errors.len();
        let q = |p: f64| -> f64 {
            let idx = (p * (n - 1) as f64).round() as usize;
            errors[idx.min(n - 1)]
        };
        ErrorSummary {
            mean: errors.iter().sum::<f64>() / n as f64,
            p10: q(0.10),
            p25: q(0.25),
            median: q(0.50),
            p75: q(0.75),
            p90: q(0.90),
            max: errors[n - 1],
            n,
        }
    }
}

/// Per-query relative errors of `log_model` against `log_reference` over a
/// query set.
pub fn query_errors(
    queries: &[Assignment],
    mut log_model: impl FnMut(&[usize]) -> f64,
    mut log_reference: impl FnMut(&[usize]) -> f64,
) -> Vec<f64> {
    queries.iter().map(|x| relative_error(log_model(x), log_reference(x))).collect()
}

/// The paper's "error relative to the ground truth": model vs. the true
/// generating distribution.
pub fn errors_to_truth(
    truth: &BayesianNetwork,
    queries: &[Assignment],
    log_model: impl FnMut(&[usize]) -> f64,
) -> Vec<f64> {
    let mut lm = log_model;
    queries.iter().map(|x| relative_error(lm(x), truth.joint_log_prob(x))).collect()
}

/// Monte-Carlo estimate of `KL(P* || P~)` in nats: sample `n_samples`
/// events from the ground-truth network and average
/// `log P*(x) - log P~(x)`. An additive, network-size-robust model-quality
/// metric complementing the paper's relative joint error (which compounds
/// per-factor discrepancies exponentially in `n`).
pub fn sampled_kl(
    truth: &BayesianNetwork,
    mut log_model: impl FnMut(&[usize]) -> f64,
    n_samples: usize,
    seed: u64,
) -> f64 {
    use rand::SeedableRng;
    assert!(n_samples > 0, "need at least one sample");
    let sampler = dsbn_bayes::AncestralSampler::new(truth);
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut x = Vec::new();
    let mut acc = 0.0;
    for _ in 0..n_samples {
        sampler.sample_into(&mut rng, &mut x);
        acc += truth.joint_log_prob(&x) - log_model(&x);
    }
    acc / n_samples as f64
}

/// Classification error rate of a [`CpdSource`]-backed classifier over
/// test cases whose true label is `x[target]` (§VI Table II).
pub fn classification_error_rate<S: CpdSource>(
    structure: &BayesianNetwork,
    source: &S,
    cases: &[ClassificationCase],
) -> f64 {
    assert!(!cases.is_empty(), "no cases");
    let mut wrong = 0usize;
    let mut x = Vec::new();
    for case in cases {
        x.clear();
        x.extend_from_slice(&case.x);
        let truth = case.x[case.target];
        let predicted = dsbn_bayes::classify::classify(structure, source, case.target, &mut x);
        if predicted != truth {
            wrong += 1;
        }
    }
    wrong as f64 / cases.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;
    use dsbn_datagen::generate_classification_cases;

    #[test]
    fn relative_error_basics() {
        // Both probabilities zero: the log ratio is -inf - -inf = NaN, and
        // the relative error honestly reports it rather than masking it.
        assert!(relative_error(0.0f64.ln(), 0.0f64.ln()).is_nan());
        assert_eq!(relative_error(1.0, 1.0), 0.0);
        // Model twice the reference: |2 - 1| = 1.
        let e = relative_error((2.0f64).ln(), (1.0f64).ln());
        assert!((e - 1.0).abs() < 1e-12);
        // Model half the reference: |0.5 - 1| = 0.5.
        let e = relative_error((0.5f64).ln(), (1.0f64).ln());
        assert!((e - 0.5).abs() < 1e-12);
    }

    #[test]
    fn summary_quantiles() {
        let errors: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = ErrorSummary::from_errors(errors);
        assert_eq!(s.n, 100);
        assert!((s.mean - 50.5).abs() < 1e-9);
        assert!((s.median - 50.0).abs() <= 1.0);
        assert!((s.p10 - 10.0).abs() <= 1.0);
        assert!((s.p90 - 90.0).abs() <= 1.0);
        assert_eq!(s.max, 100.0);
    }

    #[test]
    #[should_panic(expected = "no errors")]
    fn empty_summary_rejected() {
        let _ = ErrorSummary::from_errors(vec![]);
    }

    #[test]
    fn errors_to_truth_zero_for_perfect_model() {
        let net = sprinkler_network();
        let queries = vec![vec![1usize, 0, 1, 1], vec![0, 1, 0, 1]];
        let errs = errors_to_truth(&net, &queries, |x| net.joint_log_prob(x));
        assert!(errs.iter().all(|&e| e < 1e-12));
    }

    #[test]
    fn sampled_kl_is_zero_for_the_truth_and_positive_otherwise() {
        let net = sprinkler_network();
        let kl_self = sampled_kl(&net, |x| net.joint_log_prob(x), 5000, 3);
        assert!(kl_self.abs() < 1e-12);
        // A uniform model must have positive KL from the truth.
        let n_states = 16.0f64;
        let kl_uniform = sampled_kl(&net, |_| (1.0 / n_states).ln(), 5000, 3);
        assert!(kl_uniform > 0.1, "kl {kl_uniform}");
    }

    #[test]
    fn sampled_kl_decreases_with_training() {
        use crate::algorithms::{build_tracker, TrackerConfig};
        use crate::allocation::Scheme;
        use dsbn_datagen::TrainingStream;
        let net = sprinkler_network();
        let mut t = build_tracker(&net, &TrackerConfig::new(Scheme::Uniform).with_k(4));
        let mut stream = TrainingStream::new(&net, 6);
        t.train(&mut stream, 500);
        let kl_early = sampled_kl(&net, |x| t.log_query(x), 3000, 5);
        t.train(&mut stream, 50_000);
        let kl_late = sampled_kl(&net, |x| t.log_query(x), 3000, 5);
        assert!(kl_late < kl_early, "{kl_late} !< {kl_early}");
        assert!(kl_late < 0.01, "late KL {kl_late}");
    }

    #[test]
    fn ground_truth_classifier_error_is_bayes_rate() {
        // Even the ground-truth classifier errs on genuinely stochastic
        // targets; the error rate must be strictly between 0 and 0.5 here.
        let net = sprinkler_network();
        let cases = generate_classification_cases(&net, 2000, 3);
        let rate = classification_error_rate(&net, &net, &cases);
        assert!(rate > 0.02 && rate < 0.5, "rate {rate}");
    }
}
