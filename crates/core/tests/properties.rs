//! Property-based tests for the core tracking algorithms.

use dsbn_bayes::generate::NetworkSpec;
use dsbn_bayes::BayesianNetwork;
use dsbn_core::allocation::{closed_form_inverse_sum, minimize_inverse_sum};
use dsbn_core::{allocate, build_tracker, CounterLayout, Scheme, Smoothing, TrackerConfig};
use dsbn_datagen::TrainingStream;
use proptest::prelude::*;

fn small_net(seed: u64, n: usize) -> BayesianNetwork {
    let spec = NetworkSpec {
        name: format!("p{n}"),
        n_nodes: n,
        n_edges: ((n - 1) + n / 2).min(n * (n - 1) / 2),
        max_parents: 3,
        base_cardinality: 2,
        max_cardinality: 4,
        target_parameters: 6 * n,
        dirichlet_alpha: 1.0,
        min_cpd_entry: 0.02,
    };
    spec.generate(seed).expect("small net generates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The layout's event mapping hits exactly the counters whose exact
    /// totals reproduce offline frequency counts — on random networks.
    #[test]
    fn exact_tracker_equals_offline_counts(seed in 0u64..200, n in 3usize..10) {
        let net = small_net(seed, n);
        let mut t = build_tracker(
            &net,
            &TrackerConfig::new(Scheme::ExactMle)
                .with_k(3)
                .with_seed(seed)
                .with_smoothing(Smoothing::None),
        );
        let events: Vec<_> = TrainingStream::new(&net, seed).take(400).collect();
        for x in &events {
            t.observe(x);
        }
        let dsbn_core::AnyTracker::Exact(tracker) = &t else { panic!("exact expected") };
        // Offline counts for a few random family entries.
        for i in 0..net.n_vars() {
            for u in 0..net.parent_configs(i).min(4) {
                for v in 0..net.cardinality(i) {
                    let offline = events
                        .iter()
                        .filter(|x| x[i] == v && net.parent_config_of(i, x) == u)
                        .count() as u64;
                    prop_assert_eq!(tracker.exact_family_count(i, v, u), offline);
                }
                let offline_parent = events
                    .iter()
                    .filter(|x| net.parent_config_of(i, x) == u)
                    .count() as u64;
                prop_assert_eq!(tracker.exact_parent_count(i, u), offline_parent);
            }
        }
    }

    /// QUERY is exactly the product of the per-variable counter ratios
    /// (Definition 3), for any scheme and any assignment.
    #[test]
    fn query_factorization_invariant(seed in 0u64..100) {
        let net = small_net(seed, 6);
        let mut t = build_tracker(
            &net,
            &TrackerConfig::new(Scheme::NonUniform)
                .with_eps(0.3)
                .with_k(4)
                .with_seed(seed)
                .with_smoothing(Smoothing::Pseudocount(0.5)),
        );
        t.train(TrainingStream::new(&net, seed + 1), 2_000);
        let sampler = dsbn_bayes::AncestralSampler::new(&net);
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for _ in 0..8 {
            let x = sampler.sample(&mut rng);
            let mut lp = 0.0;
            for i in 0..net.n_vars() {
                use dsbn_bayes::classify::CpdSource;
                let u = net.parent_config_of(i, &x);
                lp += t.cond_prob(i, x[i], u).ln();
            }
            prop_assert!((t.log_query(&x) - lp).abs() < 1e-9);
        }
    }

    /// Conditional probability estimates are valid probabilities under
    /// pseudocount smoothing (each in [0,1]; each family sums to ~1 for
    /// the exact tracker).
    #[test]
    fn smoothed_conditionals_are_probabilities(seed in 0u64..100) {
        let net = small_net(seed, 5);
        let mut t = build_tracker(
            &net,
            &TrackerConfig::new(Scheme::ExactMle)
                .with_k(2)
                .with_seed(seed)
                .with_smoothing(Smoothing::Pseudocount(1.0)),
        );
        t.train(TrainingStream::new(&net, seed), 500);
        use dsbn_bayes::classify::CpdSource;
        for i in 0..net.n_vars() {
            for u in 0..net.parent_configs(i) {
                let mut sum = 0.0;
                for v in 0..net.cardinality(i) {
                    let p = t.cond_prob(i, v, u);
                    prop_assert!((0.0..=1.0 + 1e-9).contains(&p));
                    sum += p;
                }
                prop_assert!((sum - 1.0).abs() < 1e-9, "family ({}, {}) sums to {}", i, u, sum);
            }
        }
    }

    /// The closed-form allocation dominates random feasible allocations on
    /// the communication objective (global optimality of Eq. 7 spot-checked
    /// against arbitrary competitors on the constraint sphere).
    #[test]
    fn closed_form_dominates_random_feasible_points(
        weights in proptest::collection::vec(0.5f64..100.0, 2..12),
        raw in proptest::collection::vec(0.05f64..1.0, 2..12),
    ) {
        let n = weights.len().min(raw.len());
        let weights = &weights[..n];
        let raw = &raw[..n];
        let budget = 1e-3;
        let closed = closed_form_inverse_sum(weights, budget);
        // Project the random point onto the sphere.
        let norm: f64 = raw.iter().map(|v| v * v).sum::<f64>().sqrt();
        let feasible: Vec<f64> = raw.iter().map(|v| v * (budget.sqrt() / norm)).collect();
        let obj = |nu: &[f64]| -> f64 { weights.iter().zip(nu).map(|(w, v)| w / v).sum() };
        prop_assert!(obj(&closed) <= obj(&feasible) * (1.0 + 1e-9));
    }

    /// The numeric solver respects the constraint for any inputs.
    #[test]
    fn numeric_solver_stays_feasible(
        weights in proptest::collection::vec(0.1f64..50.0, 1..10),
        budget in 1e-6f64..1.0,
    ) {
        let nu = minimize_inverse_sum(&weights, budget, 500);
        let norm: f64 = nu.iter().map(|v| v * v).sum();
        prop_assert!((norm - budget).abs() / budget < 1e-6);
        prop_assert!(nu.iter().all(|&v| v > 0.0));
    }

    /// Allocation budgets are monotone in eps for every scheme.
    #[test]
    fn allocation_monotone_in_eps(seed in 0u64..50) {
        let net = small_net(seed, 6);
        for scheme in [Scheme::Baseline, Scheme::Uniform, Scheme::NonUniform] {
            let lo = allocate(scheme, &net, 0.05);
            let hi = allocate(scheme, &net, 0.2);
            for (a, b) in lo.family_eps.iter().zip(&hi.family_eps) {
                prop_assert!(a < b);
            }
        }
    }

    /// Counter layouts cover every (i, x, u) pair exactly once on random
    /// networks.
    #[test]
    fn layout_bijection(seed in 0u64..100, n in 2usize..12) {
        let net = small_net(seed, n);
        let layout = CounterLayout::new(&net);
        let mut seen = vec![false; layout.n_counters()];
        for i in 0..layout.n_vars() {
            for u in 0..layout.parent_configs(i) {
                for v in 0..layout.cardinality(i) {
                    let id = layout.family_id(i, v, u) as usize;
                    prop_assert!(!seen[id]);
                    seen[id] = true;
                }
                let id = layout.parent_id(i, u) as usize;
                prop_assert!(!seen[id]);
                seen[id] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
    }
}
