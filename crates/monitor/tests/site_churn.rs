//! Site crash/rejoin fault tolerance (DESIGN.md §8).
//!
//! The load-bearing contract pinned here: for every counter `c` and any
//! protocol, `exact_totals[c] + churn.lost_counts[c]` equals the
//! full-stream count bit-for-bit — crashes *forget* exactly what they
//! wiped, never more, never less — and no injected fault or worker panic
//! ever escapes `run_cluster` as anything but a typed [`ClusterError`].

use dsbn_counters::{CounterProtocol, DownMsg, ExactProtocol, HyzProtocol, UpMsg};
use dsbn_monitor::{
    chunk_events, run_cluster, run_cluster_on, ClusterConfig, ClusterError, ClusterReport,
    Partitioner, SiteFault, Transport,
};
use rand::Rng;

const N_COUNTERS: usize = 3;

/// Synthetic stream: event `i` increments counter `i % N_COUNTERS`.
fn events(m: u64) -> impl Iterator<Item = Vec<usize>> {
    (0..m).map(|i| vec![(i % N_COUNTERS as u64) as usize])
}

fn map_event(chunk: &dsbn_datagen::EventChunk, ids: &mut Vec<u32>) {
    ids.clear();
    ids.extend(chunk.iter().map(|ev| ev[0] % N_COUNTERS as u32));
}

/// Full-stream per-counter truth, independent of routing and churn.
fn truth(m: u64) -> Vec<u64> {
    let mut t = vec![0u64; N_COUNTERS];
    for i in 0..m {
        t[(i % N_COUNTERS as u64) as usize] += 1;
    }
    t
}

fn run_exact_on<T: Transport>(
    transport: &T,
    config: &ClusterConfig,
    m: u64,
) -> Result<ClusterReport, ClusterError> {
    let protocols = vec![ExactProtocol; N_COUNTERS];
    run_cluster_on(transport, &protocols, config, chunk_events(events(m), 64), map_event)
}

fn run_exact(config: &ClusterConfig, m: u64) -> ClusterReport {
    let protocols = vec![ExactProtocol; N_COUNTERS];
    run_cluster(&protocols, config, chunk_events(events(m), 64), map_event)
        .expect("cluster run failed")
}

/// `exact_totals[c] + lost_counts[c]` must equal the full-stream count.
fn assert_reconciles(report: &ClusterReport, m: u64, ctx: &str) {
    assert_eq!(report.events, m, "{ctx}: driver event count");
    for (c, &full) in truth(m).iter().enumerate() {
        assert_eq!(
            report.exact_totals[c] + report.churn.lost_counts[c],
            full,
            "{ctx}: counter {c}: surviving {} + lost {} != full-stream {full}",
            report.exact_totals[c],
            report.churn.lost_counts[c],
        );
    }
}

#[test]
fn schedule_is_seeded_distinct_and_bounded() {
    let a = SiteFault::schedule(6, 10_000, 4, 42);
    let b = SiteFault::schedule(6, 10_000, 4, 42);
    assert_eq!(a, b, "same seed must give the same schedule");
    assert!(!a.is_empty() && a.len() <= 4);
    let mut sites: Vec<usize> = a.iter().map(|f| f.site).collect();
    sites.sort_unstable();
    sites.dedup();
    assert_eq!(sites.len(), a.len(), "fault targets must be distinct sites");
    for f in &a {
        assert!(f.site < 6);
        assert!(f.kill_at >= 2_500 && f.kill_at < 5_000, "kill in the middle half");
        if let Some(r) = f.revive_at {
            assert!(r > f.kill_at);
        }
    }
    // Never schedules more faults than k - 1 (one site always survives).
    assert!(SiteFault::schedule(3, 1_000, 10, 7).len() <= 2);
    assert_ne!(a, SiteFault::schedule(6, 10_000, 4, 43), "seed must matter");
}

#[test]
fn exact_totals_reconcile_after_kill_and_rejoin() {
    let m = 60_000u64;
    let faults = vec![
        // Killed mid-stream, revived later: loses its unsettled counts
        // plus everything routed to it while down.
        SiteFault { site: 1, kill_at: m / 4, revive_at: Some(m / 2) },
        // Killed for good: down until shutdown.
        SiteFault { site: 2, kill_at: m / 3, revive_at: None },
    ];
    let config = ClusterConfig::new(4, 9).with_chunk(64).with_faults(faults);
    let report = run_exact(&config, m);
    assert_eq!(report.churn.kills, 2);
    assert_eq!(report.churn.revives, 1);
    assert_eq!(report.churn.faults_injected(), 3);
    assert!(report.churn.events_lost > 0, "a dead site must have lost arrivals");
    assert!(
        report.churn.lost_counts.iter().sum::<u64>() > 0,
        "crashes must have wiped some counts"
    );
    // Downtime is measured at the site: both crashed sites were down for a
    // while, the survivors never.
    assert!(report.churn.site_downtime[1] > std::time::Duration::ZERO);
    assert!(report.churn.site_downtime[2] > std::time::Duration::ZERO);
    assert_eq!(report.churn.site_downtime[0], std::time::Duration::ZERO);
    assert_eq!(report.churn.site_downtime[3], std::time::Duration::ZERO);
    // The identity, and exactness of what survived: the exact protocol's
    // estimates equal the surviving totals bit-for-bit.
    assert_reconciles(&report, m, "kill+rejoin");
    for c in 0..N_COUNTERS {
        assert_eq!(report.estimates[c], report.exact_totals[c] as f64);
    }
}

#[test]
fn fault_free_runs_report_zero_churn() {
    let report = run_exact(&ClusterConfig::new(3, 5).with_chunk(32), 5_000);
    assert_eq!(report.churn.kills, 0);
    assert_eq!(report.churn.revives, 0);
    assert_eq!(report.churn.events_lost, 0);
    assert_eq!(report.churn.partial_final_packets, 0);
    assert!(report.churn.lost_counts.iter().all(|&v| v == 0));
    assert_reconciles(&report, 5_000, "fault-free");
}

#[test]
fn torn_final_packet_is_discarded_and_attributed() {
    // A site dying mid-chunk tears its buffered packet mid-frame: the
    // coordinator must receive the truncated prefix, attribute it to the
    // dead site, and discard it whole — applying it would double-count
    // against the site's wiped (and loss-accounted) local state.
    let m = 40_000u64;
    let faults = vec![SiteFault { site: 0, kill_at: m / 4, revive_at: None }];
    let config = ClusterConfig::new(3, 11).with_chunk(64).with_faults(faults);
    let report = run_exact(&config, m);
    assert_eq!(report.churn.kills, 1);
    assert!(report.churn.partial_final_packets >= 1, "the crash must tear a packet");
    assert!(report.churn.partial_bytes_discarded > 0);
    assert_reconciles(&report, m, "torn packet");
}

#[test]
fn identity_holds_across_partitioners_and_seeds() {
    let m = 20_000u64;
    for partitioner in [
        Partitioner::UniformRandom,
        Partitioner::RoundRobin,
        Partitioner::Zipf { theta: 1.0 },
        Partitioner::Skewed { hot: 0.6, cold: 0.01 },
        Partitioner::Bursty { period: 64, burst: 16 },
    ] {
        for seed in [1u64, 7, 23] {
            let mut config = ClusterConfig::new(5, seed)
                .with_chunk(32)
                .with_faults(SiteFault::schedule(5, m, 3, seed));
            config.partitioner = partitioner;
            let report = run_exact(&config, m);
            assert_reconciles(&report, m, &format!("{partitioner:?} seed {seed}"));
        }
    }
}

#[test]
fn skewed_churn_loses_most_at_the_hot_site() {
    // Crashing the hot site wipes the largest unsettled state; crashing
    // the near-idle one barely moves the ledger. Both reconcile.
    let m = 30_000u64;
    let base = ClusterConfig::new(4, 3).with_chunk(64);
    let mut lost = Vec::new();
    for site in [0usize, 3] {
        let mut config =
            base.clone().with_faults(vec![SiteFault { site, kill_at: m / 2, revive_at: None }]);
        config.partitioner = Partitioner::Skewed { hot: 0.7, cold: 0.005 };
        let report = run_exact(&config, m);
        assert_reconciles(&report, m, &format!("skewed kill of site {site}"));
        lost.push(report.churn.lost_counts.iter().sum::<u64>() + report.churn.events_lost);
    }
    assert!(
        lost[0] > lost[1],
        "hot-site crash must cost more than the near-idle one ({} vs {})",
        lost[0],
        lost[1]
    );
}

#[test]
fn hyz_estimates_track_surviving_counts_under_churn() {
    // The HYZ protocol's Lemma 4 band is stated against the *surviving*
    // count: a crash forgets the dead site's unsettled contribution on
    // both sides of the comparison, so the relative band holds against
    // `exact_totals` (widened for asynchronous transition noise).
    let m = 120_000u64;
    let eps = 0.1;
    let faults = vec![
        SiteFault { site: 0, kill_at: m / 4, revive_at: Some(m / 2) },
        SiteFault { site: 3, kill_at: m / 3, revive_at: None },
    ];
    let config = ClusterConfig::new(5, 17).with_chunk(64).with_faults(faults);
    let protocols: Vec<HyzProtocol> = (0..N_COUNTERS).map(|_| HyzProtocol::new(eps)).collect();
    let report = run_cluster(&protocols, &config, chunk_events(events(m), 64), map_event)
        .expect("cluster run failed");
    assert_eq!(report.churn.kills, 2);
    assert_reconciles(&report, m, "hyz churn");
    for c in 0..N_COUNTERS {
        let total = report.exact_totals[c];
        assert!(total > 10_000, "counter {c} too small to band-check");
        let rel = (report.estimates[c] - total as f64).abs() / total as f64;
        assert!(rel < 3.0 * eps, "counter {c}: estimate off by {rel} under churn");
    }
}

#[test]
fn epoch_rolling_reconciles_under_churn() {
    // Settlements are the durable checkpoints: counts settled before a
    // crash survive it, and the per-epoch oracle stays consistent (every
    // site observes every roll, dead ones as all-zero snapshots).
    let m = 24_000u64;
    let faults = vec![SiteFault { site: 1, kill_at: m / 3, revive_at: Some(2 * m / 3) }];
    let config = ClusterConfig::new(3, 29).with_chunk(32).with_epochs(m / 4, 8).with_faults(faults);
    let report = run_exact(&config, m);
    assert_eq!(report.churn.kills, 1);
    assert_eq!(report.churn.revives, 1);
    assert_reconciles(&report, m, "epoch rolling");
    // Epoch oracle consistency: settled epochs plus the open epoch add up
    // to the surviving totals.
    for c in 0..N_COUNTERS {
        let settled: u64 = report.epoch_exact_totals.iter().map(|e| e[c]).sum();
        assert_eq!(settled + report.open_epoch_exact_totals[c], report.exact_totals[c]);
    }
}

#[test]
fn sharded_coordinator_reconciles_under_churn() {
    let m = 30_000u64;
    let faults = SiteFault::schedule(4, m, 2, 77);
    let config = ClusterConfig::new(4, 77)
        .with_chunk(64)
        .with_sharded_coordinator(2, None)
        .with_faults(faults.clone());
    let report = run_exact(&config, m);
    assert!(report.churn.kills >= 1);
    assert_reconciles(&report, m, "sharded coordinator");
    // Same schedule through the single-thread coordinator: both shapes
    // must uphold the identity (counts differ — thread timing moves the
    // crash point — but the ledger always balances).
    let inline = ClusterConfig::new(4, 77).with_chunk(64).with_faults(faults);
    assert_reconciles(&run_exact(&inline, m), m, "inline coordinator");
}

#[cfg(unix)]
#[test]
fn uds_transport_reconciles_under_churn() {
    let m = 20_000u64;
    let config = ClusterConfig::new(3, 13).with_chunk(64).with_faults(vec![SiteFault {
        site: 2,
        kill_at: m / 4,
        revive_at: Some(m / 2),
    }]);
    let report =
        run_exact_on(&dsbn_monitor::UdsTransport, &config, m).expect("uds cluster run failed");
    assert_eq!(report.churn.kills, 1);
    assert_eq!(report.churn.revives, 1);
    assert_reconciles(&report, m, "uds transport");
}

#[test]
fn seeded_schedules_never_escape_as_panics() {
    // Sweep seeded fault schedules; every run must come back `Ok` with a
    // balanced ledger — no injected fault may wedge a quorum loop or
    // escape as a panic.
    let m = 10_000u64;
    for seed in 0..8u64 {
        let config = ClusterConfig::new(4, seed)
            .with_chunk(16)
            .with_faults(SiteFault::schedule(4, m, 3, seed));
        let report = run_exact(&config, m);
        assert_reconciles(&report, m, &format!("seed {seed}"));
    }
}

// --- worker panics must surface as typed errors, never hangs or unwinds ---

/// An exact-ish counter whose *site* panics after `limit` local arrivals:
/// regression for site-thread panics being silently swallowed (the old
/// runtime discarded the poisoned join and hung or under-reported).
#[derive(Clone, Copy)]
struct SitePanicProtocol {
    limit: u64,
}

impl CounterProtocol for SitePanicProtocol {
    type Site = u64;
    type Coord = u64;

    fn new_site(&self) -> u64 {
        0
    }
    fn new_coord(&self, _k: usize) -> u64 {
        0
    }
    fn increment<R: Rng + ?Sized>(&self, site: &mut u64, _rng: &mut R) -> Option<UpMsg> {
        *site += 1;
        assert!(*site <= self.limit, "injected site panic");
        Some(UpMsg::Increment)
    }
    fn handle_down<R: Rng + ?Sized>(
        &self,
        _site: &mut u64,
        _msg: DownMsg,
        _rng: &mut R,
    ) -> Option<UpMsg> {
        None
    }
    fn handle_up(&self, coord: &mut u64, _site_id: usize, _msg: UpMsg) -> Option<DownMsg> {
        *coord += 1;
        None
    }
    fn estimate(&self, coord: &u64) -> f64 {
        *coord as f64
    }
    fn site_local_count(&self, site: &u64) -> u64 {
        *site
    }
}

/// The mirror image: the *coordinator-side* `handle_up` panics after
/// `limit` deliveries — on the coordinator thread inline, on a shard
/// worker thread when sharded.
#[derive(Clone, Copy)]
struct CoordPanicProtocol {
    limit: u64,
}

impl CounterProtocol for CoordPanicProtocol {
    type Site = u64;
    type Coord = u64;

    fn new_site(&self) -> u64 {
        0
    }
    fn new_coord(&self, _k: usize) -> u64 {
        0
    }
    fn increment<R: Rng + ?Sized>(&self, site: &mut u64, _rng: &mut R) -> Option<UpMsg> {
        *site += 1;
        Some(UpMsg::Increment)
    }
    fn handle_down<R: Rng + ?Sized>(
        &self,
        _site: &mut u64,
        _msg: DownMsg,
        _rng: &mut R,
    ) -> Option<UpMsg> {
        None
    }
    fn handle_up(&self, coord: &mut u64, _site_id: usize, _msg: UpMsg) -> Option<DownMsg> {
        *coord += 1;
        assert!(*coord <= self.limit, "injected coordinator panic");
        None
    }
    fn estimate(&self, coord: &u64) -> f64 {
        *coord as f64
    }
    fn site_local_count(&self, site: &u64) -> u64 {
        *site
    }
}

fn expect_worker_panicked(result: Result<ClusterReport, ClusterError>, role_fragment: &str) {
    match result {
        Err(ClusterError::WorkerPanicked { role }) => {
            assert!(
                role.contains(role_fragment),
                "expected role containing {role_fragment:?}, got {role:?}"
            );
        }
        Err(other) => panic!("expected WorkerPanicked, got {other:?}"),
        Ok(_) => panic!("a panicking worker must fail the run"),
    }
}

#[test]
fn site_panic_surfaces_as_typed_error() {
    let protocols = vec![SitePanicProtocol { limit: 500 }; N_COUNTERS];
    let result = run_cluster(
        &protocols,
        &ClusterConfig::new(3, 1).with_chunk(16),
        chunk_events(events(20_000), 16),
        map_event,
    );
    expect_worker_panicked(result, "site ");
}

#[test]
fn coordinator_panic_surfaces_as_typed_error() {
    let protocols = vec![CoordPanicProtocol { limit: 500 }; N_COUNTERS];
    let result = run_cluster(
        &protocols,
        &ClusterConfig::new(3, 2).with_chunk(16),
        chunk_events(events(20_000), 16),
        map_event,
    );
    expect_worker_panicked(result, "coordinator");
}

#[test]
fn shard_worker_panic_surfaces_as_typed_error() {
    let protocols = vec![CoordPanicProtocol { limit: 500 }; N_COUNTERS];
    let result = run_cluster(
        &protocols,
        &ClusterConfig::new(3, 3).with_chunk(16).with_sharded_coordinator(2, None),
        chunk_events(events(20_000), 16),
        map_event,
    );
    expect_worker_panicked(result, "shard worker");
}

#[test]
fn panic_during_churn_still_surfaces_as_typed_error() {
    // A worker panic and injected faults in the same run: the typed error
    // must still win over a hang, whichever lands first.
    let m = 20_000u64;
    let protocols = vec![SitePanicProtocol { limit: 1_000 }; N_COUNTERS];
    let result = run_cluster(
        &protocols,
        &ClusterConfig::new(3, 4).with_chunk(16).with_faults(SiteFault::schedule(3, m, 2, 4)),
        chunk_events(events(m), 16),
        map_event,
    );
    expect_worker_panicked(result, "site ");
}
