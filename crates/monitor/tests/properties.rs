//! Property-based tests for the monitoring runtimes.

use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol};
use dsbn_monitor::{
    chunk_events, run_cluster, ClusterConfig, CounterArray, Partitioner, SiteAssigner,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A CounterArray of exact counters is exact per counter regardless of
    /// the increment interleaving, and counts messages 1:1.
    #[test]
    fn counter_array_isolation(
        k in 1usize..6,
        n_counters in 1usize..8,
        ops in proptest::collection::vec((0usize..6, 0usize..8), 0..500),
    ) {
        let mut arr = CounterArray::new(vec![ExactProtocol; n_counters], k);
        let mut rng = StdRng::seed_from_u64(1);
        let mut truth = vec![0u64; n_counters];
        let mut applied = 0u64;
        for (site, c) in ops {
            if site < k && c < n_counters {
                arr.increment(site, c, &mut rng);
                truth[c] += 1;
                applied += 1;
            }
        }
        for (c, &t) in truth.iter().enumerate() {
            prop_assert_eq!(arr.estimate(c), t as f64);
            prop_assert_eq!(arr.exact_total(c), t);
        }
        prop_assert_eq!(arr.stats().total(), applied);
    }

    /// The multi-counter array gives the same estimate trajectory as an
    /// isolated SingleCounterSim when fed the same increments (HYZ with a
    /// shared seed): protocols must not leak state across counters.
    #[test]
    fn counter_array_matches_single_counter_sim(
        k in 1usize..5,
        m in 1u64..3000,
        seed: u64,
    ) {
        use dsbn_counters::SingleCounterSim;
        let eps = 0.3;
        // Feed identical increment sequences with identical RNG streams.
        let mut rng_a = StdRng::seed_from_u64(seed);
        let mut rng_b = StdRng::seed_from_u64(seed);
        let mut site_rng = StdRng::seed_from_u64(seed ^ 0xabc);
        let mut arr = CounterArray::new(vec![HyzProtocol::new(eps)], k);
        let mut single = SingleCounterSim::new(HyzProtocol::new(eps), k);
        for _ in 0..m {
            let s = site_rng.gen_range(0..k);
            arr.increment(s, 0, &mut rng_a);
            single.increment(s, &mut rng_b);
        }
        prop_assert_eq!(arr.estimate(0), single.estimate());
        prop_assert_eq!(arr.stats().total(), single.messages);
    }

    /// Site assigners always produce valid sites and (for round robin)
    /// perfect balance.
    #[test]
    fn assigners_valid_and_balanced(k in 1usize..20, n in 1u64..2000, theta in 0.0f64..3.0) {
        let mut rng = StdRng::seed_from_u64(3);
        for kind in [Partitioner::UniformRandom, Partitioner::RoundRobin, Partitioner::Zipf { theta }] {
            let mut a = SiteAssigner::new(kind, k);
            let mut counts = vec![0u64; k];
            for _ in 0..n {
                let s = a.assign(&mut rng);
                prop_assert!(s < k);
                counts[s] += 1;
            }
            if kind == Partitioner::RoundRobin {
                let max = counts.iter().max().unwrap();
                let min = counts.iter().min().unwrap();
                prop_assert!(max - min <= 1, "round robin imbalance: {:?}", counts);
            }
        }
    }
}

/// Cluster and simulator agree exactly for deterministic protocols fed the
/// same event multiset (order-independence of the deterministic counter).
#[test]
fn cluster_matches_sim_for_deterministic_protocol() {
    let k = 4;
    let n_counters = 3;
    let m = 30_000u64;
    let eps = 0.2;
    // Map event value v to counter v % 3.
    let map = |chunk: &dsbn_datagen::EventChunk, ids: &mut Vec<u32>| {
        ids.clear();
        ids.extend(chunk.iter().map(|ev| ev[0] % n_counters as u32));
    };
    let protocols: Vec<DeterministicProtocol> =
        (0..n_counters).map(|_| DeterministicProtocol::new(eps)).collect();
    let events: Vec<Vec<usize>> = (0..m).map(|i| vec![(i % 7) as usize]).collect();
    let report = run_cluster(
        &protocols,
        &ClusterConfig::new(k, 5).with_chunk(32),
        chunk_events(events.iter().cloned(), 32),
        map,
    )
    .expect("cluster run failed");
    // Totals must be exact regardless of threading.
    let mut truth = vec![0u64; n_counters];
    for e in &events {
        truth[e[0] % n_counters] += 1;
    }
    assert_eq!(report.exact_totals, truth);
    // Deterministic counter invariant holds on the final estimates.
    for (c, &t) in truth.iter().enumerate() {
        assert!(report.estimates[c] <= t as f64 + 1e-9);
        assert!(report.estimates[c] >= (1.0 - eps) * t as f64 - k as f64);
    }
}

/// The paper accounting: broadcast costs k. Force a sync via HYZ and check
/// down_messages is a multiple of k.
#[test]
fn broadcast_accounting_is_k_per_broadcast() {
    let k = 7;
    let mut arr = CounterArray::new(vec![HyzProtocol::new(0.5)], k);
    let mut rng = StdRng::seed_from_u64(2);
    for i in 0..5_000u64 {
        arr.increment((i % k as u64) as usize, 0, &mut rng);
    }
    let stats = arr.stats();
    assert!(stats.broadcasts > 0, "expected at least one round");
    assert_eq!(stats.down_messages, stats.broadcasts * k as u64);
}
