//! Synchronous multi-counter simulator.
//!
//! [`CounterArray`] manages an array of independent distributed counters
//! (one per tracked statistic — the `A_i(x, u)` and `A_i(u)` of the paper)
//! across `k` simulated sites and one coordinator, with instantaneous
//! message delivery and paper-convention message accounting. This is the
//! runtime behind the "simulated stream monitoring system" experiments
//! (Figs. 1–6, 9–11, Tables II–III).

use crate::metrics::MessageStats;
use dsbn_counters::protocol::CounterProtocol;
use rand::Rng;

/// An array of independent distributed counters sharing `k` sites.
///
/// Each counter may use a different protocol instance (the NONUNIFORM
/// algorithm assigns a different error parameter to every counter), but all
/// instances must be of the same protocol *type* `P`.
pub struct CounterArray<P: CounterProtocol> {
    protocols: Vec<P>,
    /// Site states, laid out `[site][counter]` so one site's per-event
    /// updates touch contiguous memory.
    sites: Vec<Vec<P::Site>>,
    coords: Vec<P::Coord>,
    stats: MessageStats,
    k: usize,
}

impl<P: CounterProtocol> CounterArray<P> {
    /// Build one counter per protocol instance, over `k` sites.
    pub fn new(protocols: Vec<P>, k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        let sites = (0..k).map(|_| protocols.iter().map(|p| p.new_site()).collect()).collect();
        let coords = protocols.iter().map(|p| p.new_coord(k)).collect();
        CounterArray { protocols, sites, coords, stats: MessageStats::default(), k }
    }

    /// Number of counters.
    pub fn n_counters(&self) -> usize {
        self.protocols.len()
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Message statistics so far.
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// One arrival for counter `c` at site `site`, with synchronous
    /// delivery of any triggered protocol messages.
    pub fn increment<R: Rng + ?Sized>(&mut self, site: usize, c: usize, rng: &mut R) {
        use dsbn_counters::wire::{frame_len, Frame};
        let proto = &self.protocols[c];
        let cid = c as u32;
        if let Some(up) = proto.increment(&mut self.sites[site][c], rng) {
            self.stats.up_messages += 1;
            self.stats.bytes += frame_len(&Frame::Up { counter: cid, msg: up }) as u64;
            let mut pending = proto.handle_up(&mut self.coords[c], site, up);
            while let Some(down) = pending.take() {
                self.stats.broadcasts += 1;
                self.stats.down_messages += self.k as u64;
                self.stats.bytes +=
                    (self.k * frame_len(&Frame::Down { counter: cid, msg: down })) as u64;
                for sid in 0..self.k {
                    if let Some(reply) = proto.handle_down(&mut self.sites[sid][c], down, rng) {
                        self.stats.up_messages += 1;
                        self.stats.bytes +=
                            frame_len(&Frame::Up { counter: cid, msg: reply }) as u64;
                        if let Some(d) = proto.handle_up(&mut self.coords[c], sid, reply) {
                            pending = Some(d);
                        }
                    }
                }
            }
        }
    }

    /// Coordinator estimate for counter `c`.
    #[inline]
    pub fn estimate(&self, c: usize) -> f64 {
        self.protocols[c].estimate(&self.coords[c])
    }

    /// Exact global count for counter `c` (test/metric oracle; a real
    /// coordinator cannot observe this).
    pub fn exact_total(&self, c: usize) -> u64 {
        self.sites.iter().map(|s| self.protocols[c].site_local_count(&s[c])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn independent_counters_do_not_interfere() {
        let mut arr = CounterArray::new(vec![ExactProtocol; 3], 2);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            arr.increment(0, 0, &mut rng);
        }
        for _ in 0..9 {
            arr.increment(1, 2, &mut rng);
        }
        assert_eq!(arr.estimate(0), 5.0);
        assert_eq!(arr.estimate(1), 0.0);
        assert_eq!(arr.estimate(2), 9.0);
        assert_eq!(arr.stats().total(), 14);
    }

    #[test]
    fn heterogeneous_eps_per_counter() {
        // NONUNIFORM-style: different error budget per counter.
        let protos = vec![HyzProtocol::new(0.05), HyzProtocol::new(0.4)];
        let mut arr = CounterArray::new(protos, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..40_000u64 {
            arr.increment((i % 4) as usize, 0, &mut rng);
            arr.increment(((i + 1) % 4) as usize, 1, &mut rng);
        }
        for c in 0..2 {
            assert_eq!(arr.exact_total(c), 40_000);
            let rel = (arr.estimate(c) - 40_000.0).abs() / 40_000.0;
            let eps = if c == 0 { 0.05 } else { 0.4 };
            assert!(rel < 5.0 * eps, "counter {c}: rel err {rel}");
        }
    }

    #[test]
    fn mixed_protocol_accuracy_and_cost_ordering() {
        let m = 50_000u64;
        let k = 5;
        let mut rng = StdRng::seed_from_u64(2);

        let mut exact = CounterArray::new(vec![ExactProtocol], k);
        let mut det = CounterArray::new(vec![DeterministicProtocol::new(0.1)], k);
        let mut hyz = CounterArray::new(vec![HyzProtocol::new(0.1)], k);
        for i in 0..m {
            let s = (i % k as u64) as usize;
            exact.increment(s, 0, &mut rng);
            det.increment(s, 0, &mut rng);
            hyz.increment(s, 0, &mut rng);
        }
        assert_eq!(exact.stats().total(), m);
        assert!(det.stats().total() < m / 20);
        assert!(hyz.stats().total() < m / 20);
        assert_eq!(exact.estimate(0), m as f64);
    }

    #[test]
    fn empty_array_is_fine() {
        let arr: CounterArray<ExactProtocol> = CounterArray::new(vec![], 3);
        assert_eq!(arr.n_counters(), 0);
        assert_eq!(arr.stats().total(), 0);
    }
}
