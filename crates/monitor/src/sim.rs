//! Synchronous multi-counter simulator.
//!
//! [`CounterArray`] manages an array of independent distributed counters
//! (one per tracked statistic — the `A_i(x, u)` and `A_i(u)` of the paper)
//! across `k` simulated sites and one coordinator, with instantaneous
//! message delivery and paper-convention message accounting. This is the
//! runtime behind the "simulated stream monitoring system" experiments
//! (Figs. 1–6, 9–11, Tables II–III).
//!
//! The UPDATE hot path is event-batched: [`CounterArray::observe_event`]
//! takes all the counter ids one event triggers (the `2n` ids of
//! Algorithm 2) and sweeps them in a single pass over the site's
//! contiguous state slab, accounting the triggered up messages as one
//! bundled wire packet ([`dsbn_counters::wire::bundle_len`]) exactly as
//! the cluster runtime ships them via
//! [`dsbn_counters::wire::encode_event`]. Message *counts* keep the
//! paper's one-message-per-counter-update convention; only the byte tally
//! reflects the amortized batch framing.

use crate::metrics::MessageStats;
use dsbn_counters::msg::UpMsg;
use dsbn_counters::protocol::CounterProtocol;
use rand::Rng;

/// An array of independent distributed counters sharing `k` sites.
///
/// Each counter may use a different protocol instance (the NONUNIFORM
/// algorithm assigns a different error parameter to every counter), but all
/// instances must be of the same protocol *type* `P`.
pub struct CounterArray<P: CounterProtocol> {
    protocols: Vec<P>,
    /// Site states in one contiguous slab, indexed `site * n_counters + c`:
    /// one event's `2n` updates sweep within a single site block instead of
    /// chasing a `Vec<Vec<_>>` spine.
    sites: Vec<P::Site>,
    coords: Vec<P::Coord>,
    stats: MessageStats,
    k: usize,
}

impl<P: CounterProtocol> CounterArray<P> {
    /// Build one counter per protocol instance, over `k` sites.
    pub fn new(protocols: Vec<P>, k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        let mut sites = Vec::with_capacity(k * protocols.len());
        for _ in 0..k {
            sites.extend(protocols.iter().map(|p| p.new_site()));
        }
        let coords = protocols.iter().map(|p| p.new_coord(k)).collect();
        CounterArray { protocols, sites, coords, stats: MessageStats::default(), k }
    }

    /// Number of counters.
    pub fn n_counters(&self) -> usize {
        self.protocols.len()
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Message statistics so far.
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// One event at `site`: increment every counter in `ids` (Algorithm 2's
    /// `2n` updates) in one pass over the site's state block, with
    /// synchronous delivery of triggered protocol messages. The up messages
    /// the event triggers are accounted as one bundled wire frame — the
    /// same per-event packet the cluster runtime sends.
    pub fn observe_event<R: Rng + ?Sized>(&mut self, site: usize, ids: &[u32], rng: &mut R) {
        // In the flat slab an out-of-range counter id would land in a
        // *neighboring site's* block instead of panicking like the old
        // nested-Vec indexing did — check it explicitly.
        self.check_ids(ids);
        self.sweep_event(site, ids, rng);
    }

    /// Reject any counter id outside the slab's per-site block width.
    #[inline]
    fn check_ids(&self, ids: &[u32]) {
        let n = self.protocols.len();
        for &id in ids {
            assert!((id as usize) < n, "counter id {id} out of range ({n} counters)");
        }
    }

    /// The event sweep proper — callers have already validated `ids`
    /// (per-event via [`Self::observe_event`], or once per chunk slab via
    /// [`Self::observe_chunk`], which keeps the bounds check off the
    /// big-network inner loop).
    fn sweep_event<R: Rng + ?Sized>(&mut self, site: usize, ids: &[u32], rng: &mut R) {
        use dsbn_counters::wire::{bundle_len, frame_len, Frame};
        debug_assert!(site < self.k, "site {site} out of range");
        let n = self.protocols.len();
        let base = site * n;
        // Batch framing decomposes per message class (`wire::bundle_len`),
        // so the bundled packet is accounted from three scalars with no
        // batch materialized.
        let mut n_inc = 0usize;
        let mut n_rep = 0usize;
        let mut rep_bytes = 0usize;
        for &id in ids {
            let c = id as usize;
            debug_assert!(c < n);
            if let Some(up) = self.protocols[c].increment(&mut self.sites[base + c], rng) {
                self.stats.up_messages += 1;
                if matches!(up, UpMsg::Increment) {
                    n_inc += 1;
                } else {
                    n_rep += 1;
                    rep_bytes += frame_len(&Frame::Up { counter: id, msg: up });
                }
                // Deliver the update — and any broadcast cascade —
                // immediately, exactly as the per-increment path would:
                // bundling is an accounting construct here, not a delay.
                self.deliver_up(site, c, up, rng);
            }
        }
        self.stats.bytes += bundle_len(n_inc, n_rep, rep_bytes) as u64;
    }

    /// One arrival for counter `c` at site `site`, with synchronous
    /// delivery of any triggered protocol messages. Equivalent to a
    /// single-counter [`Self::observe_event`].
    pub fn increment<R: Rng + ?Sized>(&mut self, site: usize, c: usize, rng: &mut R) {
        self.observe_event(site, &[c as u32], rng);
    }

    /// A whole chunk of events in one call: `ids` holds the pre-mapped
    /// counter ids of consecutive events, `stride` per event (the `2n` of
    /// Algorithm 2 — callers reuse one flat scratch buffer across chunks
    /// instead of re-allocating per event). Each event is routed by
    /// `assigner` and swept by [`Self::observe_event`] *in stream order*,
    /// drawing from the same `rng` for routing and protocol randomness —
    /// exactly the interleaving of the per-event pipeline, so chunked and
    /// per-event runs stay bit-for-bit identical
    /// (`tests/chunked_equivalence.rs`).
    pub fn observe_chunk<R: Rng + ?Sized>(
        &mut self,
        assigner: &mut crate::partition::SiteAssigner,
        ids: &[u32],
        stride: usize,
        rng: &mut R,
    ) {
        assert!(stride > 0, "id stride must be >= 1");
        assert!(ids.len().is_multiple_of(stride), "ids not a whole number of events");
        // One validation pass over the whole slab up front, so the
        // per-event sweep (2n touches per event on a big network) runs
        // without a bounds check per id.
        self.check_ids(ids);
        for event_ids in ids.chunks_exact(stride) {
            let site = assigner.assign(rng);
            self.sweep_event(site, event_ids, rng);
        }
    }

    /// Deliver one up message for counter `c` to the coordinator and run
    /// any triggered broadcast cascade to quiescence. Cascade replies are
    /// individual sends (one site, one reply) and are accounted as single
    /// frames, matching the cluster's reply packets.
    fn deliver_up<R: Rng + ?Sized>(&mut self, site: usize, c: usize, up: UpMsg, rng: &mut R) {
        use dsbn_counters::wire::{frame_len, Frame};
        let n = self.protocols.len();
        let proto = &self.protocols[c];
        let cid = c as u32;
        let mut pending = proto.handle_up(&mut self.coords[c], site, up);
        while let Some(down) = pending.take() {
            self.stats.broadcasts += 1;
            self.stats.down_messages += self.k as u64;
            self.stats.bytes +=
                (self.k * frame_len(&Frame::Down { counter: cid, msg: down })) as u64;
            for sid in 0..self.k {
                if let Some(reply) = proto.handle_down(&mut self.sites[sid * n + c], down, rng) {
                    self.stats.up_messages += 1;
                    self.stats.bytes += frame_len(&Frame::Up { counter: cid, msg: reply }) as u64;
                    if let Some(d) = proto.handle_up(&mut self.coords[c], sid, reply) {
                        pending = Some(d);
                    }
                }
            }
        }
    }

    /// Close the current epoch (epoch-ring decay, DESIGN.md §5): reset
    /// every counter's site and coordinator state to fresh so the next
    /// epoch counts from zero, and account the roll control exchange
    /// exactly as the cluster runtime ships it — one
    /// [`dsbn_counters::wire::Frame::EpochRoll`] broadcast down to each
    /// site, and from each site the *settlement* (one `Cumulative` frame
    /// per counter with a nonzero local count — the epoch's terminal sync)
    /// followed by its `EpochAck`. The caller owns the ring (it snapshots
    /// [`Self::exact_total`] *before* rolling; with synchronous delivery
    /// the settled totals are exactly that). Message statistics are
    /// cumulative across epochs; like the cluster's lifecycle envelopes,
    /// roll control frames count bytes but are not counter-update
    /// messages.
    pub fn roll_epoch(&mut self, epoch: u32) {
        use dsbn_counters::msg::UpMsg;
        use dsbn_counters::wire::{frame_len, Frame};
        let cumulative =
            |value: u64| frame_len(&Frame::Up { counter: 0, msg: UpMsg::Cumulative { value } });
        let mut bytes = 0usize;
        let n = self.protocols.len();
        for s in 0..self.k {
            bytes += frame_len(&Frame::EpochRoll { epoch }) + frame_len(&Frame::EpochAck { epoch });
            for c in 0..n {
                let local = self.protocols[c].site_local_count(&self.sites[s * n + c]);
                if local > 0 {
                    bytes += cumulative(local);
                }
            }
        }
        self.stats.bytes += bytes as u64;
        self.sites.clear();
        for _ in 0..self.k {
            self.sites.extend(self.protocols.iter().map(|p| p.new_site()));
        }
        for (c, p) in self.protocols.iter().enumerate() {
            self.coords[c] = p.new_coord(self.k);
        }
    }

    /// Coordinator estimate for counter `c`.
    #[inline]
    pub fn estimate(&self, c: usize) -> f64 {
        self.protocols[c].estimate(&self.coords[c])
    }

    /// Exact global count for counter `c` (test/metric oracle; a real
    /// coordinator cannot observe this).
    pub fn exact_total(&self, c: usize) -> u64 {
        let n = self.protocols.len();
        (0..self.k).map(|s| self.protocols[c].site_local_count(&self.sites[s * n + c])).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_counters::{DeterministicProtocol, ExactProtocol, HyzProtocol};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn independent_counters_do_not_interfere() {
        let mut arr = CounterArray::new(vec![ExactProtocol; 3], 2);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..5 {
            arr.increment(0, 0, &mut rng);
        }
        for _ in 0..9 {
            arr.increment(1, 2, &mut rng);
        }
        assert_eq!(arr.estimate(0), 5.0);
        assert_eq!(arr.estimate(1), 0.0);
        assert_eq!(arr.estimate(2), 9.0);
        assert_eq!(arr.stats().total(), 14);
    }

    #[test]
    fn heterogeneous_eps_per_counter() {
        // NONUNIFORM-style: different error budget per counter.
        let protos = vec![HyzProtocol::new(0.05), HyzProtocol::new(0.4)];
        let mut arr = CounterArray::new(protos, 4);
        let mut rng = StdRng::seed_from_u64(1);
        for i in 0..40_000u64 {
            arr.increment((i % 4) as usize, 0, &mut rng);
            arr.increment(((i + 1) % 4) as usize, 1, &mut rng);
        }
        for c in 0..2 {
            assert_eq!(arr.exact_total(c), 40_000);
            let rel = (arr.estimate(c) - 40_000.0).abs() / 40_000.0;
            let eps = if c == 0 { 0.05 } else { 0.4 };
            assert!(rel < 5.0 * eps, "counter {c}: rel err {rel}");
        }
    }

    #[test]
    fn mixed_protocol_accuracy_and_cost_ordering() {
        let m = 50_000u64;
        let k = 5;
        let mut rng = StdRng::seed_from_u64(2);

        let mut exact = CounterArray::new(vec![ExactProtocol], k);
        let mut det = CounterArray::new(vec![DeterministicProtocol::new(0.1)], k);
        let mut hyz = CounterArray::new(vec![HyzProtocol::new(0.1)], k);
        for i in 0..m {
            let s = (i % k as u64) as usize;
            exact.increment(s, 0, &mut rng);
            det.increment(s, 0, &mut rng);
            hyz.increment(s, 0, &mut rng);
        }
        assert_eq!(exact.stats().total(), m);
        assert!(det.stats().total() < m / 20);
        assert!(hyz.stats().total() < m / 20);
        assert_eq!(exact.estimate(0), m as f64);
    }

    #[test]
    fn empty_array_is_fine() {
        let arr: CounterArray<ExactProtocol> = CounterArray::new(vec![], 3);
        assert_eq!(arr.n_counters(), 0);
        assert_eq!(arr.stats().total(), 0);
    }

    #[test]
    fn observe_event_matches_sequential_increments_bit_for_bit() {
        // The batched path must be indistinguishable from looping
        // `increment` — same estimates, totals, and message counts, with
        // identical rng consumption — for a randomized protocol.
        let protos = || vec![HyzProtocol::new(0.2); 6];
        let mut batched = CounterArray::new(protos(), 3);
        let mut looped = CounterArray::new(protos(), 3);
        let mut rng_a = StdRng::seed_from_u64(11);
        let mut rng_b = StdRng::seed_from_u64(11);
        let events: Vec<(usize, Vec<u32>)> =
            (0..20_000).map(|i| (i % 3, vec![(i % 6) as u32, ((i + 1) % 6) as u32])).collect();
        for (site, ids) in &events {
            batched.observe_event(*site, ids, &mut rng_a);
            for &id in ids {
                looped.increment(*site, id as usize, &mut rng_b);
            }
        }
        for c in 0..6 {
            assert_eq!(batched.estimate(c).to_bits(), looped.estimate(c).to_bits(), "counter {c}");
            assert_eq!(batched.exact_total(c), looped.exact_total(c), "counter {c}");
        }
        let (a, b) = (batched.stats(), looped.stats());
        assert_eq!(a.up_messages, b.up_messages);
        assert_eq!(a.down_messages, b.down_messages);
        assert_eq!(a.broadcasts, b.broadcasts);
        // Bytes differ by design: the batched path accounts each event's
        // updates as one bundled frame.
        assert!(a.bytes <= b.bytes);
    }

    #[test]
    fn observe_chunk_matches_per_event_loop_bit_for_bit() {
        // Chunk sweeping must route and draw from the rng in exactly the
        // per-event order: assign, observe, assign, observe, ... — for a
        // randomized protocol this pins the whole interleaving.
        use crate::partition::{Partitioner, SiteAssigner};
        let protos = || vec![HyzProtocol::new(0.2); 6];
        let mut chunked = CounterArray::new(protos(), 3);
        let mut looped = CounterArray::new(protos(), 3);
        let mut rng_a = StdRng::seed_from_u64(17);
        let mut rng_b = StdRng::seed_from_u64(17);
        let mut asg_a = SiteAssigner::new(Partitioner::UniformRandom, 3);
        let mut asg_b = SiteAssigner::new(Partitioner::UniformRandom, 3);
        let stride = 2;
        let ids: Vec<u32> = (0..20_000u32).flat_map(|i| [i % 6, (i + 1) % 6]).collect();
        chunked.observe_chunk(&mut asg_a, &ids, stride, &mut rng_a);
        for event_ids in ids.chunks_exact(stride) {
            let site = asg_b.assign(&mut rng_b);
            looped.observe_event(site, event_ids, &mut rng_b);
        }
        for c in 0..6 {
            assert_eq!(chunked.estimate(c).to_bits(), looped.estimate(c).to_bits(), "counter {c}");
            assert_eq!(chunked.exact_total(c), looped.exact_total(c), "counter {c}");
        }
        assert_eq!(chunked.stats(), looped.stats());
    }

    #[test]
    fn roll_epoch_resets_counts_and_accounts_control_bytes() {
        let k = 3;
        let mut arr = CounterArray::new(vec![ExactProtocol; 2], k);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..10 {
            arr.observe_event(1, &[0, 1], &mut rng);
        }
        let before = arr.stats();
        arr.roll_epoch(0);
        // Fresh epoch: estimates and exact totals start over.
        assert_eq!(arr.estimate(0), 0.0);
        assert_eq!(arr.exact_total(1), 0);
        // Control exchange: one 5-byte EpochRoll down + one 5-byte EpochAck
        // up per site, plus the settlement — a 13-byte Cumulative frame per
        // nonzero (site, counter), here both counters at site 1 only.
        // Message counts (counter updates) are unchanged.
        let after = arr.stats();
        assert_eq!(after.bytes, before.bytes + (k as u64) * 10 + 2 * 13);
        assert_eq!(after.total(), before.total());
        // The new epoch counts normally.
        arr.observe_event(0, &[0], &mut rng);
        assert_eq!(arr.estimate(0), 1.0);
    }

    #[test]
    fn observe_event_bytes_use_batch_framing() {
        // Eight exact counters per event (a sprinkler-sized 2n): the
        // bundled frame costs a 5-byte header + 4 bytes per id, vs 8 x 5
        // for per-update singles — the same packet the cluster ships.
        let mut arr = CounterArray::new(vec![ExactProtocol; 8], 2);
        let mut rng = StdRng::seed_from_u64(3);
        let ids: Vec<u32> = (0..8).collect();
        for _ in 0..100 {
            arr.observe_event(0, &ids, &mut rng);
        }
        assert_eq!(arr.stats().up_messages, 800);
        assert_eq!(arr.stats().bytes, 100 * (5 + 8 * 4));
        assert_eq!(arr.estimate(0), 100.0);
        assert_eq!(arr.estimate(7), 100.0);
    }
}
