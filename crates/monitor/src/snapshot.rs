//! Epoch-consistent counter snapshots and the RCU publish hub.
//!
//! The paper's QUERY runs against a Definition-2-consistent global state;
//! until now that state only existed *after* a run, in the final
//! [`crate::cluster::ClusterReport`]. This module lets the coordinator
//! publish the same state *during* a run, at exactly the moments it is
//! consistent — the epoch settlements of DESIGN.md §5 and the final flush
//! quiescence of §3.2 — so reader threads can serve classify/posterior
//! traffic concurrently with ingest (DESIGN.md §7).
//!
//! A [`CounterSnapshot`] is pure counter-layer data (no Bayesian-network
//! semantics): per-counter open-epoch estimates, the cumulative settled
//! counts of every closed epoch, and the retained closed-epoch ring. The
//! CPT/query semantics live in `dsbn-core`, which resolves a
//! `CounterSnapshot` into query-ready conditional-probability reads.
//!
//! The [`SnapshotHub`] is the single-writer/many-reader handoff: the
//! coordinator control thread (the only minter) `publish`es, and any
//! number of reader threads `load` the current snapshot through the
//! vendored `arc-swap` RCU cell — no lock, no message, no coordination
//! with ingest on the read path.

use crate::cluster::ClusterReport;
use arc_swap::ArcSwap;
use std::sync::Arc;

/// A frozen, counter-layer view of the coordinator's tracked state,
/// minted at a settlement (epoch close or final quiescence).
///
/// Per-counter reads decompose by epoch, mirroring how the coordinator
/// itself holds them:
///
/// - [`open`](Self::open) — the live estimate of the *open* epoch (a
///   Lemma 4 estimate for the randomized schemes, exact for the exact
///   scheme); with rolling disabled this is the whole stream.
/// - [`settled`](Self::settled) — the summed exact settlements of every
///   closed epoch (each roll's terminal sync is exact, DESIGN.md §5), so
///   a *cumulative* read is `settled[c] + open[c]` regardless of how many
///   epochs the retention ring has dropped.
/// - [`closed`](Self::closed) — the retained ring of per-epoch settled
///   counts, oldest first, for `lambda^age`-weighted decayed reads.
#[derive(Debug, Clone, PartialEq)]
pub struct CounterSnapshot {
    /// Publish sequence number, strictly increasing per hub; `0` is the
    /// empty pre-publish snapshot a fresh hub holds.
    pub seq: u64,
    /// Events represented: exact for the final snapshot; for mid-stream
    /// mints, the settled lower bound `epochs * boundary` (the open
    /// epoch's in-flight events are not yet countable anywhere).
    pub events: u64,
    /// Closed epochs at mint time.
    pub epochs: u64,
    /// Minted at the final flush quiescence (the run's terminal state)
    /// rather than a mid-stream epoch settlement.
    pub finalized: bool,
    /// Open-epoch coordinator estimates, one per counter.
    pub open: Vec<f64>,
    /// Cumulative exact settled counts across *all* closed epochs (not
    /// just the retained ring), one per counter. All zeros while no epoch
    /// has closed.
    pub settled: Vec<f64>,
    /// Retained closed-epoch settled counts, oldest first (the epoch
    /// ring; at most `ClusterConfig::epoch_ring` entries).
    pub closed: Vec<Vec<f64>>,
    /// Exact per-counter totals over the whole stream — the test oracle.
    /// Only the final snapshot can carry it: the oracle is reconstructed
    /// from site states at shutdown and is not coordinator-visible
    /// mid-stream.
    pub exact: Option<Vec<u64>>,
}

impl CounterSnapshot {
    /// The empty pre-publish snapshot (`seq == 0`): what a hub holds
    /// before the coordinator has minted anything.
    pub fn empty() -> Self {
        CounterSnapshot {
            seq: 0,
            events: 0,
            epochs: 0,
            finalized: false,
            open: Vec::new(),
            settled: Vec::new(),
            closed: Vec::new(),
            exact: None,
        }
    }

    /// The cumulative read of counter `c`: exact settled mass of every
    /// closed epoch plus the open-epoch estimate. With no closed epochs
    /// this is the open estimate itself, bit-for-bit.
    pub fn cumulative(&self, c: usize) -> f64 {
        if self.epochs == 0 {
            self.open[c]
        } else {
            self.settled[c] + self.open[c]
        }
    }
}

/// The single-writer / many-reader snapshot handoff: the coordinator
/// publishes [`CounterSnapshot`]s, reader threads load the current one
/// through an RCU cell. Cloning the hub clones the *handle* — all clones
/// see the same publishes — so one end plugs into
/// [`crate::cluster::ClusterConfig::with_publish`] and the others fan out
/// to reader threads.
#[derive(Clone)]
pub struct SnapshotHub {
    cell: Arc<ArcSwap<CounterSnapshot>>,
}

impl SnapshotHub {
    /// A fresh hub holding the empty `seq == 0` snapshot.
    pub fn new() -> Self {
        SnapshotHub { cell: Arc::new(ArcSwap::from_pointee(CounterSnapshot::empty())) }
    }

    /// The current snapshot (lock-free RCU load; the reader hot path).
    pub fn load(&self) -> Arc<CounterSnapshot> {
        self.cell.load_full()
    }

    /// Sequence number of the current snapshot (`0` = nothing published).
    pub fn seq(&self) -> u64 {
        self.load().seq
    }

    /// Publish a snapshot. Single writer by construction (the coordinator
    /// control thread during a run, the driver at the end); readers
    /// observe publishes in order.
    pub(crate) fn publish(&self, snap: CounterSnapshot) {
        self.cell.store(Arc::new(snap));
    }

    /// Publish the *final* snapshot from a finished run's report: the
    /// terminal state of the flush quiescence handshake, with the exact
    /// oracle attached. Called by `run_cluster_on` after the coordinator
    /// joins, so it never races a mid-stream mint.
    ///
    /// `settled` is reconstructed as `exact_totals - open_epoch_exact`:
    /// every closed epoch settles exactly (the roll's terminal sync ships
    /// each site's exact per-epoch counts), so the coordinator's settled
    /// accumulator and the oracle's closed-epoch mass are the same number.
    pub(crate) fn publish_final(&self, report: &ClusterReport) {
        let settled: Vec<f64> = report
            .exact_totals
            .iter()
            .zip(&report.open_epoch_exact_totals)
            .map(|(&t, &o)| (t - o) as f64)
            .collect();
        self.publish(CounterSnapshot {
            seq: self.seq() + 1,
            events: report.events,
            epochs: report.epochs,
            finalized: true,
            open: report.estimates.clone(),
            settled,
            closed: report.epoch_estimates.clone(),
            exact: Some(report.exact_totals.clone()),
        });
    }
}

impl Default for SnapshotHub {
    fn default() -> Self {
        SnapshotHub::new()
    }
}

impl std::fmt::Debug for SnapshotHub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.load();
        f.debug_struct("SnapshotHub")
            .field("seq", &s.seq)
            .field("epochs", &s.epochs)
            .field("finalized", &s.finalized)
            .field("n_counters", &s.open.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_hub_holds_the_empty_snapshot() {
        let hub = SnapshotHub::new();
        let s = hub.load();
        assert_eq!(s.seq, 0);
        assert!(!s.finalized);
        assert!(s.open.is_empty());
        assert_eq!(hub.seq(), 0);
    }

    #[test]
    fn publishes_are_seen_by_all_handles_in_order() {
        let hub = SnapshotHub::new();
        let reader = hub.clone();
        for seq in 1..=5u64 {
            let mut s = CounterSnapshot::empty();
            s.seq = seq;
            s.open = vec![seq as f64; 3];
            hub.publish(s);
            assert_eq!(reader.seq(), seq);
            assert_eq!(reader.load().open, vec![seq as f64; 3]);
        }
    }

    #[test]
    fn cumulative_read_is_open_plus_settled() {
        let mut s = CounterSnapshot::empty();
        s.open = vec![2.5, 0.0];
        s.settled = vec![10.0, 4.0];
        // No closed epoch: the open estimate verbatim (bit-for-bit).
        assert_eq!(s.cumulative(0).to_bits(), 2.5f64.to_bits());
        s.epochs = 2;
        assert_eq!(s.cumulative(0), 12.5);
        assert_eq!(s.cumulative(1), 4.0);
    }
}
