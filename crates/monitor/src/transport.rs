//! Transport abstraction for the cluster runtime.
//!
//! The cluster's thread/channel topology (DESIGN.md §1) has three link
//! classes: per-site *up* links into one merged coordinator inbox, per-site
//! *down* links for broadcasts, and the in-process control plane the stream
//! driver uses (roll requests ride the same merged inbox). [`Transport`]
//! abstracts how the up/down links are realized while keeping the receive
//! ends concrete crossbeam channels — the site loop still `select!`s over
//! its down link and its event feed, and the coordinator still drains one
//! merged inbox, whatever carries the bytes underneath.
//!
//! Two implementations ship:
//!
//! - [`ChannelTransport`] — the in-process default: the links *are* the
//!   crossbeam channels (one bounded MPSC up, one unbounded channel down
//!   per site), zero extra copies or threads.
//! - [`UdsTransport`] — every site⇄coordinator link is a Unix-domain
//!   socket pair carrying the envelope codec below, with per-link pump
//!   threads bridging socket and channel. The frame payloads cross a real
//!   kernel byte stream, proving the `dsbn_counters::wire` codec (and the
//!   runtime's error handling) works cross-process; byte/packet accounting
//!   is identical because [`crate::MessageStats`] counts frame payloads,
//!   not envelope overhead.
//!
//! # Envelope codec (UDS)
//!
//! Sockets are byte streams, so packets travel in length-delimited
//! envelopes (all integers little-endian):
//!
//! ```text
//! up   := kind u8
//!   0 Updates      u32 len, len payload bytes (wire frames)
//!   1 Control      u32 len, len payload bytes (wire frames)
//!   2 RollRequest  (driver control plane; in-process in practice)
//!   3 Done
//!   4 FlushAck     u64 epoch
//!   5 Fault        u32 len, len UTF-8 error description
//!   6 Crashed      u32 len, len payload bytes (torn final packet)
//!   7 Inject       u8 kill, u32 target site (driver control plane)
//! down := kind u8
//!   0 Data         u32 len, len payload bytes (wire frames)
//!   1 Flush        u64 epoch
//!   2 Fault        u32 len, len UTF-8 error description
//!   3 Kill
//!   4 Revive       u32 len, len payload bytes (catch-up wire frames)
//! ```
//!
//! A site's identity is its connection — site ids never travel in the
//! envelope; the coordinator-side pump stamps the id of the link the bytes
//! arrived on, so a confused or malicious peer cannot impersonate another
//! site. Payload lengths are capped at [`MAX_PAYLOAD`]; anything larger is
//! a decode fault. Pumps never panic on garbage: a decode failure becomes
//! an in-band [`UpPacket::Fault`] / [`DownPacket::Fault`] that aborts the
//! run with a typed [`ClusterError`].

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dsbn_counters::wire::WireError;
use std::io::{self, BufReader, Read, Write};
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::thread::JoinHandle;

/// Why a cluster run failed. Replaces the old panicking decode paths: any
/// malformed packet, protocol violation, or transport fault surfaces as a
/// typed error from `run_cluster` instead of killing a thread and hanging
/// the join.
#[derive(Debug, Clone, PartialEq)]
pub enum ClusterError {
    /// A packet failed to decode (`dsbn_counters::wire`).
    Wire {
        /// Which packet class was being decoded.
        context: &'static str,
        /// Originating site, when attributable.
        site: Option<usize>,
        /// The underlying codec error.
        source: WireError,
    },
    /// A well-formed frame arrived where the protocol forbids it (e.g. a
    /// down frame on the up path, an epoch ack with no roll in flight).
    Protocol {
        /// Which handler rejected it.
        context: &'static str,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// The transport substrate failed (socket error, envelope garbage,
    /// worker/pump disconnect).
    Transport(String),
    /// A runtime thread panicked. Surfaced as a typed error instead of
    /// propagating the panic (or worse, silently swallowing it at join).
    WorkerPanicked {
        /// Which thread died, e.g. `"coordinator"`, `"site 3"`,
        /// `"shard worker 1"`, `"transport pump"`.
        role: String,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Wire { context, site: Some(s), source } => {
                write!(f, "corrupt {context} from site {s}: {source}")
            }
            ClusterError::Wire { context, site: None, source } => {
                write!(f, "corrupt {context}: {source}")
            }
            ClusterError::Protocol { context, detail } => {
                write!(f, "protocol violation in {context}: {detail}")
            }
            ClusterError::Transport(msg) => write!(f, "transport fault: {msg}"),
            ClusterError::WorkerPanicked { role } => {
                write!(f, "worker panicked: {role}")
            }
        }
    }
}

impl std::error::Error for ClusterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClusterError::Wire { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The peer end of a link is gone; the run is shutting down (or aborting).
/// Not an error to report — senders treat it as "stop".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkClosed;

/// Site → coordinator traffic.
#[derive(Debug, Clone)]
pub enum UpPacket {
    /// A multi-event packet: the concatenated wire encodings
    /// (`encode_event` sections) of every update a site produced since its
    /// last flush — event updates and broadcast replies alike.
    Updates {
        /// Originating site.
        site: usize,
        /// Concatenated wire frames.
        payload: Bytes,
    },
    /// Wire-encoded control traffic (settlement + `Frame::EpochAck`):
    /// accounted in bytes but not in packet/message tallies.
    Control {
        /// Originating site.
        site: usize,
        /// Concatenated wire frames.
        payload: Bytes,
    },
    /// The driver crossed an epoch boundary: initiate an epoch roll. Sent
    /// by the stream driver, which is the only party that sees the global
    /// event count.
    RollRequest,
    /// The site has exhausted its event stream.
    Done,
    /// The site has processed every down packet sent before `Flush(epoch)`
    /// and forwarded all replies they produced (quiescence handshake).
    FlushAck {
        /// Flush epoch being acknowledged.
        epoch: u64,
    },
    /// The site (or its transport link) hit an unrecoverable error; the
    /// coordinator must abort the run with this error.
    Fault {
        /// Faulting site.
        site: usize,
        /// What went wrong.
        error: ClusterError,
    },
    /// The site crashed (fail-stop, injected fault). Sent *last* on the
    /// site's FIFO up link, so everything the site delivered before dying
    /// has already been applied when the coordinator learns of the crash.
    /// `partial` carries whatever prefix of the final in-flight packet the
    /// crash tore off mid-flush — the coordinator attributes and discards
    /// it (applying a prefix would break exact reconciliation; the wiped
    /// site's loss accounting already covers those updates).
    Crashed {
        /// The crashed site.
        site: usize,
        /// Torn prefix of the final unflushed packet (possibly empty).
        partial: Bytes,
    },
    /// Fault-injection command from the stream driver (the only party that
    /// sees the global event count): kill or revive `site`. Rides the
    /// driver's in-process control plane in practice; encoded for totality.
    Inject {
        /// Target site.
        site: usize,
        /// `true` to kill, `false` to revive.
        kill: bool,
    },
}

/// Coordinator → site traffic.
#[derive(Debug, Clone)]
pub enum DownPacket {
    /// Wire-encoded broadcast frames.
    Data(Bytes),
    /// Quiescence barrier: ack after everything before it is handled.
    Flush(u64),
    /// The transport link from the coordinator failed; the site forwards
    /// the fault up (so the coordinator aborts) and stops.
    Fault(ClusterError),
    /// Crash the site (injected fault): it tears its in-flight packet,
    /// reports [`UpPacket::Crashed`], wipes all protocol state, and goes
    /// dark until revived.
    Kill,
    /// Revive a crashed site with fresh protocol state. The payload is the
    /// catch-up broadcast (concatenated down wire frames) that
    /// fast-forwards the fresh state into the current protocol rounds;
    /// FIFO ordering on the down link puts it ahead of any later
    /// broadcast.
    Revive(Bytes),
}

/// Site-side sending half of an up link.
pub trait UpSender {
    /// Deliver one packet to the coordinator's merged inbox.
    fn send(&mut self, pkt: UpPacket) -> Result<(), LinkClosed>;
}

/// Coordinator-side sending half of one site's down link.
pub trait DownSender {
    /// Deliver one packet to the site.
    fn send(&mut self, pkt: DownPacket) -> Result<(), LinkClosed>;
}

impl UpSender for Sender<UpPacket> {
    fn send(&mut self, pkt: UpPacket) -> Result<(), LinkClosed> {
        Sender::send(self, pkt).map_err(|_| LinkClosed)
    }
}

impl DownSender for Sender<DownPacket> {
    fn send(&mut self, pkt: DownPacket) -> Result<(), LinkClosed> {
        Sender::send(self, pkt).map_err(|_| LinkClosed)
    }
}

/// The connected link fabric for one run: what `run_cluster_on` wires into
/// its threads. Receive ends are always concrete channels (transports that
/// cross a process or socket boundary pump into them); send ends are the
/// transport's own types.
pub struct Fabric<U, D> {
    /// Per-site up senders, moved into the site threads.
    pub site_ups: Vec<U>,
    /// The driver's in-process control-plane sender into the merged inbox
    /// (roll requests must be ordered against the driver's own event
    /// feeds, so they never cross a foreign transport).
    pub driver_up: Sender<UpPacket>,
    /// The coordinator's merged inbox (all sites + driver).
    pub coord_rx: Receiver<UpPacket>,
    /// Per-site down senders, moved into the coordinator thread.
    pub coord_downs: Vec<D>,
    /// Per-site down receivers, moved into the site threads.
    pub site_downs: Vec<Receiver<DownPacket>>,
    /// Transport pump threads to join after the run's thread scope exits
    /// (they terminate once both ends of their links are dropped).
    pub pumps: Vec<JoinHandle<()>>,
}

/// How the cluster's site⇄coordinator links are realized.
pub trait Transport {
    /// Site-side up sending half.
    type UpTx: UpSender + Send;
    /// Coordinator-side down sending half.
    type DownTx: DownSender + Send;

    /// Build the link fabric for `k` sites. `capacity` bounds the merged
    /// up inbox (backpressure); down links are always unbounded on the
    /// receive side — the coordinator must never block on a broadcast, or
    /// a site blocked on its own up-send would deadlock with it.
    fn connect(
        &self,
        k: usize,
        capacity: usize,
    ) -> Result<Fabric<Self::UpTx, Self::DownTx>, ClusterError>;
}

/// The in-process default: links are crossbeam channels, exactly the
/// topology the runtime used before the transport was abstracted.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChannelTransport;

impl Transport for ChannelTransport {
    type UpTx = Sender<UpPacket>;
    type DownTx = Sender<DownPacket>;

    fn connect(
        &self,
        k: usize,
        capacity: usize,
    ) -> Result<Fabric<Self::UpTx, Self::DownTx>, ClusterError> {
        assert!(k > 0, "need at least one site");
        let (up_tx, up_rx) = bounded::<UpPacket>(capacity);
        let mut coord_downs = Vec::with_capacity(k);
        let mut site_downs = Vec::with_capacity(k);
        for _ in 0..k {
            let (tx, rx) = unbounded::<DownPacket>();
            coord_downs.push(tx);
            site_downs.push(rx);
        }
        Ok(Fabric {
            site_ups: (0..k).map(|_| up_tx.clone()).collect(),
            driver_up: up_tx,
            coord_rx: up_rx,
            coord_downs,
            site_downs,
            pumps: Vec::new(),
        })
    }
}

/// Largest envelope payload a pump will accept. Anything bigger is treated
/// as a corrupt length prefix (the runtime's flush threshold keeps real
/// packets orders of magnitude smaller).
pub const MAX_PAYLOAD: usize = 64 << 20;

/// Unix-domain-socket transport: each site gets one socket pair up and one
/// down, with pump threads bridging the coordinator-side up reads and the
/// site-side down reads into the runtime's channels. See the module docs
/// for the envelope codec and fault behavior.
#[cfg(unix)]
#[derive(Debug, Clone, Copy, Default)]
pub struct UdsTransport;

#[cfg(unix)]
/// Site-side up sender writing envelopes straight to the socket.
pub struct UdsUpSender {
    stream: UnixStream,
}

#[cfg(unix)]
/// Coordinator-side down sender writing envelopes straight to the socket.
pub struct UdsDownSender {
    stream: UnixStream,
}

#[cfg(unix)]
fn write_all(stream: &mut UnixStream, buf: &[u8]) -> Result<(), LinkClosed> {
    stream.write_all(buf).map_err(|_| LinkClosed)
}

#[cfg(unix)]
fn push_len_payload(out: &mut Vec<u8>, payload: &[u8]) {
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
}

#[cfg(unix)]
impl UpSender for UdsUpSender {
    fn send(&mut self, pkt: UpPacket) -> Result<(), LinkClosed> {
        let mut out = Vec::new();
        match pkt {
            UpPacket::Updates { payload, .. } => {
                out.push(0);
                push_len_payload(&mut out, &payload);
            }
            UpPacket::Control { payload, .. } => {
                out.push(1);
                push_len_payload(&mut out, &payload);
            }
            UpPacket::RollRequest => out.push(2),
            UpPacket::Done => out.push(3),
            UpPacket::FlushAck { epoch } => {
                out.push(4);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            UpPacket::Fault { error, .. } => {
                out.push(5);
                push_len_payload(&mut out, error.to_string().as_bytes());
            }
            UpPacket::Crashed { partial, .. } => {
                out.push(6);
                push_len_payload(&mut out, &partial);
            }
            UpPacket::Inject { site, kill } => {
                out.push(7);
                out.push(kill as u8);
                out.extend_from_slice(&(site as u32).to_le_bytes());
            }
        }
        write_all(&mut self.stream, &out)
    }
}

#[cfg(unix)]
impl DownSender for UdsDownSender {
    fn send(&mut self, pkt: DownPacket) -> Result<(), LinkClosed> {
        let mut out = Vec::new();
        match pkt {
            DownPacket::Data(payload) => {
                out.push(0);
                push_len_payload(&mut out, &payload);
            }
            DownPacket::Flush(epoch) => {
                out.push(1);
                out.extend_from_slice(&epoch.to_le_bytes());
            }
            DownPacket::Fault(error) => {
                out.push(2);
                push_len_payload(&mut out, error.to_string().as_bytes());
            }
            DownPacket::Kill => out.push(3),
            DownPacket::Revive(payload) => {
                out.push(4);
                push_len_payload(&mut out, &payload);
            }
        }
        write_all(&mut self.stream, &out)
    }
}

/// One decoded envelope, or clean end-of-stream.
enum Envelope<T> {
    Packet(T),
    Eof,
}

/// Read exactly `buf.len()` bytes; `Ok(false)` on clean EOF at the first
/// byte, `Err` on mid-envelope truncation or I/O failure.
fn read_exact_or_eof<R: Read>(r: &mut R, buf: &mut [u8]) -> io::Result<bool> {
    let mut filled = 0;
    while filled < buf.len() {
        let n = r.read(&mut buf[filled..])?;
        if n == 0 {
            if filled == 0 {
                return Ok(false);
            }
            return Err(io::Error::new(io::ErrorKind::UnexpectedEof, "truncated envelope"));
        }
        filled += n;
    }
    Ok(true)
}

fn read_payload<R: Read>(r: &mut R, what: &str) -> Result<Bytes, String> {
    let mut len4 = [0u8; 4];
    if !read_exact_or_eof(r, &mut len4).map_err(|e| format!("{what}: {e}"))? {
        return Err(format!("{what}: truncated length prefix"));
    }
    let len = u32::from_le_bytes(len4) as usize;
    if len > MAX_PAYLOAD {
        return Err(format!("{what}: payload length {len} exceeds cap {MAX_PAYLOAD}"));
    }
    let mut payload = vec![0u8; len];
    if !read_exact_or_eof(r, &mut payload).map_err(|e| format!("{what}: {e}"))? {
        return Err(format!("{what}: truncated payload"));
    }
    Ok(Bytes::from(payload))
}

fn read_u64<R: Read>(r: &mut R, what: &str) -> Result<u64, String> {
    let mut b = [0u8; 8];
    match read_exact_or_eof(r, &mut b) {
        Ok(true) => Ok(u64::from_le_bytes(b)),
        Ok(false) => Err(format!("{what}: truncated")),
        Err(e) => Err(format!("{what}: {e}")),
    }
}

/// Decode one up envelope from a coordinator-side socket reader. `site` is
/// the link identity the bytes arrived on (never trusted from the wire).
fn read_up_envelope<R: Read>(r: &mut R, site: usize) -> Result<Envelope<UpPacket>, String> {
    let mut kind = [0u8; 1];
    match read_exact_or_eof(r, &mut kind) {
        Ok(false) => return Ok(Envelope::Eof),
        Ok(true) => {}
        Err(e) => return Err(format!("up envelope: {e}")),
    }
    let pkt = match kind[0] {
        0 => UpPacket::Updates { site, payload: read_payload(r, "up updates envelope")? },
        1 => UpPacket::Control { site, payload: read_payload(r, "up control envelope")? },
        2 => UpPacket::RollRequest,
        3 => UpPacket::Done,
        4 => UpPacket::FlushAck { epoch: read_u64(r, "up flush-ack envelope")? },
        5 => {
            let msg = read_payload(r, "up fault envelope")?;
            let msg = String::from_utf8_lossy(&msg).into_owned();
            UpPacket::Fault { site, error: ClusterError::Transport(msg) }
        }
        6 => UpPacket::Crashed { site, partial: read_payload(r, "up crashed envelope")? },
        7 => {
            // Inject targets a site; the target is data, not a sender
            // identity, so it does travel in the envelope.
            let mut b = [0u8; 5];
            match read_exact_or_eof(r, &mut b) {
                Ok(true) => {}
                Ok(false) => return Err("up inject envelope: truncated".into()),
                Err(e) => return Err(format!("up inject envelope: {e}")),
            }
            let target = u32::from_le_bytes([b[1], b[2], b[3], b[4]]) as usize;
            UpPacket::Inject { site: target, kill: b[0] != 0 }
        }
        other => return Err(format!("up envelope: unknown kind {other}")),
    };
    Ok(Envelope::Packet(pkt))
}

/// Decode one down envelope from a site-side socket reader.
fn read_down_envelope<R: Read>(r: &mut R) -> Result<Envelope<DownPacket>, String> {
    let mut kind = [0u8; 1];
    match read_exact_or_eof(r, &mut kind) {
        Ok(false) => return Ok(Envelope::Eof),
        Ok(true) => {}
        Err(e) => return Err(format!("down envelope: {e}")),
    }
    let pkt = match kind[0] {
        0 => DownPacket::Data(read_payload(r, "down data envelope")?),
        1 => DownPacket::Flush(read_u64(r, "down flush envelope")?),
        2 => {
            let msg = read_payload(r, "down fault envelope")?;
            let msg = String::from_utf8_lossy(&msg).into_owned();
            DownPacket::Fault(ClusterError::Transport(msg))
        }
        3 => DownPacket::Kill,
        4 => DownPacket::Revive(read_payload(r, "down revive envelope")?),
        other => return Err(format!("down envelope: unknown kind {other}")),
    };
    Ok(Envelope::Packet(pkt))
}

#[cfg(unix)]
impl Transport for UdsTransport {
    type UpTx = UdsUpSender;
    type DownTx = UdsDownSender;

    fn connect(
        &self,
        k: usize,
        capacity: usize,
    ) -> Result<Fabric<Self::UpTx, Self::DownTx>, ClusterError> {
        assert!(k > 0, "need at least one site");
        let sock = |what: &str| {
            UnixStream::pair().map_err(|e| ClusterError::Transport(format!("{what}: {e}")))
        };
        // The merged inbox stays bounded: a pump blocked forwarding into a
        // full inbox stops reading its socket, the kernel buffer fills,
        // and the site's writes block — the same backpressure as the
        // in-process bounded channel, stretched over the socket hop.
        let (up_tx, up_rx) = bounded::<UpPacket>(capacity);
        let mut site_ups = Vec::with_capacity(k);
        let mut coord_downs = Vec::with_capacity(k);
        let mut site_downs = Vec::with_capacity(k);
        let mut pumps = Vec::with_capacity(2 * k);
        for site in 0..k {
            let (site_up, coord_up) = sock("up socket pair")?;
            let (coord_down, site_down) = sock("down socket pair")?;
            site_ups.push(UdsUpSender { stream: site_up });
            coord_downs.push(UdsDownSender { stream: coord_down });

            // Coordinator-side up pump: socket → merged inbox, stamping
            // the link's site id. Garbage becomes an in-band Fault; either
            // way the pump exits and drops its inbox sender.
            let tx = up_tx.clone();
            pumps.push(std::thread::spawn(move || {
                let mut r = BufReader::new(coord_up);
                loop {
                    match read_up_envelope(&mut r, site) {
                        Ok(Envelope::Eof) => break,
                        Ok(Envelope::Packet(pkt)) => {
                            if tx.send(pkt).is_err() {
                                break;
                            }
                        }
                        Err(msg) => {
                            let _ = tx.send(UpPacket::Fault {
                                site,
                                error: ClusterError::Transport(msg),
                            });
                            break;
                        }
                    }
                }
            }));

            // Site-side down pump: socket → unbounded channel. Unbounded
            // preserves the coordinator-never-blocks invariant across the
            // hop: the pump drains the socket unconditionally, so a
            // coordinator write can only wait for the pump to catch up,
            // never on the site's progress.
            let (tx, rx) = unbounded::<DownPacket>();
            site_downs.push(rx);
            pumps.push(std::thread::spawn(move || {
                let mut r = BufReader::new(site_down);
                loop {
                    match read_down_envelope(&mut r) {
                        Ok(Envelope::Eof) => break,
                        Ok(Envelope::Packet(pkt)) => {
                            if tx.send(pkt).is_err() {
                                break;
                            }
                        }
                        Err(msg) => {
                            let _ = tx.send(DownPacket::Fault(ClusterError::Transport(msg)));
                            break;
                        }
                    }
                }
            }));
        }
        Ok(Fabric { site_ups, driver_up: up_tx, coord_rx: up_rx, coord_downs, site_downs, pumps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_error_displays_context() {
        let e = ClusterError::Wire {
            context: "up packet",
            site: Some(3),
            source: WireError::Truncated,
        };
        assert!(e.to_string().contains("up packet"));
        assert!(e.to_string().contains("site 3"));
        let e = ClusterError::Protocol { context: "coordinator", detail: "done twice".into() };
        assert!(e.to_string().contains("done twice"));
        let e = ClusterError::WorkerPanicked { role: "site 3".into() };
        assert!(e.to_string().contains("worker panicked: site 3"));
    }

    #[test]
    fn channel_transport_round_trips_packets() {
        let fabric = ChannelTransport.connect(2, 8).unwrap();
        let Fabric { site_ups, driver_up, coord_rx, coord_downs, site_downs, pumps } = fabric;
        assert!(pumps.is_empty());
        site_ups[1].send(UpPacket::Done).unwrap();
        driver_up.send(UpPacket::RollRequest).unwrap();
        assert!(matches!(coord_rx.recv().unwrap(), UpPacket::Done));
        assert!(matches!(coord_rx.recv().unwrap(), UpPacket::RollRequest));
        coord_downs[0].send(DownPacket::Flush(7)).unwrap();
        assert!(matches!(site_downs[0].recv().unwrap(), DownPacket::Flush(7)));
    }

    #[cfg(unix)]
    #[test]
    fn uds_transport_round_trips_every_envelope_kind() {
        let fabric = UdsTransport.connect(2, 8).unwrap();
        let Fabric { mut site_ups, driver_up: _d, coord_rx, mut coord_downs, site_downs, pumps } =
            fabric;
        let payload = Bytes::from(vec![1u8, 2, 3]);
        site_ups[0].send(UpPacket::Updates { site: 0, payload: payload.clone() }).unwrap();
        site_ups[0].send(UpPacket::Control { site: 0, payload: payload.clone() }).unwrap();
        site_ups[1].send(UpPacket::FlushAck { epoch: 42 }).unwrap();
        site_ups[1].send(UpPacket::Done).unwrap();
        site_ups[0]
            .send(UpPacket::Fault {
                site: 0,
                error: ClusterError::Protocol { context: "x", detail: "y".into() },
            })
            .unwrap();
        site_ups[1].send(UpPacket::Crashed { site: 1, partial: payload.clone() }).unwrap();
        site_ups[1].send(UpPacket::Inject { site: 7, kill: true }).unwrap();
        site_ups[1].send(UpPacket::Inject { site: 3, kill: false }).unwrap();
        // The merged inbox interleaves links arbitrarily; collect and sort.
        let mut got = Vec::new();
        for _ in 0..8 {
            got.push(coord_rx.recv().unwrap());
        }
        let find = |pred: &dyn Fn(&UpPacket) -> bool| got.iter().any(pred);
        assert!(find(
            &|p| matches!(p, UpPacket::Updates { site: 0, payload: pl } if pl[..] == [1, 2, 3])
        ));
        assert!(find(&|p| matches!(p, UpPacket::Control { site: 0, .. })));
        assert!(find(&|p| matches!(p, UpPacket::FlushAck { epoch: 42 })));
        assert!(find(&|p| matches!(p, UpPacket::Done)));
        // Faults arrive as Transport (the description crossed as UTF-8),
        // stamped with the *link's* site id.
        assert!(find(
            &|p| matches!(p, UpPacket::Fault { site: 0, error: ClusterError::Transport(m) } if m.contains("y"))
        ));
        // Crashed is stamped with the *link's* id; Inject's site is data.
        assert!(find(
            &|p| matches!(p, UpPacket::Crashed { site: 1, partial } if partial[..] == [1, 2, 3])
        ));
        assert!(find(&|p| matches!(p, UpPacket::Inject { site: 7, kill: true })));
        assert!(find(&|p| matches!(p, UpPacket::Inject { site: 3, kill: false })));

        coord_downs[1].send(DownPacket::Data(payload.clone())).unwrap();
        coord_downs[1].send(DownPacket::Flush(9)).unwrap();
        coord_downs[1].send(DownPacket::Kill).unwrap();
        coord_downs[1].send(DownPacket::Revive(payload.clone())).unwrap();
        coord_downs[1].send(DownPacket::Fault(ClusterError::Transport("boom".into()))).unwrap();
        assert!(
            matches!(site_downs[1].recv().unwrap(), DownPacket::Data(pl) if pl[..] == [1, 2, 3])
        );
        assert!(matches!(site_downs[1].recv().unwrap(), DownPacket::Flush(9)));
        assert!(matches!(site_downs[1].recv().unwrap(), DownPacket::Kill));
        assert!(
            matches!(site_downs[1].recv().unwrap(), DownPacket::Revive(pl) if pl[..] == [1, 2, 3])
        );
        assert!(matches!(
            site_downs[1].recv().unwrap(),
            DownPacket::Fault(ClusterError::Transport(m)) if m.contains("boom")
        ));

        drop(site_ups);
        drop(coord_downs);
        drop(coord_rx);
        drop(site_downs);
        for p in pumps {
            p.join().unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn uds_garbage_becomes_fault_not_panic() {
        // Feed raw garbage into the coordinator-side up pump.
        let fabric = UdsTransport.connect(1, 8).unwrap();
        let Fabric { site_ups, driver_up, coord_rx, coord_downs, site_downs, pumps } = fabric;
        let mut raw = {
            // Reach the raw socket through the sender we were handed.
            let UdsUpSender { stream } = site_ups.into_iter().next().unwrap();
            stream
        };
        raw.write_all(&[99u8]).unwrap(); // unknown envelope kind
        match coord_rx.recv().unwrap() {
            UpPacket::Fault { site: 0, error: ClusterError::Transport(msg) } => {
                assert!(msg.contains("unknown kind 99"), "{msg}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
        drop(raw);
        drop(driver_up);
        drop(coord_downs);
        drop(coord_rx);
        drop(site_downs);
        for p in pumps {
            p.join().unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn uds_oversized_length_prefix_is_rejected() {
        let fabric = UdsTransport.connect(1, 8).unwrap();
        let Fabric { site_ups, driver_up, coord_rx, coord_downs, site_downs, pumps } = fabric;
        let mut raw = {
            let UdsUpSender { stream } = site_ups.into_iter().next().unwrap();
            stream
        };
        // Updates envelope claiming a ~4 GiB payload.
        raw.write_all(&[0u8]).unwrap();
        raw.write_all(&u32::MAX.to_le_bytes()).unwrap();
        match coord_rx.recv().unwrap() {
            UpPacket::Fault { error: ClusterError::Transport(msg), .. } => {
                assert!(msg.contains("exceeds cap"), "{msg}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
        drop(raw);
        drop(driver_up);
        drop(coord_downs);
        drop(coord_rx);
        drop(site_downs);
        for p in pumps {
            p.join().unwrap();
        }
    }

    #[cfg(unix)]
    #[test]
    fn uds_truncated_envelope_is_a_fault_on_site_side_too() {
        let fabric = UdsTransport.connect(1, 8).unwrap();
        let Fabric { site_ups, driver_up, coord_rx, coord_downs, site_downs, pumps } = fabric;
        let mut raw = {
            let UdsDownSender { stream } = coord_downs.into_iter().next().unwrap();
            stream
        };
        raw.write_all(&[0u8, 9, 0]).unwrap(); // Data envelope, cut mid-length
        drop(raw); // EOF mid-envelope => truncation fault
        match site_downs[0].recv().unwrap() {
            DownPacket::Fault(ClusterError::Transport(msg)) => {
                assert!(msg.contains("truncated"), "{msg}");
            }
            other => panic!("expected fault, got {other:?}"),
        }
        drop(site_ups);
        drop(driver_up);
        drop(coord_rx);
        drop(site_downs);
        for p in pumps {
            p.join().unwrap();
        }
    }
}
