//! Communication metrics.
//!
//! The unit of accounting follows the paper (§VI-A): one *message* is one
//! counter update. A coordinator broadcast to `k` sites counts `k` messages.
//! The cluster runtime additionally reports *packets*: physical channel
//! sends after the paper's bundling optimization ("we merge the resulting
//! updates for all counters into a single message").

use serde::{Deserialize, Serialize};

/// Counter-update message statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageStats {
    /// Site → coordinator counter updates.
    pub up_messages: u64,
    /// Coordinator → site counter updates (each broadcast adds `k`).
    pub down_messages: u64,
    /// Number of broadcasts issued.
    pub broadcasts: u64,
    /// Physical packets sent over channels (bundled updates); only the
    /// cluster runtime fills this in.
    pub packets: u64,
    /// Wire bytes under the frame encoding of `dsbn_counters::wire`
    /// (broadcast frames counted once per receiving site).
    pub bytes: u64,
}

impl MessageStats {
    /// Total messages in the paper's accounting.
    pub fn total(&self) -> u64 {
        self.up_messages + self.down_messages
    }

    /// Merge another tally into this one.
    pub fn merge(&mut self, other: &MessageStats) {
        self.up_messages += other.up_messages;
        self.down_messages += other.down_messages;
        self.broadcasts += other.broadcasts;
        self.packets += other.packets;
        self.bytes += other.bytes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_merge() {
        let mut a = MessageStats {
            up_messages: 10,
            down_messages: 6,
            broadcasts: 2,
            packets: 3,
            bytes: 100,
        };
        assert_eq!(a.total(), 16);
        let b =
            MessageStats { up_messages: 1, down_messages: 2, broadcasts: 1, packets: 1, bytes: 17 };
        a.merge(&b);
        assert_eq!(a.total(), 19);
        assert_eq!(a.broadcasts, 3);
        assert_eq!(a.packets, 4);
        assert_eq!(a.bytes, 117);
    }
}
