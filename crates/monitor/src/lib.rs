//! # dsbn-monitor — continuous distributed monitoring runtimes
//!
//! The continuous distributed monitoring model of the paper (§I, \[12\],
//! \[20\]):  `k` sites each observe a local stream; a coordinator, which
//! receives no input of its own, cooperates with the sites to maintain
//! global statistics and answer queries, with communication as the cost
//! metric.
//!
//! Two runtimes execute the counter protocols of `dsbn-counters`:
//!
//! - [`sim::CounterArray`] — deterministic single-threaded simulation with
//!   instantaneous delivery; drives the paper's simulated experiments.
//! - [`cluster::run_cluster`] — a live runtime with one OS thread per site
//!   and a coordinator thread over a pluggable [`transport::Transport`]
//!   (in-process crossbeam channels by default, Unix-domain sockets via
//!   [`transport::UdsTransport`]; the stand-in for the paper's EC2
//!   cluster; see DESIGN.md §3/§6), with chunked cross-event ingest
//!   (`EventChunk` slabs on the event channels, multi-event wire packets
//!   on the up channel, flush-before-control coalescing), the
//!   `dsbn_counters::wire` frame encoding on every channel send, an
//!   optionally sharded coordinator ([`cluster::CoordMode`] /
//!   [`shard::ShardPlan`]), and a deterministic quiescence handshake at
//!   shutdown (no wall-clock drain timeouts). Decode failures surface as
//!   typed [`transport::ClusterError`]s, never panics.
//!
//! Plus [`partition`] (uniform / round-robin / Zipf event routing),
//! [`metrics::MessageStats`] (paper-convention message accounting), and
//! [`snapshot`] — epoch-consistent [`snapshot::CounterSnapshot`]s the
//! coordinator mints at settlements and publishes through the RCU
//! [`snapshot::SnapshotHub`], so query threads read a Definition-2-
//! consistent state concurrently with ingest (DESIGN.md §7).

pub mod cluster;
pub mod metrics;
pub mod partition;
pub mod shard;
pub mod sim;
pub mod snapshot;
pub mod transport;

pub use cluster::{
    run_cluster, run_cluster_on, ChurnReport, ClusterConfig, ClusterReport, CoordMode, SiteFault,
};
pub use dsbn_datagen::{chunk_events, EventChunk};
pub use metrics::MessageStats;
pub use partition::{Partitioner, SiteAssigner};
pub use shard::ShardPlan;
pub use sim::CounterArray;
pub use snapshot::{CounterSnapshot, SnapshotHub};
#[cfg(unix)]
pub use transport::UdsTransport;
pub use transport::{
    ChannelTransport, ClusterError, DownPacket, DownSender, Fabric, LinkClosed, Transport,
    UpPacket, UpSender,
};
