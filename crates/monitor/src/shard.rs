//! Contiguous counter-range sharding for the multi-worker coordinator.
//!
//! The HYZ protocol (and the exact/deterministic ones) is per-counter
//! independent: coordinator state for counter `c` is touched only by
//! traffic for `c`. Coordinator state therefore shards cleanly by counter
//! range — worker `w` owns the contiguous ids `starts[w] .. starts[w+1]`
//! and applies exactly the updates in its range, with no cross-shard
//! synchronization and no change to the estimator argument (ISSUE 6 /
//! DESIGN.md §6).
//!
//! A [`ShardPlan`] is just the sorted list of range starts. Plans may
//! contain *empty* shards (more workers than counters, or a caller-supplied
//! split with duplicate cut points) — an empty shard's worker simply never
//! applies anything.

/// A partition of counter ids `0..n_counters` into contiguous ranges, one
/// per coordinator worker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// Range starts; shard `w` owns `starts[w] .. starts[w+1]` (with
    /// `starts[len]` implicitly `n_counters`). Monotone non-decreasing,
    /// `starts[0] == 0`.
    starts: Vec<u32>,
    n_counters: u32,
}

impl ShardPlan {
    /// Even split of `n_counters` ids into `workers` ranges (the default
    /// when the caller supplies no layout-aligned cut points). When
    /// `workers > n_counters` the trailing shards are empty.
    pub fn even(n_counters: usize, workers: usize) -> Self {
        assert!(workers >= 1, "need at least one worker");
        assert!(n_counters <= u32::MAX as usize, "counter space exceeds u32");
        let starts = (0..workers).map(|w| (w * n_counters / workers) as u32).collect();
        ShardPlan { starts, n_counters: n_counters as u32 }
    }

    /// A plan from explicit range starts (e.g. aligned to a
    /// `CounterLayout`'s per-variable blocks). Rejects plans that are not
    /// monotone, do not start at 0, or overrun `n_counters`.
    pub fn from_starts(starts: Vec<u32>, n_counters: usize) -> Result<Self, String> {
        if starts.is_empty() {
            return Err("shard plan needs at least one range".into());
        }
        if starts[0] != 0 {
            return Err(format!("shard plan must start at counter 0, got {}", starts[0]));
        }
        if starts.windows(2).any(|w| w[0] > w[1]) {
            return Err("shard starts must be monotone non-decreasing".into());
        }
        if let Some(&last) = starts.last() {
            if last as usize > n_counters {
                return Err(format!("shard start {last} exceeds counter count {n_counters}"));
            }
        }
        Ok(ShardPlan { starts, n_counters: n_counters as u32 })
    }

    /// Number of shards / workers.
    pub fn workers(&self) -> usize {
        self.starts.len()
    }

    /// Total counters partitioned.
    pub fn n_counters(&self) -> usize {
        self.n_counters as usize
    }

    /// The id range shard `w` owns (possibly empty).
    pub fn range(&self, w: usize) -> std::ops::Range<usize> {
        let start = self.starts[w] as usize;
        let end = self.starts.get(w + 1).map_or(self.n_counters as usize, |&s| s as usize);
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_split_covers_all_counters_disjointly() {
        for (n, w) in [(27usize, 4usize), (100, 7), (8, 8), (1, 1), (1000, 16)] {
            let plan = ShardPlan::even(n, w);
            assert_eq!(plan.workers(), w);
            let mut next = 0usize;
            for s in 0..w {
                let r = plan.range(s);
                assert_eq!(r.start, next, "n={n} w={w} shard {s}");
                assert!(r.end >= r.start);
                next = r.end;
            }
            assert_eq!(next, n, "ranges must cover 0..{n}");
        }
    }

    #[test]
    fn more_workers_than_counters_leaves_empty_shards() {
        let plan = ShardPlan::even(3, 8);
        let sizes: Vec<usize> = (0..8).map(|w| plan.range(w).len()).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
        assert!(sizes.iter().filter(|&&s| s == 0).count() >= 5);
        // Every id is owned by exactly one shard.
        for c in 0..3 {
            assert_eq!((0..8).filter(|&w| plan.range(w).contains(&c)).count(), 1);
        }
    }

    #[test]
    fn single_worker_owns_everything() {
        let plan = ShardPlan::even(27, 1);
        assert_eq!(plan.range(0), 0..27);
    }

    #[test]
    fn explicit_starts_validate() {
        let plan = ShardPlan::from_starts(vec![0, 10, 10, 20], 27).unwrap();
        assert_eq!(plan.workers(), 4);
        assert_eq!(plan.range(0), 0..10);
        assert_eq!(plan.range(1), 10..10); // empty shard is fine
        assert_eq!(plan.range(2), 10..20);
        assert_eq!(plan.range(3), 20..27);

        assert!(ShardPlan::from_starts(vec![], 5).is_err());
        assert!(ShardPlan::from_starts(vec![1, 2], 5).is_err(), "must start at 0");
        assert!(ShardPlan::from_starts(vec![0, 3, 2], 5).is_err(), "not monotone");
        assert!(ShardPlan::from_starts(vec![0, 9], 5).is_err(), "start beyond n");
    }
}
