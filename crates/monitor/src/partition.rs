//! Event-to-site partitioning strategies.
//!
//! The paper routes each training event "to a site chosen uniformly at
//! random" (§VI-A). [`Partitioner::Zipf`], [`Partitioner::Skewed`], and
//! [`Partitioner::Bursty`] implement the skewed-arrival setting the paper
//! lists as future work (1) — the latter two via the rate models in
//! [`dsbn_datagen::arrival`] — and round-robin gives a deterministic
//! balanced baseline.

use dsbn_datagen::{BurstClock, SiteRates};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A strategy assigning stream events to sites `0..k`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Partitioner {
    /// Uniform random site per event (the paper's setting).
    UniformRandom,
    /// Deterministic rotation.
    RoundRobin,
    /// Zipf-skewed assignment: site `i` receives traffic proportional to
    /// `1/(i+1)^theta`. `theta = 0` recovers uniform.
    Zipf { theta: f64 },
    /// One hot site, one near-idle site ([`SiteRates::skewed`]): site `0`
    /// receives fraction `hot` of the stream, site `k - 1` fraction
    /// `cold`, and the middle sites split the rest evenly. The churn
    /// suite's skew regime: crashing the hot site wipes the largest
    /// possible unsettled state, crashing the near-idle one the smallest.
    Skewed { hot: f64, cold: f64 },
    /// Bursty arrivals ([`BurstClock`]): for the first `burst` events of
    /// every `period`-event slice all traffic hammers a single site
    /// (rotating each period, so every site takes a turn); the rest of
    /// the period is routed uniformly.
    Bursty { period: u64, burst: u64 },
}

/// Stateful sampler for a [`Partitioner`] over `k` sites.
#[derive(Debug, Clone)]
pub struct SiteAssigner {
    k: usize,
    next_rr: usize,
    /// Cumulative distribution for Zipf/Skewed (empty otherwise).
    cdf: Vec<f64>,
    /// Burst phase clock for Bursty (`None` otherwise).
    clock: Option<BurstClock>,
    kind: Partitioner,
}

impl SiteAssigner {
    /// Build an assigner for `k` sites.
    pub fn new(kind: Partitioner, k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        let cdf = match &kind {
            Partitioner::Zipf { theta } => {
                assert!(*theta >= 0.0, "zipf theta must be non-negative");
                let mut weights: Vec<f64> =
                    (0..k).map(|i| 1.0 / ((i + 1) as f64).powf(*theta)).collect();
                let sum: f64 = weights.iter().sum();
                let mut acc = 0.0;
                for w in weights.iter_mut() {
                    acc += *w / sum;
                    *w = acc;
                }
                if let Some(last) = weights.last_mut() {
                    *last = 1.0;
                }
                weights
            }
            Partitioner::Skewed { hot, cold } => SiteRates::skewed(k, *hot, *cold).cdf(),
            _ => Vec::new(),
        };
        let clock = match &kind {
            Partitioner::Bursty { period, burst } => Some(BurstClock::new(*period, *burst)),
            _ => None,
        };
        SiteAssigner { k, next_rr: 0, cdf, clock, kind }
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Assign the next event to a site.
    pub fn assign<R: Rng + ?Sized>(&mut self, rng: &mut R) -> usize {
        match self.kind {
            Partitioner::UniformRandom => rng.gen_range(0..self.k),
            Partitioner::RoundRobin => {
                let s = self.next_rr;
                self.next_rr = (self.next_rr + 1) % self.k;
                s
            }
            Partitioner::Zipf { .. } | Partitioner::Skewed { .. } => {
                let u: f64 = rng.gen();
                self.cdf.partition_point(|&c| c < u).min(self.k - 1)
            }
            Partitioner::Bursty { .. } => {
                match self.clock.as_mut().expect("bursty assigner has a clock").tick() {
                    Some(burst_index) => (burst_index % self.k as u64) as usize,
                    None => rng.gen_range(0..self.k),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn round_robin_cycles() {
        let mut a = SiteAssigner::new(Partitioner::RoundRobin, 3);
        let mut rng = StdRng::seed_from_u64(0);
        let seq: Vec<usize> = (0..7).map(|_| a.assign(&mut rng)).collect();
        assert_eq!(seq, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn uniform_is_balanced() {
        let mut a = SiteAssigner::new(Partitioner::UniformRandom, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[a.assign(&mut rng)] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.25).abs() < 0.02, "fraction {frac}");
        }
    }

    #[test]
    fn zipf_skews_to_first_sites() {
        let mut a = SiteAssigner::new(Partitioner::Zipf { theta: 1.5 }, 5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[a.assign(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] && counts[1] > counts[2]);
        // w ~ 1/i^1.5: site 0 gets > 50%.
        assert!(counts[0] as f64 / 50_000.0 > 0.5);
    }

    #[test]
    fn zipf_theta_zero_is_uniform() {
        let mut a = SiteAssigner::new(Partitioner::Zipf { theta: 0.0 }, 3);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[a.assign(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / 30_000.0 - 1.0 / 3.0).abs() < 0.02);
        }
    }

    #[test]
    fn skewed_routes_hot_and_near_idle_shares() {
        let mut a = SiteAssigner::new(Partitioner::Skewed { hot: 0.7, cold: 0.01 }, 4);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 4];
        let n = 50_000;
        for _ in 0..n {
            counts[a.assign(&mut rng)] += 1;
        }
        let hot = counts[0] as f64 / n as f64;
        let cold = counts[3] as f64 / n as f64;
        assert!((hot - 0.7).abs() < 0.02, "hot fraction {hot}");
        assert!(cold < 0.02, "near-idle fraction {cold}");
        // The middle sites split the remainder evenly.
        let mid = (0.29 / 2.0) * n as f64;
        for &c in &counts[1..3] {
            assert!((c as f64 - mid).abs() / (n as f64) < 0.02, "middle count {c}");
        }
    }

    #[test]
    fn bursty_hammers_one_rotating_site_per_period() {
        // period 10, burst 10: *every* event is burst traffic, so routing
        // is fully deterministic — 10 events to site 0, 10 to site 1, ...
        let mut a = SiteAssigner::new(Partitioner::Bursty { period: 10, burst: 10 }, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let seq: Vec<usize> = (0..35).map(|_| a.assign(&mut rng)).collect();
        for (i, &s) in seq.iter().enumerate() {
            assert_eq!(s, (i / 10) % 3, "event {i}");
        }
    }

    #[test]
    fn bursty_quiet_phase_is_uniform() {
        // burst 0: never bursts, so the distribution must look uniform.
        let mut a = SiteAssigner::new(Partitioner::Bursty { period: 8, burst: 0 }, 4);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        let n = 40_000;
        for _ in 0..n {
            counts[a.assign(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 / n as f64 - 0.25).abs() < 0.02);
        }
    }

    #[test]
    fn assignments_always_in_range() {
        for kind in [
            Partitioner::UniformRandom,
            Partitioner::RoundRobin,
            Partitioner::Zipf { theta: 2.0 },
            Partitioner::Skewed { hot: 0.8, cold: 0.001 },
            Partitioner::Bursty { period: 5, burst: 2 },
        ] {
            let mut a = SiteAssigner::new(kind, 7);
            let mut rng = StdRng::seed_from_u64(4);
            for _ in 0..1000 {
                assert!(a.assign(&mut rng) < 7);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one site")]
    fn zero_sites_rejected() {
        let _ = SiteAssigner::new(Partitioner::UniformRandom, 0);
    }
}
