//! Live threaded cluster runtime.
//!
//! Stands in for the paper's AWS EC2 deployment (§VI-A): one OS thread per
//! site plus a coordinator thread, communicating over crossbeam channels
//! with genuinely asynchronous, possibly out-of-order message delivery —
//! exactly the conditions the round-tagged counter protocols are built for.
//! See DESIGN.md for the thread/channel topology and shutdown protocol.
//!
//! Ingest is *chunked end to end* (DESIGN.md §2–§3): the driver re-chunks
//! the incoming [`EventChunk`] stream into per-site chunks of
//! [`ClusterConfig::chunk`] events, so one channel send carries a whole
//! slab of events instead of one heap-allocated `Vec` each; a site
//! accumulates the wire encodings of successive events' updates
//! ([`dsbn_counters::wire::encode_event`] sections) into one reused buffer
//! and flushes it as a single multi-event packet on a size /
//! chunk-boundary policy; the coordinator decodes each packet in one
//! allocation-free pass ([`dsbn_counters::wire::visit_packet`]).
//! Control traffic (sync replies, flush acks, epoch settlements) always
//! *forces a flush first*, which keeps the FIFO attribution and quiescence
//! arguments of DESIGN.md §3/§5 intact. `chunk = 1` — the default — is the
//! per-event pipeline as a degenerate case.
//!
//! [`MessageStats::bytes`] measures bytes that actually crossed a channel;
//! `MessageStats::packets` counts the physical bundled sends (so chunking
//! lowers `packets` but never `bytes` or the paper's per-update
//! `up/down_messages` accounting).
//!
//! A run ends with a deterministic *quiescence handshake* (DESIGN.md §3.2)
//! instead of a wall-clock drain: after every site has exhausted its
//! stream, the coordinator repeatedly issues `Flush(epoch)` barriers down
//! the (FIFO) site channels and waits for all `k` acks; an epoch during
//! which the coordinator issued no new broadcast proves that no reply can
//! still be in flight, so shutdown never races in-flight sync traffic and
//! never depends on timing.
//!
//! Used by `exp_fig7_8` (training runtime and throughput vs. number of
//! sites) and by `dsbn_core`'s `run_cluster_tracker`, which layers the
//! paper's full UPDATE/QUERY tracker logic on top of this runtime.

use crate::metrics::MessageStats;
use crate::partition::{Partitioner, SiteAssigner};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use dsbn_counters::epoch::EpochRoller;
use dsbn_counters::msg::UpMsg;
use dsbn_counters::protocol::CounterProtocol;
use dsbn_counters::wire::{encode, encode_event, visit_packet, Frame, WireItem};
use dsbn_datagen::EventChunk;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;
use std::time::{Duration, Instant};

/// Cluster runtime configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of sites (coordinator excluded), `k`.
    pub k: usize,
    /// Capacity of the event and up-packet channels (backpressure). Event
    /// channels carry chunks, so the in-flight event bound is
    /// `channel_capacity * chunk`.
    pub channel_capacity: usize,
    /// Base RNG seed (per-site RNGs derive from it).
    pub seed: u64,
    /// How events are routed to sites.
    pub partitioner: Partitioner,
    /// Events per driver → site chunk (cross-event ingest batching). `1` —
    /// the default — is the per-event pipeline as a degenerate case: every
    /// event travels as its own chunk and flushes its own packet.
    pub chunk: usize,
    /// Flush a site's accumulated update packet once it reaches this many
    /// bytes, even mid-chunk (bounds buffering; the packet also always
    /// flushes at a chunk boundary and before any control frame).
    pub flush_bytes: usize,
    /// Epoch-ring decay (DESIGN.md §5): close an epoch after every this
    /// many streamed events. `None` — the default, and the paper's setting
    /// — runs the whole stream as one open epoch; every pre-epoch code
    /// path is exactly this degenerate case.
    pub epoch_boundary: Option<u64>,
    /// Closed epochs retained at the coordinator (ring capacity `K`).
    /// Ignored unless `epoch_boundary` is set.
    pub epoch_ring: usize,
}

impl ClusterConfig {
    /// Paper defaults: uniform random routing, per-event chunks, no epoch
    /// rolling.
    pub fn new(k: usize, seed: u64) -> Self {
        ClusterConfig {
            k,
            channel_capacity: 4096,
            seed,
            partitioner: Partitioner::UniformRandom,
            chunk: 1,
            flush_bytes: 64 * 1024,
            epoch_boundary: None,
            epoch_ring: 8,
        }
    }

    /// Batch `chunk` events per driver → site send (and per site packet
    /// flush).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be >= 1");
        self.chunk = chunk;
        self
    }

    /// Enable epoch rolling every `boundary` events with a `ring`-deep
    /// closed-epoch ring.
    pub fn with_epochs(mut self, boundary: u64, ring: usize) -> Self {
        assert!(boundary >= 1, "epoch boundary must be >= 1");
        assert!(ring >= 1, "epoch ring must be >= 1");
        self.epoch_boundary = Some(boundary);
        self.epoch_ring = ring;
        self
    }
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Message statistics (paper accounting + packets + wire bytes).
    pub stats: MessageStats,
    /// Wall-clock time from the first to the last update packet processed
    /// by the coordinator (the paper's runtime metric, Fig. 7).
    pub coordinator_busy: Duration,
    /// Wall-clock time of the whole run, including thread setup/teardown.
    pub wall_time: Duration,
    /// Number of events streamed.
    pub events: u64,
    /// Flush epochs the quiescence handshake needed (≥ 1; more than one
    /// means a broadcast cascade was still settling at end-of-stream).
    pub flush_epochs: u64,
    /// Final coordinator estimates, one per counter. With epoch rolling
    /// these cover only the *open* (last, partial) epoch.
    pub estimates: Vec<f64>,
    /// Exact per-counter totals over the whole stream, reconstructed from
    /// site states at shutdown (an oracle for accuracy metrics; not
    /// visible to a real coordinator). Cumulative across all epochs.
    pub exact_totals: Vec<u64>,
    /// Stream epochs closed by `EpochRoll` (0 when rolling is disabled).
    pub epochs: u64,
    /// Ring of closed-epoch coordinator estimates, oldest first, at most
    /// `ClusterConfig::epoch_ring` entries; each inner vector has one
    /// estimate per counter, frozen when the epoch's roll completed.
    pub epoch_estimates: Vec<Vec<f64>>,
    /// Exact per-epoch totals for the same retained epochs (oracle,
    /// reconstructed from per-site snapshots taken at each site's roll) —
    /// same shape as `epoch_estimates`.
    pub epoch_exact_totals: Vec<Vec<u64>>,
    /// Exact totals of the open epoch only (oracle; equals `exact_totals`
    /// when rolling is disabled).
    pub open_epoch_exact_totals: Vec<u64>,
}

impl ClusterReport {
    /// Events per second relative to coordinator busy time (Fig. 8).
    ///
    /// Returns `f64::NAN` when the busy window is below the clock's
    /// resolution (e.g. an empty or near-instant run): reporting `0.0`
    /// events/sec for a run that processed events would be a lie.
    pub fn throughput(&self) -> f64 {
        let secs = self.coordinator_busy.as_secs_f64();
        if secs <= 0.0 {
            return f64::NAN;
        }
        self.events as f64 / secs
    }
}

/// Site → coordinator channel traffic.
enum UpPacket {
    /// A multi-event packet: the concatenated wire encodings
    /// (`encode_event` sections) of every update a site produced since its
    /// last flush — event updates and broadcast replies alike.
    Updates { site: usize, payload: Bytes },
    /// Wire-encoded control traffic (settlement + `Frame::EpochAck`):
    /// accounted in bytes but not in packet/message tallies.
    Control { site: usize, payload: Bytes },
    /// The driver crossed an epoch boundary: initiate an epoch roll. Sent
    /// by the stream driver, which is the only party that sees the global
    /// event count.
    RollRequest,
    /// The site has exhausted its event stream.
    Done,
    /// The site has processed every down packet sent before `Flush(epoch)`
    /// and forwarded all replies they produced (quiescence handshake).
    FlushAck { epoch: u64 },
}

/// Coordinator → site channel traffic.
enum DownPacket {
    /// Wire-encoded `Frame::Down` broadcast.
    Data(Bytes),
    /// Quiescence barrier: ack after everything before it is handled.
    Flush(u64),
}

/// Per-site-thread state: the protocol site states plus the chunked send
/// path — a reused packet buffer that accumulates `encode_event` sections
/// and flushes on size, at chunk boundaries, and (always) before any
/// control frame leaves the site. The flush-before-control rule is what
/// keeps the per-site FIFO attribution arguments (quiescence, epoch
/// settlement — DESIGN.md §3.2/§5.1) valid under coalescing: no update can
/// linger in a local buffer while an ack that must follow it goes out.
struct SiteWorker<'a, P: CounterProtocol, F> {
    site_id: usize,
    protocols: &'a [P],
    map_event: &'a F,
    up_tx: Sender<UpPacket>,
    flush_bytes: usize,
    states: Vec<P::Site>,
    /// Exact per-epoch snapshots taken at each roll (oracle).
    snaps: Vec<Vec<u64>>,
    rng: SmallRng,
    /// Scratch: the current event's counter ids.
    ids: Vec<u32>,
    /// Scratch: the current event's (or broadcast's) pending updates.
    batch: Vec<(u32, UpMsg)>,
    /// The accumulating multi-event packet (reused across flushes).
    pkt: BytesMut,
}

impl<P, F> SiteWorker<'_, P, F>
where
    P: CounterProtocol,
    F: Fn(&[u32], &mut Vec<u32>),
{
    /// Send the accumulated packet, if any. Returns `false` when the up
    /// channel is gone (the run is over).
    fn flush(&mut self) -> bool {
        if self.pkt.is_empty() {
            return true;
        }
        let payload = Bytes::copy_from_slice(&self.pkt);
        self.pkt.clear();
        self.up_tx.send(UpPacket::Updates { site: self.site_id, payload }).is_ok()
    }

    /// Run UPDATE for every event in a chunk, coalescing the events' wire
    /// encodings into the packet buffer; flush on the size threshold, at
    /// the chunk boundary, and immediately after any event that produced a
    /// non-increment message. Reports (and cumulative/threshold messages)
    /// drive the protocols' round feedback — a buffered HYZ report delays
    /// the sync/`NewRound` cycle, leaving sites sampling at a stale higher
    /// probability and *inflating* the paper's logical message counts — so
    /// they ship promptly, like the other control-ish traffic (the
    /// flush-before-control rule). Bare increments, the exact-maintenance
    /// hot path, carry no feedback and keep full amortization.
    fn handle_chunk(&mut self, chunk: &EventChunk) -> bool {
        for ev in chunk.iter() {
            (self.map_event)(ev, &mut self.ids);
            for &cid in &self.ids {
                self.protocols[cid as usize].increment_batch(
                    &mut self.states[cid as usize],
                    cid,
                    1,
                    &mut self.batch,
                    &mut self.rng,
                );
            }
            let urgent = self.batch.iter().any(|(_, m)| !matches!(m, UpMsg::Increment));
            encode_event(&mut self.batch, &mut self.pkt);
            if (urgent || self.pkt.len() >= self.flush_bytes) && !self.flush() {
                return false;
            }
        }
        self.flush()
    }

    /// Close an epoch at this site: flush everything produced before the
    /// roll (buffered updates and replies — per-site FIFO then guarantees
    /// the coordinator sees all of the closing epoch's traffic before the
    /// ack), snapshot the exact per-epoch deltas (states were fresh at the
    /// previous roll, so the local count *is* the delta), reset, and send
    /// the settlement control packet: one `Cumulative` frame per nonzero
    /// counter — the epoch's terminal sync — followed by the ack.
    fn roll_epoch(&mut self, epoch: u32) -> bool {
        if !self.batch.is_empty() {
            encode_event(&mut self.batch, &mut self.pkt);
        }
        if !self.flush() {
            return false;
        }
        let snap: Vec<u64> = self
            .states
            .iter()
            .enumerate()
            .map(|(c, st)| self.protocols[c].site_local_count(st))
            .collect();
        for (c, st) in self.states.iter_mut().enumerate() {
            *st = self.protocols[c].new_site();
        }
        // The packet buffer is empty after the flush; borrow it for the
        // control packet.
        for (c, &value) in snap.iter().enumerate() {
            if value > 0 {
                encode(
                    &Frame::Up { counter: c as u32, msg: UpMsg::Cumulative { value } },
                    &mut self.pkt,
                );
            }
        }
        encode(&Frame::EpochAck { epoch }, &mut self.pkt);
        self.snaps.push(snap);
        let payload = Bytes::copy_from_slice(&self.pkt);
        self.pkt.clear();
        self.up_tx.send(UpPacket::Control { site: self.site_id, payload }).is_ok()
    }

    /// Handle one down packet; returns `false` when the up channel is gone.
    fn handle_down(&mut self, pkt: DownPacket) -> bool {
        match pkt {
            DownPacket::Data(payload) => {
                let mut ok = true;
                visit_packet(payload, |item| {
                    if !ok {
                        return;
                    }
                    match item {
                        WireItem::Down { counter, msg } => {
                            if let Some(reply) = self.protocols[counter as usize].handle_down(
                                &mut self.states[counter as usize],
                                msg,
                                &mut self.rng,
                            ) {
                                self.batch.push((counter, reply));
                            }
                        }
                        WireItem::EpochRoll { epoch } => ok = self.roll_epoch(epoch),
                        WireItem::Up { .. } | WireItem::EpochAck { .. } => {
                            unreachable!("up frame on a down channel")
                        }
                    }
                })
                .expect("corrupt down packet");
                if !ok {
                    return false;
                }
                if self.batch.is_empty() {
                    return true;
                }
                // Sync replies are time-critical control traffic: encode
                // them behind whatever updates are already buffered and
                // force the flush.
                encode_event(&mut self.batch, &mut self.pkt);
                self.flush()
            }
            // The down channel is FIFO, so by the time the barrier is read
            // every earlier broadcast has been handled and its replies
            // sent — the flush below pushes anything still buffered onto
            // the (per-site FIFO) up channel ahead of this ack.
            DownPacket::Flush(epoch) => {
                if !self.flush() {
                    return false;
                }
                self.up_tx.send(UpPacket::FlushAck { epoch }).is_ok()
            }
        }
    }
}

/// Coordinator-side run state: per-counter protocol coordinators for the
/// open epoch, the epoch-roll machinery (DESIGN.md §5), the closed-epoch
/// estimate ring, and the accounting. A run without epoch rolling is the
/// degenerate case — the roller never fires and only `coords` is ever
/// touched.
struct Coordinator<'a, P: CounterProtocol> {
    protocols: &'a [P],
    k: usize,
    ring_cap: usize,
    down_txs: Vec<Sender<DownPacket>>,
    /// Open-epoch coordinator state, one per counter.
    coords: Vec<P::Coord>,
    roller: EpochRoller,
    /// Per-counter settlement accumulator for the closing epoch: each
    /// site's ack carries its exact per-epoch counts (the terminal sync
    /// that closes the epoch, mirroring how HYZ anchors every round).
    settle: Vec<u64>,
    /// Settled closed-epoch counts, oldest first, capped at `ring_cap`.
    closed_estimates: VecDeque<Vec<f64>>,
    stats: MessageStats,
    /// Broadcasts issued since the last flush barrier went out; a
    /// completed flush epoch with zero of these proves quiescence.
    downs_since_flush: u64,
}

impl<'a, P: CounterProtocol> Coordinator<'a, P> {
    fn new(
        protocols: &'a [P],
        k: usize,
        ring_cap: usize,
        down_txs: Vec<Sender<DownPacket>>,
    ) -> Self {
        Coordinator {
            protocols,
            k,
            ring_cap,
            down_txs,
            coords: protocols.iter().map(|p| p.new_coord(k)).collect(),
            roller: EpochRoller::new(k),
            settle: vec![0; protocols.len()],
            closed_estimates: VecDeque::new(),
            stats: MessageStats::default(),
            downs_since_flush: 0,
        }
    }

    /// Apply one decoded counter update from `site`. Updates from a site
    /// that has not yet acked the in-flight roll were sent before it
    /// rolled (FIFO channels make this attribution exact) and belong to
    /// the *closing* epoch: they are counted but dropped, because the
    /// site's settlement — its exact per-epoch counts, carried by the ack
    /// that follows them — supersedes anything they could contribute. A
    /// closing epoch cannot keep running its protocol: a sync is a
    /// global barrier, and sites already in the new epoch would answer a
    /// cross-epoch sync as stale, wedging it forever.
    fn apply_update(&mut self, site: usize, cid: u32, up: UpMsg) {
        self.stats.up_messages += 1;
        let c = cid as usize;
        if self.roller.is_stale(site) {
            return;
        }
        if let Some(down) = self.protocols[c].handle_up(&mut self.coords[c], site, up) {
            self.stats.broadcasts += 1;
            self.stats.down_messages += self.k as u64;
            self.downs_since_flush += 1;
            let mut buf = BytesMut::new();
            encode(&Frame::Down { counter: cid, msg: down }, &mut buf);
            self.send_down_all(buf.freeze());
        }
    }

    /// Send an encoded down payload to every site, accounting its bytes
    /// once per receiving site.
    fn send_down_all(&mut self, payload: Bytes) {
        self.stats.bytes += (self.k * payload.len()) as u64;
        for tx in &self.down_txs {
            let _ = tx.send(DownPacket::Data(payload.clone()));
        }
    }

    /// One multi-event update packet from `site`, decoded in a single
    /// allocation-free pass over the buffer.
    fn handle_updates(&mut self, site: usize, payload: Bytes) {
        self.stats.packets += 1;
        self.stats.bytes += payload.len() as u64;
        visit_packet(payload, |item| match item {
            WireItem::Up { counter, msg } => self.apply_update(site, counter, msg),
            WireItem::Down { .. } | WireItem::EpochRoll { .. } => {
                unreachable!("down frame on the up channel")
            }
            WireItem::EpochAck { .. } => unreachable!("epoch ack outside a control packet"),
        })
        .expect("corrupt up packet");
    }

    /// One control packet from `site`: the site's settlement — exact
    /// per-epoch counts as `Cumulative` frames for its nonzero counters —
    /// followed by its `Frame::EpochAck`. Bytes count, packet/message
    /// tallies do not (lifecycle traffic, DESIGN.md §4).
    fn handle_control(&mut self, site: usize, payload: Bytes) {
        self.stats.bytes += payload.len() as u64;
        visit_packet(payload, |item| match item {
            WireItem::Up { counter, msg: UpMsg::Cumulative { value } } => {
                self.settle[counter as usize] += value;
            }
            WireItem::EpochAck { epoch } => {
                if self.roller.ack(site, epoch) {
                    self.close_epoch();
                }
            }
            other => unreachable!("non-control frame {other:?} in a control packet"),
        })
        .expect("corrupt control packet");
    }

    /// The driver crossed an epoch boundary: start a roll now, or queue it
    /// behind the in-flight one (the roller serializes rolls).
    fn request_roll(&mut self) {
        if let Some(epoch) = self.roller.request() {
            self.start_roll(epoch);
        }
    }

    /// Begin closing `epoch`: swap in fresh open-epoch coordinators (the
    /// old states are superseded by the incoming settlements) and
    /// broadcast `EpochRoll` (a control frame: bytes only, and it counts
    /// toward `downs_since_flush` so the quiescence handshake waits for
    /// the acks it will trigger).
    fn start_roll(&mut self, epoch: u32) {
        self.coords = self.protocols.iter().map(|p| p.new_coord(self.k)).collect();
        self.downs_since_flush += 1;
        let mut buf = BytesMut::new();
        encode(&Frame::EpochRoll { epoch }, &mut buf);
        self.send_down_all(buf.freeze());
    }

    /// All sites acked: the epoch is settled — freeze the summed
    /// settlements into the ring and start any queued roll.
    fn close_epoch(&mut self) {
        let settled: Vec<f64> = self.settle.iter().map(|&v| v as f64).collect();
        self.settle.iter_mut().for_each(|v| *v = 0);
        if self.closed_estimates.len() == self.ring_cap {
            self.closed_estimates.pop_front();
        }
        self.closed_estimates.push_back(settled);
        if let Some(next) = self.roller.finish() {
            self.start_roll(next);
        }
    }
}

/// Run a chunked stream through the cluster.
///
/// * `protocols` — one protocol instance per counter.
/// * `events` — the training stream as [`EventChunk`]s, consumed on the
///   caller thread (use [`dsbn_datagen::chunk_events`] or
///   [`dsbn_datagen::TrainingStream::chunks`] to produce them; incoming
///   chunk granularity is transport-only — the driver re-chunks per site
///   by [`ClusterConfig::chunk`], which is what governs wire behavior).
/// * `map_event` — maps an event to the counter ids it increments (the
///   tracker's UPDATE logic, e.g. the 2n family/parent counters of
///   Algorithm 2); called on site threads.
pub fn run_cluster<P, F, I>(
    protocols: &[P],
    config: &ClusterConfig,
    events: I,
    map_event: F,
) -> ClusterReport
where
    P: CounterProtocol + Sync,
    P::Site: Send,
    F: Fn(&[u32], &mut Vec<u32>) + Sync,
    I: Iterator<Item = EventChunk>,
{
    assert!(config.k > 0, "need at least one site");
    assert!(config.chunk >= 1, "chunk must be >= 1");
    if let Some(b) = config.epoch_boundary {
        assert!(b >= 1, "epoch boundary must be >= 1");
        assert!(config.epoch_ring >= 1, "epoch ring must be >= 1");
    }
    let k = config.k;
    let start = Instant::now();

    let (up_tx, up_rx) = bounded::<UpPacket>(config.channel_capacity);
    let mut event_txs: Vec<Sender<EventChunk>> = Vec::with_capacity(k);
    let mut event_rxs: Vec<Receiver<EventChunk>> = Vec::with_capacity(k);
    let mut down_txs: Vec<Sender<DownPacket>> = Vec::with_capacity(k);
    let mut down_rxs: Vec<Receiver<DownPacket>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = bounded::<EventChunk>(config.channel_capacity);
        event_txs.push(tx);
        event_rxs.push(rx);
        // Down channels must be unbounded: the coordinator may never block
        // on a send, or a site blocked on its own (bounded) up-send would
        // deadlock with it.
        let (tx, rx) = unbounded::<DownPacket>();
        down_txs.push(tx);
        down_rxs.push(rx);
    }
    // Final site states plus the per-epoch exact-count snapshots each site
    // took at its rolls (the oracle behind `epoch_exact_totals`).
    let (state_tx, state_rx) = unbounded::<(usize, Vec<P::Site>, Vec<Vec<u64>>)>();

    let mut report = std::thread::scope(|scope| {
        // --- site threads ---
        for site_id in 0..k {
            let event_rx = event_rxs[site_id].clone();
            let down_rx = down_rxs[site_id].clone();
            let up_tx = up_tx.clone();
            let state_tx = state_tx.clone();
            let map_event = &map_event;
            let seed = config.seed;
            let flush_bytes = config.flush_bytes;
            scope.spawn(move || {
                let mut worker = SiteWorker {
                    site_id,
                    protocols,
                    map_event,
                    up_tx,
                    flush_bytes,
                    states: protocols.iter().map(|p| p.new_site()).collect(),
                    snaps: Vec::new(),
                    rng: SmallRng::seed_from_u64(seed ^ (site_id as u64).wrapping_mul(0x9e37_79b9)),
                    ids: Vec::new(),
                    batch: Vec::new(),
                    pkt: BytesMut::new(),
                };
                loop {
                    crossbeam::channel::select! {
                        recv(down_rx) -> pkt => match pkt {
                            Ok(pkt) => {
                                if !worker.handle_down(pkt) {
                                    break;
                                }
                            }
                            Err(_) => break,
                        },
                        recv(event_rx) -> chunk => match chunk {
                            Ok(chunk) => {
                                if !worker.handle_chunk(&chunk) {
                                    break;
                                }
                            }
                            Err(_) => {
                                // Stream finished: announce and keep serving
                                // broadcasts and flush barriers until the
                                // coordinator closes our down channel. The
                                // packet buffer is empty here (every chunk
                                // flushes at its boundary).
                                let _ = worker.up_tx.send(UpPacket::Done);
                                while let Ok(pkt) = down_rx.recv() {
                                    if !worker.handle_down(pkt) {
                                        break;
                                    }
                                }
                                break;
                            }
                        },
                    }
                }
                let _ = state_tx.send((site_id, worker.states, worker.snaps));
            });
        }
        drop(state_tx);
        let driver_up = up_tx.clone();
        drop(up_tx);
        for rx in event_rxs.drain(..) {
            drop(rx);
        }

        // --- coordinator thread ---
        let coord_handle = scope.spawn(move || {
            let mut coord = Coordinator::new(protocols, k, config.epoch_ring, down_txs);
            let mut first_packet: Option<Instant> = None;
            let mut last_packet = Instant::now();
            let mut done = 0usize;
            // Phase 1: serve traffic until every site reports end-of-stream.
            // Every RollRequest is enqueued by the driver before it closes
            // the event channels, so all of them are dequeued before the
            // k-th Done (FIFO up channel).
            while done < k {
                match up_rx.recv() {
                    Ok(UpPacket::Updates { site, payload }) => {
                        let now = Instant::now();
                        first_packet.get_or_insert(now);
                        last_packet = now;
                        coord.handle_updates(site, payload);
                    }
                    Ok(UpPacket::Control { site, payload }) => coord.handle_control(site, payload),
                    Ok(UpPacket::RollRequest) => coord.request_roll(),
                    Ok(UpPacket::Done) => done += 1,
                    Ok(UpPacket::FlushAck { .. }) => unreachable!("ack before any flush"),
                    Err(_) => break,
                }
            }
            // Phase 2: quiescence handshake. Repeat flush epochs until one
            // completes with no broadcast issued during it — then no reply
            // can be in flight and the run state is final. Terminates
            // because with no new arrivals a broadcast cascade is finite
            // (sync request -> replies -> new round -> silence), and every
            // in-flight epoch roll completes within one flush epoch (its
            // acks precede the flush acks on the FIFO up paths).
            let mut epoch = 0u64;
            loop {
                epoch += 1;
                coord.downs_since_flush = 0;
                for tx in &coord.down_txs {
                    let _ = tx.send(DownPacket::Flush(epoch));
                }
                let mut acks = 0usize;
                while acks < k {
                    match up_rx.recv() {
                        Ok(UpPacket::Updates { site, payload }) => {
                            last_packet = Instant::now();
                            first_packet.get_or_insert(last_packet);
                            coord.handle_updates(site, payload);
                        }
                        Ok(UpPacket::Control { site, payload }) => {
                            coord.handle_control(site, payload);
                        }
                        Ok(UpPacket::FlushAck { epoch: e }) => {
                            debug_assert_eq!(e, epoch, "ack from a previous epoch");
                            acks += 1;
                        }
                        Ok(UpPacket::RollRequest) => {
                            unreachable!("roll request after end of stream")
                        }
                        Ok(UpPacket::Done) => unreachable!("done after all streams closed"),
                        Err(_) => {
                            acks = k; // all sites gone; nothing can be in flight
                        }
                    }
                }
                if coord.downs_since_flush == 0 {
                    break;
                }
            }
            debug_assert!(!coord.roller.rolling(), "quiescent with an open roll");
            let estimates: Vec<f64> =
                coord.coords.iter().zip(protocols).map(|(c, p)| p.estimate(c)).collect();
            let busy = match first_packet {
                Some(f) => last_packet.duration_since(f),
                None => Duration::ZERO,
            };
            let epochs = coord.roller.epochs_closed() as u64;
            let closed: Vec<Vec<f64>> = coord.closed_estimates.drain(..).collect();
            // Dropping `coord` drops the down channels, releasing sites
            // from serve mode.
            (coord.stats, estimates, closed, epochs, busy, epoch)
        });

        // --- driver: feed events from the caller thread ---
        // Incoming chunks are re-chunked per destination site: each event
        // is routed by the partitioner and appended to that site's pending
        // chunk, which ships when it reaches `config.chunk` events. One
        // channel send thus carries a whole slab of events; `chunk = 1`
        // degenerates to one send per event.
        let mut assigner = SiteAssigner::new(config.partitioner, k);
        let mut driver_rng = SmallRng::seed_from_u64(config.seed ^ 0xd1f7);
        let mut n_events = 0u64;
        let chunk_cap = config.chunk;
        let mut builders: Vec<EventChunk> = (0..k).map(|_| EventChunk::new()).collect();
        'stream: for chunk in events {
            for ev in chunk.iter() {
                let site = assigner.assign(&mut driver_rng);
                builders[site].push_u32(ev);
                n_events += 1;
                if builders[site].len() >= chunk_cap {
                    let full = std::mem::replace(
                        &mut builders[site],
                        EventChunk::with_capacity(ev.len(), chunk_cap),
                    );
                    if event_txs[site].send(full).is_err() {
                        break 'stream;
                    }
                }
                // The driver is the only party that sees the global event
                // count, so it requests epoch rolls — after flushing every
                // pending chunk, so all boundary events are on their way
                // first. The roll broadcast may still overtake events
                // queued on the (separate) event channels, so cluster
                // epoch boundaries are approximate — within channel depth
                // of `B` — while the per-epoch exact oracle stays exact
                // (sites snapshot at their own roll).
                if let Some(b) = config.epoch_boundary {
                    if n_events.is_multiple_of(b) {
                        for (site, builder) in builders.iter_mut().enumerate() {
                            if !builder.is_empty() {
                                let full = std::mem::replace(
                                    builder,
                                    EventChunk::with_capacity(ev.len(), chunk_cap),
                                );
                                if event_txs[site].send(full).is_err() {
                                    break 'stream;
                                }
                            }
                        }
                        if driver_up.send(UpPacket::RollRequest).is_err() {
                            break 'stream;
                        }
                    }
                }
            }
        }
        for (site, builder) in builders.into_iter().enumerate() {
            if !builder.is_empty() {
                let _ = event_txs[site].send(builder);
            }
        }
        drop(driver_up);
        for tx in event_txs.drain(..) {
            drop(tx); // closes site event streams
        }

        let (stats, estimates, epoch_estimates, epochs, busy, flush_epochs) =
            coord_handle.join().expect("coordinator panicked");

        // Reconstruct the exact oracles from returned site states: the
        // cumulative per-counter totals, the per-epoch totals (from the
        // snapshots each site took at its rolls), and the open epoch's.
        let n_counters = protocols.len();
        let mut epoch_exact: Vec<Vec<u64>> = vec![vec![0u64; n_counters]; epochs as usize];
        let mut open_epoch_exact_totals = vec![0u64; n_counters];
        for (_, states, snaps) in state_rx.iter() {
            assert_eq!(snaps.len(), epochs as usize, "site missed an epoch roll");
            for (e, snap) in snaps.iter().enumerate() {
                for (c, v) in snap.iter().enumerate() {
                    epoch_exact[e][c] += v;
                }
            }
            for (c, st) in states.iter().enumerate() {
                open_epoch_exact_totals[c] += protocols[c].site_local_count(st);
            }
        }
        let mut exact_totals = open_epoch_exact_totals.clone();
        for snap in &epoch_exact {
            for (c, v) in snap.iter().enumerate() {
                exact_totals[c] += v;
            }
        }
        // Retain the same ring of epochs as the estimates.
        let drop_n = epoch_exact.len().saturating_sub(config.epoch_ring);
        let epoch_exact_totals = epoch_exact.split_off(drop_n);
        debug_assert_eq!(epoch_exact_totals.len(), epoch_estimates.len());

        ClusterReport {
            stats,
            coordinator_busy: busy,
            wall_time: Duration::ZERO, // filled below
            events: n_events,
            flush_epochs,
            estimates,
            exact_totals,
            epochs,
            epoch_estimates,
            epoch_exact_totals,
            open_epoch_exact_totals,
        }
    });
    report.wall_time = start.elapsed();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_counters::wire::frame_len;
    use dsbn_counters::{ExactProtocol, HyzProtocol};
    use dsbn_datagen::chunk_events;

    /// Map every event to counter 0 (plus counter 1 when the first value
    /// is odd) — a miniature tracker.
    fn tiny_map(event: &[u32], ids: &mut Vec<u32>) {
        ids.clear();
        ids.push(0);
        if event[0] % 2 == 1 {
            ids.push(1);
        }
    }

    #[test]
    fn exact_protocol_counts_everything() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 9);
        let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 16), tiny_map);
        assert_eq!(report.events, 1000);
        assert_eq!(report.estimates[0], 1000.0);
        assert_eq!(report.estimates[1], 500.0);
        assert_eq!(report.exact_totals, vec![1000, 500]);
        assert_eq!(report.stats.up_messages, 1500);
        // Default chunk = 1: one packet per event regardless of how the
        // caller grouped the incoming stream.
        assert_eq!(report.stats.packets, 1000);
    }

    #[test]
    fn wire_bytes_measure_actual_transport() {
        // ExactProtocol never broadcasts, so every byte on the wire is an
        // event's bundled up packet. One- and two-update events are below
        // the UpBatch break-even, so they ship as plain 5-byte Increment
        // frames: the tally is exactly 5 per update.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 9);
        let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 1), tiny_map);
        let inc = frame_len(&Frame::Up { counter: 0, msg: UpMsg::Increment }) as u64;
        assert_eq!(report.stats.bytes, report.stats.up_messages * inc);
        assert_eq!(report.stats.broadcasts, 0);
    }

    #[test]
    fn up_batch_amortizes_frame_headers_on_wide_events() {
        // Eight exact counters per event (a sprinkler-sized 2n): the batch
        // frame replaces 8 x 5 = 40 bytes with a 5-byte header + 4 per id.
        let protocols = vec![ExactProtocol; 8];
        let config = ClusterConfig::new(3, 13);
        let m = 500u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 8), |_, ids| {
            ids.clear();
            ids.extend(0..8u32);
        });
        assert_eq!(report.stats.up_messages, 8 * m);
        assert_eq!(report.stats.packets, m);
        let batch =
            frame_len(&Frame::UpBatch { increments: (0..8).collect(), reports: vec![] }) as u64;
        assert_eq!(batch, 5 + 8 * 4);
        assert_eq!(report.stats.bytes, m * batch);
        let singles = report.stats.up_messages * 5;
        assert!(report.stats.bytes < singles, "{} !< {singles}", report.stats.bytes);
    }

    #[test]
    fn chunked_transport_coalesces_packets_not_bytes() {
        // The same exact run at chunk sizes 1 and 64: identical logical
        // messages, estimates, totals, and *bytes* (the multi-event packet
        // is the concatenation of the same encode_event sections); only
        // the physical packet count drops — by roughly the chunk factor.
        let protocols = vec![ExactProtocol; 8];
        let m = 4_000u64;
        let wide = |_: &[u32], ids: &mut Vec<u32>| {
            ids.clear();
            ids.extend(0..8u32);
        };
        let events = || (0..m).map(|_| vec![0usize]);
        let per_event =
            run_cluster(&protocols, &ClusterConfig::new(3, 13), chunk_events(events(), 16), wide);
        let chunked = run_cluster(
            &protocols,
            &ClusterConfig::new(3, 13).with_chunk(64),
            chunk_events(events(), 16),
            wide,
        );
        assert_eq!(chunked.estimates, per_event.estimates);
        assert_eq!(chunked.exact_totals, per_event.exact_totals);
        assert_eq!(chunked.stats.up_messages, per_event.stats.up_messages);
        assert_eq!(chunked.stats.down_messages, per_event.stats.down_messages);
        assert_eq!(chunked.stats.bytes, per_event.stats.bytes);
        assert_eq!(per_event.stats.packets, m);
        assert!(
            chunked.stats.packets * 32 <= per_event.stats.packets,
            "chunked packets {} not amortized vs {}",
            chunked.stats.packets,
            per_event.stats.packets
        );
    }

    #[test]
    fn size_threshold_bounds_packet_growth() {
        // A tiny flush threshold forces mid-chunk flushes: every packet
        // stays small, and nothing is lost.
        let protocols = vec![ExactProtocol; 8];
        let mut config = ClusterConfig::new(2, 5).with_chunk(256);
        config.flush_bytes = 128;
        let m = 2_000u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 64), |_, ids| {
            ids.clear();
            ids.extend(0..8u32);
        });
        assert_eq!(report.exact_totals[0], m);
        // 37 bytes per event, threshold 128: at most 4 events per packet.
        assert!(
            report.stats.packets * 4 >= m,
            "packets {} too few for a 128-byte threshold",
            report.stats.packets
        );
    }

    #[test]
    fn hyz_protocol_under_asynchrony() {
        let protocols = vec![HyzProtocol::new(0.1)];
        let config = ClusterConfig::new(4, 11);
        let m = 50_000u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 32), |_, ids| {
            ids.clear();
            ids.push(0);
        });
        assert_eq!(report.exact_totals[0], m);
        let rel = (report.estimates[0] - m as f64).abs() / m as f64;
        // Asynchronous delivery adds transient error on top of the eps
        // guarantee; it must still land well within a few eps.
        assert!(rel < 0.5, "relative error {rel}");
        assert!(report.stats.up_messages < m / 5, "messages {}", report.stats.up_messages);
        assert!(report.stats.packets <= report.stats.up_messages);
        // Broadcast accounting stays exact under threading.
        assert_eq!(report.stats.down_messages, report.stats.broadcasts * 4);
    }

    #[test]
    fn hyz_protocol_with_chunked_ingest_stays_in_band() {
        // Coalescing delays reports (they sit in the site buffer until a
        // flush), which the round-tagged protocol absorbs like any other
        // asynchrony; the quiescence handshake still flushes everything
        // out, so the final estimate stays in band for every seed.
        for seed in 0..8u64 {
            let protocols = vec![HyzProtocol::new(0.2)];
            let config = ClusterConfig::new(4, seed).with_chunk(64);
            let m = 30_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_cluster(&protocols, &config, chunk_events(events, 64), |_, ids| {
                ids.clear();
                ids.push(0);
            });
            assert_eq!(report.exact_totals[0], m, "seed {seed}");
            let rel = (report.estimates[0] - m as f64).abs() / m as f64;
            assert!(rel < 1.0, "seed {seed}: relative error {rel}");
            assert!(report.stats.packets <= report.stats.up_messages);
        }
    }

    #[test]
    fn quiescence_handshake_completes_inflight_rounds() {
        // Aggressive rounds right up to the end of the stream: the old
        // fixed-timeout drain could cut a sync short; the handshake must
        // always leave the coordinator outside a sync (its estimate is
        // anchored at the last completed round, never mid-collection).
        for seed in 0..20u64 {
            let protocols = vec![HyzProtocol::new(0.5)];
            let config = ClusterConfig::new(5, seed).with_chunk(16);
            let m = 3_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_cluster(&protocols, &config, chunk_events(events, 16), |_, ids| {
                ids.clear();
                ids.push(0);
            });
            assert_eq!(report.exact_totals[0], m);
            // At least one full flush epoch always runs.
            assert!(report.flush_epochs >= 1, "seed {seed}");
            let rel = (report.estimates[0] - m as f64).abs() / m as f64;
            assert!(rel < 2.5, "seed {seed}: relative error {rel}");
        }
    }

    #[test]
    fn epoch_rolls_partition_the_stream_exactly() {
        // Exact counters: a closed epoch's frozen estimate must equal its
        // exact per-epoch total (FIFO attribution makes the roll lossless),
        // and all epochs plus the open one must sum to the whole stream.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 17).with_epochs(250, 8);
        let m = 1000u64;
        let events = (0..m).map(|i| vec![(i % 2) as usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 8), tiny_map);
        assert_eq!(report.events, m);
        assert_eq!(report.epochs, 4);
        assert_eq!(report.epoch_estimates.len(), 4);
        assert_eq!(report.epoch_exact_totals.len(), 4);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            for (e, &t) in est.iter().zip(exact) {
                assert_eq!(*e, t as f64, "closed-epoch estimate drifted from exact");
            }
        }
        // Counter 0 is hit by every event; epoch sizes are approximate
        // (roll broadcasts can overtake queued events) but the cumulative
        // total is exact.
        let c0: u64 = report.epoch_exact_totals.iter().map(|e| e[0]).sum::<u64>()
            + report.open_epoch_exact_totals[0];
        assert_eq!(c0, m);
        assert_eq!(report.exact_totals, vec![1000, 500]);
        // The final estimates cover the open epoch only.
        assert_eq!(report.estimates[0], report.open_epoch_exact_totals[0] as f64);
    }

    #[test]
    fn epoch_rolls_settle_exactly_under_chunked_ingest() {
        // The flush-before-control rule: a site must push every buffered
        // update of the closing epoch onto the wire *before* its
        // settlement/ack, or FIFO attribution breaks and the settled
        // epochs drift. Exact counters make any drift visible as a hard
        // mismatch.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 29).with_epochs(250, 8).with_chunk(32);
        let m = 1000u64;
        let events = (0..m).map(|i| vec![(i % 2) as usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 32), tiny_map);
        assert_eq!(report.events, m);
        assert_eq!(report.epochs, 4);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            for (e, &t) in est.iter().zip(exact) {
                assert_eq!(*e, t as f64, "closed-epoch estimate drifted under chunking");
            }
        }
        let c0: u64 = report.epoch_exact_totals.iter().map(|e| e[0]).sum::<u64>()
            + report.open_epoch_exact_totals[0];
        assert_eq!(c0, m);
        assert_eq!(report.exact_totals, vec![1000, 500]);
        assert_eq!(report.estimates[0], report.open_epoch_exact_totals[0] as f64);
    }

    #[test]
    fn epoch_ring_caps_retained_epochs() {
        let protocols = vec![ExactProtocol];
        let config = ClusterConfig::new(2, 7).with_epochs(100, 2);
        let events = (0..600u64).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 4), |_, ids| {
            ids.clear();
            ids.push(0);
        });
        assert_eq!(report.epochs, 6);
        // Only the last `ring` epochs are retained, estimates and oracle
        // alike, and they stay aligned.
        assert_eq!(report.epoch_estimates.len(), 2);
        assert_eq!(report.epoch_exact_totals.len(), 2);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            assert_eq!(est[0], exact[0] as f64);
        }
        // Cumulative totals still cover all 6 epochs.
        assert_eq!(report.exact_totals[0], 600);
    }

    #[test]
    fn hyz_epoch_rolls_terminate_and_settle_exactly() {
        // Randomized counters under epoch rolling: every run must terminate
        // (rolls complete through the quiescence handshake even when they
        // land at end-of-stream), and because a roll closes its epoch with
        // the sites' exact settlement, every closed epoch's ring entry
        // must equal that epoch's exact total — for a *randomized*
        // protocol, under real thread interleaving and chunked ingest.
        for seed in 0..8u64 {
            let protocols = vec![HyzProtocol::new(0.2)];
            let config = ClusterConfig::new(4, seed).with_epochs(4_000, 4).with_chunk(32);
            let m = 16_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_cluster(&protocols, &config, chunk_events(events, 32), |_, ids| {
                ids.clear();
                ids.push(0);
            });
            assert_eq!(report.exact_totals[0], m, "seed {seed}");
            assert_eq!(report.epochs, 4, "seed {seed}");
            for (e, (est, exact)) in
                report.epoch_estimates.iter().zip(&report.epoch_exact_totals).enumerate()
            {
                assert_eq!(est[0], exact[0] as f64, "seed {seed} epoch {e}: not settled");
            }
            // The open epoch's estimate is a live Lemma-4 estimate.
            if report.open_epoch_exact_totals[0] > 1_000 {
                let t = report.open_epoch_exact_totals[0] as f64;
                let rel = (report.estimates[0] - t).abs() / t;
                assert!(rel < 1.0, "seed {seed}: open epoch rel err {rel}");
            }
        }
    }

    #[test]
    fn round_robin_partitioner_balances() {
        let protocols = vec![ExactProtocol];
        let mut config = ClusterConfig::new(5, 1);
        config.partitioner = Partitioner::RoundRobin;
        let events = (0..500u64).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 10), |_, ids| {
            ids.clear();
            ids.push(0);
        });
        assert_eq!(report.estimates[0], 500.0);
    }

    #[test]
    fn empty_stream_terminates() {
        let protocols = vec![ExactProtocol];
        let config = ClusterConfig::new(2, 3);
        let report =
            run_cluster(&protocols, &config, std::iter::empty::<EventChunk>(), |_, ids| {
                ids.clear()
            });
        assert_eq!(report.events, 0);
        assert_eq!(report.estimates[0], 0.0);
        assert_eq!(report.stats.total(), 0);
        // No events -> busy window is empty -> throughput is undefined,
        // not zero.
        assert!(report.throughput().is_nan());
    }

    #[test]
    fn single_site_cluster() {
        let protocols = vec![HyzProtocol::new(0.2)];
        let config = ClusterConfig::new(1, 5).with_chunk(8);
        let events = (0..10_000u64).map(|_| vec![0usize]);
        let report = run_cluster(&protocols, &config, chunk_events(events, 8), |_, ids| {
            ids.clear();
            ids.push(0);
        });
        assert_eq!(report.exact_totals[0], 10_000);
        let rel = (report.estimates[0] - 10_000.0).abs() / 10_000.0;
        assert!(rel < 1.0, "rel {rel}");
    }
}
