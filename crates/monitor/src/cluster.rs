//! Live threaded cluster runtime.
//!
//! Stands in for the paper's AWS EC2 deployment (§VI-A): one OS thread per
//! site plus a coordinator, communicating over a pluggable [`Transport`]
//! (crossbeam channels by default, Unix-domain sockets via
//! [`crate::transport::UdsTransport`]) with genuinely asynchronous,
//! possibly out-of-order message delivery — exactly the conditions the
//! round-tagged counter protocols are built for. See DESIGN.md for the
//! thread/channel topology and shutdown protocol, and DESIGN.md §6 for the
//! transport abstraction and the sharded coordinator.
//!
//! Ingest is *chunked end to end* (DESIGN.md §2–§3): the driver re-chunks
//! the incoming [`EventChunk`] stream into per-site chunks of
//! [`ClusterConfig::chunk`] events, so one channel send carries a whole
//! slab of events instead of one heap-allocated `Vec` each; a site
//! accumulates the wire encodings of successive events' updates
//! ([`dsbn_counters::wire::encode_event`] sections) into one reused buffer
//! and flushes it as a single multi-event packet on a size /
//! chunk-boundary policy; the coordinator decodes each packet in one
//! allocation-free pass ([`dsbn_counters::wire::visit_packet`]).
//! Control traffic (sync replies, flush acks, epoch settlements) always
//! *forces a flush first*, which keeps the FIFO attribution and quiescence
//! arguments of DESIGN.md §3/§5 intact. `chunk = 1` — the default — is the
//! per-event pipeline as a degenerate case.
//!
//! The coordinator itself comes in two shapes ([`CoordMode`]):
//!
//! - [`CoordMode::SingleThread`] — one thread decodes every packet and
//!   applies every update (the baseline; unchanged hot path).
//! - [`CoordMode::Sharded`] — K shard workers each own a contiguous
//!   counter range ([`crate::shard::ShardPlan`]) and apply the updates in
//!   their range, while one control thread keeps the transport order:
//!   accounting, broadcast fan-out, flush quiescence, and epoch settlement
//!   all stay on the control thread, so the per-shard FIFO attribution
//!   argument of DESIGN.md §6 holds and sharded runs are bit-identical to
//!   single-thread runs on estimates, exact totals, logical message
//!   counts, and bytes.
//!
//! [`MessageStats::bytes`] measures frame bytes that actually crossed a
//! link; `MessageStats::packets` counts the physical bundled sends (so
//! chunking lowers `packets` but never `bytes` or the paper's per-update
//! `up/down_messages` accounting). Transport envelope overhead (UDS length
//! prefixes) is never counted, so accounting is transport-invariant.
//!
//! A run ends with a deterministic *quiescence handshake* (DESIGN.md §3.2)
//! instead of a wall-clock drain: after every site has exhausted its
//! stream, the coordinator repeatedly issues `Flush(epoch)` barriers down
//! the (FIFO) site channels and waits for all `k` acks; an epoch during
//! which the coordinator issued no new broadcast proves that no reply can
//! still be in flight, so shutdown never races in-flight sync traffic and
//! never depends on timing.
//!
//! Every decode path is panic-free: malformed packets, out-of-range
//! counter ids, and misplaced frames surface as a typed
//! [`ClusterError`] from [`run_cluster`] / [`run_cluster_on`] instead of
//! killing a thread and hanging the join — a prerequisite for feeding the
//! runtime from a real socket.
//!
//! Used by `exp_fig7_8` (training runtime and throughput vs. number of
//! sites) and by `dsbn_core`'s `run_cluster_tracker`, which layers the
//! paper's full UPDATE/QUERY tracker logic on top of this runtime.

use crate::metrics::MessageStats;
use crate::partition::{Partitioner, SiteAssigner};
use crate::shard::ShardPlan;
use crate::snapshot::{CounterSnapshot, SnapshotHub};
use crate::transport::{
    ChannelTransport, ClusterError, DownPacket, DownSender, Fabric, Transport, UpPacket, UpSender,
};
use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvError, Sender};
use dsbn_counters::epoch::EpochRoller;
use dsbn_counters::msg::{DownMsg, UpMsg};
use dsbn_counters::protocol::CounterProtocol;
use dsbn_counters::wire::{encode, encode_event, visit_packet, Frame, WireItem};
use dsbn_datagen::EventChunk;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;
use std::ops::Range;
use std::time::{Duration, Instant};

/// How the coordinator applies decoded updates (DESIGN.md §6).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoordMode {
    /// One coordinator thread decodes every packet and applies every
    /// update — the baseline, and the default.
    SingleThread,
    /// `workers` shard threads each own a contiguous counter range and
    /// apply the updates falling in it, while the control thread retains
    /// rounds, Flush/FlushAck quiescence, and EpochRoll settlement
    /// ordering. Bit-identical to [`CoordMode::SingleThread`] on
    /// estimates, exact totals, logical message counts, and bytes.
    Sharded {
        /// Number of shard workers (>= 1; `Sharded { workers: 1, .. }` is
        /// the degenerate one-shard pipeline, useful for pinning).
        workers: usize,
        /// Explicit shard range starts, e.g. aligned to a
        /// `CounterLayout`'s per-variable blocks (`starts[w]` is the first
        /// counter id worker `w` owns; must start at 0, be monotone, and
        /// have one entry per worker). `None` — the default — splits the
        /// id space evenly.
        shard_starts: Option<Vec<u32>>,
    },
}

/// One injected site fault (fail-stop model, DESIGN.md §8): the stream
/// driver kills `site` once it has streamed `kill_at` events and — when
/// `revive_at` is set — revives it with *fresh* protocol state once it has
/// streamed `revive_at` events. A crash wipes all of the site's unsettled
/// local counts (epoch settlements are the durable checkpoints bounding
/// the loss); arrivals routed to the site while it is down are lost and
/// accounted in [`ChurnReport`]. Kill points are driver-side event counts
/// and land *exactly*: the kill order rides the driver→site event link
/// in-band (FIFO with the arrivals), so the site crashes after ingesting
/// precisely the events routed to it before `kill_at` — every scheduled
/// kill fires, on every interleaving. Revives detour through the
/// coordinator (the catch-up payload needs its round cache) and land
/// asynchronously, like every other cluster boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SiteFault {
    /// Which site to kill.
    pub site: usize,
    /// Kill after the driver has streamed this many events.
    pub kill_at: u64,
    /// Revive after the driver has streamed this many events (must be
    /// `> kill_at`); `None` keeps the site down for the rest of the run.
    pub revive_at: Option<u64>,
}

impl SiteFault {
    /// A seeded churn schedule: up to `faults` kill/revive faults over an
    /// `events`-long stream, each targeting a *distinct* site (so at least
    /// one site always survives), with kills spread over the middle half
    /// of the stream, revives following after roughly an eighth to a
    /// quarter of it, and about one kill in four left permanent.
    pub fn schedule(k: usize, events: u64, faults: usize, seed: u64) -> Vec<SiteFault> {
        assert!(k > 1, "a churn schedule needs at least two sites");
        assert!(events >= 8, "a churn schedule needs at least eight events");
        let n = faults.min(k - 1);
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x00c4_a54f);
        let mut sites: Vec<usize> = (0..k).collect();
        // Partial Fisher-Yates: the first n entries are distinct targets.
        for i in 0..n {
            let j = rng.gen_range(i..k);
            sites.swap(i, j);
        }
        (0..n)
            .map(|i| {
                let kill_at = rng.gen_range(events / 4..events / 2);
                let revive_at = if rng.gen_range(0..4u32) == 0 {
                    None
                } else {
                    Some(kill_at + rng.gen_range(events / 8..events / 4))
                };
                SiteFault { site: sites[i], kill_at, revive_at }
            })
            .collect()
    }
}

/// Churn section of a [`ClusterReport`]: what the injected faults cost.
/// The load-bearing reconciliation identity — pinned by the churn suite —
/// is that for every counter `c`, `exact_totals[c] + lost_counts[c]`
/// equals the full-stream count bit-for-bit, for any protocol.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ChurnReport {
    /// Site crashes confirmed by the coordinator (`Crashed` markers).
    pub kills: u64,
    /// Rejoins the coordinator performed (`Revive` handshakes sent).
    pub revives: u64,
    /// Events discarded on arrival at a dead (or crashing) site without
    /// ever being ingested. Counts ingested-then-wiped by crashes are in
    /// `lost_counts` only.
    pub events_lost: u64,
    /// Per-counter increments lost to churn: counts wiped by a crash
    /// (unsettled local state) plus counts of events discarded while dead.
    pub lost_counts: Vec<u64>,
    /// Per-site cumulative downtime (crash to revive, or to shutdown for
    /// sites that never rejoined), measured at the site.
    pub site_downtime: Vec<Duration>,
    /// Crashes whose final in-flight packet was torn mid-flush (a nonempty
    /// truncated prefix reached the coordinator and was discarded).
    pub partial_final_packets: u64,
    /// Bytes of those torn prefixes, attributed to the dead site and
    /// discarded whole — applying a prefix would double-count against the
    /// site's wiped (and loss-accounted) local state.
    pub partial_bytes_discarded: u64,
}

impl ChurnReport {
    /// Total fault-injection actions the run carried out.
    pub fn faults_injected(&self) -> u64 {
        self.kills + self.revives
    }
}

/// Cluster runtime configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of sites (coordinator excluded), `k`.
    pub k: usize,
    /// Capacity of the event and up-packet channels (backpressure). Event
    /// channels carry chunks, so the in-flight event bound is
    /// `channel_capacity * chunk`.
    pub channel_capacity: usize,
    /// Base RNG seed (per-site RNGs derive from it).
    pub seed: u64,
    /// How events are routed to sites.
    pub partitioner: Partitioner,
    /// Events per driver → site chunk (cross-event ingest batching). `1` —
    /// the default — is the per-event pipeline as a degenerate case: every
    /// event travels as its own chunk and flushes its own packet.
    pub chunk: usize,
    /// Flush a site's accumulated update packet once it reaches this many
    /// bytes, even mid-chunk (bounds buffering; the packet also always
    /// flushes at a chunk boundary and before any control frame).
    pub flush_bytes: usize,
    /// Epoch-ring decay (DESIGN.md §5): close an epoch after every this
    /// many streamed events. `None` — the default, and the paper's setting
    /// — runs the whole stream as one open epoch; every pre-epoch code
    /// path is exactly this degenerate case.
    pub epoch_boundary: Option<u64>,
    /// Closed epochs retained at the coordinator (ring capacity `K`).
    /// Ignored unless `epoch_boundary` is set.
    pub epoch_ring: usize,
    /// Coordinator shape: single-thread (default) or sharded across
    /// decode workers.
    pub coord: CoordMode,
    /// Snapshot publish hub (DESIGN.md §7). When set, the coordinator
    /// mints a [`CounterSnapshot`] at every epoch settlement (so enable
    /// epoch rolling to get mid-stream snapshots) and the driver publishes
    /// the final quiescent state — with the exact oracle attached — after
    /// the run. `None` — the default — publishes nothing.
    pub publish: Option<SnapshotHub>,
    /// Injected site faults (DESIGN.md §8), fired by the stream driver at
    /// their event thresholds. Empty — the default — injects nothing, and
    /// every fault path is exactly dead code.
    pub faults: Vec<SiteFault>,
}

impl ClusterConfig {
    /// Paper defaults: uniform random routing, per-event chunks, no epoch
    /// rolling, single-thread coordinator.
    pub fn new(k: usize, seed: u64) -> Self {
        ClusterConfig {
            k,
            channel_capacity: 4096,
            seed,
            partitioner: Partitioner::UniformRandom,
            chunk: 1,
            flush_bytes: 64 * 1024,
            epoch_boundary: None,
            epoch_ring: 8,
            coord: CoordMode::SingleThread,
            publish: None,
            faults: Vec::new(),
        }
    }

    /// Batch `chunk` events per driver → site send (and per site packet
    /// flush).
    pub fn with_chunk(mut self, chunk: usize) -> Self {
        assert!(chunk >= 1, "chunk must be >= 1");
        self.chunk = chunk;
        self
    }

    /// Enable epoch rolling every `boundary` events with a `ring`-deep
    /// closed-epoch ring.
    pub fn with_epochs(mut self, boundary: u64, ring: usize) -> Self {
        assert!(boundary >= 1, "epoch boundary must be >= 1");
        assert!(ring >= 1, "epoch ring must be >= 1");
        self.epoch_boundary = Some(boundary);
        self.epoch_ring = ring;
        self
    }

    /// Shard coordinator state across `workers` decode workers with an
    /// even counter split. `workers <= 1` keeps the single-thread
    /// coordinator (the modes are equivalent; single-thread skips the
    /// worker hop).
    pub fn with_coord_workers(mut self, workers: usize) -> Self {
        self.coord = if workers <= 1 {
            CoordMode::SingleThread
        } else {
            CoordMode::Sharded { workers, shard_starts: None }
        };
        self
    }

    /// Shard the coordinator explicitly — always runs the sharded
    /// pipeline, even for `workers == 1` (pinning the degenerate shard
    /// path against the single-thread baseline), with optional explicit
    /// range starts (e.g. `CounterLayout::shard_starts`).
    pub fn with_sharded_coordinator(
        mut self,
        workers: usize,
        shard_starts: Option<Vec<u32>>,
    ) -> Self {
        assert!(workers >= 1, "need at least one coordinator worker");
        self.coord = CoordMode::Sharded { workers, shard_starts };
        self
    }

    /// Publish counter snapshots to `hub`: one per epoch settlement plus
    /// the final quiescent state (see [`SnapshotHub`]).
    pub fn with_publish(mut self, hub: SnapshotHub) -> Self {
        self.publish = Some(hub);
        self
    }

    /// Inject the given site faults (e.g. from [`SiteFault::schedule`]).
    pub fn with_faults(mut self, faults: Vec<SiteFault>) -> Self {
        self.faults = faults;
        self
    }
}

/// Result of a cluster run.
#[derive(Debug, Clone)]
pub struct ClusterReport {
    /// Message statistics (paper accounting + packets + wire bytes).
    pub stats: MessageStats,
    /// Wall-clock time from the first to the last update packet processed
    /// by the coordinator (the paper's runtime metric, Fig. 7).
    pub coordinator_busy: Duration,
    /// Wall-clock time of the whole run, including thread setup/teardown.
    pub wall_time: Duration,
    /// Number of events streamed.
    pub events: u64,
    /// Flush epochs the quiescence handshake needed (≥ 1; more than one
    /// means a broadcast cascade was still settling at end-of-stream).
    pub flush_epochs: u64,
    /// Final coordinator estimates, one per counter. With epoch rolling
    /// these cover only the *open* (last, partial) epoch.
    pub estimates: Vec<f64>,
    /// Exact per-counter totals of the *surviving* counts, reconstructed
    /// from site states at shutdown (an oracle for accuracy metrics; not
    /// visible to a real coordinator). Cumulative across all epochs. With
    /// no injected faults this is the whole stream; under churn the
    /// crash-lost counts live in [`ChurnReport::lost_counts`], and
    /// `exact_totals[c] + churn.lost_counts[c]` is the full-stream count.
    pub exact_totals: Vec<u64>,
    /// Stream epochs closed by `EpochRoll` (0 when rolling is disabled).
    pub epochs: u64,
    /// Closed epochs that fell off the retention ring (`epochs` minus the
    /// retained `epoch_estimates.len()`): these counts are gone from the
    /// coordinator, which a decay consumer must know rather than silently
    /// reading a shorter ring.
    pub dropped_epochs: u64,
    /// Ring of closed-epoch coordinator estimates, oldest first, at most
    /// `ClusterConfig::epoch_ring` entries; each inner vector has one
    /// estimate per counter, frozen when the epoch's roll completed.
    pub epoch_estimates: Vec<Vec<f64>>,
    /// Exact per-epoch totals for the same retained epochs (oracle,
    /// reconstructed from per-site snapshots taken at each site's roll) —
    /// same shape as `epoch_estimates`.
    pub epoch_exact_totals: Vec<Vec<u64>>,
    /// Exact totals of the open epoch only (oracle; equals `exact_totals`
    /// when rolling is disabled).
    pub open_epoch_exact_totals: Vec<u64>,
    /// Cumulative settled counts across *all* closed epochs (each roll's
    /// settlement is exact, so this is coordinator-visible, unlike the
    /// oracles above), one per counter. All zeros when rolling is
    /// disabled. `settled_totals[c] + estimates[c]` is the cumulative
    /// whole-stream read of counter `c` — the ring may have dropped old
    /// epochs, this never does.
    pub settled_totals: Vec<f64>,
    /// What the injected faults cost (all-zero without faults).
    pub churn: ChurnReport,
}

impl ClusterReport {
    /// Events per second relative to coordinator busy time (Fig. 8).
    ///
    /// Returns `f64::NAN` when the busy window is below the clock's
    /// resolution (e.g. an empty or near-instant run): reporting `0.0`
    /// events/sec for a run that processed events would be a lie.
    pub fn throughput(&self) -> f64 {
        let secs = self.coordinator_busy.as_secs_f64();
        if secs <= 0.0 {
            return f64::NAN;
        }
        self.events as f64 / secs
    }
}

/// What the driver feeds a site's ingest link: event slabs, or the in-band
/// kill marker. Riding the same FIFO as the arrivals makes a fault
/// schedule's kill point *exact* — the site crashes after ingesting
/// precisely the events routed to it before `kill_at`, on every
/// interleaving — where a kill detoured through the coordinator's down
/// link would race the site draining its event queue (a fast site could
/// finish its whole stream before the order round-tripped, and the kill
/// would silently miss).
enum SiteFeed {
    Chunk(EventChunk),
    Kill,
}

/// Per-site-thread state: the protocol site states plus the chunked send
/// path — a reused packet buffer that accumulates `encode_event` sections
/// and flushes on size, at chunk boundaries, and (always) before any
/// control frame leaves the site. The flush-before-control rule is what
/// keeps the per-site FIFO attribution arguments (quiescence, epoch
/// settlement — DESIGN.md §3.2/§5.1) valid under coalescing: no update can
/// linger in a local buffer while an ack that must follow it goes out.
///
/// Generic over the transport's up-sending half `U`, so the same loop runs
/// over a channel or a socket.
struct SiteWorker<'a, P: CounterProtocol, F, U: UpSender> {
    site_id: usize,
    protocols: &'a [P],
    map_event: &'a F,
    up_tx: U,
    flush_bytes: usize,
    states: Vec<P::Site>,
    /// Exact per-epoch snapshots taken at each roll (oracle).
    snaps: Vec<Vec<u64>>,
    rng: SmallRng,
    /// Scratch: the current chunk's counter ids, back to back at a fixed
    /// per-event stride (the layout's `map_chunk` slab).
    ids: Vec<u32>,
    /// Scratch: the current event's (or broadcast's) pending updates.
    batch: Vec<(u32, UpMsg)>,
    /// The accumulating multi-event packet (reused across flushes).
    pkt: BytesMut,
    /// A `Kill` arrived: crash mid-way through the next chunk (tearing the
    /// in-flight packet) or at end-of-stream, whichever comes first.
    dying: bool,
    /// Crashed: discard events and broadcasts, never ack a barrier, wait
    /// for `Revive`.
    dead: bool,
    /// Per-counter increments lost to churn (wiped at crashes, discarded
    /// while dead) — the site's half of the reconciliation identity.
    lost: Vec<u64>,
    /// Events discarded on arrival without being ingested.
    events_lost: u64,
    /// When the current outage started (set at the crash).
    down_since: Option<Instant>,
    /// Cumulative downtime over all outages.
    downtime: Duration,
}

impl<P, F, U> SiteWorker<'_, P, F, U>
where
    P: CounterProtocol,
    F: Fn(&EventChunk, &mut Vec<u32>),
    U: UpSender,
{
    /// Send the accumulated packet, if any. Returns `false` when the up
    /// link is gone (the run is over).
    fn flush(&mut self) -> bool {
        if self.pkt.is_empty() {
            return true;
        }
        let payload = Bytes::copy_from_slice(&self.pkt);
        self.pkt.clear();
        self.up_tx.send(UpPacket::Updates { site: self.site_id, payload }).is_ok()
    }

    /// Report an unrecoverable error up (so the coordinator aborts the run
    /// with it) and stop this site. Always returns `false`.
    fn fault(&mut self, error: ClusterError) -> bool {
        let _ = self.up_tx.send(UpPacket::Fault { site: self.site_id, error });
        false
    }

    /// Run UPDATE for every event in a chunk, coalescing the events' wire
    /// encodings into the packet buffer; flush on the size threshold, at
    /// the chunk boundary, and immediately after any event that produced a
    /// non-increment message. Reports (and cumulative/threshold messages)
    /// drive the protocols' round feedback — a buffered HYZ report delays
    /// the sync/`NewRound` cycle, leaving sites sampling at a stale higher
    /// probability and *inflating* the paper's logical message counts — so
    /// they ship promptly, like the other control-ish traffic (the
    /// flush-before-control rule). Bare increments, the exact-maintenance
    /// hot path, carry no feedback and keep full amortization.
    fn handle_chunk(&mut self, chunk: &EventChunk) -> bool {
        if self.dead {
            self.lose_chunk(chunk);
            return true;
        }
        if self.dying {
            return self.crash_mid_chunk(chunk);
        }
        if chunk.is_empty() {
            return self.flush();
        }
        // Map the whole chunk in one sweep (the layout's stride-table bulk
        // kernel — no per-event re-deriving), then walk the id slab at its
        // fixed per-event stride. The scratch is taken out of `self` for
        // the duration so mid-loop flushes can borrow the worker.
        let mut ids = std::mem::take(&mut self.ids);
        (self.map_event)(chunk, &mut ids);
        let stride = self.chunk_stride(&ids, chunk.len());
        let mut ok = true;
        for e in 0..chunk.len() {
            for &cid in &ids[e * stride..(e + 1) * stride] {
                self.protocols[cid as usize].increment_batch(
                    &mut self.states[cid as usize],
                    cid,
                    1,
                    &mut self.batch,
                    &mut self.rng,
                );
            }
            let urgent = self.batch.iter().any(|(_, m)| !matches!(m, UpMsg::Increment));
            encode_event(&mut self.batch, &mut self.pkt);
            if (urgent || self.pkt.len() >= self.flush_bytes) && !self.flush() {
                ok = false;
                break;
            }
        }
        self.ids = ids;
        ok && self.flush()
    }

    /// The per-event id stride of a mapped chunk slab (the `2n` of
    /// Algorithm 2 under a layout mapping; test doubles may emit fewer).
    fn chunk_stride(&self, ids: &[u32], events: usize) -> usize {
        let stride = ids.len() / events;
        debug_assert_eq!(stride * events, ids.len(), "mapping must emit a fixed per-event stride");
        stride
    }

    /// Discard a chunk routed to this dead site: every event is counted
    /// into the loss ledger, nothing is ingested. The mapped slab feeds the
    /// ledger directly — each id in it is exactly one lost increment.
    fn lose_chunk(&mut self, chunk: &EventChunk) {
        if chunk.is_empty() {
            return;
        }
        let mut ids = std::mem::take(&mut self.ids);
        (self.map_event)(chunk, &mut ids);
        for &cid in &ids {
            self.lost[cid as usize] += 1;
        }
        self.events_lost += chunk.len() as u64;
        self.ids = ids;
    }

    /// A `Kill` is pending: ingest the first half of this chunk with every
    /// flush suppressed (so the updates pile into the packet buffer),
    /// discard the second half, then crash — tearing the buffered packet
    /// mid-frame. This is the deterministic reproduction of a site dying
    /// mid-flush: the coordinator receives a truncated final packet it
    /// must attribute and discard.
    fn crash_mid_chunk(&mut self, chunk: &EventChunk) -> bool {
        let keep = chunk.len().div_ceil(2);
        if !chunk.is_empty() {
            let mut ids = std::mem::take(&mut self.ids);
            (self.map_event)(chunk, &mut ids);
            let stride = self.chunk_stride(&ids, chunk.len());
            for (i, ev_ids) in
                (0..chunk.len()).map(|e| &ids[e * stride..(e + 1) * stride]).enumerate()
            {
                if i < keep {
                    for &cid in ev_ids {
                        self.protocols[cid as usize].increment_batch(
                            &mut self.states[cid as usize],
                            cid,
                            1,
                            &mut self.batch,
                            &mut self.rng,
                        );
                    }
                    encode_event(&mut self.batch, &mut self.pkt);
                } else {
                    for &cid in ev_ids {
                        self.lost[cid as usize] += 1;
                    }
                    self.events_lost += 1;
                }
            }
            self.ids = ids;
        }
        self.crash()
    }

    /// Execute the crash (fail-stop): send the torn prefix of whatever was
    /// still unflushed as the `Crashed` marker's partial payload — the
    /// *last* packet on this site's FIFO up link, so the coordinator has
    /// applied everything the site delivered when it learns of the death —
    /// then wipe all protocol state into the loss ledger and go dark.
    fn crash(&mut self) -> bool {
        let partial = Bytes::copy_from_slice(&self.pkt[..self.pkt.len() / 2]);
        self.pkt.clear();
        self.batch.clear();
        for (c, st) in self.states.iter_mut().enumerate() {
            self.lost[c] += self.protocols[c].site_local_count(st);
            *st = self.protocols[c].new_site();
        }
        self.dying = false;
        self.dead = true;
        self.down_since = Some(Instant::now());
        self.up_tx.send(UpPacket::Crashed { site: self.site_id, partial }).is_ok()
    }

    /// Come back from the dead with the protocol states already fresh
    /// (wiped at the crash): close the outage ledger and fast-forward into
    /// the current protocol rounds via the coordinator's catch-up frames —
    /// FIFO delivery on the down link guarantees they precede any
    /// broadcast sent after the rejoin.
    fn revive(&mut self, catchup: Bytes) -> bool {
        if !self.dead {
            return true; // never sent by our coordinator; a no-op is safe
        }
        self.dead = false;
        if let Some(t) = self.down_since.take() {
            self.downtime += t.elapsed();
        }
        if catchup.is_empty() {
            return true;
        }
        self.handle_data(catchup)
    }

    /// A dead site discards broadcast data, but the per-epoch oracle needs
    /// every site to observe every roll exactly once: scan the packet for
    /// `EpochRoll` frames and record an all-zero epoch snapshot for each
    /// (the site's counts for the closing epoch were wiped into the loss
    /// ledger at the crash, or discarded on arrival).
    fn observe_rolls_dead(&mut self, payload: Bytes) -> bool {
        let n = self.protocols.len();
        let mut zero_snaps = 0usize;
        let res = visit_packet(payload, |item| {
            if let WireItem::EpochRoll { .. } = item {
                zero_snaps += 1;
            }
        });
        for _ in 0..zero_snaps {
            self.snaps.push(vec![0; n]);
        }
        if let Err(source) = res {
            return self.fault(ClusterError::Wire {
                context: "down packet",
                site: Some(self.site_id),
                source,
            });
        }
        true
    }

    /// Close an epoch at this site: flush everything produced before the
    /// roll (buffered updates and replies — per-site FIFO then guarantees
    /// the coordinator sees all of the closing epoch's traffic before the
    /// ack), snapshot the exact per-epoch deltas (states were fresh at the
    /// previous roll, so the local count *is* the delta), reset, and send
    /// the settlement control packet: one `Cumulative` frame per nonzero
    /// counter — the epoch's terminal sync — followed by the ack.
    fn roll_epoch(&mut self, epoch: u32) -> bool {
        if !self.batch.is_empty() {
            encode_event(&mut self.batch, &mut self.pkt);
        }
        if !self.flush() {
            return false;
        }
        let snap: Vec<u64> = self
            .states
            .iter()
            .enumerate()
            .map(|(c, st)| self.protocols[c].site_local_count(st))
            .collect();
        for (c, st) in self.states.iter_mut().enumerate() {
            *st = self.protocols[c].new_site();
        }
        // The packet buffer is empty after the flush; borrow it for the
        // control packet.
        for (c, &value) in snap.iter().enumerate() {
            if value > 0 {
                encode(
                    &Frame::Up { counter: c as u32, msg: UpMsg::Cumulative { value } },
                    &mut self.pkt,
                );
            }
        }
        encode(&Frame::EpochAck { epoch }, &mut self.pkt);
        self.snaps.push(snap);
        let payload = Bytes::copy_from_slice(&self.pkt);
        self.pkt.clear();
        self.up_tx.send(UpPacket::Control { site: self.site_id, payload }).is_ok()
    }

    /// Handle one down packet; returns `false` when the run is over (link
    /// gone) or this site faulted (the fault is forwarded up first).
    fn handle_down(&mut self, pkt: DownPacket) -> bool {
        match pkt {
            DownPacket::Data(payload) => {
                if self.dead {
                    return self.observe_rolls_dead(payload);
                }
                self.handle_data(payload)
            }
            // The down link is FIFO, so by the time the barrier is read
            // every earlier broadcast has been handled and its replies
            // sent — the flush below pushes anything still buffered onto
            // the (per-site FIFO) up link ahead of this ack. A dead site
            // never acks: the coordinator stopped expecting it when the
            // `Crashed` marker (which preceded this barrier) arrived.
            DownPacket::Flush(epoch) => {
                if self.dead {
                    return true;
                }
                if !self.flush() {
                    return false;
                }
                self.up_tx.send(UpPacket::FlushAck { epoch }).is_ok()
            }
            // The transport substrate failed on our down link: forward the
            // fault up so the coordinator aborts, and stop.
            DownPacket::Fault(error) => self.fault(error),
            // A transport-delivered kill order. Driver-injected faults
            // arrive in-band on the event link instead (`SiteFeed::Kill`,
            // for exact kill points); this arm keeps the wire variant
            // meaningful for transports that deliver one directly.
            DownPacket::Kill => {
                if !self.dead {
                    self.dying = true;
                }
                true
            }
            DownPacket::Revive(catchup) => self.revive(catchup),
        }
    }

    /// Decode and apply one broadcast-data payload (a down packet's, or a
    /// rejoin catch-up's — same frames, same rules).
    fn handle_data(&mut self, payload: Bytes) -> bool {
        let mut ok = true;
        let mut err: Option<ClusterError> = None;
        let res = visit_packet(payload, |item| {
            if !ok || err.is_some() {
                return;
            }
            match item {
                WireItem::Down { counter, msg } => {
                    let c = counter as usize;
                    if c >= self.protocols.len() {
                        err = Some(ClusterError::Protocol {
                            context: "down packet",
                            detail: format!(
                                "counter {counter} out of range ({} counters)",
                                self.protocols.len()
                            ),
                        });
                        return;
                    }
                    if let Some(reply) =
                        self.protocols[c].handle_down(&mut self.states[c], msg, &mut self.rng)
                    {
                        self.batch.push((counter, reply));
                    }
                }
                WireItem::EpochRoll { epoch } => ok = self.roll_epoch(epoch),
                WireItem::Up { .. } | WireItem::EpochAck { .. } => {
                    err = Some(ClusterError::Protocol {
                        context: "down packet",
                        detail: "up frame on a down link".into(),
                    });
                }
            }
        });
        if let Some(e) = err {
            return self.fault(e);
        }
        if let Err(source) = res {
            return self.fault(ClusterError::Wire {
                context: "down packet",
                site: Some(self.site_id),
                source,
            });
        }
        if !ok {
            return false;
        }
        if self.batch.is_empty() {
            return true;
        }
        // Sync replies are time-critical control traffic: encode
        // them behind whatever updates are already buffered and
        // force the flush.
        encode_event(&mut self.batch, &mut self.pkt);
        self.flush()
    }
}

/// Coordinator-side site lifecycle under fault injection (DESIGN.md §8).
/// `Dying` is the in-flight window between the kill order going down and
/// the site's terminal `Crashed` marker coming back up: updates from a
/// dying site are still applied normally (and forgotten wholesale when the
/// marker lands). FIFO on the driver and site links guarantees no site is
/// still `Dying` once every stream has closed, which is what keeps the
/// phase-2 flush-barrier accounting (`alive_sites` expected acks) exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteStatus {
    Alive,
    Dying,
    Dead,
}

/// Control-thread core shared by both coordinator shapes: the epoch-roll
/// machinery (DESIGN.md §5), the closed-epoch settlement ring, the down
/// links, and all accounting. Everything that must observe packets in
/// transport arrival order lives here; only per-counter protocol state
/// (decode + `handle_up`) is delegated to the shape-specific owner.
struct CtlCore<'a, P: CounterProtocol, D: DownSender> {
    protocols: &'a [P],
    k: usize,
    ring_cap: usize,
    down_txs: Vec<D>,
    roller: EpochRoller,
    /// Per-counter settlement accumulator for the closing epoch: each
    /// site's ack carries its exact per-epoch counts (the terminal sync
    /// that closes the epoch, mirroring how HYZ anchors every round).
    settle: Vec<u64>,
    /// Settled closed-epoch counts, oldest first, capped at `ring_cap`.
    closed_estimates: VecDeque<Vec<f64>>,
    /// Cumulative settled counts across *all* closed epochs — unlike the
    /// ring it never truncates, so `settled_cum + open` is always the
    /// whole-stream cumulative read (what a snapshot's readers see).
    settled_cum: Vec<f64>,
    stats: MessageStats,
    /// Broadcasts issued since the last flush barrier went out; a
    /// completed flush epoch with zero of these proves quiescence.
    downs_since_flush: u64,
    /// Snapshot publish hub; `None` mints nothing.
    hub: Option<SnapshotHub>,
    /// Events per epoch (0 when rolling is disabled); only used to stamp
    /// the approximate `events` field on mid-stream snapshots.
    boundary: u64,
    /// Sequence number of the last minted snapshot.
    snap_seq: u64,
    /// Per-site fault-injection lifecycle; all `Alive` on a clean run.
    status: Vec<SiteStatus>,
    /// Revive orders that arrived while the kill was still in flight
    /// (site `Dying`): applied as soon as the `Crashed` marker lands.
    pending_revive: Vec<bool>,
    /// Per-counter cache of the last round broadcast, `(round, p)` —
    /// `(0, 1.0)` before any broadcast and after every epoch roll. This is
    /// the rejoin catch-up source: a reviving site replays exactly these
    /// `NewRound` frames to re-INIT its protocols mid-round.
    rounds: Vec<(u32, f64)>,
    /// Churn accounting (all zero without injected faults).
    kills: u64,
    revives: u64,
    partial_final_packets: u64,
    partial_bytes_discarded: u64,
}

/// What processing one control packet moved: the epoch rolls to start now
/// and how many epochs *settled* (closed) while processing it — each
/// settlement is a valid snapshot cut.
struct ControlOutcome {
    rolls: Vec<u32>,
    closed: u64,
}

impl<'a, P: CounterProtocol, D: DownSender> CtlCore<'a, P, D> {
    fn new(
        protocols: &'a [P],
        k: usize,
        ring_cap: usize,
        down_txs: Vec<D>,
        hub: Option<SnapshotHub>,
        boundary: u64,
    ) -> Self {
        CtlCore {
            protocols,
            k,
            ring_cap,
            down_txs,
            roller: EpochRoller::new(k),
            settle: vec![0; protocols.len()],
            closed_estimates: VecDeque::new(),
            settled_cum: vec![0.0; protocols.len()],
            stats: MessageStats::default(),
            downs_since_flush: 0,
            hub,
            boundary,
            snap_seq: 0,
            status: vec![SiteStatus::Alive; k],
            pending_revive: vec![false; k],
            rounds: vec![(0, 1.0); protocols.len()],
            kills: 0,
            revives: 0,
            partial_final_packets: 0,
            partial_bytes_discarded: 0,
        }
    }

    /// Sites still expected to ack flush barriers: everything not `Dead`.
    /// Barriers only go out in phase 2, where FIFO guarantees no site is
    /// `Dying` (see the phase-1/phase-2 comments at the call sites).
    fn alive_sites(&self) -> usize {
        self.status.iter().filter(|s| **s != SiteStatus::Dead).count()
    }

    /// Driver-injected kill order: mark the site dying. The kill itself
    /// rides the driver→site event link in-band (`SiteFeed::Kill`, FIFO
    /// with the arrivals — exact kill points); this marker only sequences
    /// revives, deferring any that arrive before the site's terminal
    /// `Crashed` marker does. A kill for a site already dying or dead is
    /// a no-op (fail-stop: there is nothing left to kill twice).
    fn inject_kill(&mut self, site: usize) {
        if self.status[site] == SiteStatus::Alive {
            self.status[site] = SiteStatus::Dying;
        }
    }

    /// Driver fault injection. Applies a kill immediately; resolves a
    /// revive into "rejoin now" (`true`, the site is dead), a deferred
    /// rejoin (kill still in flight — FIFO forbids reviving a site that
    /// has not finished dying), or a no-op (site never died).
    fn handle_inject(&mut self, site: usize, kill: bool) -> Result<bool, ClusterError> {
        if site >= self.k {
            return Err(ClusterError::Protocol {
                context: "fault injection",
                detail: format!("fault for unknown site {site} (k = {})", self.k),
            });
        }
        if kill {
            self.inject_kill(site);
            return Ok(false);
        }
        match self.status[site] {
            SiteStatus::Dead => Ok(true),
            SiteStatus::Dying => {
                self.pending_revive[site] = true;
                Ok(false)
            }
            SiteStatus::Alive => Ok(false),
        }
    }

    /// The site's terminal `Crashed` marker arrived (the last packet on
    /// its FIFO up link — everything the site delivered is already
    /// applied). Account the torn final packet, if any: the site died
    /// mid-flush, so the truncated prefix is attributed to it and
    /// discarded whole — its updates came from local state that was wiped
    /// into the site's loss ledger, so applying even the decodable part
    /// would double-count. Marks the site dead in the roll machinery and
    /// returns whether that completed an in-flight epoch roll (the caller
    /// must then settle exactly as the site's own ack would have).
    fn record_crash(&mut self, site: usize, partial: &Bytes) -> Result<bool, ClusterError> {
        if site >= self.k {
            return Err(ClusterError::Protocol {
                context: "crash marker",
                detail: format!("crash marker from unknown site {site} (k = {})", self.k),
            });
        }
        if self.status[site] == SiteStatus::Dead {
            return Err(ClusterError::Protocol {
                context: "crash marker",
                detail: format!("site {site} crashed twice without a revive"),
            });
        }
        self.status[site] = SiteStatus::Dead;
        self.kills += 1;
        if !partial.is_empty() {
            self.partial_final_packets += 1;
            self.partial_bytes_discarded += partial.len() as u64;
        }
        Ok(self.roller.mark_dead(site))
    }

    /// Send the revive order with its catch-up payload: one `NewRound`
    /// frame per counter with an open round (from the round cache), so the
    /// returning site re-INITs its protocols mid-round. FIFO on the down
    /// link orders the catch-up ahead of every later broadcast, so the
    /// site can never observe round `r + 1` before `r`.
    fn send_revive(&mut self, site: usize) {
        self.revives += 1;
        self.status[site] = SiteStatus::Alive;
        self.pending_revive[site] = false;
        self.roller.mark_live(site);
        let mut buf = BytesMut::new();
        for (c, &(round, p)) in self.rounds.iter().enumerate() {
            if round > 0 {
                encode(
                    &Frame::Down { counter: c as u32, msg: DownMsg::NewRound { round, p } },
                    &mut buf,
                );
            }
        }
        self.stats.bytes += buf.len() as u64;
        let _ = self.down_txs[site].send(DownPacket::Revive(buf.freeze()));
    }

    /// An epoch roll restarts every protocol at round 0 on fresh state:
    /// reset the rejoin catch-up cache to match.
    fn reset_rounds(&mut self) {
        self.rounds.iter_mut().for_each(|r| *r = (0, 1.0));
    }

    /// Mint and publish a [`CounterSnapshot`] from the open-epoch
    /// estimates `open` (the caller exports them from whichever shape owns
    /// the coordinator state) plus the core's settled accumulators. Called
    /// only at epoch settlements — the one mid-stream moment the state is
    /// Definition-2-consistent (DESIGN.md §7). No-op without a hub.
    fn publish_snapshot(&mut self, open: &[f64]) {
        let Some(hub) = &self.hub else { return };
        self.snap_seq += 1;
        let epochs = self.roller.epochs_closed() as u64;
        hub.publish(CounterSnapshot {
            seq: self.snap_seq,
            events: epochs * self.boundary,
            epochs,
            finalized: false,
            open: open.to_vec(),
            settled: self.settled_cum.clone(),
            closed: self.closed_estimates.iter().cloned().collect(),
            exact: None,
        });
    }

    /// Whether settlements should mint snapshots (a hub is attached).
    fn minting(&self) -> bool {
        self.hub.is_some()
    }

    /// Send an encoded down payload to every site, accounting its bytes
    /// once per receiving site.
    fn send_down_all(&mut self, payload: Bytes) {
        self.stats.bytes += (self.k * payload.len()) as u64;
        for tx in &mut self.down_txs {
            let _ = tx.send(DownPacket::Data(payload.clone()));
        }
    }

    /// Issue one protocol broadcast (`Frame::Down`) to every site, with
    /// the paper's accounting: one logical broadcast, `k` down messages.
    fn issue_broadcast(&mut self, counter: u32, msg: DownMsg) {
        if let DownMsg::NewRound { round, p } = msg {
            self.rounds[counter as usize] = (round, p);
        }
        self.stats.broadcasts += 1;
        self.stats.down_messages += self.k as u64;
        self.downs_since_flush += 1;
        let mut buf = BytesMut::new();
        encode(&Frame::Down { counter, msg }, &mut buf);
        self.send_down_all(buf.freeze());
    }

    /// Broadcast `EpochRoll` (a control frame: bytes only, and it counts
    /// toward `downs_since_flush` so the quiescence handshake waits for
    /// the acks it will trigger).
    fn broadcast_roll(&mut self, epoch: u32) {
        self.downs_since_flush += 1;
        let mut buf = BytesMut::new();
        encode(&Frame::EpochRoll { epoch }, &mut buf);
        self.send_down_all(buf.freeze());
    }

    /// Send a flush barrier down every site link.
    fn send_flush(&mut self, epoch: u64) {
        for tx in &mut self.down_txs {
            let _ = tx.send(DownPacket::Flush(epoch));
        }
    }

    /// The driver crossed an epoch boundary. Returns the epoch to start
    /// closing now (the caller resets open-epoch protocol state and
    /// broadcasts the roll), or `None` when one is already in flight (the
    /// request queues inside the roller).
    fn request_roll(&mut self) -> Option<u32> {
        self.roller.request()
    }

    /// All sites acked: the epoch is settled — freeze the summed
    /// settlements into the ring (and the never-truncating cumulative
    /// accumulator). Returns a queued roll to start next.
    fn close_epoch(&mut self) -> Option<u32> {
        let settled: Vec<f64> = self.settle.iter().map(|&v| v as f64).collect();
        self.settle.iter_mut().for_each(|v| *v = 0);
        for (cum, &s) in self.settled_cum.iter_mut().zip(&settled) {
            *cum += s;
        }
        if self.closed_estimates.len() == self.ring_cap {
            self.closed_estimates.pop_front();
        }
        self.closed_estimates.push_back(settled);
        self.roller.finish()
    }

    /// One control packet from `site`: the site's settlement — exact
    /// per-epoch counts as `Cumulative` frames for its nonzero counters —
    /// followed by its `Frame::EpochAck`. Bytes count, packet/message
    /// tallies do not (lifecycle traffic, DESIGN.md §4). Returns the
    /// epochs whose rolls must start now (completing an ack can release a
    /// queued roll) plus how many epochs settled — each settlement is a
    /// snapshot cut the caller must mint at *before* starting the rolls.
    fn handle_control(
        &mut self,
        site: usize,
        payload: Bytes,
    ) -> Result<ControlOutcome, ClusterError> {
        if site >= self.k {
            return Err(ClusterError::Protocol {
                context: "control packet",
                detail: format!("packet from unknown site {site} (k = {})", self.k),
            });
        }
        self.stats.bytes += payload.len() as u64;
        let mut err: Option<ClusterError> = None;
        let mut rolls = Vec::new();
        let mut closed = 0u64;
        let res = visit_packet(payload, |item| {
            if err.is_some() {
                return;
            }
            match item {
                WireItem::Up { counter, msg: UpMsg::Cumulative { value } } => {
                    let c = counter as usize;
                    if c >= self.settle.len() {
                        err = Some(ClusterError::Protocol {
                            context: "control packet",
                            detail: format!(
                                "settlement for counter {counter} out of range ({} counters)",
                                self.settle.len()
                            ),
                        });
                        return;
                    }
                    self.settle[c] += value;
                }
                WireItem::EpochAck { epoch } => {
                    // The roller's preconditions are transport-reachable
                    // here (a confused peer can ack an epoch that is not
                    // closing), so guard them instead of asserting.
                    if !self.roller.rolling() || epoch != self.roller.epochs_closed() {
                        err = Some(ClusterError::Protocol {
                            context: "control packet",
                            detail: format!("unexpected epoch ack {epoch} from site {site}"),
                        });
                        return;
                    }
                    if self.roller.ack(site, epoch) {
                        closed += 1;
                        if let Some(next) = self.close_epoch() {
                            rolls.push(next);
                        }
                    }
                }
                other => {
                    err = Some(ClusterError::Protocol {
                        context: "control packet",
                        detail: format!("non-control frame {other:?} in a control packet"),
                    });
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        res.map_err(|source| ClusterError::Wire {
            context: "control packet",
            site: Some(site),
            source,
        })?;
        Ok(ControlOutcome { rolls, closed })
    }

    /// Close out the run into a [`CoordOut`].
    fn finish(
        self,
        estimates: Vec<f64>,
        first_packet: Option<Instant>,
        last_packet: Instant,
        flush_epochs: u64,
    ) -> CoordOut {
        CoordOut {
            epochs: self.roller.epochs_closed() as u64,
            closed_estimates: self.closed_estimates.into_iter().collect(),
            settled_totals: self.settled_cum,
            stats: self.stats,
            estimates,
            busy: match first_packet {
                Some(f) => last_packet.duration_since(f),
                None => Duration::ZERO,
            },
            flush_epochs,
            kills: self.kills,
            revives: self.revives,
            partial_final_packets: self.partial_final_packets,
            partial_bytes_discarded: self.partial_bytes_discarded,
        }
    }
}

/// What a coordinator (either shape) hands back to the driver.
struct CoordOut {
    stats: MessageStats,
    estimates: Vec<f64>,
    closed_estimates: Vec<Vec<f64>>,
    settled_totals: Vec<f64>,
    epochs: u64,
    busy: Duration,
    flush_epochs: u64,
    kills: u64,
    revives: u64,
    partial_final_packets: u64,
    partial_bytes_discarded: u64,
}

/// Single-thread coordinator: the control core plus all per-counter
/// open-epoch protocol state, decoded and applied inline.
struct InlineCoord<'a, P: CounterProtocol, D: DownSender> {
    core: CtlCore<'a, P, D>,
    /// Open-epoch coordinator state, one per counter.
    coords: Vec<P::Coord>,
    /// Reused open-estimate slab for snapshot minting (one bounded
    /// `snapshot_into` sweep per mint, no per-mint allocation here).
    snap_buf: Vec<f64>,
}

impl<'a, P: CounterProtocol, D: DownSender> InlineCoord<'a, P, D> {
    fn new(
        protocols: &'a [P],
        k: usize,
        ring_cap: usize,
        down_txs: Vec<D>,
        hub: Option<SnapshotHub>,
        boundary: u64,
    ) -> Self {
        InlineCoord {
            core: CtlCore::new(protocols, k, ring_cap, down_txs, hub, boundary),
            coords: protocols.iter().map(|p| p.new_coord(k)).collect(),
            snap_buf: vec![0.0; protocols.len()],
        }
    }

    /// Apply one decoded counter update from `site`. Updates from a site
    /// that has not yet acked the in-flight roll were sent before it
    /// rolled (FIFO links make this attribution exact) and belong to the
    /// *closing* epoch: they are counted but dropped, because the site's
    /// settlement — its exact per-epoch counts, carried by the ack that
    /// follows them — supersedes anything they could contribute. A closing
    /// epoch cannot keep running its protocol: a sync is a global barrier,
    /// and sites already in the new epoch would answer a cross-epoch sync
    /// as stale, wedging it forever.
    fn apply_update(&mut self, site: usize, cid: u32, up: UpMsg) -> Result<(), ClusterError> {
        let c = cid as usize;
        if c >= self.core.protocols.len() {
            return Err(ClusterError::Protocol {
                context: "up packet",
                detail: format!(
                    "counter {cid} out of range ({} counters)",
                    self.core.protocols.len()
                ),
            });
        }
        self.core.stats.up_messages += 1;
        if self.core.roller.is_stale(site) {
            return Ok(());
        }
        if let Some(down) = self.core.protocols[c].handle_up(&mut self.coords[c], site, up) {
            self.core.issue_broadcast(cid, down);
        }
        Ok(())
    }

    /// One multi-event update packet from `site`, decoded in a single
    /// allocation-free pass over the buffer.
    fn handle_updates(&mut self, site: usize, payload: Bytes) -> Result<(), ClusterError> {
        if site >= self.core.k {
            return Err(ClusterError::Protocol {
                context: "up packet",
                detail: format!("packet from unknown site {site} (k = {})", self.core.k),
            });
        }
        self.core.stats.packets += 1;
        self.core.stats.bytes += payload.len() as u64;
        let mut err: Option<ClusterError> = None;
        let res = visit_packet(payload, |item| {
            if err.is_some() {
                return;
            }
            match item {
                WireItem::Up { counter, msg } => {
                    if let Err(e) = self.apply_update(site, counter, msg) {
                        err = Some(e);
                    }
                }
                WireItem::Down { .. } | WireItem::EpochRoll { .. } => {
                    err = Some(ClusterError::Protocol {
                        context: "up packet",
                        detail: format!("down frame from site {site} on the up path"),
                    });
                }
                WireItem::EpochAck { .. } => {
                    err = Some(ClusterError::Protocol {
                        context: "up packet",
                        detail: format!("epoch ack from site {site} outside a control packet"),
                    });
                }
            }
        });
        if let Some(e) = err {
            return Err(e);
        }
        res.map_err(|source| ClusterError::Wire { context: "up packet", site: Some(site), source })
    }

    /// Mint and publish a snapshot from the current open estimates (no-op
    /// without a hub).
    fn mint(&mut self) {
        if !self.core.minting() {
            return;
        }
        dsbn_counters::protocol::snapshot_into(
            self.core.protocols,
            &self.coords,
            &mut self.snap_buf,
        );
        self.core.publish_snapshot(&self.snap_buf);
    }

    /// Begin closing `epoch`: swap in fresh open-epoch coordinators (the
    /// old states are superseded by the incoming settlements) and
    /// broadcast `EpochRoll`.
    fn start_roll(&mut self, epoch: u32) {
        self.coords = self.core.protocols.iter().map(|p| p.new_coord(self.core.k)).collect();
        self.core.reset_rounds();
        // Fresh coordinator banks assume all k sites contribute: re-forget
        // the dead roster. A fresh bank has no sync or report in flight,
        // so the forget can never need to broadcast.
        for site in 0..self.core.k {
            if self.core.status[site] == SiteStatus::Dead {
                for (c, p) in self.core.protocols.iter().enumerate() {
                    let down = p.site_crashed(&mut self.coords[c], site);
                    debug_assert!(down.is_none(), "crash-forget on fresh state broadcast");
                }
            }
        }
        self.core.broadcast_roll(epoch);
    }

    fn request_roll(&mut self) {
        if let Some(epoch) = self.core.request_roll() {
            self.start_roll(epoch);
            self.settle_instant_rolls();
        }
    }

    /// A roll whose every non-dead site has already acked — which happens
    /// the moment it starts when *all* sites are dead (the roller pre-fills
    /// the dead roster) — settles immediately, exactly as a final ack
    /// would have; chained for queued requests.
    fn settle_instant_rolls(&mut self) {
        while self.core.roller.rolling() && self.core.roller.all_acked() {
            self.mint();
            match self.core.close_epoch() {
                Some(next) => self.start_roll(next),
                None => break,
            }
        }
    }

    /// A site's terminal `Crashed` marker: complete any roll it was the
    /// last holdout of (mint + settle *before* forgetting, exactly as its
    /// own ack would have — the settlement reflects what every site
    /// actually reported), then forget the dead site's contribution in
    /// every open-epoch counter, then apply a revive that arrived while
    /// the kill was still in flight.
    fn handle_crashed(&mut self, site: usize, partial: Bytes) -> Result<(), ClusterError> {
        let completed = self.core.record_crash(site, &partial)?;
        if completed {
            self.mint();
            if let Some(next) = self.core.close_epoch() {
                self.start_roll(next);
            }
            self.settle_instant_rolls();
        }
        for (c, p) in self.core.protocols.iter().enumerate() {
            if let Some(down) = p.site_crashed(&mut self.coords[c], site) {
                self.core.issue_broadcast(c as u32, down);
            }
        }
        if self.core.pending_revive[site] {
            self.rejoin(site);
        }
        Ok(())
    }

    /// Re-admit a dead site: give every counter protocol its rejoin hook
    /// (returns are discarded — the hook's announcement is the current
    /// round, which the revive catch-up payload below already carries, so
    /// re-broadcasting it to the whole cluster would only be redundant
    /// traffic), then send the revive order down the site's link.
    fn rejoin(&mut self, site: usize) {
        for (c, p) in self.core.protocols.iter().enumerate() {
            let _ = p.rejoin_site(&mut self.coords[c], site);
        }
        self.core.send_revive(site);
    }

    fn handle_control(&mut self, site: usize, payload: Bytes) -> Result<(), ClusterError> {
        let outcome = self.core.handle_control(site, payload)?;
        // An epoch settled while processing this packet: mint a snapshot
        // at the settlement, *before* any queued roll resets the open
        // coordinators — the open estimates still belong to the epoch the
        // snapshot's readers will see as open.
        if outcome.closed > 0 {
            self.mint();
        }
        for epoch in outcome.rolls {
            self.start_roll(epoch);
        }
        self.settle_instant_rolls();
        Ok(())
    }
}

/// Capacity of each control-thread → shard-worker queue. Deliberately
/// shallow (see the spawn site): worker lag directly delays round
/// feedback to the sites, so the queue bounds how far sites can run ahead
/// of the protocol state, keeping sharded message counts in the
/// single-thread band.
const WORKER_QUEUE: usize = 16;

/// Control thread → shard worker traffic. Every worker receives every
/// update packet (decode is shared, application is sharded — the packet
/// payload is an `Arc`'d [`Bytes`], so the fan-out clones are O(1)), plus
/// the two ordering marks the control thread injects: `Roll` at exactly
/// the point the open epoch's state must reset, and `Barrier` during the
/// quiescence handshake.
enum WorkerMsg {
    Updates {
        site: usize,
        payload: Bytes,
        /// Whether the control thread's roller attributed this packet to
        /// the closing epoch at forwarding time (the roller only moves on
        /// control packets, which are strictly ordered against update
        /// packets in the merged inbox — so this equals what the
        /// single-thread coordinator would have computed at apply time).
        stale: bool,
    },
    Roll,
    Barrier,
    /// Snapshot mark (DESIGN.md §7): export the shard's open-epoch
    /// estimates *at this point in the forwarded packet sequence* and
    /// reply with [`WorkerReply::Estimates`]. The control thread injects
    /// it at an epoch settlement, before the next `Roll`, so the slice
    /// reflects exactly the packets a single-thread coordinator would
    /// have applied when minting.
    Snapshot,
    /// Site crashed: forget its contribution in this shard's open-epoch
    /// state at exactly this point in the forwarded packet sequence (the
    /// control thread injects it when the `Crashed` marker lands, after
    /// any roll/mint the marker completed — the same mint-before-forget
    /// order as the inline coordinator).
    Crashed {
        site: usize,
    },
    /// Site rejoined after a crash (mirror of `Crashed`).
    Rejoined {
        site: usize,
    },
}

/// Shard worker → control thread replies (one shared unbounded channel, so
/// workers never block and the control thread can always drain).
#[derive(Debug)]
enum WorkerReply {
    /// A `handle_up` produced a broadcast; the control thread issues it
    /// (accounting + fan-out stay in transport order on one thread).
    Broadcast { counter: u32, msg: DownMsg },
    /// All messages before the barrier have been applied.
    BarrierAck,
    /// This shard's open-epoch estimates at a `Snapshot` mark — one
    /// `CounterLayout`-aligned slice of the snapshot the control thread
    /// is assembling.
    Estimates { worker: usize, estimates: Vec<f64> },
    /// This worker hit a decode/protocol error; the run must abort.
    Fault(ClusterError),
    /// Final shard estimates + accounting, sent when the msg channel
    /// disconnects.
    Final { worker: usize, up_messages: u64, estimates: Vec<f64> },
}

/// One shard worker: owns the open-epoch coordinator state for the
/// contiguous counter range `range`, applies exactly the updates falling
/// in it, and reports broadcasts/faults/estimates on the shared reply
/// channel.
struct ShardWorker<'a, P: CounterProtocol> {
    protocols: &'a [P],
    k: usize,
    worker: usize,
    range: Range<usize>,
    /// Open-epoch coordinator state for `range` (index `i` holds counter
    /// `range.start + i`).
    coords: Vec<P::Coord>,
    /// Paper-accounting share: updates this shard owns (counted even when
    /// stale-dropped, mirroring the single-thread coordinator).
    up_messages: u64,
    /// Crashed-site roster: re-forgotten on every `Roll` (fresh banks
    /// assume all k sites contribute), exactly as the inline coordinator's
    /// `start_roll` re-applies its dead roster.
    dead_sites: Vec<bool>,
    reply_tx: Sender<WorkerReply>,
    /// After a fault this worker keeps draining its queue (acking
    /// barriers) so the control thread can never block on a full worker
    /// channel, but applies nothing further.
    poisoned: bool,
}

impl<P: CounterProtocol> ShardWorker<'_, P> {
    fn fault(&mut self, error: ClusterError) {
        let _ = self.reply_tx.send(WorkerReply::Fault(error));
        self.poisoned = true;
    }

    /// Forget a crashed site in this shard's open-epoch state; any
    /// broadcast the forget triggers (e.g. HYZ completing a sync the dead
    /// site was the last holdout of) is issued by the control thread like
    /// any other reply.
    fn forget_site(&mut self, site: usize) {
        for (i, c) in self.range.clone().enumerate() {
            if let Some(down) = self.protocols[c].site_crashed(&mut self.coords[i], site) {
                let _ = self.reply_tx.send(WorkerReply::Broadcast { counter: c as u32, msg: down });
            }
        }
    }

    fn handle_updates(&mut self, site: usize, payload: Bytes, stale: bool) {
        let mut err: Option<ClusterError> = None;
        let res = visit_packet(payload, |item| {
            if err.is_some() {
                return;
            }
            match item {
                WireItem::Up { counter, msg } => {
                    let c = counter as usize;
                    if c >= self.protocols.len() {
                        err = Some(ClusterError::Protocol {
                            context: "up packet",
                            detail: format!(
                                "counter {counter} out of range ({} counters)",
                                self.protocols.len()
                            ),
                        });
                        return;
                    }
                    if !self.range.contains(&c) {
                        return;
                    }
                    self.up_messages += 1;
                    if stale {
                        return;
                    }
                    let i = c - self.range.start;
                    if let Some(down) = self.protocols[c].handle_up(&mut self.coords[i], site, msg)
                    {
                        let _ = self.reply_tx.send(WorkerReply::Broadcast { counter, msg: down });
                    }
                }
                WireItem::Down { .. } | WireItem::EpochRoll { .. } => {
                    err = Some(ClusterError::Protocol {
                        context: "up packet",
                        detail: format!("down frame from site {site} on the up path"),
                    });
                }
                WireItem::EpochAck { .. } => {
                    err = Some(ClusterError::Protocol {
                        context: "up packet",
                        detail: format!("epoch ack from site {site} outside a control packet"),
                    });
                }
            }
        });
        if let Some(e) = err {
            self.fault(e);
            return;
        }
        if let Err(source) = res {
            self.fault(ClusterError::Wire { context: "up packet", site: Some(site), source });
        }
    }

    fn run(mut self, rx: Receiver<WorkerMsg>) {
        while let Ok(msg) = rx.recv() {
            match msg {
                WorkerMsg::Updates { site, payload, stale } => {
                    if !self.poisoned {
                        self.handle_updates(site, payload, stale);
                    }
                }
                WorkerMsg::Roll => {
                    if !self.poisoned {
                        for (i, c) in self.range.clone().enumerate() {
                            self.coords[i] = self.protocols[c].new_coord(self.k);
                        }
                        // Fresh banks assume all k sites contribute:
                        // re-forget the dead roster (never broadcasts on
                        // fresh state — no sync can be in flight).
                        for site in 0..self.k {
                            if self.dead_sites[site] {
                                self.forget_site(site);
                            }
                        }
                    }
                }
                WorkerMsg::Crashed { site } => {
                    if !self.poisoned {
                        self.dead_sites[site] = true;
                        self.forget_site(site);
                    }
                }
                WorkerMsg::Rejoined { site } => {
                    if !self.poisoned {
                        self.dead_sites[site] = false;
                        // Returns discarded, as in the inline coordinator:
                        // the revive catch-up payload already announces the
                        // current round to the rejoining site.
                        for (i, c) in self.range.clone().enumerate() {
                            let _ = self.protocols[c].rejoin_site(&mut self.coords[i], site);
                        }
                    }
                }
                WorkerMsg::Barrier => {
                    let _ = self.reply_tx.send(WorkerReply::BarrierAck);
                }
                WorkerMsg::Snapshot => {
                    // Reply even when poisoned (the control thread sees
                    // our Fault first on the per-producer-FIFO reply
                    // channel and aborts; an unanswered mark could
                    // otherwise wedge the mint collection).
                    let mut estimates = vec![0.0; self.range.len()];
                    dsbn_counters::protocol::snapshot_into(
                        &self.protocols[self.range.clone()],
                        &self.coords,
                        &mut estimates,
                    );
                    let _ = self
                        .reply_tx
                        .send(WorkerReply::Estimates { worker: self.worker, estimates });
                }
            }
        }
        // Msg channel disconnected: the run is over — report this shard's
        // estimates and accounting share.
        let mut estimates = vec![0.0; self.range.len()];
        dsbn_counters::protocol::snapshot_into(
            &self.protocols[self.range.clone()],
            &self.coords,
            &mut estimates,
        );
        let _ = self.reply_tx.send(WorkerReply::Final {
            worker: self.worker,
            up_messages: self.up_messages,
            estimates,
        });
    }
}

/// Sharded coordinator control thread: the control core plus the worker
/// fan-out. Packets are forwarded to every worker in transport arrival
/// order; broadcasts come back as replies and are issued (accounted +
/// fanned out) here, on the one thread that owns the down links.
struct ShardedCoord<'a, P: CounterProtocol, D: DownSender> {
    core: CtlCore<'a, P, D>,
    worker_txs: Vec<Sender<WorkerMsg>>,
}

impl<'a, P: CounterProtocol, D: DownSender> ShardedCoord<'a, P, D> {
    fn handle_updates(&mut self, site: usize, payload: Bytes) -> Result<(), ClusterError> {
        if site >= self.core.k {
            return Err(ClusterError::Protocol {
                context: "up packet",
                detail: format!("packet from unknown site {site} (k = {})", self.core.k),
            });
        }
        self.core.stats.packets += 1;
        self.core.stats.bytes += payload.len() as u64;
        // The roller can only move on control packets, which this thread
        // serializes against update packets — so one staleness tag per
        // packet is exactly the per-update value the single-thread
        // coordinator computes.
        let stale = self.core.roller.is_stale(site);
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Updates { site, payload: payload.clone(), stale });
        }
        Ok(())
    }

    /// Begin closing `epoch`: a `Roll` mark in every worker's (FIFO)
    /// queue resets shard state at exactly this point in the packet
    /// sequence, then the roll broadcast goes down.
    fn start_roll(&mut self, epoch: u32) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Roll);
        }
        self.core.reset_rounds();
        self.core.broadcast_roll(epoch);
    }

    fn request_roll(
        &mut self,
        plan: &ShardPlan,
        reply_rx: &Receiver<WorkerReply>,
    ) -> Result<(), ClusterError> {
        if let Some(epoch) = self.core.request_roll() {
            self.start_roll(epoch);
            self.settle_instant_rolls(plan, reply_rx)?;
        }
        Ok(())
    }

    /// Sharded twin of the inline coordinator's `settle_instant_rolls`:
    /// with every site dead a freshly started roll is already fully acked.
    fn settle_instant_rolls(
        &mut self,
        plan: &ShardPlan,
        reply_rx: &Receiver<WorkerReply>,
    ) -> Result<(), ClusterError> {
        while self.core.roller.rolling() && self.core.roller.all_acked() {
            if self.core.minting() {
                self.mint_snapshot(plan, reply_rx)?;
            }
            match self.core.close_epoch() {
                Some(next) => self.start_roll(next),
                None => break,
            }
        }
        Ok(())
    }

    /// Sharded twin of the inline coordinator's `handle_crashed`. The
    /// `Crashed` forget mark goes down the worker queues *after* any
    /// roll/mint the marker completed, preserving the mint-before-forget
    /// order (the minted snapshot reflects pre-crash state, exactly as a
    /// single-thread coordinator would observe it).
    fn handle_crashed(
        &mut self,
        site: usize,
        partial: Bytes,
        plan: &ShardPlan,
        reply_rx: &Receiver<WorkerReply>,
    ) -> Result<(), ClusterError> {
        let completed = self.core.record_crash(site, &partial)?;
        if completed {
            if self.core.minting() {
                self.mint_snapshot(plan, reply_rx)?;
            }
            if let Some(next) = self.core.close_epoch() {
                self.start_roll(next);
            }
            self.settle_instant_rolls(plan, reply_rx)?;
        }
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Crashed { site });
        }
        if self.core.pending_revive[site] {
            self.rejoin(site);
        }
        Ok(())
    }

    /// Re-admit a dead site: the rejoin mark goes down every worker's
    /// FIFO queue, then the revive order (with its mid-round catch-up)
    /// goes down the site's link.
    fn rejoin(&mut self, site: usize) {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Rejoined { site });
        }
        self.core.send_revive(site);
    }

    fn handle_control(
        &mut self,
        site: usize,
        payload: Bytes,
        plan: &ShardPlan,
        reply_rx: &Receiver<WorkerReply>,
    ) -> Result<(), ClusterError> {
        let outcome = self.core.handle_control(site, payload)?;
        // Mint at the settlement, before any queued roll resets shard
        // state (mirrors the inline coordinator's ordering exactly).
        if outcome.closed > 0 && self.core.minting() {
            self.mint_snapshot(plan, reply_rx)?;
        }
        for epoch in outcome.rolls {
            self.start_roll(epoch);
        }
        self.settle_instant_rolls(plan, reply_rx)
    }

    /// Assemble and publish a snapshot from the shard workers: a
    /// `Snapshot` mark goes down every worker's FIFO queue (so each shard
    /// exports its state at exactly this point in the forwarded packet
    /// sequence), then the control thread collects the K
    /// `CounterLayout`-aligned slices into one open-estimate slab —
    /// issuing any interleaved broadcast replies while it waits, exactly
    /// as the flush-barrier collection does — and publishes. Workers
    /// never block on the unbounded reply channel, so the wait cannot
    /// deadlock; it only stalls ingest for the bounded K-reply exchange.
    fn mint_snapshot(
        &mut self,
        plan: &ShardPlan,
        reply_rx: &Receiver<WorkerReply>,
    ) -> Result<(), ClusterError> {
        for tx in &self.worker_txs {
            let _ = tx.send(WorkerMsg::Snapshot);
        }
        let mut open = vec![0.0; self.core.protocols.len()];
        let mut slices = 0usize;
        while slices < self.worker_txs.len() {
            match reply_rx.recv() {
                Ok(WorkerReply::Broadcast { counter, msg }) => {
                    self.core.issue_broadcast(counter, msg)
                }
                Ok(WorkerReply::Estimates { worker, estimates }) => {
                    let range = plan.range(worker);
                    if estimates.len() != range.len() {
                        return Err(ClusterError::Protocol {
                            context: "sharded coordinator",
                            detail: format!(
                                "worker {worker} snapshotted {} estimates for a {}-counter shard",
                                estimates.len(),
                                range.len()
                            ),
                        });
                    }
                    open[range].copy_from_slice(&estimates);
                    slices += 1;
                }
                Ok(WorkerReply::Fault(e)) => return Err(e),
                Ok(other) => {
                    return Err(ClusterError::Protocol {
                        context: "sharded coordinator",
                        detail: format!("unexpected worker reply {other:?} during a snapshot"),
                    })
                }
                Err(_) => {
                    return Err(ClusterError::Transport(
                        "coordinator worker disconnected mid-run".into(),
                    ))
                }
            }
        }
        self.core.publish_snapshot(&open);
        Ok(())
    }

    fn handle_reply(&mut self, reply: Result<WorkerReply, RecvError>) -> Result<(), ClusterError> {
        match reply {
            Ok(WorkerReply::Broadcast { counter, msg }) => {
                self.core.issue_broadcast(counter, msg);
                Ok(())
            }
            Ok(WorkerReply::Fault(e)) => Err(e),
            Ok(WorkerReply::BarrierAck) => Err(ClusterError::Protocol {
                context: "sharded coordinator",
                detail: "barrier ack outside a flush barrier".into(),
            }),
            Ok(WorkerReply::Estimates { .. }) => Err(ClusterError::Protocol {
                context: "sharded coordinator",
                detail: "snapshot estimates outside a snapshot mark".into(),
            }),
            Ok(WorkerReply::Final { .. }) => Err(ClusterError::Protocol {
                context: "sharded coordinator",
                detail: "worker final report during the run".into(),
            }),
            Err(_) => {
                Err(ClusterError::Transport("coordinator worker disconnected mid-run".into()))
            }
        }
    }
}

/// Single-thread coordinator loop (the baseline hot path: plain blocking
/// receives on the merged inbox, no select).
fn run_coordinator_inline<P: CounterProtocol, D: DownSender>(
    protocols: &[P],
    k: usize,
    ring_cap: usize,
    down_txs: Vec<D>,
    up_rx: Receiver<UpPacket>,
    hub: Option<SnapshotHub>,
    boundary: u64,
) -> Result<CoordOut, ClusterError> {
    let mut c = InlineCoord::new(protocols, k, ring_cap, down_txs, hub, boundary);
    let mut first_packet: Option<Instant> = None;
    let mut last_packet = Instant::now();
    let mut done = 0usize;
    // Phase 1: serve traffic until every site reports end-of-stream.
    // Every RollRequest is enqueued by the driver before it closes the
    // event channels, so all of them are dequeued before the k-th Done
    // (FIFO merged inbox).
    while done < k {
        match up_rx.recv() {
            Ok(UpPacket::Updates { site, payload }) => {
                let now = Instant::now();
                first_packet.get_or_insert(now);
                last_packet = now;
                c.handle_updates(site, payload)?;
            }
            Ok(UpPacket::Control { site, payload }) => c.handle_control(site, payload)?,
            Ok(UpPacket::Crashed { site, partial }) => c.handle_crashed(site, partial)?,
            Ok(UpPacket::Inject { site, kill }) => {
                if c.core.handle_inject(site, kill)? {
                    c.rejoin(site);
                }
            }
            Ok(UpPacket::RollRequest) => c.request_roll(),
            Ok(UpPacket::Done) => done += 1,
            Ok(UpPacket::FlushAck { epoch }) => {
                return Err(ClusterError::Protocol {
                    context: "coordinator",
                    detail: format!("flush ack (epoch {epoch}) before any flush barrier"),
                })
            }
            Ok(UpPacket::Fault { error, .. }) => return Err(error),
            Err(_) => break,
        }
    }
    // Phase 2: quiescence handshake. Repeat flush epochs until one
    // completes with no broadcast issued during it — then no reply can be
    // in flight and the run state is final. Terminates because with no new
    // arrivals a broadcast cascade is finite (sync request -> replies ->
    // new round -> silence), and every in-flight epoch roll completes
    // within one flush epoch (its acks precede the flush acks on the FIFO
    // up paths).
    let mut flush_epoch = 0u64;
    loop {
        flush_epoch += 1;
        c.core.downs_since_flush = 0;
        c.core.send_flush(flush_epoch);
        // Dead sites never ack a barrier (their `Crashed` marker — the
        // last packet on their FIFO up link — preceded every `Done`, so
        // the roster is final before the first barrier goes out; `Inject`
        // markers likewise all precede the driver-channel close, so no
        // site is still `Dying` here and the expectation cannot change
        // mid-epoch).
        let expected = c.core.alive_sites();
        let mut acks = 0usize;
        while acks < expected {
            match up_rx.recv() {
                Ok(UpPacket::Updates { site, payload }) => {
                    last_packet = Instant::now();
                    first_packet.get_or_insert(last_packet);
                    c.handle_updates(site, payload)?;
                }
                Ok(UpPacket::Control { site, payload }) => c.handle_control(site, payload)?,
                Ok(UpPacket::FlushAck { epoch }) => {
                    if epoch != flush_epoch {
                        return Err(ClusterError::Protocol {
                            context: "coordinator",
                            detail: format!(
                                "flush ack for epoch {epoch} during epoch {flush_epoch}"
                            ),
                        });
                    }
                    acks += 1;
                }
                Ok(UpPacket::Crashed { site, .. }) => {
                    return Err(ClusterError::Protocol {
                        context: "coordinator",
                        detail: format!("crash marker from site {site} after end of stream"),
                    })
                }
                Ok(UpPacket::Inject { .. }) => {
                    return Err(ClusterError::Protocol {
                        context: "coordinator",
                        detail: "fault injection after end of stream".into(),
                    })
                }
                Ok(UpPacket::RollRequest) => {
                    return Err(ClusterError::Protocol {
                        context: "coordinator",
                        detail: "roll request after end of stream".into(),
                    })
                }
                Ok(UpPacket::Done) => {
                    return Err(ClusterError::Protocol {
                        context: "coordinator",
                        detail: "done after all streams closed".into(),
                    })
                }
                Ok(UpPacket::Fault { error, .. }) => return Err(error),
                Err(_) => acks = expected, // all sites gone; nothing in flight
            }
        }
        if c.core.downs_since_flush == 0 {
            break;
        }
    }
    if c.core.roller.rolling() {
        return Err(ClusterError::Protocol {
            context: "coordinator",
            detail: "quiescent with an epoch roll still open".into(),
        });
    }
    let estimates: Vec<f64> =
        c.coords.iter().zip(protocols).map(|(co, p)| p.estimate(co)).collect();
    Ok(c.core.finish(estimates, first_packet, last_packet, flush_epoch))
}

/// Sharded coordinator control loop: same two phases as the inline
/// coordinator, but the control thread multiplexes the merged transport
/// inbox with the workers' reply channel, and each flush epoch ends with a
/// worker barrier — the flush acks prove the sites are drained, the
/// barrier proves the workers have applied everything forwarded before
/// those acks, so every broadcast they triggered is issued and counted
/// before the quiescence test.
#[allow(clippy::too_many_arguments)]
fn run_coordinator_sharded<P: CounterProtocol, D: DownSender>(
    protocols: &[P],
    plan: ShardPlan,
    k: usize,
    ring_cap: usize,
    down_txs: Vec<D>,
    up_rx: Receiver<UpPacket>,
    worker_txs: Vec<Sender<WorkerMsg>>,
    reply_rx: Receiver<WorkerReply>,
    hub: Option<SnapshotHub>,
    boundary: u64,
) -> Result<CoordOut, ClusterError> {
    let mut c = ShardedCoord {
        core: CtlCore::new(protocols, k, ring_cap, down_txs, hub, boundary),
        worker_txs,
    };
    let mut first_packet: Option<Instant> = None;
    let mut last_packet = Instant::now();
    let mut done = 0usize;
    while done < k {
        // The reply arm comes first: pending broadcasts must be issued
        // before more packets are forwarded, or the sites' round feedback
        // (NewRound probability drops) lags the stream arbitrarily and the
        // paper's message counts inflate. (The select polls arms in
        // order, so arm order is a priority.)
        crossbeam::channel::select! {
            recv(reply_rx) -> reply => c.handle_reply(reply)?,
            recv(up_rx) -> pkt => match pkt {
                Ok(UpPacket::Updates { site, payload }) => {
                    let now = Instant::now();
                    first_packet.get_or_insert(now);
                    last_packet = now;
                    c.handle_updates(site, payload)?;
                }
                Ok(UpPacket::Control { site, payload }) => {
                    c.handle_control(site, payload, &plan, &reply_rx)?
                }
                Ok(UpPacket::Crashed { site, partial }) => {
                    c.handle_crashed(site, partial, &plan, &reply_rx)?
                }
                Ok(UpPacket::Inject { site, kill }) => {
                    if c.core.handle_inject(site, kill)? {
                        c.rejoin(site);
                    }
                }
                Ok(UpPacket::RollRequest) => c.request_roll(&plan, &reply_rx)?,
                Ok(UpPacket::Done) => done += 1,
                Ok(UpPacket::FlushAck { epoch }) => {
                    return Err(ClusterError::Protocol {
                        context: "coordinator",
                        detail: format!("flush ack (epoch {epoch}) before any flush barrier"),
                    })
                }
                Ok(UpPacket::Fault { error, .. }) => return Err(error),
                Err(_) => break,
            },
        }
    }
    let mut flush_epoch = 0u64;
    loop {
        flush_epoch += 1;
        c.core.downs_since_flush = 0;
        c.core.send_flush(flush_epoch);
        // See the inline coordinator: FIFO ordering proves every `Crashed`
        // and `Inject` marker was handled in phase 1, so the roster is
        // final and dead sites are exempt from the barrier.
        let expected = c.core.alive_sites();
        let mut acks = 0usize;
        while acks < expected {
            crossbeam::channel::select! {
                recv(reply_rx) -> reply => c.handle_reply(reply)?,
                recv(up_rx) -> pkt => match pkt {
                    Ok(UpPacket::Updates { site, payload }) => {
                        last_packet = Instant::now();
                        first_packet.get_or_insert(last_packet);
                        c.handle_updates(site, payload)?;
                    }
                    Ok(UpPacket::Control { site, payload }) => {
                        c.handle_control(site, payload, &plan, &reply_rx)?
                    }
                    Ok(UpPacket::FlushAck { epoch }) => {
                        if epoch != flush_epoch {
                            return Err(ClusterError::Protocol {
                                context: "coordinator",
                                detail: format!(
                                    "flush ack for epoch {epoch} during epoch {flush_epoch}"
                                ),
                            });
                        }
                        acks += 1;
                    }
                    Ok(UpPacket::Crashed { site, .. }) => {
                        return Err(ClusterError::Protocol {
                            context: "coordinator",
                            detail: format!("crash marker from site {site} after end of stream"),
                        })
                    }
                    Ok(UpPacket::Inject { .. }) => {
                        return Err(ClusterError::Protocol {
                            context: "coordinator",
                            detail: "fault injection after end of stream".into(),
                        })
                    }
                    Ok(UpPacket::RollRequest) => {
                        return Err(ClusterError::Protocol {
                            context: "coordinator",
                            detail: "roll request after end of stream".into(),
                        })
                    }
                    Ok(UpPacket::Done) => {
                        return Err(ClusterError::Protocol {
                            context: "coordinator",
                            detail: "done after all streams closed".into(),
                        })
                    }
                    Ok(UpPacket::Fault { error, .. }) => return Err(error),
                    Err(_) => acks = expected,
                },
            }
        }
        // Worker barrier: per-producer FIFO means each worker's pending
        // broadcasts precede its ack on the reply channel, so by the time
        // all workers acked, every broadcast for updates forwarded before
        // the k-th flush ack has been issued and counted.
        for tx in &c.worker_txs {
            let _ = tx.send(WorkerMsg::Barrier);
        }
        let workers = c.worker_txs.len();
        let mut barrier_acks = 0usize;
        while barrier_acks < workers {
            match reply_rx.recv() {
                Ok(WorkerReply::Broadcast { counter, msg }) => c.core.issue_broadcast(counter, msg),
                Ok(WorkerReply::BarrierAck) => barrier_acks += 1,
                Ok(WorkerReply::Fault(e)) => return Err(e),
                Ok(WorkerReply::Estimates { .. }) => {
                    return Err(ClusterError::Protocol {
                        context: "sharded coordinator",
                        detail: "snapshot estimates outside a snapshot mark".into(),
                    })
                }
                Ok(WorkerReply::Final { .. }) => {
                    return Err(ClusterError::Protocol {
                        context: "sharded coordinator",
                        detail: "worker final report during the run".into(),
                    })
                }
                Err(_) => {
                    return Err(ClusterError::Transport(
                        "coordinator worker disconnected mid-run".into(),
                    ))
                }
            }
        }
        if c.core.downs_since_flush == 0 {
            break;
        }
    }
    if c.core.roller.rolling() {
        return Err(ClusterError::Protocol {
            context: "coordinator",
            detail: "quiescent with an epoch roll still open".into(),
        });
    }
    // Shutdown: close the worker queues; each worker drains, then reports
    // its shard's estimates, which stitch back by counter range.
    let ShardedCoord { mut core, worker_txs } = c;
    drop(worker_txs);
    let mut estimates = vec![0.0; protocols.len()];
    let mut finals = 0usize;
    while finals < plan.workers() {
        match reply_rx.recv() {
            Ok(WorkerReply::Final { worker, up_messages, estimates: shard }) => {
                let range = plan.range(worker);
                if shard.len() != range.len() {
                    return Err(ClusterError::Protocol {
                        context: "sharded coordinator",
                        detail: format!(
                            "worker {worker} reported {} estimates for a {}-counter shard",
                            shard.len(),
                            range.len()
                        ),
                    });
                }
                estimates[range].copy_from_slice(&shard);
                core.stats.up_messages += up_messages;
                finals += 1;
            }
            Ok(WorkerReply::Fault(e)) => return Err(e),
            Ok(other) => {
                return Err(ClusterError::Protocol {
                    context: "sharded coordinator",
                    detail: format!("unexpected worker reply {other:?} after quiescence"),
                })
            }
            Err(_) => {
                return Err(ClusterError::Transport(
                    "coordinator worker exited without a final report".into(),
                ))
            }
        }
    }
    Ok(core.finish(estimates, first_packet, last_packet, flush_epoch))
}

/// Resolve the configured [`CoordMode`] into a [`ShardPlan`] (or `None`
/// for the single-thread coordinator).
fn resolve_plan(
    workers: usize,
    shard_starts: Option<&[u32]>,
    n_counters: usize,
) -> Result<ShardPlan, ClusterError> {
    let bad = |detail: String| ClusterError::Protocol { context: "cluster config", detail };
    if workers == 0 {
        return Err(bad("sharded coordinator needs at least one worker".into()));
    }
    match shard_starts {
        Some(starts) => {
            if starts.len() != workers {
                return Err(bad(format!("{} shard starts for {workers} workers", starts.len())));
            }
            ShardPlan::from_starts(starts.to_vec(), n_counters).map_err(bad)
        }
        None => Ok(ShardPlan::even(n_counters, workers)),
    }
}

/// What a site thread hands back at exit: the final protocol states and
/// per-epoch exact snapshots (the oracle inputs), plus the site's churn
/// ledger.
struct SiteFinal<S> {
    site_id: usize,
    states: Vec<S>,
    snaps: Vec<Vec<u64>>,
    /// Per-counter increments wiped by crashes or discarded while dead.
    lost: Vec<u64>,
    /// Events discarded while dead without ever being ingested.
    events_lost: u64,
    downtime: Duration,
}

/// One site thread's serve loop, extracted so the spawn site can wrap it
/// in `catch_unwind` and turn an escaped panic — e.g. from a
/// caller-supplied protocol or `map_event` — into a typed in-band
/// [`ClusterError::WorkerPanicked`] instead of a silently discarded join.
fn run_site<P, F, U>(
    worker: &mut SiteWorker<'_, P, F, U>,
    down_rx: &Receiver<DownPacket>,
    event_rx: &Receiver<SiteFeed>,
) where
    P: CounterProtocol,
    F: Fn(&EventChunk, &mut Vec<u32>),
    U: UpSender,
{
    loop {
        crossbeam::channel::select! {
            recv(down_rx) -> pkt => match pkt {
                Ok(pkt) => {
                    if !worker.handle_down(pkt) {
                        return;
                    }
                }
                Err(_) => return,
            },
            recv(event_rx) -> chunk => match chunk {
                Ok(SiteFeed::Chunk(chunk)) => {
                    if !worker.handle_chunk(&chunk) {
                        return;
                    }
                }
                // The in-band kill order: arm the crash. It lands on the
                // next chunk (tearing its packet mid-frame) or at
                // end-of-stream, whichever comes first; a site already
                // dead has nothing left to kill (fail-stop).
                Ok(SiteFeed::Kill) => {
                    if !worker.dead {
                        worker.dying = true;
                    }
                }
                Err(_) => {
                    // Stream finished. A site still holding a kill order
                    // crashes here, with an empty partial packet (every
                    // chunk flushed at its boundary), so the coordinator
                    // always gets the terminal `Crashed` marker before
                    // this site's `Done` — the FIFO invariant phase 2
                    // relies on. Then announce and keep serving
                    // broadcasts and flush barriers until the coordinator
                    // closes our down link.
                    if worker.dying && !worker.crash() {
                        return;
                    }
                    let _ = worker.up_tx.send(UpPacket::Done);
                    while let Ok(pkt) = down_rx.recv() {
                        if !worker.handle_down(pkt) {
                            return;
                        }
                    }
                    return;
                }
            },
        }
    }
}

/// Run a chunked stream through the cluster over the default in-process
/// channel transport. See [`run_cluster_on`] for the parameters; this is
/// `run_cluster_on(&ChannelTransport, ...)`.
pub fn run_cluster<P, F, I>(
    protocols: &[P],
    config: &ClusterConfig,
    events: I,
    map_event: F,
) -> Result<ClusterReport, ClusterError>
where
    P: CounterProtocol + Sync,
    P::Site: Send,
    F: Fn(&EventChunk, &mut Vec<u32>) + Sync,
    I: Iterator<Item = EventChunk>,
{
    run_cluster_on(&ChannelTransport, protocols, config, events, map_event)
}

/// Run a chunked stream through the cluster over `transport`.
///
/// * `protocols` — one protocol instance per counter.
/// * `events` — the training stream as [`EventChunk`]s, consumed on the
///   caller thread (use [`dsbn_datagen::chunk_events`] or
///   [`dsbn_datagen::TrainingStream::chunks`] to produce them; incoming
///   chunk granularity is transport-only — the driver re-chunks per site
///   by [`ClusterConfig::chunk`], which is what governs wire behavior).
/// * `map_event` — maps a whole per-site chunk to the counter ids its
///   events increment, back to back at a fixed per-event stride (the
///   tracker's UPDATE logic, e.g. `CounterLayout::map_chunk` writing each
///   event's 2n family/parent counters of Algorithm 2); called on site
///   threads, once per delivered chunk rather than once per event.
///
/// Fails with a typed [`ClusterError`] — never a panic or a hung join —
/// when a packet fails to decode, a frame arrives where the protocol
/// forbids it, or the transport substrate errors.
pub fn run_cluster_on<T, P, F, I>(
    transport: &T,
    protocols: &[P],
    config: &ClusterConfig,
    events: I,
    map_event: F,
) -> Result<ClusterReport, ClusterError>
where
    T: Transport,
    P: CounterProtocol + Sync,
    P::Site: Send,
    F: Fn(&EventChunk, &mut Vec<u32>) + Sync,
    I: Iterator<Item = EventChunk>,
{
    assert!(config.k > 0, "need at least one site");
    assert!(config.chunk >= 1, "chunk must be >= 1");
    if let Some(b) = config.epoch_boundary {
        assert!(b >= 1, "epoch boundary must be >= 1");
        assert!(config.epoch_ring >= 1, "epoch ring must be >= 1");
    }
    for f in &config.faults {
        assert!(f.site < config.k, "fault targets site {} but k = {}", f.site, config.k);
        if let Some(r) = f.revive_at {
            assert!(r > f.kill_at, "site {} revive_at {r} <= kill_at {}", f.site, f.kill_at);
        }
    }
    let k = config.k;
    let plan = match &config.coord {
        CoordMode::SingleThread => None,
        CoordMode::Sharded { workers, shard_starts } => {
            Some(resolve_plan(*workers, shard_starts.as_deref(), protocols.len())?)
        }
    };
    let start = Instant::now();

    let Fabric { site_ups, driver_up, coord_rx, coord_downs, site_downs, pumps } =
        transport.connect(k, config.channel_capacity)?;

    let mut event_txs: Vec<Sender<SiteFeed>> = Vec::with_capacity(k);
    let mut event_rxs: Vec<Receiver<SiteFeed>> = Vec::with_capacity(k);
    for _ in 0..k {
        let (tx, rx) = bounded::<SiteFeed>(config.channel_capacity);
        event_txs.push(tx);
        event_rxs.push(rx);
    }
    // Final site states, oracle snapshots, and churn ledgers.
    let (state_tx, state_rx) = unbounded::<SiteFinal<P::Site>>();

    let result = std::thread::scope(|scope| {
        // --- site threads ---
        for (site_id, ((up_tx, down_rx), event_rx)) in
            site_ups.into_iter().zip(site_downs).zip(event_rxs).enumerate()
        {
            let state_tx = state_tx.clone();
            let map_event = &map_event;
            let seed = config.seed;
            let flush_bytes = config.flush_bytes;
            scope.spawn(move || {
                let mut worker = SiteWorker {
                    site_id,
                    protocols,
                    map_event,
                    up_tx,
                    flush_bytes,
                    states: protocols.iter().map(|p| p.new_site()).collect(),
                    snaps: Vec::new(),
                    rng: SmallRng::seed_from_u64(seed ^ (site_id as u64).wrapping_mul(0x9e37_79b9)),
                    ids: Vec::new(),
                    batch: Vec::new(),
                    pkt: BytesMut::new(),
                    dying: false,
                    dead: false,
                    lost: vec![0; protocols.len()],
                    events_lost: 0,
                    down_since: None,
                    downtime: Duration::ZERO,
                };
                // A panic out of the serve loop (protocol or `map_event`
                // code is caller-supplied) becomes an in-band typed fault,
                // so the coordinator aborts the run with it instead of the
                // driver discarding a poisoned join.
                let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_site(&mut worker, &down_rx, &event_rx);
                }))
                .is_err();
                if panicked {
                    let _ = worker.up_tx.send(UpPacket::Fault {
                        site: site_id,
                        error: ClusterError::WorkerPanicked { role: format!("site {site_id}") },
                    });
                }
                if let Some(t) = worker.down_since.take() {
                    worker.downtime += t.elapsed();
                }
                let _ = state_tx.send(SiteFinal {
                    site_id,
                    states: worker.states,
                    snaps: worker.snaps,
                    lost: worker.lost,
                    events_lost: worker.events_lost,
                    downtime: worker.downtime,
                });
            });
        }
        drop(state_tx);

        // --- coordinator thread (plus shard workers when sharded) ---
        let ring_cap = config.epoch_ring;
        let hub = config.publish.clone();
        let boundary = config.epoch_boundary.unwrap_or(0);
        let coord_handle = match &plan {
            None => scope.spawn(move || {
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    run_coordinator_inline(
                        protocols,
                        k,
                        ring_cap,
                        coord_downs,
                        coord_rx,
                        hub,
                        boundary,
                    )
                }))
                .unwrap_or_else(|_| {
                    Err(ClusterError::WorkerPanicked { role: "coordinator".into() })
                })
            }),
            Some(plan) => {
                let (reply_tx, reply_rx) = unbounded::<WorkerReply>();
                let mut worker_txs = Vec::with_capacity(plan.workers());
                for w in 0..plan.workers() {
                    // The worker queue must stay *shallow*: the control
                    // thread is a fast forwarder, and any depth here
                    // decouples the sites' round feedback (broadcast
                    // replies) from the stream — a deep queue lets sites
                    // run arbitrarily far ahead at a stale sampling
                    // probability, inflating the paper's message counts.
                    // A short bounded queue makes the control thread block
                    // on lagging workers, which backpressures the merged
                    // inbox and so the sites, restoring the single-thread
                    // coupling. (Workers never block on their reply
                    // channel, so this cannot deadlock.)
                    let (tx, rx) = bounded::<WorkerMsg>(WORKER_QUEUE);
                    worker_txs.push(tx);
                    let range = plan.range(w);
                    let reply_tx = reply_tx.clone();
                    scope.spawn(move || {
                        let coords = range.clone().map(|c| protocols[c].new_coord(k)).collect();
                        let panic_tx = reply_tx.clone();
                        let worker = ShardWorker {
                            protocols,
                            k,
                            worker: w,
                            range,
                            coords,
                            up_messages: 0,
                            dead_sites: vec![false; k],
                            reply_tx,
                            poisoned: false,
                        };
                        // A panicked shard worker reports a typed fault on
                        // the reply channel (the control thread aborts on
                        // it); its queue disconnects, so the control
                        // thread's sends fail fast instead of blocking.
                        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| worker.run(rx)))
                            .is_err()
                        {
                            let _ =
                                panic_tx.send(WorkerReply::Fault(ClusterError::WorkerPanicked {
                                    role: format!("shard worker {w}"),
                                }));
                        }
                    });
                }
                drop(reply_tx);
                let plan = plan.clone();
                scope.spawn(move || {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_coordinator_sharded(
                            protocols,
                            plan,
                            k,
                            ring_cap,
                            coord_downs,
                            coord_rx,
                            worker_txs,
                            reply_rx,
                            hub,
                            boundary,
                        )
                    }))
                    .unwrap_or_else(|_| {
                        Err(ClusterError::WorkerPanicked { role: "coordinator".into() })
                    })
                })
            }
        };

        // --- driver: feed events from the caller thread ---
        // Incoming chunks are re-chunked per destination site: each event
        // is routed by the partitioner and appended to that site's pending
        // chunk, which ships when it reaches `config.chunk` events. One
        // channel send thus carries a whole slab of events; `chunk = 1`
        // degenerates to one send per event.
        let mut assigner = SiteAssigner::new(config.partitioner, k);
        let mut driver_rng = SmallRng::seed_from_u64(config.seed ^ 0xd1f7);
        // Flatten the fault schedule into event-ordered injections. Every
        // injection rides the driver's up link as an `Inject` marker —
        // FIFO against `RollRequest`s and ahead of the channel close, so
        // the coordinator handles every one of them in phase 1 — and a
        // kill *additionally* rides the target site's event link as an
        // in-band `SiteFeed::Kill` (after flushing the site's pending
        // chunk), so the crash lands at the exact kill point regardless
        // of scheduling: the site crashes after ingesting precisely the
        // events routed to it first. The up-link `Inject` is enqueued
        // before the in-band marker, so the coordinator always observes
        // the injection (`Dying`) before the site's terminal `Crashed`
        // marker — revives that arrive mid-crash defer correctly.
        let mut injections: Vec<(u64, usize, bool)> = Vec::new();
        for f in &config.faults {
            injections.push((f.kill_at, f.site, true));
            if let Some(r) = f.revive_at {
                injections.push((r, f.site, false));
            }
        }
        injections.sort_unstable();
        let mut next_inject = 0usize;
        let mut n_events = 0u64;
        let chunk_cap = config.chunk;
        let mut builders: Vec<EventChunk> = (0..k).map(|_| EventChunk::new()).collect();
        'stream: for chunk in events {
            for ev in chunk.iter() {
                let site = assigner.assign(&mut driver_rng);
                builders[site].push_u32(ev);
                n_events += 1;
                if builders[site].len() >= chunk_cap {
                    let full = std::mem::replace(
                        &mut builders[site],
                        EventChunk::with_capacity(ev.len(), chunk_cap),
                    );
                    if event_txs[site].send(SiteFeed::Chunk(full)).is_err() {
                        break 'stream;
                    }
                }
                while next_inject < injections.len() && injections[next_inject].0 <= n_events {
                    let (_, site, kill) = injections[next_inject];
                    next_inject += 1;
                    if driver_up.send(UpPacket::Inject { site, kill }).is_err() {
                        break 'stream;
                    }
                    if kill {
                        if !builders[site].is_empty() {
                            let full = std::mem::replace(
                                &mut builders[site],
                                EventChunk::with_capacity(ev.len(), chunk_cap),
                            );
                            if event_txs[site].send(SiteFeed::Chunk(full)).is_err() {
                                break 'stream;
                            }
                        }
                        if event_txs[site].send(SiteFeed::Kill).is_err() {
                            break 'stream;
                        }
                    }
                }
                // The driver is the only party that sees the global event
                // count, so it requests epoch rolls — after flushing every
                // pending chunk, so all boundary events are on their way
                // first. The roll broadcast may still overtake events
                // queued on the (separate) event channels, so cluster
                // epoch boundaries are approximate — within channel depth
                // of `B` — while the per-epoch exact oracle stays exact
                // (sites snapshot at their own roll).
                if let Some(b) = config.epoch_boundary {
                    if n_events.is_multiple_of(b) {
                        for (site, builder) in builders.iter_mut().enumerate() {
                            if !builder.is_empty() {
                                let full = std::mem::replace(
                                    builder,
                                    EventChunk::with_capacity(ev.len(), chunk_cap),
                                );
                                if event_txs[site].send(SiteFeed::Chunk(full)).is_err() {
                                    break 'stream;
                                }
                            }
                        }
                        if driver_up.send(UpPacket::RollRequest).is_err() {
                            break 'stream;
                        }
                    }
                }
            }
        }
        for (site, builder) in builders.into_iter().enumerate() {
            if !builder.is_empty() {
                let _ = event_txs[site].send(SiteFeed::Chunk(builder));
            }
        }
        // Injections scheduled past the stream's end still fire rather
        // than silently vanishing when the stream is shorter than their
        // thresholds; they precede the driver-channel close, keeping them
        // in phase 1 — and a late kill's in-band marker precedes the
        // event-channel close, so the site crashes at end-of-stream (with
        // nothing buffered, an empty partial). Every scheduled kill lands.
        for &(_, site, kill) in &injections[next_inject..] {
            let _ = driver_up.send(UpPacket::Inject { site, kill });
            if kill {
                let _ = event_txs[site].send(SiteFeed::Kill);
            }
        }
        drop(driver_up);
        for tx in event_txs.drain(..) {
            drop(tx); // closes site event streams
        }

        // A coordinator panic is converted to a typed error inside the
        // thread; a panicked join here (out-of-memory in the unwind path,
        // say) gets the same typed error instead of a driver panic.
        let out = coord_handle
            .join()
            .map_err(|_| ClusterError::WorkerPanicked { role: "coordinator".into() })??;

        // Reconstruct the exact oracles from returned site states: the
        // cumulative per-counter totals, the per-epoch totals (from the
        // snapshots each site took at its rolls), and the open epoch's.
        let n_counters = protocols.len();
        let mut epoch_exact: Vec<Vec<u64>> = vec![vec![0u64; n_counters]; out.epochs as usize];
        let mut open_epoch_exact_totals = vec![0u64; n_counters];
        let mut churn = ChurnReport {
            kills: out.kills,
            revives: out.revives,
            partial_final_packets: out.partial_final_packets,
            partial_bytes_discarded: out.partial_bytes_discarded,
            lost_counts: vec![0; n_counters],
            site_downtime: vec![Duration::ZERO; k],
            events_lost: 0,
        };
        for fin in state_rx.iter() {
            // Dead sites record an all-zero snapshot per roll they slept
            // through, so the oracle invariant holds under churn too.
            assert_eq!(fin.snaps.len(), out.epochs as usize, "site missed an epoch roll");
            for (e, snap) in fin.snaps.iter().enumerate() {
                for (c, v) in snap.iter().enumerate() {
                    epoch_exact[e][c] += v;
                }
            }
            for (c, st) in fin.states.iter().enumerate() {
                open_epoch_exact_totals[c] += protocols[c].site_local_count(st);
            }
            for (c, v) in fin.lost.iter().enumerate() {
                churn.lost_counts[c] += v;
            }
            churn.events_lost += fin.events_lost;
            churn.site_downtime[fin.site_id] = fin.downtime;
        }
        let mut exact_totals = open_epoch_exact_totals.clone();
        for snap in &epoch_exact {
            for (c, v) in snap.iter().enumerate() {
                exact_totals[c] += v;
            }
        }
        // Retain the same ring of epochs as the estimates; anything beyond
        // the ring is *reported* as dropped, not silently truncated.
        let drop_n = epoch_exact.len().saturating_sub(config.epoch_ring);
        let epoch_exact_totals = epoch_exact.split_off(drop_n);
        debug_assert_eq!(epoch_exact_totals.len(), out.closed_estimates.len());

        Ok(ClusterReport {
            stats: out.stats,
            coordinator_busy: out.busy,
            wall_time: Duration::ZERO, // filled below
            events: n_events,
            flush_epochs: out.flush_epochs,
            estimates: out.estimates,
            exact_totals,
            epochs: out.epochs,
            dropped_epochs: drop_n as u64,
            epoch_estimates: out.closed_estimates,
            epoch_exact_totals,
            open_epoch_exact_totals,
            settled_totals: out.settled_totals,
            churn,
        })
    });
    // Transport pump threads hold the far ends of the links; everything
    // they bridge was dropped when the scope closed, so they are finishing
    // now — join them before returning (error or not).
    let mut pump_panicked = false;
    for p in pumps {
        if p.join().is_err() {
            pump_panicked = true;
        }
    }
    let mut report = result?;
    // A clean-looking run whose pump thread panicked still failed: the
    // report may silently miss traffic the pump dropped mid-unwind.
    if pump_panicked {
        return Err(ClusterError::WorkerPanicked { role: "transport pump".into() });
    }
    report.wall_time = start.elapsed();
    // Terminal snapshot: the coordinator has joined (no racing mid-stream
    // mint), the report carries the reconstructed exact oracle, and the
    // flush handshake proved this state is the run's final word.
    if let Some(hub) = &config.publish {
        hub.publish_final(&report);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_counters::wire::{frame_len, WireError};
    use dsbn_counters::{ExactProtocol, HyzProtocol};
    use dsbn_datagen::chunk_events;

    /// Route each event to counter 0 or 1 by the parity of its first value
    /// — a miniature tracker in the chunk-mapping form (stride 1).
    fn tiny_map(chunk: &EventChunk, ids: &mut Vec<u32>) {
        ids.clear();
        ids.extend(chunk.iter().map(|ev| ev[0] % 2));
    }

    /// Every event hits counter 0 (stride 1).
    fn all_zero(chunk: &EventChunk, ids: &mut Vec<u32>) {
        ids.clear();
        ids.resize(chunk.len(), 0);
    }

    /// Every event hits counters 0..8 — a sprinkler-sized `2n` (stride 8).
    fn wide8(chunk: &EventChunk, ids: &mut Vec<u32>) {
        ids.clear();
        for _ in 0..chunk.len() {
            ids.extend(0..8u32);
        }
    }

    /// `run_cluster` + unwrap: these tests feed well-formed streams, so an
    /// `Err` is itself a failure.
    fn run_ok<P, F, I>(
        protocols: &[P],
        config: &ClusterConfig,
        events: I,
        map_event: F,
    ) -> ClusterReport
    where
        P: CounterProtocol + Sync,
        P::Site: Send,
        F: Fn(&EventChunk, &mut Vec<u32>) + Sync,
        I: Iterator<Item = EventChunk>,
    {
        run_cluster(protocols, config, events, map_event).expect("cluster run failed")
    }

    #[test]
    fn exact_protocol_counts_everything() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 9);
        let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 16), tiny_map);
        assert_eq!(report.events, 1000);
        assert_eq!(report.estimates[0], 500.0);
        assert_eq!(report.estimates[1], 500.0);
        assert_eq!(report.exact_totals, vec![500, 500]);
        assert_eq!(report.stats.up_messages, 1000);
        // Default chunk = 1: one packet per event regardless of how the
        // caller grouped the incoming stream.
        assert_eq!(report.stats.packets, 1000);
    }

    #[test]
    fn wire_bytes_measure_actual_transport() {
        // ExactProtocol never broadcasts, so every byte on the wire is an
        // event's bundled up packet. Single-update events are below the
        // UpBatch break-even, so they ship as plain 5-byte Increment
        // frames: the tally is exactly 5 per update.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 9);
        let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 1), tiny_map);
        let inc = frame_len(&Frame::Up { counter: 0, msg: UpMsg::Increment }) as u64;
        assert_eq!(report.stats.bytes, report.stats.up_messages * inc);
        assert_eq!(report.stats.broadcasts, 0);
    }

    #[test]
    fn up_batch_amortizes_frame_headers_on_wide_events() {
        // Eight exact counters per event (a sprinkler-sized 2n): the batch
        // frame replaces 8 x 5 = 40 bytes with a 5-byte header + 4 per id.
        let protocols = vec![ExactProtocol; 8];
        let config = ClusterConfig::new(3, 13);
        let m = 500u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 8), wide8);
        assert_eq!(report.stats.up_messages, 8 * m);
        assert_eq!(report.stats.packets, m);
        let batch =
            frame_len(&Frame::UpBatch { increments: (0..8).collect(), reports: vec![] }) as u64;
        assert_eq!(batch, 5 + 8 * 4);
        assert_eq!(report.stats.bytes, m * batch);
        let singles = report.stats.up_messages * 5;
        assert!(report.stats.bytes < singles, "{} !< {singles}", report.stats.bytes);
    }

    #[test]
    fn chunked_transport_coalesces_packets_not_bytes() {
        // The same exact run at chunk sizes 1 and 64: identical logical
        // messages, estimates, totals, and *bytes* (the multi-event packet
        // is the concatenation of the same encode_event sections); only
        // the physical packet count drops — by roughly the chunk factor.
        let protocols = vec![ExactProtocol; 8];
        let m = 4_000u64;
        let events = || (0..m).map(|_| vec![0usize]);
        let per_event =
            run_ok(&protocols, &ClusterConfig::new(3, 13), chunk_events(events(), 16), wide8);
        let chunked = run_ok(
            &protocols,
            &ClusterConfig::new(3, 13).with_chunk(64),
            chunk_events(events(), 16),
            wide8,
        );
        assert_eq!(chunked.estimates, per_event.estimates);
        assert_eq!(chunked.exact_totals, per_event.exact_totals);
        assert_eq!(chunked.stats.up_messages, per_event.stats.up_messages);
        assert_eq!(chunked.stats.down_messages, per_event.stats.down_messages);
        assert_eq!(chunked.stats.bytes, per_event.stats.bytes);
        assert_eq!(per_event.stats.packets, m);
        assert!(
            chunked.stats.packets * 32 <= per_event.stats.packets,
            "chunked packets {} not amortized vs {}",
            chunked.stats.packets,
            per_event.stats.packets
        );
    }

    #[test]
    fn size_threshold_bounds_packet_growth() {
        // A tiny flush threshold forces mid-chunk flushes: every packet
        // stays small, and nothing is lost.
        let protocols = vec![ExactProtocol; 8];
        let mut config = ClusterConfig::new(2, 5).with_chunk(256);
        config.flush_bytes = 128;
        let m = 2_000u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 64), wide8);
        assert_eq!(report.exact_totals[0], m);
        // 37 bytes per event, threshold 128: at most 4 events per packet.
        assert!(
            report.stats.packets * 4 >= m,
            "packets {} too few for a 128-byte threshold",
            report.stats.packets
        );
    }

    #[test]
    fn hyz_protocol_under_asynchrony() {
        let protocols = vec![HyzProtocol::new(0.1)];
        let config = ClusterConfig::new(4, 11);
        let m = 50_000u64;
        let events = (0..m).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 32), all_zero);
        assert_eq!(report.exact_totals[0], m);
        let rel = (report.estimates[0] - m as f64).abs() / m as f64;
        // Asynchronous delivery adds transient error on top of the eps
        // guarantee; it must still land well within a few eps.
        assert!(rel < 0.5, "relative error {rel}");
        assert!(report.stats.up_messages < m / 5, "messages {}", report.stats.up_messages);
        assert!(report.stats.packets <= report.stats.up_messages);
        // Broadcast accounting stays exact under threading.
        assert_eq!(report.stats.down_messages, report.stats.broadcasts * 4);
    }

    #[test]
    fn hyz_protocol_with_chunked_ingest_stays_in_band() {
        // Coalescing delays reports (they sit in the site buffer until a
        // flush), which the round-tagged protocol absorbs like any other
        // asynchrony; the quiescence handshake still flushes everything
        // out, so the final estimate stays in band for every seed.
        for seed in 0..8u64 {
            let protocols = vec![HyzProtocol::new(0.2)];
            let config = ClusterConfig::new(4, seed).with_chunk(64);
            let m = 30_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_ok(&protocols, &config, chunk_events(events, 64), all_zero);
            assert_eq!(report.exact_totals[0], m, "seed {seed}");
            let rel = (report.estimates[0] - m as f64).abs() / m as f64;
            assert!(rel < 1.0, "seed {seed}: relative error {rel}");
            assert!(report.stats.packets <= report.stats.up_messages);
        }
    }

    #[test]
    fn quiescence_handshake_completes_inflight_rounds() {
        // Aggressive rounds right up to the end of the stream: the old
        // fixed-timeout drain could cut a sync short; the handshake must
        // always leave the coordinator outside a sync (its estimate is
        // anchored at the last completed round, never mid-collection).
        for seed in 0..20u64 {
            let protocols = vec![HyzProtocol::new(0.5)];
            let config = ClusterConfig::new(5, seed).with_chunk(16);
            let m = 3_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_ok(&protocols, &config, chunk_events(events, 16), all_zero);
            assert_eq!(report.exact_totals[0], m);
            // At least one full flush epoch always runs.
            assert!(report.flush_epochs >= 1, "seed {seed}");
            let rel = (report.estimates[0] - m as f64).abs() / m as f64;
            assert!(rel < 2.5, "seed {seed}: relative error {rel}");
        }
    }

    #[test]
    fn epoch_rolls_partition_the_stream_exactly() {
        // Exact counters: a closed epoch's frozen estimate must equal its
        // exact per-epoch total (FIFO attribution makes the roll lossless),
        // and all epochs plus the open one must sum to the whole stream.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 17).with_epochs(250, 8);
        let m = 1000u64;
        let events = (0..m).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 8), tiny_map);
        assert_eq!(report.events, m);
        assert_eq!(report.epochs, 4);
        assert_eq!(report.dropped_epochs, 0, "ring of 8 holds all 4 epochs");
        assert_eq!(report.epoch_estimates.len(), 4);
        assert_eq!(report.epoch_exact_totals.len(), 4);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            for (e, &t) in est.iter().zip(exact) {
                assert_eq!(*e, t as f64, "closed-epoch estimate drifted from exact");
            }
        }
        // Every event hits exactly one of the two counters; epoch sizes
        // are approximate (roll broadcasts can overtake queued events) but
        // the cumulative total across counters is exact.
        let all: u64 = report.epoch_exact_totals.iter().flatten().sum::<u64>()
            + report.open_epoch_exact_totals.iter().sum::<u64>();
        assert_eq!(all, m);
        assert_eq!(report.exact_totals, vec![500, 500]);
        // The final estimates cover the open epoch only.
        assert_eq!(report.estimates[0], report.open_epoch_exact_totals[0] as f64);
    }

    #[test]
    fn epoch_rolls_settle_exactly_under_chunked_ingest() {
        // The flush-before-control rule: a site must push every buffered
        // update of the closing epoch onto the wire *before* its
        // settlement/ack, or FIFO attribution breaks and the settled
        // epochs drift. Exact counters make any drift visible as a hard
        // mismatch.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 29).with_epochs(250, 8).with_chunk(32);
        let m = 1000u64;
        let events = (0..m).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 32), tiny_map);
        assert_eq!(report.events, m);
        assert_eq!(report.epochs, 4);
        assert_eq!(report.dropped_epochs, 0);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            for (e, &t) in est.iter().zip(exact) {
                assert_eq!(*e, t as f64, "closed-epoch estimate drifted under chunking");
            }
        }
        let all: u64 = report.epoch_exact_totals.iter().flatten().sum::<u64>()
            + report.open_epoch_exact_totals.iter().sum::<u64>();
        assert_eq!(all, m);
        assert_eq!(report.exact_totals, vec![500, 500]);
        assert_eq!(report.estimates[0], report.open_epoch_exact_totals[0] as f64);
    }

    #[test]
    fn epoch_ring_caps_retained_epochs() {
        let protocols = vec![ExactProtocol];
        let config = ClusterConfig::new(2, 7).with_epochs(100, 2);
        let events = (0..600u64).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 4), all_zero);
        assert_eq!(report.epochs, 6);
        // Only the last `ring` epochs are retained, estimates and oracle
        // alike, and they stay aligned; the 4 that fell off the ring are
        // *reported* dropped, never silently truncated.
        assert_eq!(report.dropped_epochs, 4);
        assert_eq!(report.epoch_estimates.len(), 2);
        assert_eq!(report.epoch_exact_totals.len(), 2);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            assert_eq!(est[0], exact[0] as f64);
        }
        // Cumulative totals still cover all 6 epochs.
        assert_eq!(report.exact_totals[0], 600);
    }

    #[test]
    fn hub_publishes_settlements_and_the_final_state() {
        // Both coordinator modes mint a snapshot at every epoch settlement
        // and the driver publishes the finalized state after the quiescence
        // handshake. Exact counters make the contract checkable hard: every
        // cumulative read of the final snapshot must equal the oracle, and
        // must be bit-identical to `settled_totals + estimates`.
        for workers in [None, Some(2)] {
            let protocols = vec![ExactProtocol, ExactProtocol];
            let hub = SnapshotHub::new();
            let mut config = ClusterConfig::new(3, 9).with_epochs(250, 8).with_publish(hub.clone());
            if let Some(w) = workers {
                config = config.with_coord_workers(w);
            }
            let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
            let report = run_ok(&protocols, &config, chunk_events(events, 16), tiny_map);
            let snap = hub.load();
            assert!(snap.finalized, "workers {workers:?}");
            assert_eq!(snap.epochs, report.epochs);
            // One mint per settlement, plus the final publish.
            assert_eq!(snap.seq, report.epochs + 1, "workers {workers:?}");
            assert_eq!(snap.events, report.events);
            assert_eq!(snap.exact.as_deref(), Some(report.exact_totals.as_slice()));
            assert_eq!(snap.closed.len(), report.epoch_estimates.len());
            for c in 0..protocols.len() {
                assert_eq!(snap.cumulative(c), report.exact_totals[c] as f64);
                assert_eq!(
                    snap.cumulative(c).to_bits(),
                    (report.settled_totals[c] + report.estimates[c]).to_bits(),
                );
            }
        }
        // Without epoch rolling only the final state is published, and its
        // cumulative read is the end-of-run estimate verbatim.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let hub = SnapshotHub::new();
        let config = ClusterConfig::new(3, 9).with_publish(hub.clone());
        let events = (0..500u64).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 16), tiny_map);
        let snap = hub.load();
        assert_eq!(snap.seq, 1);
        assert!(snap.finalized);
        for c in 0..protocols.len() {
            assert_eq!(snap.cumulative(c).to_bits(), report.estimates[c].to_bits());
        }
    }

    #[test]
    fn hyz_epoch_rolls_terminate_and_settle_exactly() {
        // Randomized counters under epoch rolling: every run must terminate
        // (rolls complete through the quiescence handshake even when they
        // land at end-of-stream), and because a roll closes its epoch with
        // the sites' exact settlement, every closed epoch's ring entry
        // must equal that epoch's exact total — for a *randomized*
        // protocol, under real thread interleaving and chunked ingest.
        for seed in 0..8u64 {
            let protocols = vec![HyzProtocol::new(0.2)];
            let config = ClusterConfig::new(4, seed).with_epochs(4_000, 4).with_chunk(32);
            let m = 16_000u64;
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_ok(&protocols, &config, chunk_events(events, 32), all_zero);
            assert_eq!(report.exact_totals[0], m, "seed {seed}");
            assert_eq!(report.epochs, 4, "seed {seed}");
            for (e, (est, exact)) in
                report.epoch_estimates.iter().zip(&report.epoch_exact_totals).enumerate()
            {
                assert_eq!(est[0], exact[0] as f64, "seed {seed} epoch {e}: not settled");
            }
            // The open epoch's estimate is a live Lemma-4 estimate.
            if report.open_epoch_exact_totals[0] > 1_000 {
                let t = report.open_epoch_exact_totals[0] as f64;
                let rel = (report.estimates[0] - t).abs() / t;
                assert!(rel < 1.0, "seed {seed}: open epoch rel err {rel}");
            }
        }
    }

    #[test]
    fn round_robin_partitioner_balances() {
        let protocols = vec![ExactProtocol];
        let mut config = ClusterConfig::new(5, 1);
        config.partitioner = Partitioner::RoundRobin;
        let events = (0..500u64).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 10), all_zero);
        assert_eq!(report.estimates[0], 500.0);
    }

    #[test]
    fn empty_stream_terminates() {
        let protocols = vec![ExactProtocol];
        let config = ClusterConfig::new(2, 3);
        let report =
            run_ok(&protocols, &config, std::iter::empty::<EventChunk>(), |_, ids| ids.clear());
        assert_eq!(report.events, 0);
        assert_eq!(report.estimates[0], 0.0);
        assert_eq!(report.stats.total(), 0);
        // No events -> busy window is empty -> throughput is undefined,
        // not zero.
        assert!(report.throughput().is_nan());
    }

    #[test]
    fn single_site_cluster() {
        let protocols = vec![HyzProtocol::new(0.2)];
        let config = ClusterConfig::new(1, 5).with_chunk(8);
        let events = (0..10_000u64).map(|_| vec![0usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 8), all_zero);
        assert_eq!(report.exact_totals[0], 10_000);
        let rel = (report.estimates[0] - 10_000.0).abs() / 10_000.0;
        assert!(rel < 1.0, "rel {rel}");
    }

    // ---- decode/protocol error paths (no panic reachable from bytes) ----

    /// A coordinator wired to nowhere: `send_down_all` tolerates closed
    /// links, so the tests can poke the decode paths directly.
    fn lone_coord(
        protocols: &[ExactProtocol],
        k: usize,
    ) -> InlineCoord<'_, ExactProtocol, Sender<DownPacket>> {
        let down_txs = (0..k).map(|_| unbounded::<DownPacket>().0).collect();
        InlineCoord::new(protocols, k, 8, down_txs, None, 0)
    }

    #[test]
    fn corrupt_up_packet_is_a_typed_wire_error() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        let mut coord = lone_coord(&protocols, 2);
        let err = coord.handle_updates(0, Bytes::copy_from_slice(&[42, 0, 0])).unwrap_err();
        match err {
            ClusterError::Wire { site: Some(0), source: WireError::BadTag(42), .. } => {}
            other => panic!("expected BadTag(42), got {other:?}"),
        }
    }

    #[test]
    fn truncated_up_packet_is_a_typed_wire_error() {
        let protocols = vec![ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 0, msg: UpMsg::Increment }, &mut buf);
        let cut = buf.freeze().slice(0..2); // mid-frame
        let mut coord = lone_coord(&protocols, 1);
        let err = coord.handle_updates(0, cut).unwrap_err();
        match err {
            ClusterError::Wire { site: Some(0), source: WireError::Truncated, .. } => {}
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn out_of_range_counter_is_a_protocol_error() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 7, msg: UpMsg::Increment }, &mut buf);
        let mut coord = lone_coord(&protocols, 1);
        let err = coord.handle_updates(0, buf.freeze()).unwrap_err();
        assert!(
            matches!(&err, ClusterError::Protocol { detail, .. } if detail.contains("counter 7")),
            "expected out-of-range protocol error, got {err:?}"
        );
    }

    #[test]
    fn down_frame_on_the_up_path_is_a_protocol_error() {
        let protocols = vec![ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::Down { counter: 0, msg: DownMsg::SyncRequest { round: 1 } }, &mut buf);
        let mut coord = lone_coord(&protocols, 1);
        let err = coord.handle_updates(0, buf.freeze()).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }), "got {err:?}");
    }

    #[test]
    fn packet_from_unknown_site_is_a_protocol_error() {
        let protocols = vec![ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 0, msg: UpMsg::Increment }, &mut buf);
        let mut coord = lone_coord(&protocols, 2);
        let err = coord.handle_updates(5, buf.freeze()).unwrap_err();
        assert!(
            matches!(&err, ClusterError::Protocol { detail, .. } if detail.contains("site 5")),
            "got {err:?}"
        );
    }

    #[test]
    fn unexpected_epoch_ack_is_a_protocol_error() {
        // An ack while no roll is in flight used to trip a debug_assert
        // inside the roller; it must surface as a typed error instead.
        let protocols = vec![ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::EpochAck { epoch: 3 }, &mut buf);
        let mut coord = lone_coord(&protocols, 2);
        let err = coord.handle_control(0, buf.freeze()).unwrap_err();
        assert!(
            matches!(&err, ClusterError::Protocol { detail, .. }
                if detail.contains("unexpected epoch ack")),
            "got {err:?}"
        );
    }

    #[test]
    fn non_control_frame_in_a_control_packet_is_a_protocol_error() {
        let protocols = vec![ExactProtocol];
        let mut buf = BytesMut::new();
        encode(&Frame::Up { counter: 0, msg: UpMsg::Increment }, &mut buf);
        let mut coord = lone_coord(&protocols, 1);
        let err = coord.handle_control(0, buf.freeze()).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }), "got {err:?}");
    }

    #[test]
    fn corrupt_down_packet_faults_the_site() {
        // A site that receives garbage reports a typed fault *up* (so the
        // coordinator aborts the whole run) and stops, instead of
        // panicking its thread and hanging the join.
        let protocols = vec![ExactProtocol];
        let map = |_: &EventChunk, ids: &mut Vec<u32>| ids.clear();
        let (up_tx, up_rx) = unbounded::<UpPacket>();
        let mut site = SiteWorker {
            site_id: 0,
            protocols: &protocols,
            map_event: &map,
            up_tx,
            flush_bytes: 1024,
            states: protocols.iter().map(|p| p.new_site()).collect(),
            snaps: Vec::new(),
            rng: SmallRng::seed_from_u64(1),
            ids: Vec::new(),
            batch: Vec::new(),
            pkt: BytesMut::new(),
            dying: false,
            dead: false,
            lost: vec![0; 1],
            events_lost: 0,
            down_since: None,
            downtime: Duration::ZERO,
        };
        let alive = site.handle_down(DownPacket::Data(Bytes::copy_from_slice(&[42])));
        assert!(!alive, "a faulted site must stop");
        match up_rx.try_recv().expect("fault must be forwarded up") {
            UpPacket::Fault {
                site: 0,
                error: ClusterError::Wire { source: WireError::BadTag(42), .. },
            } => {}
            other => panic!("expected forwarded wire fault, got {other:?}"),
        }
    }

    #[test]
    fn transport_fault_on_the_down_link_is_forwarded_up() {
        let protocols = vec![ExactProtocol];
        let map = |_: &EventChunk, ids: &mut Vec<u32>| ids.clear();
        let (up_tx, up_rx) = unbounded::<UpPacket>();
        let mut site = SiteWorker {
            site_id: 0,
            protocols: &protocols,
            map_event: &map,
            up_tx,
            flush_bytes: 1024,
            states: protocols.iter().map(|p| p.new_site()).collect(),
            snaps: Vec::new(),
            rng: SmallRng::seed_from_u64(1),
            ids: Vec::new(),
            batch: Vec::new(),
            pkt: BytesMut::new(),
            dying: false,
            dead: false,
            lost: vec![0; 1],
            events_lost: 0,
            down_since: None,
            downtime: Duration::ZERO,
        };
        let substrate = ClusterError::Transport("socket torn".into());
        assert!(!site.handle_down(DownPacket::Fault(substrate.clone())));
        match up_rx.try_recv().expect("fault must be forwarded up") {
            UpPacket::Fault { site: 0, error } => assert_eq!(error, substrate),
            other => panic!("expected forwarded transport fault, got {other:?}"),
        }
    }

    // ---- sharded coordinator smoke tests (the full bit-identity pinning
    // ---- lives in tests/sharded_equivalence.rs) ----

    #[test]
    fn sharded_coordinator_matches_single_thread_exactly() {
        let protocols = vec![ExactProtocol; 8];
        let m = 4_000u64;
        let events = || chunk_events((0..m).map(|_| vec![0usize]), 16);
        let base = run_ok(&protocols, &ClusterConfig::new(3, 13).with_chunk(16), events(), wide8);
        for workers in [1usize, 2, 4] {
            let config =
                ClusterConfig::new(3, 13).with_chunk(16).with_sharded_coordinator(workers, None);
            let sharded = run_ok(&protocols, &config, events(), wide8);
            assert_eq!(sharded.estimates, base.estimates, "workers {workers}");
            assert_eq!(sharded.exact_totals, base.exact_totals, "workers {workers}");
            assert_eq!(sharded.stats.up_messages, base.stats.up_messages, "workers {workers}");
            assert_eq!(sharded.stats.down_messages, base.stats.down_messages, "workers {workers}");
            assert_eq!(sharded.stats.bytes, base.stats.bytes, "workers {workers}");
            assert_eq!(sharded.stats.packets, base.stats.packets, "workers {workers}");
        }
    }

    #[test]
    fn sharded_coordinator_with_more_workers_than_counters() {
        // 5 workers over 2 counters: three shards are empty; the run must
        // still partition the space and settle exactly.
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 9).with_chunk(8).with_sharded_coordinator(5, None);
        let events = (0..1000u64).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 8), tiny_map);
        assert_eq!(report.estimates, vec![500.0, 500.0]);
        assert_eq!(report.stats.up_messages, 1000);
    }

    #[test]
    fn sharded_hyz_stays_in_band_and_terminates() {
        // HYZ estimates are seed- and interleaving-dependent, so the
        // cross-shape pin is statistical here; the exact bit-identity
        // claims are pinned on ExactProtocol above.
        let protocols = vec![HyzProtocol::new(0.2)];
        let m = 30_000u64;
        for workers in [2usize, 4] {
            let config =
                ClusterConfig::new(4, 7).with_chunk(32).with_sharded_coordinator(workers, None);
            let events = (0..m).map(|_| vec![0usize]);
            let report = run_ok(&protocols, &config, chunk_events(events, 32), all_zero);
            assert_eq!(report.exact_totals[0], m, "workers {workers}");
            let rel = (report.estimates[0] - m as f64).abs() / m as f64;
            assert!(rel < 1.0, "workers {workers}: rel {rel}");
            assert_eq!(report.stats.down_messages, report.stats.broadcasts * 4);
        }
    }

    #[test]
    fn sharded_epoch_rolls_settle_exactly() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        let config = ClusterConfig::new(3, 29)
            .with_epochs(250, 8)
            .with_chunk(16)
            .with_sharded_coordinator(2, None);
        let m = 1000u64;
        let events = (0..m).map(|i| vec![(i % 2) as usize]);
        let report = run_ok(&protocols, &config, chunk_events(events, 16), tiny_map);
        assert_eq!(report.epochs, 4);
        assert_eq!(report.dropped_epochs, 0);
        for (est, exact) in report.epoch_estimates.iter().zip(&report.epoch_exact_totals) {
            for (e, &t) in est.iter().zip(exact) {
                assert_eq!(*e, t as f64, "sharded closed epoch drifted from exact");
            }
        }
        assert_eq!(report.exact_totals, vec![500, 500]);
    }

    #[test]
    fn invalid_shard_starts_fail_the_run() {
        let protocols = vec![ExactProtocol, ExactProtocol];
        // starts[1] = 999 is past the end of the 2-counter id space.
        let config = ClusterConfig::new(2, 1).with_sharded_coordinator(2, Some(vec![0, 999]));
        let events = (0..10u64).map(|_| vec![0usize]);
        let err = run_cluster(&protocols, &config, chunk_events(events, 4), tiny_map).unwrap_err();
        assert!(matches!(err, ClusterError::Protocol { .. }), "got {err:?}");
    }
}
