//! Property-based tests for the Bayesian network substrate.

use dsbn_bayes::cpt::Cpt;
use dsbn_bayes::dag::Dag;
use dsbn_bayes::generate::{inflate_domains, NetworkSpec};
use dsbn_bayes::rngutil::dirichlet;
use dsbn_bayes::sample::AncestralSampler;
use dsbn_bayes::{bif, BayesianNetwork, Variable};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random small network spec that is always valid.
fn small_spec() -> impl Strategy<Value = NetworkSpec> {
    (2usize..20, 1usize..4, 2usize..5, 0u8..3)
        .prop_flat_map(|(n, maxp, maxcard, alpha_sel)| {
            let min_edges = n - 1;
            let max_edges = (n * (n - 1) / 2).min(min_edges + 2 * n).max(min_edges + 1);
            (Just(n), min_edges..max_edges, Just(maxp), Just(maxcard), Just(alpha_sel))
        })
        .prop_map(|(n, e, maxp, maxcard, alpha_sel)| NetworkSpec {
            name: "prop".into(),
            n_nodes: n,
            n_edges: e,
            max_parents: maxp.max(e.div_ceil(n).min(n - 1)).max(1),
            base_cardinality: 2,
            max_cardinality: maxcard.max(2),
            target_parameters: 4 * n,
            dirichlet_alpha: [0.4, 1.0, 3.0][alpha_sel as usize],
            min_cpd_entry: 0.01,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_networks_are_structurally_sound(spec in small_spec(), seed in 0u64..1000) {
        // max_parents may be too small to place all edges; that must surface
        // as an error, never a panic or an invalid network.
        if let Ok(net) = spec.generate(seed) {
            prop_assert!(net.dag().is_acyclic());
            prop_assert_eq!(net.n_vars(), spec.n_nodes);
            prop_assert_eq!(net.dag().n_edges(), spec.n_edges);
            prop_assert!(net.dag().max_parents() <= spec.max_parents);
            prop_assert!(net.min_cpd_entry() >= spec.min_cpd_entry - 1e-12);
            for i in 0..net.n_vars() {
                prop_assert!(net.cpt(i).validate(i).is_ok());
            }
        }
    }

    #[test]
    fn sampling_respects_support_and_joint_positivity(seed in 0u64..500) {
        let spec = NetworkSpec {
            name: "s".into(), n_nodes: 6, n_edges: 7, max_parents: 3,
            base_cardinality: 2, max_cardinality: 3, target_parameters: 24,
            dirichlet_alpha: 1.0, min_cpd_entry: 0.02,
        };
        let net = spec.generate(seed).unwrap();
        let sampler = AncestralSampler::new(&net);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut x = Vec::new();
        for _ in 0..64 {
            sampler.sample_into(&mut rng, &mut x);
            prop_assert!(net.check_assignment(&x).is_ok());
            // With a CPD floor every sampled event has positive probability.
            prop_assert!(net.joint_log_prob(&x).is_finite());
        }
    }

    #[test]
    fn bif_round_trip_preserves_distribution(seed in 0u64..200) {
        let spec = NetworkSpec {
            name: "rt".into(), n_nodes: 5, n_edges: 6, max_parents: 3,
            base_cardinality: 2, max_cardinality: 3, target_parameters: 20,
            dirichlet_alpha: 1.0, min_cpd_entry: 0.01,
        };
        let net = spec.generate(seed).unwrap();
        let back = bif::parse(&bif::write(&net)).unwrap();
        prop_assert_eq!(back.n_vars(), net.n_vars());
        // Compare the joint on sampled points.
        let sampler = AncestralSampler::new(&net);
        let mut rng = StdRng::seed_from_u64(seed + 1);
        for _ in 0..16 {
            let x = sampler.sample(&mut rng);
            let a = net.joint_log_prob(&x);
            let b = back.joint_log_prob(&x);
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    #[test]
    fn strip_sinks_preserves_prefix_distribution(keep in 1usize..6, seed in 0u64..100) {
        let spec = NetworkSpec {
            name: "strip".into(), n_nodes: 6, n_edges: 8, max_parents: 3,
            base_cardinality: 2, max_cardinality: 3, target_parameters: 30,
            dirichlet_alpha: 1.0, min_cpd_entry: 0.01,
        };
        let net = spec.generate(seed).unwrap();
        let sub = net.strip_sinks_to(keep).unwrap();
        prop_assert_eq!(sub.n_vars(), keep);
        prop_assert!(sub.dag().is_acyclic());
        // Surviving variables keep their CPTs (removal of sinks cannot
        // change any remaining family).
        for i in 0..sub.n_vars() {
            let orig = net.var_index(sub.variable(i).name()).unwrap();
            prop_assert_eq!(sub.cpt(i).table(), net.cpt(orig).table());
        }
    }

    #[test]
    fn dirichlet_always_normalized(alpha in 0.05f64..20.0, dim in 1usize..30, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let v = dirichlet(&mut rng, alpha, dim);
        let s: f64 = v.iter().sum();
        prop_assert!((s - 1.0).abs() < 1e-9);
        prop_assert!(v.iter().all(|&p| p > 0.0 && p.is_finite()));
    }

    #[test]
    fn dag_edges_never_violate_topological_order(n in 2usize..30, extra in 0usize..40, seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        use rand::Rng;
        let mut dag = Dag::new(n);
        for _ in 0..extra {
            let a = rng.gen_range(0..n);
            let b = rng.gen_range(0..n);
            let _ = dag.add_edge(a, b); // errors allowed, panics not
        }
        prop_assert!(dag.is_acyclic());
        let order = dag.topological_order();
        let mut rank = vec![0usize; n];
        for (r, &v) in order.iter().enumerate() { rank[v] = r; }
        for (a, b) in dag.edges() {
            prop_assert!(rank[a] < rank[b]);
        }
    }

    #[test]
    fn inflate_domains_keeps_structure(seed in 0u64..50, n_inf in 0usize..5) {
        let spec = NetworkSpec {
            name: "inf".into(), n_nodes: 8, n_edges: 10, max_parents: 3,
            base_cardinality: 2, max_cardinality: 3, target_parameters: 40,
            dirichlet_alpha: 1.0, min_cpd_entry: 0.01,
        };
        let net = inflate_domains(&spec, seed, n_inf, 9).unwrap();
        let plain = spec.generate(seed).unwrap();
        prop_assert_eq!(net.dag().n_edges(), plain.dag().n_edges());
        let inflated = (0..net.n_vars()).filter(|&i| net.cardinality(i) == 9).count();
        prop_assert_eq!(inflated, n_inf);
    }
}

#[test]
fn cpt_uniform_any_shape_is_valid() {
    for j in 1..6 {
        for cards in [vec![], vec![2], vec![3, 2], vec![2, 2, 2]] {
            let c = Cpt::uniform(j, cards);
            assert!(c.validate(0).is_ok());
        }
    }
}

#[test]
fn network_with_isolated_nodes_works_end_to_end() {
    // Edgeless network: every variable independent.
    let n = 5;
    let variables: Vec<Variable> =
        (0..n).map(|i| Variable::with_cardinality(format!("V{i}"), 2).unwrap()).collect();
    let dag = Dag::new(n);
    let cpts = (0..n).map(|_| Cpt::uniform(2, vec![])).collect();
    let net = BayesianNetwork::new("edgeless", variables, dag, cpts).unwrap();
    let x = vec![0; n];
    assert!((net.joint_prob(&x) - 1.0 / 32.0).abs() < 1e-12);
    let sampler = AncestralSampler::new(&net);
    let mut rng = StdRng::seed_from_u64(0);
    let y = sampler.sample(&mut rng);
    assert!(net.check_assignment(&y).is_ok());
}
