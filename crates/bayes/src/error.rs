//! Error type for the Bayesian network substrate.

use std::fmt;

/// Errors produced while constructing, mutating, or parsing Bayesian networks.
#[derive(Debug, Clone, PartialEq)]
pub enum BayesError {
    /// An edge would introduce a directed cycle.
    CycleDetected { from: usize, to: usize },
    /// A node index was out of range.
    NodeOutOfRange { index: usize, n: usize },
    /// A value index was outside its variable's domain.
    ValueOutOfRange { var: usize, value: usize, cardinality: usize },
    /// A variable was declared with an empty domain.
    EmptyDomain { var: String },
    /// Duplicate variable name.
    DuplicateVariable(String),
    /// A CPT row does not sum to 1 (within tolerance) or has invalid entries.
    InvalidCpt { var: usize, detail: String },
    /// CPT dimensions disagree with the graph structure.
    CptShapeMismatch { var: usize, expected: usize, actual: usize },
    /// Self-loop requested.
    SelfLoop(usize),
    /// Duplicate edge requested.
    DuplicateEdge { from: usize, to: usize },
    /// BIF parse failure.
    BifParse { line: usize, detail: String },
    /// Assignment vector has the wrong length.
    AssignmentLength { expected: usize, actual: usize },
    /// Generic invalid-argument error.
    Invalid(String),
}

impl fmt::Display for BayesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BayesError::CycleDetected { from, to } => {
                write!(f, "adding edge {from} -> {to} would create a cycle")
            }
            BayesError::NodeOutOfRange { index, n } => {
                write!(f, "node index {index} out of range for network with {n} nodes")
            }
            BayesError::ValueOutOfRange { var, value, cardinality } => {
                write!(
                    f,
                    "value {value} out of range for variable {var} (cardinality {cardinality})"
                )
            }
            BayesError::EmptyDomain { var } => write!(f, "variable {var} has an empty domain"),
            BayesError::DuplicateVariable(name) => write!(f, "duplicate variable name: {name}"),
            BayesError::InvalidCpt { var, detail } => {
                write!(f, "invalid CPT for variable {var}: {detail}")
            }
            BayesError::CptShapeMismatch { var, expected, actual } => {
                write!(f, "CPT for variable {var} has {actual} entries, expected {expected}")
            }
            BayesError::SelfLoop(v) => write!(f, "self-loop on node {v} is not allowed"),
            BayesError::DuplicateEdge { from, to } => {
                write!(f, "edge {from} -> {to} already exists")
            }
            BayesError::BifParse { line, detail } => {
                write!(f, "BIF parse error at line {line}: {detail}")
            }
            BayesError::AssignmentLength { expected, actual } => {
                write!(f, "assignment has {actual} values, expected {expected}")
            }
            BayesError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for BayesError {}

/// Convenient result alias for this crate.
pub type Result<T> = std::result::Result<T, BayesError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BayesError::CycleDetected { from: 1, to: 2 };
        assert!(e.to_string().contains("cycle"));
        let e = BayesError::ValueOutOfRange { var: 3, value: 9, cardinality: 2 };
        assert!(e.to_string().contains("cardinality 2"));
        let e = BayesError::BifParse { line: 7, detail: "bad token".into() };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(BayesError::SelfLoop(0));
        assert!(e.to_string().contains("self-loop"));
    }
}
