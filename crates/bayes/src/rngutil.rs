//! Random-distribution helpers not provided by the base `rand` crate
//! (`rand_distr` is not part of the approved offline dependency set):
//! standard normal, Gamma (Marsaglia–Tsang), and Dirichlet sampling.

use rand::Rng;

/// One standard normal draw via the Marsaglia polar method.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    loop {
        let u: f64 = rng.gen_range(-1.0..1.0);
        let v: f64 = rng.gen_range(-1.0..1.0);
        let s = u * u + v * v;
        if s > 0.0 && s < 1.0 {
            return u * (-2.0 * s.ln() / s).sqrt();
        }
    }
}

/// Gamma(shape, 1) via Marsaglia–Tsang, valid for any `shape > 0`.
pub fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a).
        let g = gamma(rng, shape + 1.0);
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        return g * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let t = 1.0 + c * x;
        if t <= 0.0 {
            continue;
        }
        let v = t * t * t;
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        if u < 1.0 - 0.0331 * x.powi(4) {
            return d * v;
        }
        if u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// A symmetric Dirichlet(alpha) draw of dimension `dim`, written into `out`.
/// The result is a probability vector (sums to 1, all entries > 0).
pub fn dirichlet_into<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize, out: &mut Vec<f64>) {
    assert!(dim > 0, "dirichlet dimension must be positive");
    out.clear();
    let mut sum = 0.0;
    for _ in 0..dim {
        let g = gamma(rng, alpha).max(f64::MIN_POSITIVE);
        sum += g;
        out.push(g);
    }
    for g in out.iter_mut() {
        *g /= sum;
    }
}

/// Allocating variant of [`dirichlet_into`].
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, dim: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(dim);
    dirichlet_into(rng, alpha, dim, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 200_000;
        let (mut m1, mut m2) = (0.0, 0.0);
        for _ in 0..n {
            let x = standard_normal(&mut rng);
            m1 += x;
            m2 += x * x;
        }
        m1 /= n as f64;
        m2 /= n as f64;
        assert!(m1.abs() < 0.01, "mean {m1}");
        assert!((m2 - 1.0).abs() < 0.02, "var {m2}");
    }

    #[test]
    fn gamma_mean_and_variance() {
        let mut rng = StdRng::seed_from_u64(5);
        for &shape in &[0.3, 0.5, 1.0, 2.5, 9.0] {
            let n = 100_000;
            let (mut m1, mut m2) = (0.0, 0.0);
            for _ in 0..n {
                let x = gamma(&mut rng, shape);
                assert!(x > 0.0 && x.is_finite());
                m1 += x;
                m2 += x * x;
            }
            m1 /= n as f64;
            m2 /= n as f64;
            let var = m2 - m1 * m1;
            assert!((m1 - shape).abs() < 0.06 * shape.max(1.0), "shape {shape}: mean {m1}");
            assert!((var - shape).abs() < 0.12 * shape.max(1.0), "shape {shape}: var {var}");
        }
    }

    #[test]
    fn dirichlet_is_a_distribution() {
        let mut rng = StdRng::seed_from_u64(9);
        for &dim in &[1usize, 2, 5, 21] {
            for &alpha in &[0.2, 1.0, 5.0] {
                let v = dirichlet(&mut rng, alpha, dim);
                assert_eq!(v.len(), dim);
                let s: f64 = v.iter().sum();
                assert!((s - 1.0).abs() < 1e-12);
                assert!(v.iter().all(|&p| p > 0.0));
            }
        }
    }

    #[test]
    fn dirichlet_symmetric_mean() {
        let mut rng = StdRng::seed_from_u64(13);
        let dim = 4;
        let mut acc = vec![0.0; dim];
        let n = 20_000;
        for _ in 0..n {
            let v = dirichlet(&mut rng, 2.0, dim);
            for (a, x) in acc.iter_mut().zip(&v) {
                *a += x;
            }
        }
        for a in &acc {
            assert!((a / n as f64 - 0.25).abs() < 0.01);
        }
    }

    #[test]
    #[should_panic(expected = "gamma shape must be positive")]
    fn gamma_rejects_nonpositive_shape() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = gamma(&mut rng, 0.0);
    }
}
