//! Chow–Liu tree structure learning.
//!
//! The paper treats structure selection as orthogonal: "the graph structure
//! can be learned offline based on a suitable sample of the data" (§III).
//! This module provides that offline step for the tree-structured case — the
//! same degree-one setting McGregor & Vu \[18\] study — so a deployment can
//! bootstrap a structure from an initial sample and then track its
//! parameters online with `dsbn-core`.
//!
//! The Chow–Liu algorithm fits the maximum-likelihood tree: compute pairwise
//! empirical mutual information, take a maximum-weight spanning tree, orient
//! it away from a root, and fit CPTs by (smoothed) MLE.

use crate::cpt::Cpt;
use crate::dag::Dag;
use crate::error::{BayesError, Result};
use crate::network::BayesianNetwork;
use crate::variable::Variable;

/// Empirical mutual information (in nats) between columns `a` and `b`.
fn mutual_information(data: &[Vec<usize>], a: usize, b: usize, ja: usize, jb: usize) -> f64 {
    let m = data.len() as f64;
    let mut joint = vec![0usize; ja * jb];
    let mut ma = vec![0usize; ja];
    let mut mb = vec![0usize; jb];
    for row in data {
        joint[row[a] * jb + row[b]] += 1;
        ma[row[a]] += 1;
        mb[row[b]] += 1;
    }
    let mut mi = 0.0;
    for x in 0..ja {
        for y in 0..jb {
            let c = joint[x * jb + y];
            if c == 0 {
                continue;
            }
            let pxy = c as f64 / m;
            let px = ma[x] as f64 / m;
            let py = mb[y] as f64 / m;
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    mi.max(0.0)
}

/// Learn a Chow–Liu tree from complete categorical data.
///
/// * `data` — rows of full assignments (all the same length).
/// * `cards` — variable cardinalities.
/// * `names` — variable names (must match `cards` in length).
/// * `root` — which node becomes the tree root.
/// * `laplace` — additive smoothing used when fitting CPTs (`1.0` is a safe
///   default; `0.0` gives the raw MLE of Lemma 2).
pub fn learn_tree(
    data: &[Vec<usize>],
    cards: &[usize],
    names: &[String],
    root: usize,
    laplace: f64,
) -> Result<BayesianNetwork> {
    let n = cards.len();
    if n == 0 {
        return Err(BayesError::Invalid("no variables".into()));
    }
    if names.len() != n {
        return Err(BayesError::Invalid("names/cards length mismatch".into()));
    }
    if root >= n {
        return Err(BayesError::NodeOutOfRange { index: root, n });
    }
    if data.is_empty() {
        return Err(BayesError::Invalid("empty sample".into()));
    }
    for row in data {
        if row.len() != n {
            return Err(BayesError::AssignmentLength { expected: n, actual: row.len() });
        }
        for (i, &v) in row.iter().enumerate() {
            if v >= cards[i] {
                return Err(BayesError::ValueOutOfRange {
                    var: i,
                    value: v,
                    cardinality: cards[i],
                });
            }
        }
    }

    // Maximum-weight spanning tree by Prim's algorithm on MI weights,
    // starting from `root`. O(n^2) MI evaluations.
    let mut in_tree = vec![false; n];
    let mut best_w = vec![f64::NEG_INFINITY; n];
    let mut best_to = vec![usize::MAX; n];
    in_tree[root] = true;
    for v in 0..n {
        if v != root {
            best_w[v] = mutual_information(data, root, v, cards[root], cards[v]);
            best_to[v] = root;
        }
    }
    let mut tree_edges: Vec<(usize, usize)> = Vec::with_capacity(n.saturating_sub(1));
    for _ in 1..n {
        let mut pick = usize::MAX;
        let mut pick_w = f64::NEG_INFINITY;
        for v in 0..n {
            if !in_tree[v] && best_w[v] > pick_w {
                pick_w = best_w[v];
                pick = v;
            }
        }
        debug_assert_ne!(pick, usize::MAX);
        in_tree[pick] = true;
        tree_edges.push((best_to[pick], pick)); // (parent, child) oriented away from root
        for v in 0..n {
            if !in_tree[v] {
                let w = mutual_information(data, pick, v, cards[pick], cards[v]);
                if w > best_w[v] {
                    best_w[v] = w;
                    best_to[v] = pick;
                }
            }
        }
    }

    let mut dag = Dag::new(n);
    for &(p, c) in &tree_edges {
        dag.add_edge(p, c)?;
    }

    // Fit CPTs by smoothed MLE (Lemma 2 with Laplace correction).
    let mut cpts = Vec::with_capacity(n);
    for v in 0..n {
        let j = cards[v];
        let parents = dag.parents(v).to_vec();
        let k: usize = parents.iter().map(|&p| cards[p]).product();
        let mut counts = vec![0f64; k * j];
        for row in data {
            let mut u = 0usize;
            for &p in &parents {
                u = u * cards[p] + row[p];
            }
            counts[u * j + row[v]] += 1.0;
        }
        let mut table = Vec::with_capacity(k * j);
        for u in 0..k {
            let row = &counts[u * j..(u + 1) * j];
            let total: f64 = row.iter().sum::<f64>() + laplace * j as f64;
            if total == 0.0 {
                table.extend(std::iter::repeat_n(1.0 / j as f64, j));
            } else {
                table.extend(row.iter().map(|c| (c + laplace) / total));
            }
        }
        let parent_cards: Vec<usize> = parents.iter().map(|&p| cards[p]).collect();
        cpts.push(Cpt::new(v, j, parent_cards, table)?);
    }
    let variables: Vec<Variable> = names
        .iter()
        .zip(cards)
        .map(|(name, &j)| Variable::with_cardinality(name.clone(), j))
        .collect::<Result<_>>()?;
    BayesianNetwork::new("chow-liu", variables, dag, cpts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample::AncestralSampler;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Build a ground-truth chain X0 -> X1 -> X2 -> X3 with strong coupling.
    fn chain() -> BayesianNetwork {
        let n = 4;
        let variables: Vec<Variable> =
            (0..n).map(|i| Variable::with_cardinality(format!("X{i}"), 2).unwrap()).collect();
        let mut dag = Dag::new(n);
        for i in 0..n - 1 {
            dag.add_edge(i, i + 1).unwrap();
        }
        let mut cpts = vec![Cpt::new(0, 2, vec![], vec![0.5, 0.5]).unwrap()];
        for i in 1..n {
            cpts.push(Cpt::new(i, 2, vec![2], vec![0.9, 0.1, 0.1, 0.9]).unwrap());
        }
        BayesianNetwork::new("chain", variables, dag, cpts).unwrap()
    }

    fn sample_data(net: &BayesianNetwork, m: usize, seed: u64) -> Vec<Vec<usize>> {
        let sampler = AncestralSampler::new(net);
        let mut rng = StdRng::seed_from_u64(seed);
        (0..m).map(|_| sampler.sample(&mut rng)).collect()
    }

    #[test]
    fn recovers_chain_skeleton() {
        let truth = chain();
        let data = sample_data(&truth, 20_000, 3);
        let cards = vec![2; 4];
        let names: Vec<String> = (0..4).map(|i| format!("X{i}")).collect();
        let learned = learn_tree(&data, &cards, &names, 0, 1.0).unwrap();
        // The undirected skeleton must be the chain 0-1-2-3.
        let mut edges: Vec<(usize, usize)> =
            learned.dag().edges().map(|(a, b)| (a.min(b), a.max(b))).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn learned_cpts_close_to_truth() {
        let truth = chain();
        let data = sample_data(&truth, 50_000, 5);
        let cards = vec![2; 4];
        let names: Vec<String> = (0..4).map(|i| format!("X{i}")).collect();
        let learned = learn_tree(&data, &cards, &names, 0, 1.0).unwrap();
        // P(X1=1 | X0=0) should be near 0.1 regardless of edge direction
        // conventions, because the chain is symmetric under this CPD.
        let i1 = learned.var_index("X1").unwrap();
        let cpt = learned.cpt(i1);
        let p = cpt.prob(1, 0);
        assert!((p - 0.1).abs() < 0.02, "p={p}");
    }

    #[test]
    fn mutual_information_independent_is_near_zero() {
        let mut rng = StdRng::seed_from_u64(9);
        let data: Vec<Vec<usize>> =
            (0..20_000).map(|_| vec![rng.gen_range(0..2), rng.gen_range(0..3)]).collect();
        let mi = mutual_information(&data, 0, 1, 2, 3);
        assert!(mi < 0.005, "mi={mi}");
    }

    #[test]
    fn mutual_information_identical_is_entropy() {
        let data: Vec<Vec<usize>> = (0..1000).map(|i| vec![i % 2, i % 2]).collect();
        let mi = mutual_information(&data, 0, 1, 2, 2);
        assert!((mi - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn input_validation() {
        let names = vec!["a".to_string(), "b".to_string()];
        assert!(learn_tree(&[], &[2, 2], &names, 0, 1.0).is_err());
        assert!(learn_tree(&[vec![0]], &[2, 2], &names, 0, 1.0).is_err());
        assert!(learn_tree(&[vec![0, 5]], &[2, 2], &names, 0, 1.0).is_err());
        assert!(learn_tree(&[vec![0, 1]], &[2, 2], &names, 7, 1.0).is_err());
    }

    #[test]
    fn tree_has_degree_one_structure() {
        let truth = chain();
        let data = sample_data(&truth, 5_000, 1);
        let cards = vec![2; 4];
        let names: Vec<String> = (0..4).map(|i| format!("X{i}")).collect();
        let learned = learn_tree(&data, &cards, &names, 2, 0.5).unwrap();
        assert!(learned.dag().max_parents() <= 1);
        assert_eq!(learned.dag().n_edges(), 3);
        assert_eq!(learned.dag().n_parents(2), 0, "root has no parent");
    }
}
