//! Ancestral (forward) sampling of full assignments.
//!
//! The paper generates training data by "first generating a topological
//! ordering of all vertices ... and then assigning values to nodes in this
//! order, based on the known conditional probability distributions" (§VI-A).
//! [`AncestralSampler`] precomputes per-row cumulative distributions so each
//! event costs one uniform draw and a short scan per variable.

use crate::network::{Assignment, BayesianNetwork};
use rand::Rng;

/// Precomputed forward sampler for a [`BayesianNetwork`].
#[derive(Debug, Clone)]
pub struct AncestralSampler {
    /// Cached topological order.
    topo: Vec<usize>,
    /// Per variable: parents (sorted) for config lookup.
    parents: Vec<Vec<usize>>,
    /// Per variable: parent cardinalities, aligned with `parents`.
    parent_cards: Vec<Vec<usize>>,
    /// Per variable: row-major `K x J` cumulative tables.
    cdfs: Vec<Vec<f64>>,
    /// Per variable cardinality.
    cards: Vec<usize>,
}

impl AncestralSampler {
    /// Build a sampler from a network (the network may be dropped afterwards).
    pub fn new(net: &BayesianNetwork) -> Self {
        let n = net.n_vars();
        let mut cdfs = Vec::with_capacity(n);
        let mut parents = Vec::with_capacity(n);
        let mut parent_cards = Vec::with_capacity(n);
        let mut cards = Vec::with_capacity(n);
        for i in 0..n {
            let cpt = net.cpt(i);
            let j = cpt.cardinality();
            let mut cdf = Vec::with_capacity(cpt.n_entries());
            for u in 0..cpt.n_parent_configs() {
                let mut acc = 0.0;
                for &p in cpt.row(u) {
                    acc += p;
                    cdf.push(acc);
                }
                // Guard against floating point round-off: force the last
                // cumulative value to 1 so a draw of ~1.0 always lands.
                if let Some(last) = cdf.last_mut() {
                    *last = 1.0;
                }
                let _ = acc;
            }
            cdfs.push(cdf);
            parents.push(net.dag().parents(i).to_vec());
            parent_cards.push(cpt.parent_cards().to_vec());
            cards.push(j);
        }
        AncestralSampler {
            topo: net.topological_order().to_vec(),
            parents,
            parent_cards,
            cdfs,
            cards,
        }
    }

    /// Number of variables.
    pub fn n_vars(&self) -> usize {
        self.cards.len()
    }

    /// Sample a full assignment into `out` (resized as needed).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Assignment) {
        out.clear();
        out.resize(self.n_vars(), 0);
        for &i in &self.topo {
            let mut u_idx = 0usize;
            for (&p, &k) in self.parents[i].iter().zip(&self.parent_cards[i]) {
                u_idx = u_idx * k + out[p];
            }
            let j = self.cards[i];
            let row = &self.cdfs[i][u_idx * j..(u_idx + 1) * j];
            let r: f64 = rng.gen();
            // Linear scan: domains are small (2..21 for the paper networks).
            let mut v = 0;
            while v + 1 < j && row[v] < r {
                v += 1;
            }
            out[i] = v;
        }
    }

    /// Sample a fresh assignment.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Assignment {
        let mut out = Vec::new();
        self.sample_into(rng, &mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::testnet::sprinkler;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_valid_assignments() {
        let net = sprinkler();
        let s = AncestralSampler::new(&net);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = s.sample(&mut rng);
            assert!(net.check_assignment(&x).is_ok());
        }
    }

    #[test]
    fn marginal_frequencies_match_cpts() {
        let net = sprinkler();
        let s = AncestralSampler::new(&net);
        let mut rng = StdRng::seed_from_u64(7);
        let m = 200_000;
        let mut cloudy = 0usize;
        let mut sprinkler_on_given_cloudy = 0usize;
        let mut cloudy_count = 0usize;
        let mut x = Vec::new();
        for _ in 0..m {
            s.sample_into(&mut rng, &mut x);
            if x[0] == 1 {
                cloudy += 1;
                cloudy_count += 1;
                if x[1] == 1 {
                    sprinkler_on_given_cloudy += 1;
                }
            }
        }
        let p_cloudy = cloudy as f64 / m as f64;
        assert!((p_cloudy - 0.5).abs() < 0.01, "p(cloudy)={p_cloudy}");
        let p_s = sprinkler_on_given_cloudy as f64 / cloudy_count as f64;
        assert!((p_s - 0.1).abs() < 0.01, "p(sprinkler|cloudy)={p_s}");
    }

    #[test]
    fn impossible_events_never_sampled() {
        // WetGrass=wet has probability 0 when Sprinkler=off and Rain=no.
        let net = sprinkler();
        let s = AncestralSampler::new(&net);
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = Vec::new();
        for _ in 0..50_000 {
            s.sample_into(&mut rng, &mut x);
            if x[1] == 0 && x[2] == 0 {
                assert_eq!(x[3], 0, "sampled a zero-probability event");
            }
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let net = sprinkler();
        let s = AncestralSampler::new(&net);
        let a: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        let b: Vec<_> = {
            let mut rng = StdRng::seed_from_u64(42);
            (0..10).map(|_| s.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
