//! Exact inference by variable elimination.
//!
//! The paper's introduction motivates Bayesian networks by the ability to
//! "describe the joint distribution ... allowing inferences and
//! predictions to be made" over any subset of variables. This module
//! provides that capability for the maintained models: exact marginals
//! `P[targets | evidence]` via factor-based variable elimination with a
//! min-degree elimination order.
//!
//! It is generic over a [`crate::classify::CpdSource`], so it runs both on
//! ground-truth networks and on the streaming trackers of `dsbn-core`
//! (any type implementing `CpdSource`).

use crate::classify::CpdSource;
use crate::error::{BayesError, Result};
use crate::network::BayesianNetwork;

/// Refuse to materialize factors larger than this many entries.
const MAX_FACTOR_ENTRIES: usize = 1 << 26;

/// A factor over a sorted set of variables. `table` is row-major with the
/// *last* variable varying fastest (same convention as CPTs).
#[derive(Debug, Clone, PartialEq)]
pub struct Factor {
    vars: Vec<usize>,
    cards: Vec<usize>,
    table: Vec<f64>,
}

impl Factor {
    /// A constant factor over no variables.
    pub fn unit() -> Factor {
        Factor { vars: vec![], cards: vec![], table: vec![1.0] }
    }

    /// Build a factor; `vars` must be strictly ascending and the table
    /// row-major over them.
    pub fn new(vars: Vec<usize>, cards: Vec<usize>, table: Vec<f64>) -> Result<Factor> {
        if vars.windows(2).any(|w| w[0] >= w[1]) {
            return Err(BayesError::Invalid("factor vars must be strictly ascending".into()));
        }
        let expected: usize = cards.iter().product();
        if cards.len() != vars.len() || table.len() != expected {
            return Err(BayesError::Invalid(format!(
                "factor shape mismatch: {} vars, {} cards, {} entries (expected {expected})",
                vars.len(),
                cards.len(),
                table.len()
            )));
        }
        Ok(Factor { vars, cards, table })
    }

    /// Variables in scope.
    pub fn vars(&self) -> &[usize] {
        &self.vars
    }

    /// Table size.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the factor has an empty scope.
    pub fn is_empty(&self) -> bool {
        self.vars.is_empty()
    }

    /// Raw table access.
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Pointwise product, expanding to the union scope.
    pub fn product(&self, other: &Factor) -> Result<Factor> {
        // Union of scopes (both sorted).
        let mut vars = Vec::with_capacity(self.vars.len() + other.vars.len());
        let mut cards = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.vars.len() || j < other.vars.len() {
            if j >= other.vars.len() || (i < self.vars.len() && self.vars[i] < other.vars[j]) {
                vars.push(self.vars[i]);
                cards.push(self.cards[i]);
                i += 1;
            } else if i >= self.vars.len() || other.vars[j] < self.vars[i] {
                vars.push(other.vars[j]);
                cards.push(other.cards[j]);
                j += 1;
            } else {
                if self.cards[i] != other.cards[j] {
                    return Err(BayesError::Invalid(format!(
                        "cardinality mismatch for variable {}",
                        self.vars[i]
                    )));
                }
                vars.push(self.vars[i]);
                cards.push(self.cards[i]);
                i += 1;
                j += 1;
            }
        }
        let size: usize = cards.iter().product();
        if size > MAX_FACTOR_ENTRIES {
            return Err(BayesError::Invalid(format!(
                "intermediate factor too large: {size} entries"
            )));
        }
        // Strides of each union variable within self and other (0 if
        // absent — the factor is constant along that variable).
        let stride_in = |f: &Factor| -> Vec<usize> {
            let mut strides = vec![0usize; vars.len()];
            let mut s = 1usize;
            for fi in (0..f.vars.len()).rev() {
                let pos = vars.binary_search(&f.vars[fi]).expect("var in union");
                strides[pos] = s;
                s *= f.cards[fi];
            }
            strides
        };
        let sa = stride_in(self);
        let sb = stride_in(other);
        let mut table = Vec::with_capacity(size);
        let mut assignment = vec![0usize; vars.len()];
        let (mut ia, mut ib) = (0usize, 0usize);
        for _ in 0..size {
            table.push(self.table[ia] * other.table[ib]);
            // Odometer increment (last variable fastest).
            for d in (0..vars.len()).rev() {
                assignment[d] += 1;
                ia += sa[d];
                ib += sb[d];
                if assignment[d] < cards[d] {
                    break;
                }
                ia -= sa[d] * cards[d];
                ib -= sb[d] * cards[d];
                assignment[d] = 0;
            }
        }
        Ok(Factor { vars, cards, table })
    }

    /// Sum out one variable.
    pub fn marginalize_out(&self, var: usize) -> Result<Factor> {
        let pos = self
            .vars
            .binary_search(&var)
            .map_err(|_| BayesError::Invalid(format!("variable {var} not in factor")))?;
        let card = self.cards[pos];
        let inner: usize = self.cards[pos + 1..].iter().product();
        let outer: usize = self.cards[..pos].iter().product();
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let mut table = vec![0.0; outer * inner];
        for o in 0..outer {
            for v in 0..card {
                let src = (o * card + v) * inner;
                let dst = o * inner;
                for t in 0..inner {
                    table[dst + t] += self.table[src + t];
                }
            }
        }
        Ok(Factor { vars, cards, table })
    }

    /// Fix `var = value`, dropping it from scope.
    pub fn reduce(&self, var: usize, value: usize) -> Result<Factor> {
        let pos = self
            .vars
            .binary_search(&var)
            .map_err(|_| BayesError::Invalid(format!("variable {var} not in factor")))?;
        let card = self.cards[pos];
        if value >= card {
            return Err(BayesError::ValueOutOfRange { var, value, cardinality: card });
        }
        let inner: usize = self.cards[pos + 1..].iter().product();
        let outer: usize = self.cards[..pos].iter().product();
        let mut vars = self.vars.clone();
        let mut cards = self.cards.clone();
        vars.remove(pos);
        cards.remove(pos);
        let mut table = Vec::with_capacity(outer * inner);
        for o in 0..outer {
            let src = (o * card + value) * inner;
            table.extend_from_slice(&self.table[src..src + inner]);
        }
        Ok(Factor { vars, cards, table })
    }
}

/// Build the CPD factor of variable `i` from a [`CpdSource`] (ground truth
/// or a streaming tracker's estimates).
pub fn cpd_factor<S: CpdSource>(net: &BayesianNetwork, source: &S, i: usize) -> Result<Factor> {
    let parents = net.dag().parents(i);
    let mut vars: Vec<usize> = parents.to_vec();
    vars.push(i);
    vars.sort_unstable();
    let cards: Vec<usize> = vars.iter().map(|&v| net.cardinality(v)).collect();
    let size: usize = cards.iter().product();
    let mut table = vec![0.0; size];
    // Enumerate assignments of the factor scope; compute the parent
    // configuration index and child value for each.
    let mut assignment = vec![0usize; vars.len()];
    for (idx, slot) in table.iter_mut().enumerate() {
        // Decode idx (last var fastest).
        let mut rem = idx;
        for d in (0..vars.len()).rev() {
            assignment[d] = rem % cards[d];
            rem /= cards[d];
        }
        let child_pos = vars.binary_search(&i).expect("child in scope");
        let value = assignment[child_pos];
        let mut u = 0usize;
        for &p in parents {
            let pos = vars.binary_search(&p).expect("parent in scope");
            u = u * net.cardinality(p) + assignment[pos];
        }
        *slot = source.cond_prob(i, value, u);
    }
    Factor::new(vars, cards, table)
}

/// Exact joint marginal `P[targets | evidence]` by variable elimination.
///
/// Returns a normalized table over the targets, row-major in *ascending
/// target order* with the last target varying fastest. Evidence pairs are
/// `(variable, value)`. Returns an error for inconsistent input or if the
/// evidence has probability zero.
pub fn marginal<S: CpdSource>(
    net: &BayesianNetwork,
    source: &S,
    targets: &[usize],
    evidence: &[(usize, usize)],
) -> Result<Factor> {
    let n = net.n_vars();
    let mut is_target = vec![false; n];
    for &t in targets {
        if t >= n {
            return Err(BayesError::NodeOutOfRange { index: t, n });
        }
        if is_target[t] {
            return Err(BayesError::Invalid(format!("duplicate target {t}")));
        }
        is_target[t] = true;
    }
    let mut ev = vec![None; n];
    for &(v, val) in evidence {
        if v >= n {
            return Err(BayesError::NodeOutOfRange { index: v, n });
        }
        if is_target[v] {
            return Err(BayesError::Invalid(format!("variable {v} is both target and evidence")));
        }
        if val >= net.cardinality(v) {
            return Err(BayesError::ValueOutOfRange {
                var: v,
                value: val,
                cardinality: net.cardinality(v),
            });
        }
        ev[v] = Some(val);
    }

    // Initial factors: one CPD per variable, reduced by evidence.
    let mut factors: Vec<Factor> = Vec::with_capacity(n);
    for i in 0..n {
        let mut f = cpd_factor(net, source, i)?;
        for &v in f.vars.clone().iter() {
            if let Some(val) = ev[v] {
                f = f.reduce(v, val)?;
            }
        }
        factors.push(f);
    }

    // Eliminate all non-target, non-evidence variables, smallest
    // resulting-scope first (min-degree heuristic).
    let mut to_eliminate: Vec<usize> =
        (0..n).filter(|&v| !is_target[v] && ev[v].is_none()).collect();
    while !to_eliminate.is_empty() {
        // Pick the variable whose elimination touches the fewest distinct
        // scope variables.
        let (pos, &var) = to_eliminate
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| {
                let mut scope: Vec<usize> = Vec::new();
                for f in factors.iter().filter(|f| f.vars.binary_search(&v).is_ok()) {
                    for &u in &f.vars {
                        if u != v && !scope.contains(&u) {
                            scope.push(u);
                        }
                    }
                }
                scope.len()
            })
            .expect("nonempty");
        to_eliminate.swap_remove(pos);
        let (touching, rest): (Vec<Factor>, Vec<Factor>) =
            factors.into_iter().partition(|f| f.vars.binary_search(&var).is_ok());
        factors = rest;
        let mut product = Factor::unit();
        for f in &touching {
            product = product.product(f)?;
        }
        factors.push(product.marginalize_out(var)?);
    }

    // Multiply the remaining factors (scopes within the target set).
    let mut result = Factor::unit();
    for f in &factors {
        result = result.product(f)?;
    }
    // Normalize (conditioning on the evidence).
    let z: f64 = result.table.iter().sum();
    if z <= 0.0 || !z.is_finite() {
        return Err(BayesError::Invalid(format!(
            "evidence has probability {z}; conditional undefined"
        )));
    }
    for p in result.table.iter_mut() {
        *p /= z;
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::testnet::sprinkler;

    /// Brute-force marginal by enumerating the full joint.
    fn brute_marginal(
        net: &BayesianNetwork,
        targets: &[usize],
        evidence: &[(usize, usize)],
    ) -> Option<Vec<f64>> {
        let n = net.n_vars();
        let mut targets_sorted = targets.to_vec();
        targets_sorted.sort_unstable();
        let t_cards: Vec<usize> = targets_sorted.iter().map(|&t| net.cardinality(t)).collect();
        let size: usize = t_cards.iter().product();
        let mut out = vec![0.0; size];
        let total: usize = (0..n).map(|i| net.cardinality(i)).product();
        let mut x = vec![0usize; n];
        for mut idx in 0..total {
            for i in (0..n).rev() {
                x[i] = idx % net.cardinality(i);
                idx /= net.cardinality(i);
            }
            if evidence.iter().any(|&(v, val)| x[v] != val) {
                continue;
            }
            let mut t_idx = 0usize;
            for (d, &t) in targets_sorted.iter().enumerate() {
                t_idx = t_idx * t_cards[d] + x[t];
            }
            out[t_idx] += net.joint_prob(&x);
        }
        let z: f64 = out.iter().sum();
        if z == 0.0 {
            return None;
        }
        Some(out.iter().map(|p| p / z).collect())
    }

    #[test]
    fn single_variable_marginals_match_bruteforce() {
        let net = sprinkler();
        for t in 0..4 {
            let f = marginal(&net, &net, &[t], &[]).unwrap();
            let want = brute_marginal(&net, &[t], &[]).unwrap();
            for (a, b) in f.table().iter().zip(&want) {
                assert!((a - b).abs() < 1e-12, "target {t}: {:?} vs {:?}", f.table(), want);
            }
        }
    }

    #[test]
    fn conditional_marginals_match_bruteforce() {
        let net = sprinkler();
        // P(Rain | WetGrass = wet).
        let f = marginal(&net, &net, &[2], &[(3, 1)]).unwrap();
        let want = brute_marginal(&net, &[2], &[(3, 1)]).unwrap();
        for (a, b) in f.table().iter().zip(&want) {
            assert!((a - b).abs() < 1e-12);
        }
        // Rain should be more likely than its prior given wet grass.
        let prior = marginal(&net, &net, &[2], &[]).unwrap();
        assert!(f.table()[1] > prior.table()[1]);
    }

    #[test]
    fn pairwise_marginals_match_bruteforce() {
        let net = sprinkler();
        for a in 0..4 {
            for b in 0..4 {
                if a == b {
                    continue;
                }
                let f = marginal(&net, &net, &[a, b], &[]).unwrap();
                let want = brute_marginal(&net, &[a, b], &[]).unwrap();
                assert_eq!(f.len(), 4);
                for (x, y) in f.table().iter().zip(&want) {
                    assert!((x - y).abs() < 1e-12, "targets {a},{b}");
                }
            }
        }
    }

    #[test]
    fn zero_probability_evidence_is_an_error() {
        let net = sprinkler();
        // Sprinkler off + no rain makes wet grass impossible.
        let err = marginal(&net, &net, &[0], &[(1, 0), (2, 0), (3, 1)]);
        assert!(err.is_err());
    }

    #[test]
    fn input_validation() {
        let net = sprinkler();
        assert!(marginal(&net, &net, &[9], &[]).is_err());
        assert!(marginal(&net, &net, &[0, 0], &[]).is_err());
        assert!(marginal(&net, &net, &[0], &[(0, 1)]).is_err());
        assert!(marginal(&net, &net, &[0], &[(1, 7)]).is_err());
        assert!(marginal(&net, &net, &[0], &[(9, 0)]).is_err());
    }

    #[test]
    fn factor_product_and_marginalize() {
        // f(a) * g(a, b) summed over a = marginal over b.
        let f = Factor::new(vec![0], vec![2], vec![0.3, 0.7]).unwrap();
        let g = Factor::new(vec![0, 1], vec![2, 2], vec![0.9, 0.1, 0.2, 0.8]).unwrap();
        let p = f.product(&g).unwrap();
        assert_eq!(p.vars(), &[0, 1]);
        let m = p.marginalize_out(0).unwrap();
        assert_eq!(m.vars(), &[1]);
        let expect = [0.3 * 0.9 + 0.7 * 0.2, 0.3 * 0.1 + 0.7 * 0.8];
        for (a, b) in m.table().iter().zip(&expect) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn factor_reduce() {
        let g = Factor::new(vec![0, 1], vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let r = g.reduce(0, 1).unwrap();
        assert_eq!(r.vars(), &[1]);
        assert_eq!(r.table(), &[4., 5., 6.]);
        let r = g.reduce(1, 2).unwrap();
        assert_eq!(r.vars(), &[0]);
        assert_eq!(r.table(), &[3., 6.]);
        assert!(g.reduce(1, 5).is_err());
        assert!(g.reduce(7, 0).is_err());
    }

    #[test]
    fn factor_validation() {
        assert!(Factor::new(vec![1, 0], vec![2, 2], vec![0.0; 4]).is_err());
        assert!(Factor::new(vec![0, 1], vec![2, 2], vec![0.0; 3]).is_err());
        let unit = Factor::unit();
        assert!(unit.is_empty());
        assert_eq!(unit.len(), 1);
    }

    #[test]
    fn classification_consistency_with_markov_blanket() {
        // marginal() with full evidence must agree with classify::posterior.
        let net = sprinkler();
        for bits in 0..8usize {
            let x: Vec<usize> = (0..3).map(|b| (bits >> b) & 1).collect();
            let evidence: Vec<(usize, usize)> = vec![(0, x[0]), (1, x[1]), (2, x[2])];
            let f = match marginal(&net, &net, &[3], &evidence) {
                Ok(f) => f,
                Err(_) => continue, // zero-probability evidence
            };
            let mut full = vec![x[0], x[1], x[2], 0];
            let post = crate::classify::posterior(&net, &net, 3, &mut full);
            for (a, b) in f.table().iter().zip(&post) {
                assert!((a - b).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn marginal_on_generated_network() {
        use crate::generate::NetworkSpec;
        let spec = NetworkSpec {
            name: "inf".into(),
            n_nodes: 8,
            n_edges: 10,
            max_parents: 3,
            base_cardinality: 2,
            max_cardinality: 3,
            target_parameters: 40,
            dirichlet_alpha: 1.0,
            min_cpd_entry: 0.02,
        };
        let net = spec.generate(4).unwrap();
        for t in 0..net.n_vars() {
            let f = marginal(&net, &net, &[t], &[]).unwrap();
            let want = brute_marginal(&net, &[t], &[]).unwrap();
            for (a, b) in f.table().iter().zip(&want) {
                assert!((a - b).abs() < 1e-9, "target {t}");
            }
        }
    }
}
