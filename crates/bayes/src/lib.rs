//! # dsbn-bayes — Bayesian network substrate
//!
//! Everything the paper's algorithms need to know about Bayesian networks:
//!
//! - [`variable::Variable`], [`dag::Dag`], [`cpt::Cpt`],
//!   [`network::BayesianNetwork`] — the model representation (Definition 1,
//!   Eq. 1 of Zhang, Tirthapura & Cormode, ICDE 2018).
//! - [`sample::AncestralSampler`] — topological-order data generation
//!   (§VI-A "Training Data").
//! - [`classify`] — Bayesian classification over full evidence (§V,
//!   Definition 4), generic over any [`classify::CpdSource`] so streaming
//!   trackers can reuse it.
//! - [`bif`] — parser/writer for the bnlearn `.bif` interchange format.
//! - [`generate::NetworkSpec`] — seeded random networks calibrated to the
//!   paper's Table I (ALARM, HEPAR II, LINK, MUNIN) plus the NEW-ALARM
//!   construction ([`generate::new_alarm`]).
//! - [`chowliu`] — offline Chow–Liu structure learning (the degree-one
//!   setting of McGregor & Vu).
//! - [`rngutil`] — Gamma/Dirichlet/normal sampling helpers.

pub mod bif;
pub mod chowliu;
pub mod classify;
pub mod cpt;
pub mod dag;
pub mod error;
pub mod generate;
pub mod inference;
pub mod network;
pub mod rngutil;
pub mod sample;
pub mod variable;

pub use cpt::Cpt;
pub use dag::Dag;
pub use error::{BayesError, Result};
pub use generate::{new_alarm, NetworkSpec};
pub use network::{Assignment, BayesianNetwork, NetworkStats};
pub use sample::AncestralSampler;
pub use variable::Variable;

/// A shared test fixture: the classic 4-node sprinkler network. Exposed for
/// downstream crates' tests and for the quickstart example.
pub fn sprinkler_network() -> BayesianNetwork {
    let variables = vec![
        Variable::new("Cloudy", vec!["no".into(), "yes".into()]).unwrap(),
        Variable::new("Sprinkler", vec!["off".into(), "on".into()]).unwrap(),
        Variable::new("Rain", vec!["no".into(), "yes".into()]).unwrap(),
        Variable::new("WetGrass", vec!["dry".into(), "wet".into()]).unwrap(),
    ];
    let mut dag = Dag::new(4);
    dag.add_edge(0, 1).unwrap();
    dag.add_edge(0, 2).unwrap();
    dag.add_edge(1, 3).unwrap();
    dag.add_edge(2, 3).unwrap();
    let cpts = vec![
        Cpt::new(0, 2, vec![], vec![0.5, 0.5]).unwrap(),
        Cpt::new(1, 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
        Cpt::new(2, 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
        Cpt::new(3, 2, vec![2, 2], vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99]).unwrap(),
    ];
    BayesianNetwork::new("sprinkler", variables, dag, cpts).unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sprinkler_fixture_is_valid() {
        let net = sprinkler_network();
        assert_eq!(net.n_vars(), 4);
        assert_eq!(net.stats().n_parameters, 9);
    }
}
