//! Bayesian classification (Definition 4 of the paper).
//!
//! Given full evidence on every variable except a target `Y`, the posterior
//! `P[Y = y | e]` is proportional to the product of the factors that mention
//! `Y`: `Y`'s own CPD entry and the CPD entries of each child of `Y`. This is
//! `Y`'s Markov blanket restricted to full evidence, so no general-purpose
//! inference is needed.
//!
//! The computation is generic over a [`CpdSource`] so the same code classifies
//! with ground-truth CPTs (this crate) and with streaming counter estimates
//! (`dsbn-core`'s trackers implement `CpdSource`).

use crate::network::BayesianNetwork;

/// Anything that can report (an estimate of) `P[X_i = x | par(X_i) = u_idx]`.
///
/// `u_idx` is the parent configuration index in the convention of
/// [`crate::cpt::Cpt::parent_config_index`].
pub trait CpdSource {
    /// Conditional probability estimate for variable `i`.
    fn cond_prob(&self, i: usize, value: usize, u_idx: usize) -> f64;
}

impl CpdSource for BayesianNetwork {
    fn cond_prob(&self, i: usize, value: usize, u_idx: usize) -> f64 {
        self.cpt(i).prob(value, u_idx)
    }
}

/// Compute the unnormalized log-posterior of `target = y` for every `y`,
/// writing into `scores`. `x` supplies the evidence for every other variable;
/// `x[target]` is ignored and temporarily overwritten.
///
/// Factors not involving `target` are constant in `y` and omitted.
pub fn log_posterior_scores<S: CpdSource>(
    net: &BayesianNetwork,
    source: &S,
    target: usize,
    x: &mut [usize],
    scores: &mut Vec<f64>,
) {
    let j = net.cardinality(target);
    scores.clear();
    scores.resize(j, 0.0);
    let saved = x[target];
    for (y, score) in scores.iter_mut().enumerate() {
        x[target] = y;
        let mut lp = {
            let u = net.parent_config_of(target, x);
            source.cond_prob(target, y, u).ln()
        };
        for &c in net.dag().children(target) {
            let u = net.parent_config_of(c, x);
            lp += source.cond_prob(c, x[c], u).ln();
        }
        *score = lp;
    }
    x[target] = saved;
}

/// Posterior distribution `P[target | e]`, normalized. Degenerate cases
/// (all-zero likelihood) fall back to uniform.
pub fn posterior<S: CpdSource>(
    net: &BayesianNetwork,
    source: &S,
    target: usize,
    x: &mut [usize],
) -> Vec<f64> {
    let mut scores = Vec::new();
    log_posterior_scores(net, source, target, x, &mut scores);
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if !max.is_finite() {
        let j = scores.len();
        return vec![1.0 / j as f64; j];
    }
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
    scores
}

/// `Class(Y | e) = argmax_y P[y | e]` — the classification rule of §V.
/// Ties break toward the smaller value index (deterministic).
pub fn classify<S: CpdSource>(
    net: &BayesianNetwork,
    source: &S,
    target: usize,
    x: &mut [usize],
) -> usize {
    let mut scores = Vec::new();
    log_posterior_scores(net, source, target, x, &mut scores);
    let mut best = 0usize;
    let mut best_score = f64::NEG_INFINITY;
    for (y, &s) in scores.iter().enumerate() {
        if s > best_score {
            best_score = s;
            best = y;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::testnet::sprinkler;

    /// Brute-force posterior by enumerating the joint. Returns `None` when
    /// the evidence has probability zero (the conditional is undefined; the
    /// Markov-blanket method then conditions on the feasible factors only).
    fn brute_posterior(net: &BayesianNetwork, target: usize, x: &[usize]) -> Option<Vec<f64>> {
        let j = net.cardinality(target);
        let mut probs = vec![0.0; j];
        let mut x = x.to_vec();
        for (y, p) in probs.iter_mut().enumerate() {
            x[target] = y;
            *p = net.joint_prob(&x);
        }
        let sum: f64 = probs.iter().sum();
        if sum == 0.0 {
            return None;
        }
        Some(probs.iter().map(|p| p / sum).collect())
    }

    #[test]
    fn posterior_matches_bruteforce_everywhere() {
        let net = sprinkler();
        // Enumerate all 16 assignments and all 4 targets.
        let mut compared = 0;
        for bits in 0..16usize {
            let x: Vec<usize> = (0..4).map(|i| (bits >> i) & 1).collect();
            for target in 0..4 {
                let Some(want) = brute_posterior(&net, target, &x) else {
                    continue;
                };
                let mut xm = x.clone();
                let got = posterior(&net, &net, target, &mut xm);
                for (g, w) in got.iter().zip(&want) {
                    assert!((g - w).abs() < 1e-12, "target {target}, x {x:?}: {got:?} vs {want:?}");
                }
                // Evidence untouched.
                assert_eq!(xm, x);
                compared += 1;
            }
        }
        assert!(compared >= 40, "only {compared} feasible cases compared");
    }

    #[test]
    fn classify_picks_argmax() {
        let net = sprinkler();
        // Grass is wet, sprinkler off, cloudy: rain is the explanation.
        let mut x = vec![1, 0, 0, 1]; // x[2] (Rain) ignored
        assert_eq!(classify(&net, &net, 2, &mut x), 1);
        // Grass dry, sprinkler off, cloudy: rain unlikely.
        let mut x = vec![1, 0, 0, 0];
        assert_eq!(classify(&net, &net, 2, &mut x), 0);
    }

    #[test]
    fn zero_likelihood_falls_back_to_uniform() {
        struct Zero;
        impl CpdSource for Zero {
            fn cond_prob(&self, _: usize, _: usize, _: usize) -> f64 {
                0.0
            }
        }
        let net = sprinkler();
        let mut x = vec![0, 0, 0, 0];
        let p = posterior(&net, &Zero, 0, &mut x);
        assert_eq!(p, vec![0.5, 0.5]);
    }

    #[test]
    fn posterior_sums_to_one() {
        let net = sprinkler();
        let mut x = vec![0, 1, 1, 1];
        for target in 0..4 {
            let p = posterior(&net, &net, target, &mut x);
            let s: f64 = p.iter().sum();
            assert!((s - 1.0).abs() < 1e-12);
        }
    }
}
