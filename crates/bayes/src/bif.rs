//! Parser and writer for the Bayesian Interchange Format (BIF), the format
//! used by the bnlearn repository the paper draws its networks from.
//!
//! Supported subset (sufficient for repository files):
//!
//! ```text
//! network <name> { ... }
//! variable <V> { type discrete [ J ] { s1, s2, ... }; }
//! probability ( <V> ) { table p1, ..., pJ; }
//! probability ( <V> | <P1>, <P2> ) {
//!   (sa, sb) p1, ..., pJ;
//!   ...
//! }
//! ```
//!
//! Parent order in the file may differ from our canonical sorted-index
//! order; rows are re-indexed during parsing. `//`-comments are ignored.

use crate::cpt::Cpt;
use crate::dag::Dag;
use crate::error::{BayesError, Result};
use crate::network::BayesianNetwork;
use crate::variable::Variable;
use std::collections::HashMap;
use std::fmt::Write as _;

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Number(f64),
    Punct(char),
}

struct Lexer {
    toks: Vec<(Tok, usize)>,
    pos: usize,
}

fn err(line: usize, detail: impl Into<String>) -> BayesError {
    BayesError::BifParse { line, detail: detail.into() }
}

impl Lexer {
    fn new(text: &str) -> Result<Self> {
        let mut toks = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line_no = lineno + 1;
            let line = match line.find("//") {
                Some(i) => &line[..i],
                None => line,
            };
            let mut chars = line.char_indices().peekable();
            while let Some(&(i, c)) = chars.peek() {
                if c.is_whitespace() {
                    chars.next();
                } else if c.is_ascii_alphabetic() || c == '_' {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_alphanumeric() || d == '_' || d == '-' || d == '.' {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    toks.push((Tok::Ident(line[start..end].to_owned()), line_no));
                } else if c.is_ascii_digit() || c == '.' || c == '-' || c == '+' {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_digit()
                            || d == '.'
                            || d == '-'
                            || d == '+'
                            || d == 'e'
                            || d == 'E'
                        {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let s = &line[start..end];
                    let v: f64 = s.parse().map_err(|_| err(line_no, format!("bad number {s}")))?;
                    toks.push((Tok::Number(v), line_no));
                } else if "{}()[],;|".contains(c) {
                    toks.push((Tok::Punct(c), line_no));
                    chars.next();
                } else {
                    return Err(err(line_no, format!("unexpected character {c:?}")));
                }
            }
        }
        Ok(Lexer { toks, pos: 0 })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|(t, _)| t)
    }

    fn line(&self) -> usize {
        self.toks.get(self.pos.min(self.toks.len().saturating_sub(1))).map(|&(_, l)| l).unwrap_or(0)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| err(self.line(), "unexpected end of input"))?;
        self.pos += 1;
        Ok(t.0)
    }

    fn expect_punct(&mut self, c: char) -> Result<()> {
        let line = self.line();
        match self.next()? {
            Tok::Punct(p) if p == c => Ok(()),
            other => Err(err(line, format!("expected {c:?}, found {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(err(line, format!("expected identifier, found {other:?}"))),
        }
    }

    fn expect_number(&mut self) -> Result<f64> {
        let line = self.line();
        match self.next()? {
            Tok::Number(v) => Ok(v),
            // State names that look like numbers (e.g. `{ 0, 1 }`) lex as
            // numbers; callers that want names use expect_name instead.
            other => Err(err(line, format!("expected number, found {other:?}"))),
        }
    }

    /// A state name: identifier, or a number rendered back to text.
    fn expect_name(&mut self) -> Result<String> {
        let line = self.line();
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            Tok::Number(v) => Ok(format_number(v)),
            other => Err(err(line, format!("expected name, found {other:?}"))),
        }
    }

    /// Skip a balanced `{ ... }` block (for `network` properties).
    fn skip_block(&mut self) -> Result<()> {
        self.expect_punct('{')?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.next()? {
                Tok::Punct('{') => depth += 1,
                Tok::Punct('}') => depth -= 1,
                _ => {}
            }
        }
        Ok(())
    }
}

fn format_number(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

struct PendingCpd {
    child: String,
    parents: Vec<String>,
    /// `table` rows: (parent state names in file order, probabilities).
    rows: Vec<(Vec<String>, Vec<f64>)>,
    line: usize,
}

/// Parse a BIF document into a [`BayesianNetwork`].
pub fn parse(text: &str) -> Result<BayesianNetwork> {
    let mut lx = Lexer::new(text)?;
    let mut net_name = String::from("bif");
    let mut variables: Vec<Variable> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut cpds: Vec<PendingCpd> = Vec::new();

    while lx.peek().is_some() {
        let line = lx.line();
        let kw = lx.expect_ident()?;
        match kw.as_str() {
            "network" => {
                net_name = lx.expect_name()?;
                lx.skip_block()?;
            }
            "variable" => {
                let name = lx.expect_name()?;
                lx.expect_punct('{')?;
                let ty = lx.expect_ident()?;
                if ty != "type" {
                    return Err(err(lx.line(), format!("expected 'type', found {ty}")));
                }
                let kind = lx.expect_ident()?;
                if kind != "discrete" {
                    return Err(err(
                        lx.line(),
                        format!("only discrete variables supported, found {kind}"),
                    ));
                }
                lx.expect_punct('[')?;
                let j = lx.expect_number()? as usize;
                lx.expect_punct(']')?;
                lx.expect_punct('{')?;
                let mut states = Vec::with_capacity(j);
                loop {
                    states.push(lx.expect_name()?);
                    match lx.next()? {
                        Tok::Punct(',') => continue,
                        Tok::Punct('}') => break,
                        other => {
                            return Err(err(lx.line(), format!("expected , or }} found {other:?}")))
                        }
                    }
                }
                lx.expect_punct(';')?;
                lx.expect_punct('}')?;
                if states.len() != j {
                    return Err(err(
                        line,
                        format!("variable {name}: {j} declared, {} states listed", states.len()),
                    ));
                }
                if index.contains_key(&name) {
                    return Err(BayesError::DuplicateVariable(name));
                }
                index.insert(name.clone(), variables.len());
                variables.push(Variable::new(name, states)?);
            }
            "probability" => {
                lx.expect_punct('(')?;
                let child = lx.expect_name()?;
                let mut parents = Vec::new();
                match lx.next()? {
                    Tok::Punct(')') => {}
                    Tok::Punct('|') => loop {
                        parents.push(lx.expect_name()?);
                        match lx.next()? {
                            Tok::Punct(',') => continue,
                            Tok::Punct(')') => break,
                            other => {
                                return Err(err(
                                    lx.line(),
                                    format!("expected , or ) found {other:?}"),
                                ))
                            }
                        }
                    },
                    other => {
                        return Err(err(lx.line(), format!("expected | or ) found {other:?}")))
                    }
                }
                lx.expect_punct('{')?;
                let mut rows = Vec::new();
                loop {
                    match lx.next()? {
                        Tok::Punct('}') => break,
                        Tok::Ident(w) if w == "table" => {
                            let mut probs = Vec::new();
                            loop {
                                probs.push(lx.expect_number()?);
                                match lx.next()? {
                                    Tok::Punct(',') => continue,
                                    Tok::Punct(';') => break,
                                    other => {
                                        return Err(err(
                                            lx.line(),
                                            format!("expected , or ; found {other:?}"),
                                        ))
                                    }
                                }
                            }
                            rows.push((Vec::new(), probs));
                        }
                        Tok::Punct('(') => {
                            let mut config = Vec::new();
                            loop {
                                config.push(lx.expect_name()?);
                                match lx.next()? {
                                    Tok::Punct(',') => continue,
                                    Tok::Punct(')') => break,
                                    other => {
                                        return Err(err(
                                            lx.line(),
                                            format!("expected , or ) found {other:?}"),
                                        ))
                                    }
                                }
                            }
                            let mut probs = Vec::new();
                            loop {
                                probs.push(lx.expect_number()?);
                                match lx.next()? {
                                    Tok::Punct(',') => continue,
                                    Tok::Punct(';') => break,
                                    other => {
                                        return Err(err(
                                            lx.line(),
                                            format!("expected , or ; found {other:?}"),
                                        ))
                                    }
                                }
                            }
                            rows.push((config, probs));
                        }
                        other => {
                            return Err(err(
                                lx.line(),
                                format!("unexpected {other:?} in probability block"),
                            ))
                        }
                    }
                }
                cpds.push(PendingCpd { child, parents, rows, line });
            }
            other => return Err(err(line, format!("unexpected keyword {other}"))),
        }
    }

    assemble(net_name, variables, index, cpds)
}

fn assemble(
    net_name: String,
    variables: Vec<Variable>,
    index: HashMap<String, usize>,
    cpds: Vec<PendingCpd>,
) -> Result<BayesianNetwork> {
    let n = variables.len();
    let mut dag = Dag::new(n);
    // First pass: structure.
    let mut file_parents: Vec<Option<Vec<usize>>> = vec![None; n];
    for cpd in &cpds {
        let c = *index
            .get(&cpd.child)
            .ok_or_else(|| err(cpd.line, format!("unknown variable {}", cpd.child)))?;
        let mut ps = Vec::with_capacity(cpd.parents.len());
        for p in &cpd.parents {
            let pi = *index.get(p).ok_or_else(|| err(cpd.line, format!("unknown parent {p}")))?;
            dag.add_edge(pi, c)?;
            ps.push(pi);
        }
        if file_parents[c].is_some() {
            return Err(err(cpd.line, format!("duplicate probability block for {}", cpd.child)));
        }
        file_parents[c] = Some(ps);
    }
    // Second pass: tables, re-indexed from file parent order to sorted order.
    let mut cpts: Vec<Option<Cpt>> = vec![None; n];
    for cpd in &cpds {
        let c = index[&cpd.child];
        let j = variables[c].cardinality();
        let fps = file_parents[c].clone().unwrap_or_default();
        let sorted: Vec<usize> = dag.parents(c).to_vec();
        let sorted_cards: Vec<usize> = sorted.iter().map(|&p| variables[p].cardinality()).collect();
        let k: usize = sorted_cards.iter().product();
        let mut table = vec![f64::NAN; k * j];
        for (config, probs) in &cpd.rows {
            if probs.len() != j {
                return Err(err(
                    cpd.line,
                    format!("{}: row has {} probabilities, expected {j}", cpd.child, probs.len()),
                ));
            }
            if config.len() != fps.len() {
                return Err(err(
                    cpd.line,
                    format!(
                        "{}: row config arity {} vs {} parents",
                        cpd.child,
                        config.len(),
                        fps.len()
                    ),
                ));
            }
            // Map parent state names (file order) to sorted-order values.
            let mut values_sorted = vec![0usize; sorted.len()];
            for (state, &pvar) in config.iter().zip(&fps) {
                let v = variables[pvar].state_index(state).ok_or_else(|| {
                    err(
                        cpd.line,
                        format!(
                            "{}: unknown state {state} for parent {}",
                            cpd.child,
                            variables[pvar].name()
                        ),
                    )
                })?;
                let slot = sorted.iter().position(|&s| s == pvar).expect("parent in sorted list");
                values_sorted[slot] = v;
            }
            let mut u = 0usize;
            for (v, kk) in values_sorted.iter().zip(&sorted_cards) {
                u = u * kk + v;
            }
            for (x, &p) in probs.iter().enumerate() {
                table[u * j + x] = p;
            }
        }
        if table.iter().any(|p| p.is_nan()) {
            return Err(err(
                cpd.line,
                format!("{}: not all parent configurations specified", cpd.child),
            ));
        }
        cpts[c] = Some(Cpt::new(c, j, sorted_cards, table)?);
    }
    let cpts: Vec<Cpt> = cpts
        .into_iter()
        .enumerate()
        .map(|(i, c)| {
            c.ok_or_else(|| err(0, format!("no probability block for {}", variables[i].name())))
        })
        .collect::<Result<_>>()?;
    BayesianNetwork::new(net_name, variables, dag, cpts)
}

/// Serialize a network to BIF text (parents written in sorted-index order,
/// which [`parse`] accepts, so `parse(write(net))` round-trips).
pub fn write(net: &BayesianNetwork) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "network {} {{\n}}", sanitize(net.name()));
    for v in net.variables() {
        let _ = writeln!(out, "variable {} {{", sanitize(v.name()));
        let states: Vec<String> = v.states().iter().map(|s| sanitize(s)).collect();
        let _ =
            writeln!(out, "  type discrete [ {} ] {{ {} }};", v.cardinality(), states.join(", "));
        let _ = writeln!(out, "}}");
    }
    let mut pbuf = Vec::new();
    for i in 0..net.n_vars() {
        let cpt = net.cpt(i);
        let parents = net.dag().parents(i);
        if parents.is_empty() {
            let _ = writeln!(out, "probability ( {} ) {{", sanitize(net.variable(i).name()));
            let row: Vec<String> = cpt.row(0).iter().map(|p| format!("{p}")).collect();
            let _ = writeln!(out, "  table {};", row.join(", "));
        } else {
            let pnames: Vec<String> =
                parents.iter().map(|&p| sanitize(net.variable(p).name())).collect();
            let _ = writeln!(
                out,
                "probability ( {} | {} ) {{",
                sanitize(net.variable(i).name()),
                pnames.join(", ")
            );
            for u in 0..cpt.n_parent_configs() {
                cpt.decode_parent_config(u, &mut pbuf);
                let config: Vec<String> = pbuf
                    .iter()
                    .zip(parents)
                    .map(|(&v, &p)| sanitize(&net.variable(p).states()[v]))
                    .collect();
                let row: Vec<String> = cpt.row(u).iter().map(|p| format!("{p}")).collect();
                let _ = writeln!(out, "  ({}) {};", config.join(", "), row.join(", "));
            }
        }
        let _ = writeln!(out, "}}");
    }
    out
}

/// BIF identifiers cannot contain arbitrary punctuation; map offenders to `_`.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(
            |c| if c.is_ascii_alphanumeric() || c == '_' || c == '-' || c == '.' { c } else { '_' },
        )
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::testnet::sprinkler;

    const SPRINKLER_BIF: &str = r#"
network sprinkler {
}
variable Cloudy {
  type discrete [ 2 ] { no, yes };
}
variable Sprinkler {
  type discrete [ 2 ] { off, on };
}
variable Rain {
  type discrete [ 2 ] { no, yes };
}
variable WetGrass {
  type discrete [ 2 ] { dry, wet };
}
probability ( Cloudy ) {
  table 0.5, 0.5;
}
probability ( Sprinkler | Cloudy ) {
  (no) 0.5, 0.5;
  (yes) 0.9, 0.1;
}
probability ( Rain | Cloudy ) {
  (no) 0.8, 0.2;
  (yes) 0.2, 0.8;
}
probability ( WetGrass | Sprinkler, Rain ) {
  (off, no) 1.0, 0.0;
  (off, yes) 0.1, 0.9;
  (on, no) 0.1, 0.9;
  (on, yes) 0.01, 0.99;
}
"#;

    #[test]
    fn parses_sprinkler() {
        let net = parse(SPRINKLER_BIF).unwrap();
        assert_eq!(net.n_vars(), 4);
        assert_eq!(net.name(), "sprinkler");
        let reference = sprinkler();
        // Same joint distribution on every assignment.
        for bits in 0..16usize {
            let x: Vec<usize> = (0..4).map(|i| (bits >> i) & 1).collect();
            assert!(
                (net.joint_prob(&x) - reference.joint_prob(&x)).abs() < 1e-12,
                "mismatch at {x:?}"
            );
        }
    }

    #[test]
    fn parent_order_reindexing() {
        // Same network but WetGrass parents written (Rain, Sprinkler).
        let flipped = SPRINKLER_BIF.replace(
            "probability ( WetGrass | Sprinkler, Rain ) {
  (off, no) 1.0, 0.0;
  (off, yes) 0.1, 0.9;
  (on, no) 0.1, 0.9;
  (on, yes) 0.01, 0.99;
}",
            "probability ( WetGrass | Rain, Sprinkler ) {
  (no, off) 1.0, 0.0;
  (yes, off) 0.1, 0.9;
  (no, on) 0.1, 0.9;
  (yes, on) 0.01, 0.99;
}",
        );
        let net = parse(&flipped).unwrap();
        let reference = sprinkler();
        for bits in 0..16usize {
            let x: Vec<usize> = (0..4).map(|i| (bits >> i) & 1).collect();
            assert!((net.joint_prob(&x) - reference.joint_prob(&x)).abs() < 1e-12);
        }
    }

    #[test]
    fn round_trip() {
        let net = sprinkler();
        let text = write(&net);
        let back = parse(&text).unwrap();
        for bits in 0..16usize {
            let x: Vec<usize> = (0..4).map(|i| (bits >> i) & 1).collect();
            assert!((net.joint_prob(&x) - back.joint_prob(&x)).abs() < 1e-12);
        }
        assert_eq!(back.dag().n_edges(), 4);
    }

    #[test]
    fn round_trip_generated_network() {
        use crate::generate::NetworkSpec;
        let net = NetworkSpec::alarm().generate(2).unwrap();
        let back = parse(&write(&net)).unwrap();
        assert_eq!(back.n_vars(), net.n_vars());
        assert_eq!(back.dag().n_edges(), net.dag().n_edges());
        assert_eq!(back.stats().n_parameters, net.stats().n_parameters);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "variable X {\n  type discrete [ 2 ] { a, b };\n}\nprobability ( Y ) {\n table 1.0;\n}\n";
        match parse(bad) {
            Err(BayesError::BifParse { line, .. }) => assert!(line >= 4, "line {line}"),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn missing_rows_rejected() {
        let bad = SPRINKLER_BIF.replace("  (on, yes) 0.01, 0.99;\n", "");
        assert!(matches!(parse(&bad), Err(BayesError::BifParse { .. })));
    }

    #[test]
    fn duplicate_probability_block_rejected() {
        let bad = format!("{SPRINKLER_BIF}\nprobability ( Cloudy ) {{\n table 0.4, 0.6;\n}}\n");
        assert!(parse(&bad).is_err());
    }

    #[test]
    fn numeric_state_names() {
        let text = "network n { }\nvariable X {\n  type discrete [ 2 ] { 0, 1 };\n}\nprobability ( X ) {\n  table 0.3, 0.7;\n}\n";
        let net = parse(text).unwrap();
        assert_eq!(net.variable(0).states(), &["0", "1"]);
    }
}
