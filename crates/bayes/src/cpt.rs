//! Conditional probability tables (CPDs for categorical variables).
//!
//! A [`Cpt`] stores `P[X = x | par(X) = u]` for a variable with cardinality
//! `J` and parents with cardinalities `K_1..K_p`. The table is row-major:
//! `table[u_idx * J + x]`, where `u_idx` is the *parent configuration index*.
//!
//! ## Parent configuration index
//!
//! Given parent values `(u_1, .., u_p)` listed in the network's sorted parent
//! order, the configuration index is a mixed-radix number with the **last
//! parent varying fastest**:
//! `u_idx = ((u_1 * K_2 + u_2) * K_3 + u_3) ...`.
//! The same convention is used by the counter banks in `dsbn-core`, which is
//! what lets a tracker address the counters of a CPD entry in O(p) time.

use crate::error::{BayesError, Result};
use serde::{Deserialize, Serialize};

/// Tolerance used when validating that CPT rows sum to one.
pub const ROW_SUM_TOLERANCE: f64 = 1e-6;

/// A conditional probability table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cpt {
    /// Cardinality `J` of the child variable.
    cardinality: usize,
    /// Cardinalities of the parents, in sorted parent order.
    parent_cards: Vec<usize>,
    /// Row-major table of size `K * J` where `K = prod(parent_cards)`.
    table: Vec<f64>,
}

impl Cpt {
    /// Build a CPT from a row-major table, validating shape and row sums.
    pub fn new(
        var: usize,
        cardinality: usize,
        parent_cards: Vec<usize>,
        table: Vec<f64>,
    ) -> Result<Self> {
        let k: usize = parent_cards.iter().product();
        let expected = k * cardinality;
        if table.len() != expected {
            return Err(BayesError::CptShapeMismatch { var, expected, actual: table.len() });
        }
        let cpt = Cpt { cardinality, parent_cards, table };
        cpt.validate(var)?;
        Ok(cpt)
    }

    /// A uniform CPT (every row `1/J`).
    pub fn uniform(cardinality: usize, parent_cards: Vec<usize>) -> Self {
        let k: usize = parent_cards.iter().product();
        let p = 1.0 / cardinality as f64;
        Cpt { cardinality, parent_cards, table: vec![p; k * cardinality] }
    }

    /// Validate all rows: entries in `[0, 1]`, finite, each row sums to ~1.
    pub fn validate(&self, var: usize) -> Result<()> {
        for u in 0..self.n_parent_configs() {
            let row = self.row(u);
            let mut sum = 0.0;
            for &p in row {
                if !p.is_finite() || !(0.0..=1.0 + ROW_SUM_TOLERANCE).contains(&p) {
                    return Err(BayesError::InvalidCpt {
                        var,
                        detail: format!("entry {p} in row {u} outside [0,1]"),
                    });
                }
                sum += p;
            }
            if (sum - 1.0).abs() > ROW_SUM_TOLERANCE * self.cardinality as f64 {
                return Err(BayesError::InvalidCpt {
                    var,
                    detail: format!("row {u} sums to {sum}"),
                });
            }
        }
        Ok(())
    }

    /// Child cardinality `J`.
    pub fn cardinality(&self) -> usize {
        self.cardinality
    }

    /// Parent cardinalities in sorted parent order.
    pub fn parent_cards(&self) -> &[usize] {
        &self.parent_cards
    }

    /// Number of parent configurations `K = prod(parent_cards)` (1 for roots).
    pub fn n_parent_configs(&self) -> usize {
        self.parent_cards.iter().product()
    }

    /// Total number of table entries `J * K`.
    pub fn n_entries(&self) -> usize {
        self.table.len()
    }

    /// Number of *free* parameters `(J - 1) * K`, the quantity reported by
    /// the bnlearn repository and by Table I of the paper.
    pub fn n_free_parameters(&self) -> usize {
        (self.cardinality - 1) * self.n_parent_configs()
    }

    /// The probability row for parent configuration `u_idx`.
    #[inline]
    pub fn row(&self, u_idx: usize) -> &[f64] {
        let j = self.cardinality;
        &self.table[u_idx * j..(u_idx + 1) * j]
    }

    /// `P[X = x | u_idx]`.
    #[inline]
    pub fn prob(&self, x: usize, u_idx: usize) -> f64 {
        self.table[u_idx * self.cardinality + x]
    }

    /// Raw table (row-major `K x J`).
    pub fn table(&self) -> &[f64] {
        &self.table
    }

    /// Mutable raw table; callers must re-validate after editing.
    pub fn table_mut(&mut self) -> &mut [f64] {
        &mut self.table
    }

    /// Compute the parent configuration index for parent values given in
    /// sorted parent order (last parent fastest).
    #[inline]
    pub fn parent_config_index(&self, parent_values: &[usize]) -> usize {
        debug_assert_eq!(parent_values.len(), self.parent_cards.len());
        let mut idx = 0usize;
        for (v, k) in parent_values.iter().zip(&self.parent_cards) {
            debug_assert!(v < k);
            idx = idx * k + v;
        }
        idx
    }

    /// Inverse of [`Self::parent_config_index`]: decode `u_idx` into parent
    /// values (sorted parent order).
    pub fn decode_parent_config(&self, mut u_idx: usize, out: &mut Vec<usize>) {
        out.clear();
        out.resize(self.parent_cards.len(), 0);
        for t in (0..self.parent_cards.len()).rev() {
            let k = self.parent_cards[t];
            out[t] = u_idx % k;
            u_idx /= k;
        }
        debug_assert_eq!(u_idx, 0);
    }

    /// Smallest probability appearing anywhere in the table (the `λ` of
    /// Lemma 3); `None` for an empty table.
    pub fn min_prob(&self) -> Option<f64> {
        self.table.iter().copied().fold(None, |acc, p| match acc {
            None => Some(p),
            Some(a) => Some(a.min(p)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish() -> Cpt {
        // Child J=2, parents K = 2*2. Rows: p(child=1 | u) = 0.1, 0.9, 0.9, 0.1
        Cpt::new(0, 2, vec![2, 2], vec![0.9, 0.1, 0.1, 0.9, 0.1, 0.9, 0.9, 0.1]).unwrap()
    }

    #[test]
    fn shape_and_counts() {
        let c = xor_ish();
        assert_eq!(c.cardinality(), 2);
        assert_eq!(c.n_parent_configs(), 4);
        assert_eq!(c.n_entries(), 8);
        assert_eq!(c.n_free_parameters(), 4);
    }

    #[test]
    fn root_cpt() {
        let c = Cpt::new(0, 3, vec![], vec![0.2, 0.3, 0.5]).unwrap();
        assert_eq!(c.n_parent_configs(), 1);
        assert_eq!(c.parent_config_index(&[]), 0);
        assert_eq!(c.prob(2, 0), 0.5);
        assert_eq!(c.n_free_parameters(), 2);
    }

    #[test]
    fn bad_shape_rejected() {
        let err = Cpt::new(7, 2, vec![2], vec![0.5, 0.5]).unwrap_err();
        assert_eq!(err, BayesError::CptShapeMismatch { var: 7, expected: 4, actual: 2 });
    }

    #[test]
    fn bad_rows_rejected() {
        assert!(Cpt::new(0, 2, vec![], vec![0.6, 0.6]).is_err());
        assert!(Cpt::new(0, 2, vec![], vec![-0.1, 1.1]).is_err());
        assert!(Cpt::new(0, 2, vec![], vec![f64::NAN, 1.0]).is_err());
    }

    #[test]
    fn parent_index_round_trip() {
        let c = xor_ish();
        let mut buf = Vec::new();
        for u in 0..c.n_parent_configs() {
            c.decode_parent_config(u, &mut buf);
            assert_eq!(c.parent_config_index(&buf), u);
        }
    }

    #[test]
    fn parent_index_last_fastest() {
        let c = Cpt::uniform(2, vec![3, 4]);
        assert_eq!(c.parent_config_index(&[0, 0]), 0);
        assert_eq!(c.parent_config_index(&[0, 1]), 1);
        assert_eq!(c.parent_config_index(&[1, 0]), 4);
        assert_eq!(c.parent_config_index(&[2, 3]), 11);
    }

    #[test]
    fn prob_lookup_matches_rows() {
        let c = xor_ish();
        assert_eq!(c.prob(1, 0), 0.1);
        assert_eq!(c.prob(1, 1), 0.9);
        assert_eq!(c.row(2), &[0.1, 0.9]);
    }

    #[test]
    fn uniform_is_valid() {
        let c = Cpt::uniform(4, vec![2, 3]);
        assert!(c.validate(0).is_ok());
        assert_eq!(c.min_prob(), Some(0.25));
    }
}
