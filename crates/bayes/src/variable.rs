//! Categorical random variables.

use crate::error::{BayesError, Result};
use serde::{Deserialize, Serialize};

/// A categorical random variable: a name plus a finite, ordered domain of
/// named states. Values are referred to by their index into the domain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Variable {
    name: String,
    states: Vec<String>,
}

impl Variable {
    /// Create a variable with explicit state names.
    pub fn new(name: impl Into<String>, states: Vec<String>) -> Result<Self> {
        let name = name.into();
        if states.is_empty() {
            return Err(BayesError::EmptyDomain { var: name });
        }
        Ok(Variable { name, states })
    }

    /// Create a variable with `cardinality` anonymous states `s0..s{J-1}`.
    pub fn with_cardinality(name: impl Into<String>, cardinality: usize) -> Result<Self> {
        let name = name.into();
        if cardinality == 0 {
            return Err(BayesError::EmptyDomain { var: name });
        }
        let states = (0..cardinality).map(|i| format!("s{i}")).collect();
        Ok(Variable { name, states })
    }

    /// Variable name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Domain size `J`.
    pub fn cardinality(&self) -> usize {
        self.states.len()
    }

    /// State names, in value order.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// Index of a state by name, if present.
    pub fn state_index(&self, state: &str) -> Option<usize> {
        self.states.iter().position(|s| s == state)
    }

    /// Replace the domain with `cardinality` anonymous states. Used by the
    /// NEW-ALARM construction (§VI-B) which inflates selected domains.
    pub fn reset_cardinality(&mut self, cardinality: usize) -> Result<()> {
        if cardinality == 0 {
            return Err(BayesError::EmptyDomain { var: self.name.clone() });
        }
        self.states = (0..cardinality).map(|i| format!("s{i}")).collect();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_states() {
        let v = Variable::new("Rain", vec!["no".into(), "yes".into()]).unwrap();
        assert_eq!(v.cardinality(), 2);
        assert_eq!(v.state_index("yes"), Some(1));
        assert_eq!(v.state_index("maybe"), None);
        assert_eq!(v.name(), "Rain");
    }

    #[test]
    fn anonymous_states() {
        let v = Variable::with_cardinality("X", 3).unwrap();
        assert_eq!(v.states(), &["s0", "s1", "s2"]);
    }

    #[test]
    fn empty_domain_rejected() {
        assert!(Variable::new("X", vec![]).is_err());
        assert!(Variable::with_cardinality("X", 0).is_err());
    }

    #[test]
    fn reset_cardinality_replaces_states() {
        let mut v = Variable::new("X", vec!["a".into(), "b".into()]).unwrap();
        v.reset_cardinality(4).unwrap();
        assert_eq!(v.cardinality(), 4);
        assert!(v.reset_cardinality(0).is_err());
    }
}
