//! Random-network generation calibrated to the paper's Table I.
//!
//! The paper evaluates on four bnlearn-repository networks (ALARM, HEPAR II,
//! LINK, MUNIN). Those `.bif` files are not bundled here (see DESIGN.md §3);
//! instead, [`NetworkSpec`] presets generate seeded random networks whose
//! node count, edge count, free-parameter count, and domain-size profile are
//! calibrated to the originals. The algorithms under study depend only on
//! those structural quantities (`n`, `J_i`, `K_i`) and on CPD entry
//! magnitudes, so the calibrated stand-ins preserve the evaluated behaviour.
//!
//! Real `.bif` files can still be loaded through [`crate::bif`] when
//! available.

use crate::cpt::Cpt;
use crate::dag::Dag;
use crate::error::{BayesError, Result};
use crate::network::BayesianNetwork;
use crate::rngutil::dirichlet_into;
use crate::variable::Variable;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Parameters for the calibrated random-network generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NetworkSpec {
    /// Network name (also used in experiment output).
    pub name: String,
    /// Number of nodes `n`.
    pub n_nodes: usize,
    /// Number of directed edges; must be `>= n_nodes - 1` (a spanning
    /// structure is built first so no node is isolated, like the originals).
    pub n_edges: usize,
    /// Maximum in-degree `d`.
    pub max_parents: usize,
    /// Initial cardinality for every variable (domains grow during
    /// calibration).
    pub base_cardinality: usize,
    /// Cap on any variable's cardinality.
    pub max_cardinality: usize,
    /// Free-parameter target, `sum_i (J_i - 1) K_i` (Table I convention).
    pub target_parameters: usize,
    /// Symmetric Dirichlet concentration for CPT rows (`< 1` gives the
    /// skewed rows typical of the real medical networks).
    pub dirichlet_alpha: f64,
    /// Minimum CPD entry (the `λ` of Lemma 3): rows are mixed with the
    /// uniform distribution so every entry is at least this value. Must be
    /// `<= 1 / max_cardinality`.
    pub min_cpd_entry: f64,
}

impl NetworkSpec {
    /// ALARM (Beinlich et al. 1989): 37 nodes, 46 edges, 509 parameters.
    pub fn alarm() -> Self {
        NetworkSpec {
            name: "alarm".into(),
            n_nodes: 37,
            n_edges: 46,
            max_parents: 3,
            base_cardinality: 2,
            max_cardinality: 4,
            target_parameters: 509,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.01,
        }
    }

    /// HEPAR II (Onisko 2003): 70 nodes, 123 edges, 1453 parameters.
    pub fn hepar2() -> Self {
        NetworkSpec {
            name: "hepar2".into(),
            n_nodes: 70,
            n_edges: 123,
            max_parents: 4,
            base_cardinality: 2,
            max_cardinality: 4,
            target_parameters: 1453,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.01,
        }
    }

    /// LINK (Jensen & Kong 1999): 724 nodes, 1125 edges, 14211 parameters.
    pub fn link() -> Self {
        NetworkSpec {
            name: "link".into(),
            n_nodes: 724,
            n_edges: 1125,
            max_parents: 3,
            base_cardinality: 2,
            max_cardinality: 5,
            target_parameters: 14211,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.01,
        }
    }

    /// MUNIN (Andreassen et al. 1989): 1041 nodes, 1397 edges, 80592
    /// parameters.
    pub fn munin() -> Self {
        NetworkSpec {
            name: "munin".into(),
            n_nodes: 1041,
            n_edges: 1397,
            max_parents: 3,
            base_cardinality: 2,
            max_cardinality: 10,
            target_parameters: 80592,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.005,
        }
    }

    /// All four Table I presets, in the paper's order.
    pub fn paper_presets() -> Vec<NetworkSpec> {
        vec![Self::alarm(), Self::hepar2(), Self::link(), Self::munin()]
    }

    /// Large synthetic bounded-fan-in preset for the big-network scenario
    /// sweep: `n` nodes, `1.6 n` edges under a fan-in cap of 3, domains
    /// calibrated to `24 n` free parameters (so the counter space grows
    /// linearly in `n` with the per-variable density of the Table I
    /// networks). Named `big{n}` and, like every preset, deterministic
    /// from the generation seed.
    pub fn big(n_nodes: usize) -> Self {
        assert!(n_nodes >= 4, "big preset needs at least 4 nodes");
        NetworkSpec {
            name: format!("big{n_nodes}"),
            n_nodes,
            n_edges: n_nodes + (n_nodes * 3) / 5,
            max_parents: 3,
            base_cardinality: 2,
            max_cardinality: 4,
            target_parameters: 24 * n_nodes,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.01,
        }
    }

    /// The big-network sweep presets (500 / 1500 / 5000 variables) plus
    /// the MUNIN-class stress shape, smallest first.
    pub fn big_presets() -> Vec<NetworkSpec> {
        vec![Self::big(500), Self::big(1500), Self::munin_stress(), Self::big(5000)]
    }

    /// MUNIN-class stress shape: MUNIN's scale (a thousand-plus variables,
    /// sparse edges) with the domain-size tail pushed harder — fan-in up
    /// to 4 and cardinalities up to 16, so a handful of variables carry
    /// very large parent-configuration radix products. This is the preset
    /// that stresses the mixed-radix indexing itself rather than raw
    /// variable count.
    pub fn munin_stress() -> Self {
        NetworkSpec {
            name: "munin-stress".into(),
            n_nodes: 1100,
            n_edges: 1800,
            max_parents: 4,
            base_cardinality: 2,
            max_cardinality: 16,
            target_parameters: 160_000,
            dirichlet_alpha: 0.8,
            min_cpd_entry: 0.003,
        }
    }

    /// Look up a preset by (case-insensitive) name. Recognizes
    /// `alarm|hepar2|link|munin|munin-stress` and any `big<n>` (e.g.
    /// `big500`, `big1500`, `big5000`).
    pub fn by_name(name: &str) -> Option<NetworkSpec> {
        let lower = name.to_ascii_lowercase();
        if let Some(n) = lower.strip_prefix("big").and_then(|s| s.parse::<usize>().ok()) {
            if (4..=100_000).contains(&n) {
                return Some(Self::big(n));
            }
        }
        match lower.as_str() {
            "alarm" => Some(Self::alarm()),
            "hepar2" | "hepar" | "hepar-ii" | "heparii" => Some(Self::hepar2()),
            "link" => Some(Self::link()),
            "munin" => Some(Self::munin()),
            "munin-stress" | "muninstress" | "munin_stress" => Some(Self::munin_stress()),
            _ => None,
        }
    }

    fn validate(&self) -> Result<()> {
        if self.n_nodes == 0 {
            return Err(BayesError::Invalid("n_nodes must be positive".into()));
        }
        if self.n_nodes > 1 && self.n_edges < self.n_nodes - 1 {
            return Err(BayesError::Invalid(format!(
                "n_edges {} below spanning minimum {}",
                self.n_edges,
                self.n_nodes - 1
            )));
        }
        if self.max_parents == 0 {
            return Err(BayesError::Invalid("max_parents must be positive".into()));
        }
        if self.base_cardinality < 2 || self.max_cardinality < self.base_cardinality {
            return Err(BayesError::Invalid("cardinality bounds invalid".into()));
        }
        if self.min_cpd_entry < 0.0 || self.min_cpd_entry * self.max_cardinality as f64 > 1.0 {
            return Err(BayesError::Invalid(format!(
                "min_cpd_entry {} incompatible with max cardinality {}",
                self.min_cpd_entry, self.max_cardinality
            )));
        }
        let max_possible = self.n_nodes * (self.n_nodes - 1) / 2;
        if self.n_edges > max_possible {
            return Err(BayesError::Invalid(format!(
                "n_edges {} exceeds DAG maximum {max_possible}",
                self.n_edges
            )));
        }
        Ok(())
    }

    /// Generate the network deterministically from `seed`.
    pub fn generate(&self, seed: u64) -> Result<BayesianNetwork> {
        self.validate()?;
        let mut rng = StdRng::seed_from_u64(seed ^ fnv1a(&self.name));
        let dag = self.random_dag(&mut rng)?;
        let cards = self.calibrate_domains(&dag, &mut rng);
        let variables: Vec<Variable> = cards
            .iter()
            .enumerate()
            .map(|(i, &j)| Variable::with_cardinality(format!("{}_{i}", self.name), j))
            .collect::<Result<_>>()?;
        let cpts = self.random_cpts(&dag, &cards, &mut rng)?;
        BayesianNetwork::new(self.name.clone(), variables, dag, cpts)
    }

    /// Random DAG on nodes `0..n` with index order as topological order:
    /// first a spanning structure (every non-root gets one earlier parent),
    /// then extra random low→high edges respecting `max_parents`.
    fn random_dag<R: Rng + ?Sized>(&self, rng: &mut R) -> Result<Dag> {
        let n = self.n_nodes;
        let mut dag = Dag::new(n);
        for v in 1..n {
            let p = rng.gen_range(0..v);
            dag.add_edge_unchecked(p, v)?;
        }
        let mut remaining = self.n_edges - (n - 1).min(self.n_edges);
        let mut attempts = 0usize;
        let attempt_cap = 200 * self.n_edges.max(64);
        while remaining > 0 && attempts < attempt_cap {
            attempts += 1;
            let b = rng.gen_range(1..n);
            let a = rng.gen_range(0..b);
            if dag.n_parents(b) >= self.max_parents || dag.has_edge(a, b) {
                continue;
            }
            dag.add_edge_unchecked(a, b)?;
            remaining -= 1;
        }
        if remaining > 0 {
            // Deterministic sweep to place any stragglers.
            'outer: for b in (1..n).rev() {
                for a in 0..b {
                    if remaining == 0 {
                        break 'outer;
                    }
                    if dag.n_parents(b) < self.max_parents && !dag.has_edge(a, b) {
                        dag.add_edge_unchecked(a, b)?;
                        remaining -= 1;
                    }
                }
            }
        }
        if remaining > 0 {
            return Err(BayesError::Invalid(format!(
                "could not place {remaining} edges under max_parents={}",
                self.max_parents
            )));
        }
        Ok(dag)
    }

    /// Grow domains from `base_cardinality` by random unit bumps until the
    /// free-parameter count reaches the target (parameters are monotone in
    /// every cardinality, so this converges just above the target).
    ///
    /// The running count is maintained incrementally: bumping `J_v`
    /// changes only `v`'s own contribution `(J_v - 1) K_v` and the `K` of
    /// `v`'s children, so each bump costs `O(out-degree · fan-in)` instead
    /// of a full `O(n · fan-in)` recount. Exact integer arithmetic either
    /// way — the generated networks are unchanged; this is what lets the
    /// 500–5000-variable presets calibrate in test time.
    fn calibrate_domains<R: Rng + ?Sized>(&self, dag: &Dag, rng: &mut R) -> Vec<usize> {
        let n = self.n_nodes;
        let mut cards = vec![self.base_cardinality; n];
        let contrib = |cards: &[usize], v: usize| -> usize {
            let k: usize = dag.parents(v).iter().map(|&p| cards[p]).product();
            (cards[v] - 1) * k
        };
        let mut contribs: Vec<usize> = (0..n).map(|v| contrib(&cards, v)).collect();
        let mut current: usize = contribs.iter().sum();
        let mut stuck = 0usize;
        while current < self.target_parameters {
            let v = rng.gen_range(0..n);
            if cards[v] >= self.max_cardinality {
                stuck += 1;
                if stuck > 50 * n {
                    break; // every node saturated; target unreachable
                }
                continue;
            }
            stuck = 0;
            cards[v] += 1;
            for &w in std::iter::once(&v).chain(dag.children(v)) {
                current -= contribs[w];
                contribs[w] = contrib(&cards, w);
                current += contribs[w];
            }
        }
        cards
    }

    /// Dirichlet CPTs with a uniform-mixture floor so every entry is at
    /// least `min_cpd_entry`.
    fn random_cpts<R: Rng + ?Sized>(
        &self,
        dag: &Dag,
        cards: &[usize],
        rng: &mut R,
    ) -> Result<Vec<Cpt>> {
        (0..self.n_nodes)
            .map(|v| {
                random_cpt(rng, v, cards[v], dag, cards, self.dirichlet_alpha, self.min_cpd_entry)
            })
            .collect()
    }
}

/// Generate one floored-Dirichlet CPT for node `v`.
fn random_cpt<R: Rng + ?Sized>(
    rng: &mut R,
    v: usize,
    j: usize,
    dag: &Dag,
    cards: &[usize],
    alpha: f64,
    floor: f64,
) -> Result<Cpt> {
    let parent_cards: Vec<usize> = dag.parents(v).iter().map(|&p| cards[p]).collect();
    let k: usize = parent_cards.iter().product();
    let gamma = floor * j as f64; // mixture weight that guarantees the floor
    let mut table = Vec::with_capacity(k * j);
    let mut row = Vec::with_capacity(j);
    for _ in 0..k {
        dirichlet_into(rng, alpha, j, &mut row);
        for &p in &row {
            table.push((1.0 - gamma) * p + floor);
        }
    }
    Cpt::new(v, j, parent_cards, table)
}

/// NEW-ALARM (§VI-B): keep the ALARM structure but raise the domain of
/// `n_inflated` randomly chosen variables to `inflated_cardinality`
/// (the paper uses 6 variables at cardinality 20). CPTs of affected
/// families are re-drawn; all others are kept.
pub fn new_alarm(seed: u64) -> Result<BayesianNetwork> {
    inflate_domains(&NetworkSpec::alarm(), seed, 6, 20)
}

/// General form of the NEW-ALARM construction for any spec.
pub fn inflate_domains(
    spec: &NetworkSpec,
    seed: u64,
    n_inflated: usize,
    inflated_cardinality: usize,
) -> Result<BayesianNetwork> {
    let net = spec.generate(seed)?;
    let n = net.n_vars();
    if n_inflated > n {
        return Err(BayesError::Invalid(format!("cannot inflate {n_inflated} of {n} variables")));
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    // Floyd-style distinct sampling of the inflated set.
    let mut chosen: Vec<usize> = Vec::with_capacity(n_inflated);
    while chosen.len() < n_inflated {
        let v = rng.gen_range(0..n);
        if !chosen.contains(&v) {
            chosen.push(v);
        }
    }
    chosen.sort_unstable();

    let mut cards: Vec<usize> = (0..n).map(|i| net.cardinality(i)).collect();
    for &v in &chosen {
        cards[v] = inflated_cardinality;
    }
    // A family is affected if its child or any parent was inflated.
    let dag = net.dag().clone();
    let affected = |v: usize| -> bool {
        chosen.binary_search(&v).is_ok()
            || dag.parents(v).iter().any(|p| chosen.binary_search(p).is_ok())
    };
    let floor = spec.min_cpd_entry.min(1.0 / inflated_cardinality as f64 / 2.0);
    let mut variables = Vec::with_capacity(n);
    let mut cpts = Vec::with_capacity(n);
    for v in 0..n {
        variables.push(Variable::with_cardinality(net.variable(v).name().to_owned(), cards[v])?);
        if affected(v) {
            cpts.push(random_cpt(
                &mut rng,
                v,
                cards[v],
                &dag,
                &cards,
                spec.dirichlet_alpha,
                floor,
            )?);
        } else {
            cpts.push(net.cpt(v).clone());
        }
    }
    BayesianNetwork::new(format!("new-{}", spec.name), variables, dag, cpts)
}

/// Re-draw every CPT of a network while keeping its structure and domains
/// — a pure *parameter drift*. This is the correct way to build the
/// "after" model for concept-drift workloads
/// ([`dsbn_datagen`-style drifting streams]): generating a fresh network
/// from another seed would also change domain calibration, making events
/// from one phase invalid for trackers built on the other.
pub fn redraw_cpts(
    net: &BayesianNetwork,
    alpha: f64,
    floor: f64,
    seed: u64,
) -> Result<BayesianNetwork> {
    let n = net.n_vars();
    let cards: Vec<usize> = (0..n).map(|i| net.cardinality(i)).collect();
    if let Some(&max_card) = cards.iter().max() {
        if floor * max_card as f64 > 1.0 {
            return Err(BayesError::Invalid(format!(
                "floor {floor} incompatible with cardinality {max_card}"
            )));
        }
    }
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a("redraw"));
    let dag = net.dag().clone();
    let cpts: Vec<Cpt> = (0..n)
        .map(|v| random_cpt(&mut rng, v, cards[v], &dag, &cards, alpha, floor))
        .collect::<Result<_>>()?;
    BayesianNetwork::new(format!("{}-redrawn", net.name()), net.variables().to_vec(), dag, cpts)
}

/// Build a Naïve Bayes structure (§V): class variable 0 with `J_1 = j_class`
/// values, and `n_features` feature variables whose only parent is the
/// class. Feature cardinalities cycle through `feature_cards`. CPT rows are
/// floored Dirichlet draws as in [`NetworkSpec::generate`].
pub fn naive_bayes(
    n_features: usize,
    j_class: usize,
    feature_cards: &[usize],
    alpha: f64,
    floor: f64,
    seed: u64,
) -> Result<BayesianNetwork> {
    if n_features == 0 || j_class < 2 || feature_cards.is_empty() {
        return Err(BayesError::Invalid(
            "need at least one feature, a class with >= 2 values, and feature cardinalities".into(),
        ));
    }
    if feature_cards.iter().any(|&j| j < 2) {
        return Err(BayesError::Invalid("feature cardinalities must be >= 2".into()));
    }
    let max_card = feature_cards.iter().copied().max().unwrap().max(j_class);
    if floor * max_card as f64 > 1.0 {
        return Err(BayesError::Invalid(format!(
            "floor {floor} incompatible with cardinality {max_card}"
        )));
    }
    let n = n_features + 1;
    let mut rng = StdRng::seed_from_u64(seed ^ fnv1a("naive-bayes"));
    let mut dag = Dag::new(n);
    let mut variables = vec![Variable::with_cardinality("class", j_class)?];
    let mut cards = vec![j_class];
    for f in 0..n_features {
        dag.add_edge_unchecked(0, f + 1)?;
        let j = feature_cards[f % feature_cards.len()];
        variables.push(Variable::with_cardinality(format!("feature_{f}"), j)?);
        cards.push(j);
    }
    let cpts: Vec<Cpt> = (0..n)
        .map(|v| random_cpt(&mut rng, v, cards[v], &dag, &cards, alpha, floor))
        .collect::<Result<_>>()?;
    BayesianNetwork::new("naive-bayes", variables, dag, cpts)
}

/// Cheap stable FNV-1a hash so different preset names with the same seed
/// generate different networks.
fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alarm_matches_table1_within_tolerance() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let s = net.stats();
        assert_eq!(s.n_nodes, 37);
        assert_eq!(s.n_edges, 46);
        let target = 509.0;
        let rel = (s.n_parameters as f64 - target).abs() / target;
        assert!(rel < 0.15, "alarm parameters {} vs target {target}", s.n_parameters);
        assert!(s.max_parents <= 3);
        assert!(s.max_cardinality <= 4);
    }

    #[test]
    fn hepar2_matches_table1_within_tolerance() {
        let net = NetworkSpec::hepar2().generate(1).unwrap();
        let s = net.stats();
        assert_eq!((s.n_nodes, s.n_edges), (70, 123));
        let rel = (s.n_parameters as f64 - 1453.0).abs() / 1453.0;
        assert!(rel < 0.15, "hepar2 parameters {}", s.n_parameters);
    }

    #[test]
    fn link_matches_table1_within_tolerance() {
        let net = NetworkSpec::link().generate(1).unwrap();
        let s = net.stats();
        assert_eq!((s.n_nodes, s.n_edges), (724, 1125));
        let rel = (s.n_parameters as f64 - 14211.0).abs() / 14211.0;
        assert!(rel < 0.15, "link parameters {}", s.n_parameters);
    }

    #[test]
    fn munin_matches_table1_within_tolerance() {
        let net = NetworkSpec::munin().generate(1).unwrap();
        let s = net.stats();
        assert_eq!((s.n_nodes, s.n_edges), (1041, 1397));
        let rel = (s.n_parameters as f64 - 80592.0).abs() / 80592.0;
        assert!(rel < 0.15, "munin parameters {}", s.n_parameters);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = NetworkSpec::alarm().generate(7).unwrap();
        let b = NetworkSpec::alarm().generate(7).unwrap();
        assert_eq!(a, b);
        let c = NetworkSpec::alarm().generate(8).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn cpd_floor_holds() {
        let spec = NetworkSpec::alarm();
        let net = spec.generate(3).unwrap();
        assert!(net.min_cpd_entry() >= spec.min_cpd_entry - 1e-12);
    }

    #[test]
    fn new_alarm_has_inflated_domains() {
        let net = new_alarm(5).unwrap();
        let inflated = (0..net.n_vars()).filter(|&i| net.cardinality(i) == 20).count();
        assert_eq!(inflated, 6);
        assert_eq!(net.n_vars(), 37);
        assert_eq!(net.dag().n_edges(), 46);
        // CPT shapes must remain structurally valid (checked by constructor),
        // and parameters must exceed plain ALARM.
        let plain = NetworkSpec::alarm().generate(5).unwrap();
        assert!(net.stats().n_parameters > plain.stats().n_parameters);
    }

    #[test]
    fn by_name_lookup() {
        assert!(NetworkSpec::by_name("ALARM").is_some());
        assert!(NetworkSpec::by_name("hepar-II").is_some());
        assert!(NetworkSpec::by_name("nope").is_none());
        assert_eq!(NetworkSpec::paper_presets().len(), 4);
        assert_eq!(NetworkSpec::by_name("big500").unwrap().n_nodes, 500);
        assert_eq!(NetworkSpec::by_name("BIG1500").unwrap().n_nodes, 1500);
        assert_eq!(NetworkSpec::by_name("munin-stress").unwrap().name, "munin-stress");
        assert!(NetworkSpec::by_name("big0").is_none());
        assert!(NetworkSpec::by_name("big999999999").is_none());
        assert_eq!(NetworkSpec::big_presets().len(), 4);
    }

    #[test]
    fn big_preset_respects_bounds_and_determinism() {
        let spec = NetworkSpec::big(500);
        let net = spec.generate(1).unwrap();
        let s = net.stats();
        assert_eq!(s.n_nodes, 500);
        assert_eq!(s.n_edges, 800);
        assert!(s.max_parents <= 3, "fan-in {} over bound", s.max_parents);
        assert!(s.max_cardinality <= 4);
        let rel = (s.n_parameters as f64 - 12_000.0).abs() / 12_000.0;
        assert!(rel < 0.15, "big500 parameters {} vs target 12000", s.n_parameters);
        // Seed-determinism, as for every preset.
        assert_eq!(net, spec.generate(1).unwrap());
        assert_ne!(net, spec.generate(2).unwrap());
        assert!(net.min_cpd_entry() >= spec.min_cpd_entry - 1e-12);
    }

    #[test]
    fn munin_stress_pushes_the_radix_tail() {
        let spec = NetworkSpec::munin_stress();
        let net = spec.generate(1).unwrap();
        let s = net.stats();
        assert_eq!(s.n_nodes, 1100);
        assert!(s.max_parents <= 4);
        assert!(s.max_cardinality <= 16);
        // The stress point: the domain tail must actually be exercised —
        // some variable has to grow well past the base cardinality.
        assert!(s.max_cardinality >= 8, "domain tail not stressed: {}", s.max_cardinality);
        assert!(s.n_parameters >= 100_000, "parameters {}", s.n_parameters);
        assert_eq!(net, spec.generate(1).unwrap());
    }

    #[test]
    fn incremental_calibration_matches_full_recount() {
        // The incremental free-parameter bookkeeping in calibrate_domains
        // must land exactly where a from-scratch recount would: the final
        // networks' parameter counts are what the stats recompute says.
        for spec in [NetworkSpec::big(64), NetworkSpec::alarm(), NetworkSpec::munin_stress()] {
            let net = spec.generate(5).unwrap();
            let recount: usize =
                (0..net.n_vars()).map(|v| (net.cardinality(v) - 1) * net.parent_configs(v)).sum();
            assert_eq!(net.stats().n_parameters, recount, "{}", spec.name);
            assert!(recount >= spec.target_parameters.min(recount), "{}", spec.name);
        }
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut s = NetworkSpec::alarm();
        s.n_edges = 10; // below spanning minimum
        assert!(s.generate(1).is_err());
        let mut s = NetworkSpec::alarm();
        s.min_cpd_entry = 0.5; // 0.5 * 4 > 1
        assert!(s.generate(1).is_err());
        let mut s = NetworkSpec::alarm();
        s.n_nodes = 0;
        assert!(s.generate(1).is_err());
    }

    #[test]
    fn redraw_cpts_keeps_structure_and_domains() {
        let net = NetworkSpec::alarm().generate(3).unwrap();
        let redrawn = redraw_cpts(&net, 0.8, 0.01, 99).unwrap();
        assert_eq!(redrawn.n_vars(), net.n_vars());
        assert_eq!(redrawn.dag(), net.dag());
        for i in 0..net.n_vars() {
            assert_eq!(redrawn.cardinality(i), net.cardinality(i));
        }
        // But the parameters are new.
        assert_ne!(redrawn.cpt(0).table(), net.cpt(0).table());
        assert!(redrawn.min_cpd_entry() >= 0.01 - 1e-12);
        // Incompatible floor rejected.
        assert!(redraw_cpts(&net, 0.8, 0.5, 1).is_err());
    }

    #[test]
    fn naive_bayes_structure() {
        let net = naive_bayes(5, 3, &[2, 4], 1.0, 0.01, 7).unwrap();
        assert_eq!(net.n_vars(), 6);
        assert_eq!(net.dag().n_edges(), 5);
        assert_eq!(net.cardinality(0), 3);
        assert_eq!(net.cardinality(1), 2);
        assert_eq!(net.cardinality(2), 4);
        for f in 1..6 {
            assert_eq!(net.dag().parents(f), &[0]);
        }
        assert!(net.min_cpd_entry() >= 0.01 - 1e-12);
        // Two-layer tree: the paper's Naive Bayes shape.
        assert_eq!(net.dag().max_parents(), 1);
    }

    #[test]
    fn naive_bayes_validation() {
        assert!(naive_bayes(0, 2, &[2], 1.0, 0.01, 1).is_err());
        assert!(naive_bayes(3, 1, &[2], 1.0, 0.01, 1).is_err());
        assert!(naive_bayes(3, 2, &[], 1.0, 0.01, 1).is_err());
        assert!(naive_bayes(3, 2, &[1], 1.0, 0.01, 1).is_err());
        assert!(naive_bayes(3, 2, &[20], 1.0, 0.2, 1).is_err());
    }

    #[test]
    fn unreachable_target_saturates_gracefully() {
        let spec = NetworkSpec {
            name: "tiny".into(),
            n_nodes: 3,
            n_edges: 2,
            max_parents: 2,
            base_cardinality: 2,
            max_cardinality: 2,
            target_parameters: 100_000, // impossible at cardinality 2
            dirichlet_alpha: 1.0,
            min_cpd_entry: 0.01,
        };
        let net = spec.generate(1).unwrap();
        assert!(net.stats().n_parameters < 100);
    }
}
