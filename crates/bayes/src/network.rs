//! The Bayesian network type: variables + DAG + CPTs (Definition 1).

use crate::cpt::Cpt;
use crate::dag::Dag;
use crate::error::{BayesError, Result};
use crate::variable::Variable;
use serde::{Deserialize, Serialize};

/// A full assignment of values to all variables, `x[i] in 0..J_i`.
pub type Assignment = Vec<usize>;

/// A Bayesian network `G = (X, E)` with one CPT per variable.
///
/// The joint distribution factorizes as
/// `P[X] = prod_i P[X_i | par(X_i)]` (Eq. 1 of the paper).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BayesianNetwork {
    name: String,
    variables: Vec<Variable>,
    dag: Dag,
    cpts: Vec<Cpt>,
    #[serde(skip)]
    topo: Vec<usize>,
}

/// Summary statistics in the format of Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkStats {
    pub n_nodes: usize,
    pub n_edges: usize,
    /// Number of free parameters, `sum_i (J_i - 1) * K_i` (bnlearn convention).
    pub n_parameters: usize,
    /// Total CPD entries, `sum_i J_i * K_i` — the number of `A_i(x, u)`
    /// counters a tracker must maintain.
    pub n_entries: usize,
    /// Total parent configurations, `sum_i K_i` — the number of `A_i(u)`
    /// counters a tracker must maintain.
    pub n_parent_configs: usize,
    /// Max domain cardinality `J` (paper notation).
    pub max_cardinality: usize,
    /// Max in-degree `d` (paper notation).
    pub max_parents: usize,
}

impl BayesianNetwork {
    /// Assemble a network from parts. CPT shapes are validated against the
    /// structure; `variables`, `dag`, and `cpts` must be index-aligned.
    pub fn new(
        name: impl Into<String>,
        variables: Vec<Variable>,
        dag: Dag,
        cpts: Vec<Cpt>,
    ) -> Result<Self> {
        let name = name.into();
        if variables.len() != dag.n_nodes() || cpts.len() != dag.n_nodes() {
            return Err(BayesError::Invalid(format!(
                "component length mismatch: {} variables, {} nodes, {} cpts",
                variables.len(),
                dag.n_nodes(),
                cpts.len()
            )));
        }
        let mut seen = std::collections::HashSet::new();
        for v in &variables {
            if !seen.insert(v.name().to_owned()) {
                return Err(BayesError::DuplicateVariable(v.name().to_owned()));
            }
        }
        for (i, cpt) in cpts.iter().enumerate() {
            if cpt.cardinality() != variables[i].cardinality() {
                return Err(BayesError::CptShapeMismatch {
                    var: i,
                    expected: variables[i].cardinality(),
                    actual: cpt.cardinality(),
                });
            }
            let expected: Vec<usize> =
                dag.parents(i).iter().map(|&p| variables[p].cardinality()).collect();
            if cpt.parent_cards() != expected.as_slice() {
                return Err(BayesError::InvalidCpt {
                    var: i,
                    detail: format!(
                        "parent cardinalities {:?} disagree with structure {:?}",
                        cpt.parent_cards(),
                        expected
                    ),
                });
            }
        }
        let topo = dag.topological_order();
        Ok(BayesianNetwork { name, variables, dag, cpts, topo })
    }

    /// Network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of variables `n`.
    pub fn n_vars(&self) -> usize {
        self.variables.len()
    }

    /// The variable at index `i`.
    pub fn variable(&self, i: usize) -> &Variable {
        &self.variables[i]
    }

    /// All variables.
    pub fn variables(&self) -> &[Variable] {
        &self.variables
    }

    /// Index of a variable by name.
    pub fn var_index(&self, name: &str) -> Option<usize> {
        self.variables.iter().position(|v| v.name() == name)
    }

    /// Cardinality `J_i`.
    #[inline]
    pub fn cardinality(&self, i: usize) -> usize {
        self.variables[i].cardinality()
    }

    /// Parent-configuration count `K_i`.
    #[inline]
    pub fn parent_configs(&self, i: usize) -> usize {
        self.cpts[i].n_parent_configs()
    }

    /// The structure DAG.
    pub fn dag(&self) -> &Dag {
        &self.dag
    }

    /// The CPT of variable `i`.
    pub fn cpt(&self, i: usize) -> &Cpt {
        &self.cpts[i]
    }

    /// Mutable CPT access (callers must keep rows normalized).
    pub fn cpt_mut(&mut self, i: usize) -> &mut Cpt {
        &mut self.cpts[i]
    }

    /// Replace the CPT of variable `i`, revalidating the shape.
    pub fn set_cpt(&mut self, i: usize, cpt: Cpt) -> Result<()> {
        if cpt.cardinality() != self.cardinality(i) {
            return Err(BayesError::CptShapeMismatch {
                var: i,
                expected: self.cardinality(i),
                actual: cpt.cardinality(),
            });
        }
        let expected: Vec<usize> =
            self.dag.parents(i).iter().map(|&p| self.cardinality(p)).collect();
        if cpt.parent_cards() != expected.as_slice() {
            return Err(BayesError::InvalidCpt {
                var: i,
                detail: "parent cardinalities disagree with structure".into(),
            });
        }
        self.cpts[i] = cpt;
        Ok(())
    }

    /// A topological ordering of the variables (cached at construction).
    pub fn topological_order(&self) -> &[usize] {
        &self.topo
    }

    /// Validate an assignment's length and value ranges.
    pub fn check_assignment(&self, x: &[usize]) -> Result<()> {
        if x.len() != self.n_vars() {
            return Err(BayesError::AssignmentLength { expected: self.n_vars(), actual: x.len() });
        }
        for (i, &v) in x.iter().enumerate() {
            if v >= self.cardinality(i) {
                return Err(BayesError::ValueOutOfRange {
                    var: i,
                    value: v,
                    cardinality: self.cardinality(i),
                });
            }
        }
        Ok(())
    }

    /// Parent configuration index `u_idx` of variable `i` under assignment `x`.
    #[inline]
    pub fn parent_config_of(&self, i: usize, x: &[usize]) -> usize {
        let mut idx = 0usize;
        for (&p, &k) in self.dag.parents(i).iter().zip(self.cpts[i].parent_cards()) {
            idx = idx * k + x[p];
        }
        idx
    }

    /// `log P[x]` via the chain rule (Eq. 1). Returns `-inf` if any factor
    /// is zero.
    pub fn joint_log_prob(&self, x: &[usize]) -> f64 {
        debug_assert!(self.check_assignment(x).is_ok());
        let mut lp = 0.0;
        for i in 0..self.n_vars() {
            let u = self.parent_config_of(i, x);
            lp += self.cpts[i].prob(x[i], u).ln();
        }
        lp
    }

    /// `P[x]` (may underflow to zero for large `n`; prefer
    /// [`Self::joint_log_prob`]).
    pub fn joint_prob(&self, x: &[usize]) -> f64 {
        self.joint_log_prob(x).exp()
    }

    /// The smallest CPD entry across the whole network (the `λ` of Lemma 3).
    pub fn min_cpd_entry(&self) -> f64 {
        self.cpts.iter().filter_map(|c| c.min_prob()).fold(f64::INFINITY, f64::min)
    }

    /// Table I style statistics.
    pub fn stats(&self) -> NetworkStats {
        NetworkStats {
            n_nodes: self.n_vars(),
            n_edges: self.dag.n_edges(),
            n_parameters: self.cpts.iter().map(Cpt::n_free_parameters).sum(),
            n_entries: self.cpts.iter().map(Cpt::n_entries).sum(),
            n_parent_configs: self.cpts.iter().map(Cpt::n_parent_configs).sum(),
            max_cardinality: self.variables.iter().map(Variable::cardinality).max().unwrap_or(0),
            max_parents: self.dag.max_parents(),
        }
    }

    /// Remove sink nodes one at a time (highest index first) until `n_keep`
    /// nodes remain, re-fitting nothing: surviving CPTs are unchanged because
    /// removing a sink never alters another node's parent set. This is the
    /// construction behind Fig. 9 (LINK scaled from 724 down to 24 nodes).
    pub fn strip_sinks_to(&self, n_keep: usize) -> Result<BayesianNetwork> {
        if n_keep == 0 || n_keep > self.n_vars() {
            return Err(BayesError::Invalid(format!(
                "n_keep {} out of range 1..={}",
                n_keep,
                self.n_vars()
            )));
        }
        let mut net = self.clone();
        while net.n_vars() > n_keep {
            let sink = *net.dag.sinks().last().expect("a DAG always has at least one sink");
            let (dag, map) = net.dag.remove_nodes(&[sink]);
            let mut variables = Vec::with_capacity(dag.n_nodes());
            let mut cpts = Vec::with_capacity(dag.n_nodes());
            for (old, m) in map.iter().enumerate() {
                if m.is_some() {
                    variables.push(net.variables[old].clone());
                    cpts.push(net.cpts[old].clone());
                }
            }
            let topo = dag.topological_order();
            net = BayesianNetwork { name: net.name, variables, dag, cpts, topo };
        }
        net.name = format!("{}-{}", self.name, n_keep);
        Ok(net)
    }

    /// Rebuild the cached topological order (after deserialization).
    pub fn refresh_topology(&mut self) {
        self.topo = self.dag.topological_order();
    }
}

#[cfg(test)]
pub(crate) mod testnet {
    use super::*;

    /// The classic sprinkler network: Cloudy -> Sprinkler, Cloudy -> Rain,
    /// Sprinkler -> WetGrass, Rain -> WetGrass.
    pub fn sprinkler() -> BayesianNetwork {
        let variables = vec![
            Variable::new("Cloudy", vec!["no".into(), "yes".into()]).unwrap(),
            Variable::new("Sprinkler", vec!["off".into(), "on".into()]).unwrap(),
            Variable::new("Rain", vec!["no".into(), "yes".into()]).unwrap(),
            Variable::new("WetGrass", vec!["dry".into(), "wet".into()]).unwrap(),
        ];
        let mut dag = Dag::new(4);
        dag.add_edge(0, 1).unwrap();
        dag.add_edge(0, 2).unwrap();
        dag.add_edge(1, 3).unwrap();
        dag.add_edge(2, 3).unwrap();
        let cpts = vec![
            Cpt::new(0, 2, vec![], vec![0.5, 0.5]).unwrap(),
            Cpt::new(1, 2, vec![2], vec![0.5, 0.5, 0.9, 0.1]).unwrap(),
            Cpt::new(2, 2, vec![2], vec![0.8, 0.2, 0.2, 0.8]).unwrap(),
            Cpt::new(3, 2, vec![2, 2], vec![1.0, 0.0, 0.1, 0.9, 0.1, 0.9, 0.01, 0.99]).unwrap(),
        ];
        BayesianNetwork::new("sprinkler", variables, dag, cpts).unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::testnet::sprinkler;
    use super::*;

    #[test]
    fn construction_validates_alignment() {
        let net = sprinkler();
        assert_eq!(net.n_vars(), 4);
        assert_eq!(net.var_index("Rain"), Some(2));
        assert_eq!(net.cardinality(3), 2);
        assert_eq!(net.parent_configs(3), 4);
    }

    #[test]
    fn mismatched_cpt_rejected() {
        let net = sprinkler();
        let bad = Cpt::new(0, 3, vec![], vec![0.2, 0.3, 0.5]).unwrap();
        let mut net2 = net.clone();
        assert!(net2.set_cpt(0, bad).is_err());
    }

    #[test]
    fn duplicate_names_rejected() {
        let variables = vec![
            Variable::with_cardinality("X", 2).unwrap(),
            Variable::with_cardinality("X", 2).unwrap(),
        ];
        let dag = Dag::new(2);
        let cpts = vec![Cpt::uniform(2, vec![]), Cpt::uniform(2, vec![])];
        assert!(matches!(
            BayesianNetwork::new("dup", variables, dag, cpts),
            Err(BayesError::DuplicateVariable(_))
        ));
    }

    #[test]
    fn joint_prob_matches_hand_computation() {
        let net = sprinkler();
        // P(C=yes, S=off, R=yes, W=wet) = 0.5 * 0.9 * 0.8 * 0.9
        let x = vec![1, 0, 1, 1];
        let expect = 0.5 * 0.9 * 0.8 * 0.9;
        assert!((net.joint_prob(&x) - expect).abs() < 1e-12);
    }

    #[test]
    fn joint_prob_zero_factor() {
        let net = sprinkler();
        // P(W=wet | S=off, R=no) = 0 -> joint is zero, log is -inf.
        let x = vec![0, 0, 0, 1];
        assert_eq!(net.joint_prob(&x), 0.0);
        assert_eq!(net.joint_log_prob(&x), f64::NEG_INFINITY);
    }

    #[test]
    fn assignment_validation() {
        let net = sprinkler();
        assert!(net.check_assignment(&[0, 0, 0]).is_err());
        assert!(net.check_assignment(&[0, 0, 0, 5]).is_err());
        assert!(net.check_assignment(&[1, 1, 1, 1]).is_ok());
    }

    #[test]
    fn stats_table1_convention() {
        let net = sprinkler();
        let s = net.stats();
        assert_eq!(s.n_nodes, 4);
        assert_eq!(s.n_edges, 4);
        // Free parameters: 1 + 2 + 2 + 4 = 9.
        assert_eq!(s.n_parameters, 9);
        // Entries: 2 + 4 + 4 + 8 = 18; parent configs: 1 + 2 + 2 + 4 = 9.
        assert_eq!(s.n_entries, 18);
        assert_eq!(s.n_parent_configs, 9);
        assert_eq!(s.max_cardinality, 2);
        assert_eq!(s.max_parents, 2);
    }

    #[test]
    fn strip_sinks_keeps_cpts() {
        let net = sprinkler();
        let sub = net.strip_sinks_to(3).unwrap();
        assert_eq!(sub.n_vars(), 3);
        assert_eq!(sub.dag().n_edges(), 2);
        // Cloudy/Sprinkler/Rain survive with identical CPTs.
        assert_eq!(sub.cpt(1), net.cpt(1));
        let sub1 = net.strip_sinks_to(1).unwrap();
        assert_eq!(sub1.n_vars(), 1);
        assert!(net.strip_sinks_to(0).is_err());
        assert!(net.strip_sinks_to(5).is_err());
    }

    #[test]
    fn parent_config_of_uses_sorted_parents() {
        let net = sprinkler();
        // WetGrass parents are [1 (Sprinkler), 2 (Rain)]; config = s*2 + r.
        let x = vec![0, 1, 0, 0];
        assert_eq!(net.parent_config_of(3, &x), 2);
        let x = vec![0, 1, 1, 0];
        assert_eq!(net.parent_config_of(3, &x), 3);
        assert_eq!(net.parent_config_of(0, &x), 0);
    }

    #[test]
    fn min_cpd_entry() {
        let net = sprinkler();
        assert_eq!(net.min_cpd_entry(), 0.0);
    }

    #[test]
    fn refresh_topology_is_idempotent() {
        let net = sprinkler();
        let mut copy = net.clone();
        copy.refresh_topology();
        assert_eq!(copy.topological_order(), net.topological_order());
    }
}
