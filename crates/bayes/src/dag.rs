//! Directed acyclic graphs over node indices `0..n`.
//!
//! The DAG records, for each node, its parent set (sorted ascending) and its
//! children. Parents are kept sorted because the parent-configuration index
//! used by CPTs and by the counter banks in `dsbn-core` is defined over the
//! sorted parent list (see [`crate::cpt`]).

use crate::error::{BayesError, Result};
use serde::{Deserialize, Serialize};

/// A directed acyclic graph with a fixed node count.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dag {
    parents: Vec<Vec<usize>>,
    children: Vec<Vec<usize>>,
    n_edges: usize,
}

impl Dag {
    /// An edgeless DAG on `n` nodes.
    pub fn new(n: usize) -> Self {
        Dag { parents: vec![Vec::new(); n], children: vec![Vec::new(); n], n_edges: 0 }
    }

    /// Number of nodes.
    pub fn n_nodes(&self) -> usize {
        self.parents.len()
    }

    /// Number of directed edges.
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Sorted parent list of `v`.
    pub fn parents(&self, v: usize) -> &[usize] {
        &self.parents[v]
    }

    /// Children of `v` (in insertion order).
    pub fn children(&self, v: usize) -> &[usize] {
        &self.children[v]
    }

    /// In-degree of `v`.
    pub fn n_parents(&self, v: usize) -> usize {
        self.parents[v].len()
    }

    /// Out-degree of `v`.
    pub fn n_children(&self, v: usize) -> usize {
        self.children[v].len()
    }

    /// Maximum in-degree `d` over all nodes (paper notation).
    pub fn max_parents(&self) -> usize {
        (0..self.n_nodes()).map(|v| self.n_parents(v)).max().unwrap_or(0)
    }

    fn check_node(&self, v: usize) -> Result<()> {
        if v >= self.n_nodes() {
            return Err(BayesError::NodeOutOfRange { index: v, n: self.n_nodes() });
        }
        Ok(())
    }

    /// Whether the edge `from -> to` exists.
    pub fn has_edge(&self, from: usize, to: usize) -> bool {
        to < self.n_nodes() && self.parents[to].binary_search(&from).is_ok()
    }

    /// Add edge `from -> to`, rejecting self-loops, duplicates, and cycles.
    pub fn add_edge(&mut self, from: usize, to: usize) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(BayesError::SelfLoop(from));
        }
        if self.has_edge(from, to) {
            return Err(BayesError::DuplicateEdge { from, to });
        }
        if self.reaches(to, from) {
            return Err(BayesError::CycleDetected { from, to });
        }
        let pos = self.parents[to].binary_search(&from).unwrap_err();
        self.parents[to].insert(pos, from);
        self.children[from].push(to);
        self.n_edges += 1;
        Ok(())
    }

    /// Add edge without the (O(V+E)) cycle check. The caller must guarantee
    /// acyclicity, e.g. by only adding edges from lower to higher topological
    /// rank; used by the network generator.
    pub fn add_edge_unchecked(&mut self, from: usize, to: usize) -> Result<()> {
        self.check_node(from)?;
        self.check_node(to)?;
        if from == to {
            return Err(BayesError::SelfLoop(from));
        }
        if self.has_edge(from, to) {
            return Err(BayesError::DuplicateEdge { from, to });
        }
        let pos = self.parents[to].binary_search(&from).unwrap_err();
        self.parents[to].insert(pos, from);
        self.children[from].push(to);
        self.n_edges += 1;
        Ok(())
    }

    /// DFS reachability `src ->* dst`.
    fn reaches(&self, src: usize, dst: usize) -> bool {
        if src == dst {
            return true;
        }
        let mut seen = vec![false; self.n_nodes()];
        let mut stack = vec![src];
        seen[src] = true;
        while let Some(v) = stack.pop() {
            for &c in &self.children[v] {
                if c == dst {
                    return true;
                }
                if !seen[c] {
                    seen[c] = true;
                    stack.push(c);
                }
            }
        }
        false
    }

    /// A topological ordering (Kahn's algorithm). Always succeeds because the
    /// construction API preserves acyclicity.
    pub fn topological_order(&self) -> Vec<usize> {
        let n = self.n_nodes();
        let mut indeg: Vec<usize> = (0..n).map(|v| self.n_parents(v)).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(n);
        let mut head = 0;
        while head < queue.len() {
            let v = queue[head];
            head += 1;
            order.push(v);
            for &c in &self.children[v] {
                indeg[c] -= 1;
                if indeg[c] == 0 {
                    queue.push(c);
                }
            }
        }
        debug_assert_eq!(order.len(), n, "construction guarantees acyclicity");
        order
    }

    /// Check acyclicity from scratch (used by deserialization paths and tests).
    pub fn is_acyclic(&self) -> bool {
        self.topological_order().len() == self.n_nodes()
    }

    /// Sink nodes (out-degree zero), ascending.
    pub fn sinks(&self) -> Vec<usize> {
        (0..self.n_nodes()).filter(|&v| self.children[v].is_empty()).collect()
    }

    /// Remove a set of nodes, compacting indices while preserving relative
    /// order. Returns the mapping `old index -> new index` (`None` if removed).
    pub fn remove_nodes(&self, remove: &[usize]) -> (Dag, Vec<Option<usize>>) {
        let n = self.n_nodes();
        let mut gone = vec![false; n];
        for &v in remove {
            gone[v] = true;
        }
        let mut map = vec![None; n];
        let mut next = 0usize;
        for v in 0..n {
            if !gone[v] {
                map[v] = Some(next);
                next += 1;
            }
        }
        let mut out = Dag::new(next);
        for v in 0..n {
            if let Some(nv) = map[v] {
                for &p in &self.parents[v] {
                    if let Some(np) = map[p] {
                        out.add_edge_unchecked(np, nv).expect("subgraph edge");
                    }
                }
                let _ = nv;
            }
        }
        (out, map)
    }

    /// Iterator over all edges `(from, to)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        (0..self.n_nodes()).flat_map(move |to| self.parents[to].iter().map(move |&from| (from, to)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Dag {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        let mut d = Dag::new(4);
        d.add_edge(0, 1).unwrap();
        d.add_edge(0, 2).unwrap();
        d.add_edge(1, 3).unwrap();
        d.add_edge(2, 3).unwrap();
        d
    }

    #[test]
    fn basic_structure() {
        let d = diamond();
        assert_eq!(d.n_nodes(), 4);
        assert_eq!(d.n_edges(), 4);
        assert_eq!(d.parents(3), &[1, 2]);
        assert_eq!(d.children(0), &[1, 2]);
        assert_eq!(d.max_parents(), 2);
        assert!(d.has_edge(0, 1));
        assert!(!d.has_edge(1, 0));
    }

    #[test]
    fn parents_stay_sorted() {
        let mut d = Dag::new(4);
        d.add_edge(2, 3).unwrap();
        d.add_edge(0, 3).unwrap();
        d.add_edge(1, 3).unwrap();
        assert_eq!(d.parents(3), &[0, 1, 2]);
    }

    #[test]
    fn cycle_rejected() {
        let mut d = diamond();
        assert_eq!(d.add_edge(3, 0), Err(BayesError::CycleDetected { from: 3, to: 0 }));
        assert_eq!(d.add_edge(1, 1), Err(BayesError::SelfLoop(1)));
        assert_eq!(d.add_edge(0, 1), Err(BayesError::DuplicateEdge { from: 0, to: 1 }));
    }

    #[test]
    fn out_of_range_rejected() {
        let mut d = Dag::new(2);
        assert!(matches!(d.add_edge(0, 5), Err(BayesError::NodeOutOfRange { .. })));
        assert!(matches!(d.add_edge(5, 0), Err(BayesError::NodeOutOfRange { .. })));
    }

    #[test]
    fn topo_order_is_consistent() {
        let d = diamond();
        let order = d.topological_order();
        let rank: Vec<usize> = {
            let mut r = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                r[v] = i;
            }
            r
        };
        for (from, to) in d.edges() {
            assert!(rank[from] < rank[to], "edge {from}->{to} violates order");
        }
    }

    #[test]
    fn sinks_and_removal() {
        let d = diamond();
        assert_eq!(d.sinks(), vec![3]);
        let (sub, map) = d.remove_nodes(&[3]);
        assert_eq!(sub.n_nodes(), 3);
        assert_eq!(sub.n_edges(), 2);
        assert_eq!(map, vec![Some(0), Some(1), Some(2), None]);
        assert_eq!(sub.sinks(), vec![1, 2]);
    }

    #[test]
    fn empty_dag() {
        let d = Dag::new(0);
        assert_eq!(d.topological_order(), Vec::<usize>::new());
        assert!(d.is_acyclic());
        assert_eq!(d.sinks(), Vec::<usize>::new());
    }

    #[test]
    fn edges_iterator_counts() {
        let d = diamond();
        let mut es: Vec<_> = d.edges().collect();
        es.sort_unstable();
        assert_eq!(es, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }
}
