//! Flat cross-event arenas for the chunked ingest pipeline.
//!
//! The per-event pipeline moves one heap-allocated `Vec<usize>` per event
//! from the generator, through a channel send, to a site thread — at
//! simulator rates (tens of millions of events per second) the allocation
//! and channel costs dominate the actual UPDATE work. An [`EventChunk`]
//! amortizes both: `C` events live in one contiguous `u32` slab (fixed
//! stride `n_vars`, so per-event offsets are implicit) and cross a channel
//! as one send. A chunk of one event is the exact degenerate case of the
//! per-event pipeline, which is how existing per-event callers keep their
//! behavior bit-for-bit (`tests/chunked_equivalence.rs`).
//!
//! Two ways to produce chunks:
//!
//! - [`chunk_events`] — adapter over any event iterator (`Vec<usize>`
//!   items), for callers that already hold per-event allocations;
//! - [`TrainingStream::chunks`](crate::TrainingStream::chunks) — mints
//!   events straight into the slab via `sample_into`, so the generator
//!   allocates nothing per event at all.

use dsbn_bayes::network::Assignment;

/// A flat arena of `len` events, each `n_vars` values wide, in one
/// contiguous `u32` slab. Event `i` occupies
/// `values[i * n_vars .. (i + 1) * n_vars]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventChunk {
    n_vars: usize,
    len: usize,
    values: Vec<u32>,
}

impl EventChunk {
    /// An empty chunk; the event width is adopted from the first push.
    pub fn new() -> Self {
        EventChunk::default()
    }

    /// An empty chunk with room for `events` events of `n_vars` values.
    pub fn with_capacity(n_vars: usize, events: usize) -> Self {
        EventChunk { n_vars, len: 0, values: Vec::with_capacity(n_vars * events) }
    }

    /// Events in the chunk.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the chunk holds no events.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Values per event (0 until the first event is pushed into a
    /// width-less chunk).
    pub fn n_vars(&self) -> usize {
        self.n_vars
    }

    /// Drop all events, keeping the slab allocation.
    pub fn clear(&mut self) {
        self.len = 0;
        self.values.clear();
    }

    /// Event `i` as a value slice.
    #[inline]
    pub fn event(&self, i: usize) -> &[u32] {
        debug_assert!(i < self.len, "event {i} out of range ({} events)", self.len);
        &self.values[i * self.n_vars..(i + 1) * self.n_vars]
    }

    /// Iterate the events as value slices.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len).map(move |i| self.event(i))
    }

    /// The whole slab (all events back to back).
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Append one event given as `usize` values (an [`Assignment`]).
    /// An empty chunk adopts the event's width; afterwards every event
    /// must match it.
    pub fn push(&mut self, x: &[usize]) {
        if self.len == 0 {
            self.n_vars = x.len();
        }
        assert_eq!(x.len(), self.n_vars, "event width mismatch");
        self.values.extend(x.iter().map(|&v| v as u32));
        self.len += 1;
    }

    /// Append one event already in `u32` form (e.g. re-chunking events
    /// from another chunk). Same width rules as [`EventChunk::push`].
    pub fn push_u32(&mut self, x: &[u32]) {
        if self.len == 0 {
            self.n_vars = x.len();
        }
        assert_eq!(x.len(), self.n_vars, "event width mismatch");
        self.values.extend_from_slice(x);
        self.len += 1;
    }
}

/// Iterator adapter grouping a per-event stream into [`EventChunk`]s of at
/// most `size` events (the last chunk may be shorter). See [`chunk_events`].
#[derive(Debug, Clone)]
pub struct EventChunks<I> {
    inner: I,
    size: usize,
}

impl<I: Iterator<Item = Assignment>> Iterator for EventChunks<I> {
    type Item = EventChunk;

    fn next(&mut self) -> Option<EventChunk> {
        let first = self.inner.next()?;
        let mut chunk = EventChunk::with_capacity(first.len(), self.size);
        chunk.push(&first);
        while chunk.len() < self.size {
            match self.inner.next() {
                Some(x) => chunk.push(&x),
                None => break,
            }
        }
        Some(chunk)
    }
}

/// Group a per-event stream into [`EventChunk`]s of at most `size` events.
/// `size = 1` is the degenerate per-event pipeline: one event per chunk,
/// in the original order.
pub fn chunk_events<I>(events: I, size: usize) -> EventChunks<I::IntoIter>
where
    I: IntoIterator<Item = Assignment>,
{
    assert!(size >= 1, "chunk size must be >= 1");
    EventChunks { inner: events.into_iter(), size }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_layout_and_iteration() {
        let mut c = EventChunk::with_capacity(3, 4);
        assert!(c.is_empty());
        c.push(&[1, 2, 3]);
        c.push(&[4, 5, 6]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.n_vars(), 3);
        assert_eq!(c.event(0), &[1, 2, 3]);
        assert_eq!(c.event(1), &[4, 5, 6]);
        assert_eq!(c.values(), &[1, 2, 3, 4, 5, 6]);
        let all: Vec<&[u32]> = c.iter().collect();
        assert_eq!(all, vec![&[1u32, 2, 3][..], &[4u32, 5, 6][..]]);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.values(), &[] as &[u32]);
    }

    #[test]
    fn widthless_chunk_adopts_first_event() {
        let mut c = EventChunk::new();
        assert_eq!(c.n_vars(), 0);
        c.push_u32(&[7, 8]);
        assert_eq!(c.n_vars(), 2);
        c.push(&[1, 0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    #[should_panic(expected = "event width mismatch")]
    fn width_mismatch_rejected() {
        let mut c = EventChunk::new();
        c.push(&[1, 2]);
        c.push(&[1, 2, 3]);
    }

    #[test]
    fn chunk_events_groups_and_preserves_order() {
        let events: Vec<Assignment> = (0..10).map(|i| vec![i, i + 1]).collect();
        let chunks: Vec<EventChunk> = chunk_events(events.clone(), 4).collect();
        assert_eq!(chunks.len(), 3);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1].len(), 4);
        assert_eq!(chunks[2].len(), 2);
        let flat: Vec<Vec<u32>> =
            chunks.iter().flat_map(|c| c.iter().map(|e| e.to_vec())).collect();
        let expect: Vec<Vec<u32>> =
            events.iter().map(|e| e.iter().map(|&v| v as u32).collect()).collect();
        assert_eq!(flat, expect);
    }

    #[test]
    fn chunk_of_one_is_the_per_event_pipeline() {
        let events: Vec<Assignment> = (0..5).map(|i| vec![i]).collect();
        let chunks: Vec<EventChunk> = chunk_events(events, 1).collect();
        assert_eq!(chunks.len(), 5);
        assert!(chunks.iter().all(|c| c.len() == 1));
    }

    #[test]
    fn empty_stream_yields_no_chunks() {
        let chunks: Vec<EventChunk> = chunk_events(Vec::<Assignment>::new(), 8).collect();
        assert!(chunks.is_empty());
    }
}
