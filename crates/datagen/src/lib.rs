//! # dsbn-datagen — workload generation
//!
//! Training streams ([`stream::TrainingStream`], [`stream::DriftingStream`]),
//! changepoint scenarios ([`stream::DriftWorkload`]), flat cross-event
//! arenas for the chunked ingest pipeline ([`chunk::EventChunk`]),
//! per-site arrival-rate models ([`arrival::SiteRates`],
//! [`arrival::BurstClock`]), and testing workloads ([`queries`]) for the
//! paper's evaluation, all seeded and deterministic.

pub mod arrival;
pub mod chunk;
pub mod queries;
pub mod stream;

pub use arrival::{BurstClock, SiteRates};
pub use chunk::{chunk_events, EventChunk, EventChunks};
pub use queries::{
    all_factors_at_least, generate_classification_cases, generate_queries, ClassificationCase,
    QueryConfig,
};
pub use stream::{DriftWorkload, DriftingStream, TrainingChunks, TrainingStream};
