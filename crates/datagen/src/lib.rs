//! # dsbn-datagen — workload generation
//!
//! Training streams ([`stream::TrainingStream`], [`stream::DriftingStream`]),
//! changepoint scenarios ([`stream::DriftWorkload`]), flat cross-event
//! arenas for the chunked ingest pipeline ([`chunk::EventChunk`]), and
//! testing workloads ([`queries`]) for the paper's evaluation, all seeded
//! and deterministic.

pub mod chunk;
pub mod queries;
pub mod stream;

pub use chunk::{chunk_events, EventChunk, EventChunks};
pub use queries::{
    all_factors_at_least, generate_classification_cases, generate_queries, ClassificationCase,
    QueryConfig,
};
pub use stream::{DriftWorkload, DriftingStream, TrainingChunks, TrainingStream};
