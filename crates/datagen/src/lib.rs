//! # dsbn-datagen — workload generation
//!
//! Training streams ([`stream::TrainingStream`], [`stream::DriftingStream`]),
//! changepoint scenarios ([`stream::DriftWorkload`]), and testing workloads
//! ([`queries`]) for the paper's evaluation, all seeded and deterministic.

pub mod queries;
pub mod stream;

pub use queries::{
    all_factors_at_least, generate_classification_cases, generate_queries, ClassificationCase,
    QueryConfig,
};
pub use stream::{DriftWorkload, DriftingStream, TrainingStream};
