//! Training streams.
//!
//! [`TrainingStream`] is a seeded, infinite iterator of events sampled from
//! a ground-truth network (the paper's §VI-A training data). A
//! [`DriftingStream`] switches the generating network at chosen points,
//! and [`DriftWorkload`] packages a whole changepoint scenario — the phase
//! networks, their schedule, and per-position ground truth — as a reusable
//! workload source for the concept-drift experiments (the time-decay
//! ablation, the drift equivalence suites; future work (2) of the paper).

use crate::chunk::EventChunk;
use dsbn_bayes::generate::redraw_cpts;
use dsbn_bayes::network::Assignment;
use dsbn_bayes::{AncestralSampler, BayesianNetwork, Result};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded iterator of training events from one network.
#[derive(Debug, Clone)]
pub struct TrainingStream {
    sampler: AncestralSampler,
    rng: StdRng,
}

impl TrainingStream {
    /// Stream events from `net` deterministically under `seed`.
    pub fn new(net: &BayesianNetwork, seed: u64) -> Self {
        TrainingStream { sampler: AncestralSampler::new(net), rng: StdRng::seed_from_u64(seed) }
    }

    /// Sample the next event into `out` without allocating.
    pub fn next_into(&mut self, out: &mut Assignment) {
        self.sampler.sample_into(&mut self.rng, out);
    }

    /// Mint `total` events as [`EventChunk`]s of at most `chunk` events,
    /// sampling straight into each chunk's flat slab — no per-event `Vec`
    /// is ever allocated (one reused scratch assignment backs the
    /// sampler). Event values and order are identical to the per-event
    /// iterator under the same seed.
    pub fn chunks(self, chunk: usize, total: u64) -> TrainingChunks {
        assert!(chunk >= 1, "chunk size must be >= 1");
        TrainingChunks { stream: self, chunk, remaining: total, scratch: Vec::new() }
    }
}

/// Chunk-minting iterator over a [`TrainingStream`]; see
/// [`TrainingStream::chunks`].
#[derive(Debug, Clone)]
pub struct TrainingChunks {
    stream: TrainingStream,
    chunk: usize,
    remaining: u64,
    scratch: Assignment,
}

impl Iterator for TrainingChunks {
    type Item = EventChunk;

    fn next(&mut self) -> Option<EventChunk> {
        if self.remaining == 0 {
            return None;
        }
        let n = (self.remaining.min(self.chunk as u64)) as usize;
        let mut out = EventChunk::with_capacity(self.stream.sampler.n_vars(), n);
        for _ in 0..n {
            self.stream.next_into(&mut self.scratch);
            out.push(&self.scratch);
        }
        self.remaining -= n as u64;
        Some(out)
    }
}

impl Iterator for TrainingStream {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        Some(self.sampler.sample(&mut self.rng))
    }
}

/// A stream whose generating distribution changes over time: phase `i`
/// produces `len_i` events from network `i`, then moves on; the final
/// network streams forever.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    phases: Vec<(AncestralSampler, u64)>,
    current: usize,
    emitted_in_phase: u64,
    rng: StdRng,
}

/// Shared phase validation: all networks must have the same variable
/// count *and identical per-variable cardinalities* — otherwise events
/// from one phase would be invalid assignments for trackers built on
/// another phase's structure. Panics on empty input or mismatches.
fn validate_phases<'a>(mut nets: impl Iterator<Item = &'a BayesianNetwork>) {
    let first = nets.next().expect("need at least one phase");
    let n = first.n_vars();
    for net in nets {
        assert_eq!(net.n_vars(), n, "phase networks must share dimensions");
        for i in 0..n {
            assert_eq!(
                net.cardinality(i),
                first.cardinality(i),
                "phase networks must share dimensions: variable {i} cardinality differs"
            );
        }
    }
}

impl DriftingStream {
    /// `phases` pairs each network with the number of events it generates
    /// (use [`dsbn_bayes::generate::redraw_cpts`] to build pure parameter
    /// drifts). Panics per [`validate_phases`].
    pub fn new(phases: &[(&BayesianNetwork, u64)], seed: u64) -> Self {
        validate_phases(phases.iter().map(|(net, _)| *net));
        DriftingStream {
            phases: phases.iter().map(|(net, len)| (AncestralSampler::new(net), *len)).collect(),
            current: 0,
            emitted_in_phase: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Index of the phase currently generating events.
    pub fn phase(&self) -> usize {
        self.current
    }
}

impl Iterator for DriftingStream {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        while self.current + 1 < self.phases.len()
            && self.emitted_in_phase >= self.phases[self.current].1
        {
            self.current += 1;
            self.emitted_in_phase = 0;
        }
        self.emitted_in_phase += 1;
        let sampler = &self.phases[self.current].0;
        Some(sampler.sample(&mut self.rng))
    }
}

/// A reusable changepoint scenario: the phase networks and their schedule,
/// independent of any particular stream seed.
///
/// Where [`DriftingStream`] is one seeded iterator, a `DriftWorkload` owns
/// the ground truth — it can mint fresh streams for a seed sweep
/// ([`DriftWorkload::stream`]), report where the changepoints fall, and
/// answer which network generated the event at a given stream position
/// (the "current truth" an adaptation metric compares against).
#[derive(Debug, Clone)]
pub struct DriftWorkload {
    phases: Vec<(BayesianNetwork, u64)>,
}

impl DriftWorkload {
    /// Build from explicit phases (network, events it generates). The
    /// final network streams forever. Panics like [`DriftingStream::new`]
    /// on empty input or mismatched variable counts/cardinalities.
    pub fn new(phases: Vec<(BayesianNetwork, u64)>) -> Self {
        validate_phases(phases.iter().map(|(net, _)| net));
        DriftWorkload { phases }
    }

    /// A pure parameter drift: `n_phases` phases of `phase_len` events on
    /// the *same structure and domains* — phase 0 is `base`, each later
    /// phase redraws every CPT (Dirichlet `alpha`, probability `floor`, as
    /// in [`redraw_cpts`]) under a phase-salted seed. This is the
    /// changepoint workload of `exp_ablation_decay` and the drift
    /// equivalence suites.
    pub fn parameter_drift(
        base: &BayesianNetwork,
        n_phases: usize,
        phase_len: u64,
        alpha: f64,
        floor: f64,
        seed: u64,
    ) -> Result<Self> {
        assert!(n_phases >= 1, "need at least one phase");
        let mut phases = vec![(base.clone(), phase_len)];
        for i in 1..n_phases {
            let salt = seed ^ (i as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
            phases.push((redraw_cpts(base, alpha, floor, salt)?, phase_len));
        }
        Ok(DriftWorkload { phases })
    }

    /// The phases (network, scheduled events).
    pub fn phases(&self) -> &[(BayesianNetwork, u64)] {
        &self.phases
    }

    /// A fresh seeded stream of this scenario.
    pub fn stream(&self, seed: u64) -> DriftingStream {
        let refs: Vec<(&BayesianNetwork, u64)> = self.phases.iter().map(|(n, m)| (n, *m)).collect();
        DriftingStream::new(&refs, seed)
    }

    /// Stream positions (0-based event indices) at which the generating
    /// network changes: the first event of each phase after the first.
    pub fn changepoints(&self) -> Vec<u64> {
        let mut points = Vec::with_capacity(self.phases.len().saturating_sub(1));
        let mut at = 0u64;
        for (_, len) in &self.phases[..self.phases.len() - 1] {
            at += len;
            points.push(at);
        }
        points
    }

    /// Total scheduled events (the final phase streams forever beyond it).
    pub fn scripted_events(&self) -> u64 {
        self.phases.iter().map(|(_, m)| m).sum()
    }

    /// The network generating the event at stream position `index` — the
    /// "current truth" for adaptation metrics.
    pub fn network_at(&self, index: u64) -> &BayesianNetwork {
        let mut remaining = index;
        for (net, len) in &self.phases[..self.phases.len() - 1] {
            if remaining < *len {
                return net;
            }
            remaining -= len;
        }
        &self.phases[self.phases.len() - 1].0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;
    use dsbn_bayes::{Cpt, Dag, Variable};

    #[test]
    fn stream_is_deterministic() {
        let net = sprinkler_network();
        let a: Vec<_> = TrainingStream::new(&net, 5).take(20).collect();
        let b: Vec<_> = TrainingStream::new(&net, 5).take(20).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TrainingStream::new(&net, 6).take(20).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn chunk_minting_matches_per_event_stream() {
        let net = sprinkler_network();
        let m = 103u64;
        for chunk in [1usize, 7, 32, 256] {
            let minted: Vec<Vec<u32>> = TrainingStream::new(&net, 4)
                .chunks(chunk, m)
                .flat_map(|c| c.iter().map(|e| e.to_vec()).collect::<Vec<_>>())
                .collect();
            let direct: Vec<Vec<u32>> = TrainingStream::new(&net, 4)
                .take(m as usize)
                .map(|e| e.iter().map(|&v| v as u32).collect())
                .collect();
            assert_eq!(minted, direct, "chunk size {chunk}");
        }
        // Chunk shapes: full chunks then a remainder.
        let sizes: Vec<usize> =
            TrainingStream::new(&net, 4).chunks(25, m).map(|c| c.len()).collect();
        assert_eq!(sizes, vec![25, 25, 25, 25, 3]);
    }

    #[test]
    fn next_into_matches_iterator() {
        let net = sprinkler_network();
        let mut s1 = TrainingStream::new(&net, 9);
        let mut s2 = TrainingStream::new(&net, 9);
        let mut buf = Vec::new();
        for _ in 0..10 {
            s1.next_into(&mut buf);
            assert_eq!(Some(buf.clone()), s2.next());
        }
    }

    fn biased_coin(p_one: f64) -> BayesianNetwork {
        let variables = vec![Variable::with_cardinality("X", 2).unwrap()];
        let dag = Dag::new(1);
        let cpts = vec![Cpt::new(0, 2, vec![], vec![1.0 - p_one, p_one]).unwrap()];
        BayesianNetwork::new("coin", variables, dag, cpts).unwrap()
    }

    #[test]
    fn drifting_stream_switches_distribution() {
        let heads = biased_coin(0.95);
        let tails = biased_coin(0.05);
        let stream = DriftingStream::new(&[(&heads, 2000), (&tails, 2000)], 3);
        let events: Vec<_> = stream.take(4000).collect();
        let ones_first: usize = events[..2000].iter().map(|e| e[0]).sum();
        let ones_second: usize = events[2000..].iter().map(|e| e[0]).sum();
        assert!(ones_first > 1800, "first phase ones {ones_first}");
        assert!(ones_second < 200, "second phase ones {ones_second}");
    }

    #[test]
    fn final_phase_streams_forever() {
        let net = biased_coin(0.5);
        let mut stream = DriftingStream::new(&[(&net, 3)], 1);
        for _ in 0..100 {
            assert!(stream.next().is_some());
        }
        assert_eq!(stream.phase(), 0);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_phases_rejected() {
        let a = biased_coin(0.5);
        let b = sprinkler_network();
        let _ = DriftingStream::new(&[(&a, 10), (&b, 10)], 0);
    }

    #[test]
    fn workload_schedule_and_truth() {
        let w = DriftWorkload::new(vec![(biased_coin(0.9), 100), (biased_coin(0.1), 50)]);
        assert_eq!(w.changepoints(), vec![100]);
        assert_eq!(w.scripted_events(), 150);
        // Truth switches exactly at the changepoint; the last phase
        // extends forever.
        assert_eq!(w.network_at(99).joint_log_prob(&[1]), (0.9f64).ln());
        assert_eq!(w.network_at(100).joint_log_prob(&[1]), (0.1f64).ln());
        assert_eq!(w.network_at(10_000).joint_log_prob(&[1]), (0.1f64).ln());
    }

    #[test]
    fn workload_streams_are_seeded_and_match_drifting_stream() {
        let w = DriftWorkload::new(vec![(biased_coin(0.95), 200), (biased_coin(0.05), 200)]);
        let a: Vec<_> = w.stream(3).take(400).collect();
        let b: Vec<_> = w.stream(3).take(400).collect();
        assert_eq!(a, b);
        let (h, t) = (biased_coin(0.95), biased_coin(0.05));
        let direct: Vec<_> = DriftingStream::new(&[(&h, 200), (&t, 200)], 3).take(400).collect();
        assert_eq!(a, direct);
        assert_ne!(a, w.stream(4).take(400).collect::<Vec<_>>());
    }

    #[test]
    fn parameter_drift_keeps_structure_and_changes_distribution() {
        let base = sprinkler_network();
        let w = DriftWorkload::parameter_drift(&base, 3, 1_000, 0.8, 0.01, 7).unwrap();
        assert_eq!(w.phases().len(), 3);
        assert_eq!(w.changepoints(), vec![1_000, 2_000]);
        for (net, _) in w.phases() {
            assert_eq!(net.n_vars(), base.n_vars());
            for i in 0..base.n_vars() {
                assert_eq!(net.cardinality(i), base.cardinality(i));
            }
        }
        // Phase 0 is the base itself; later phases are redrawn (and the
        // redraws differ from each other — distinct salts).
        let x = vec![1usize, 0, 1, 1];
        assert_eq!(w.phases()[0].0.joint_log_prob(&x), base.joint_log_prob(&x));
        assert_ne!(w.phases()[1].0.joint_log_prob(&x), base.joint_log_prob(&x));
        assert_ne!(w.phases()[1].0.joint_log_prob(&x), w.phases()[2].0.joint_log_prob(&x));
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_workload_rejected() {
        let _ = DriftWorkload::new(vec![]);
    }
}
