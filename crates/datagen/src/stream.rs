//! Training streams.
//!
//! [`TrainingStream`] is a seeded, infinite iterator of events sampled from
//! a ground-truth network (the paper's §VI-A training data). A
//! [`DriftingStream`] switches the generating network at chosen points,
//! giving the concept-drift workload used by the time-decay ablation
//! (future work (2) of the paper).

use dsbn_bayes::network::Assignment;
use dsbn_bayes::{AncestralSampler, BayesianNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Seeded iterator of training events from one network.
#[derive(Debug, Clone)]
pub struct TrainingStream {
    sampler: AncestralSampler,
    rng: StdRng,
}

impl TrainingStream {
    /// Stream events from `net` deterministically under `seed`.
    pub fn new(net: &BayesianNetwork, seed: u64) -> Self {
        TrainingStream { sampler: AncestralSampler::new(net), rng: StdRng::seed_from_u64(seed) }
    }

    /// Sample the next event into `out` without allocating.
    pub fn next_into(&mut self, out: &mut Assignment) {
        self.sampler.sample_into(&mut self.rng, out);
    }
}

impl Iterator for TrainingStream {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        Some(self.sampler.sample(&mut self.rng))
    }
}

/// A stream whose generating distribution changes over time: phase `i`
/// produces `len_i` events from network `i`, then moves on; the final
/// network streams forever.
#[derive(Debug, Clone)]
pub struct DriftingStream {
    phases: Vec<(AncestralSampler, u64)>,
    current: usize,
    emitted_in_phase: u64,
    rng: StdRng,
}

impl DriftingStream {
    /// `phases` pairs each network with the number of events it generates.
    /// All networks must have the same variable count *and identical
    /// per-variable cardinalities* — otherwise events from one phase would
    /// be invalid assignments for trackers built on another phase's
    /// structure (use [`dsbn_bayes::generate::redraw_cpts`] to build pure
    /// parameter drifts). Panics on empty input or mismatched dimensions.
    pub fn new(phases: &[(&BayesianNetwork, u64)], seed: u64) -> Self {
        assert!(!phases.is_empty(), "need at least one phase");
        let first = phases[0].0;
        let n = first.n_vars();
        for (net, _) in phases {
            assert_eq!(net.n_vars(), n, "phase networks must share dimensions");
            for i in 0..n {
                assert_eq!(
                    net.cardinality(i),
                    first.cardinality(i),
                    "phase networks must share dimensions: variable {i} cardinality differs"
                );
            }
        }
        DriftingStream {
            phases: phases.iter().map(|(net, len)| (AncestralSampler::new(net), *len)).collect(),
            current: 0,
            emitted_in_phase: 0,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Index of the phase currently generating events.
    pub fn phase(&self) -> usize {
        self.current
    }
}

impl Iterator for DriftingStream {
    type Item = Assignment;

    fn next(&mut self) -> Option<Assignment> {
        while self.current + 1 < self.phases.len()
            && self.emitted_in_phase >= self.phases[self.current].1
        {
            self.current += 1;
            self.emitted_in_phase = 0;
        }
        self.emitted_in_phase += 1;
        let sampler = &self.phases[self.current].0;
        Some(sampler.sample(&mut self.rng))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;
    use dsbn_bayes::{Cpt, Dag, Variable};

    #[test]
    fn stream_is_deterministic() {
        let net = sprinkler_network();
        let a: Vec<_> = TrainingStream::new(&net, 5).take(20).collect();
        let b: Vec<_> = TrainingStream::new(&net, 5).take(20).collect();
        assert_eq!(a, b);
        let c: Vec<_> = TrainingStream::new(&net, 6).take(20).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn next_into_matches_iterator() {
        let net = sprinkler_network();
        let mut s1 = TrainingStream::new(&net, 9);
        let mut s2 = TrainingStream::new(&net, 9);
        let mut buf = Vec::new();
        for _ in 0..10 {
            s1.next_into(&mut buf);
            assert_eq!(Some(buf.clone()), s2.next());
        }
    }

    fn biased_coin(p_one: f64) -> BayesianNetwork {
        let variables = vec![Variable::with_cardinality("X", 2).unwrap()];
        let dag = Dag::new(1);
        let cpts = vec![Cpt::new(0, 2, vec![], vec![1.0 - p_one, p_one]).unwrap()];
        BayesianNetwork::new("coin", variables, dag, cpts).unwrap()
    }

    #[test]
    fn drifting_stream_switches_distribution() {
        let heads = biased_coin(0.95);
        let tails = biased_coin(0.05);
        let stream = DriftingStream::new(&[(&heads, 2000), (&tails, 2000)], 3);
        let events: Vec<_> = stream.take(4000).collect();
        let ones_first: usize = events[..2000].iter().map(|e| e[0]).sum();
        let ones_second: usize = events[2000..].iter().map(|e| e[0]).sum();
        assert!(ones_first > 1800, "first phase ones {ones_first}");
        assert!(ones_second < 200, "second phase ones {ones_second}");
    }

    #[test]
    fn final_phase_streams_forever() {
        let net = biased_coin(0.5);
        let mut stream = DriftingStream::new(&[(&net, 3)], 1);
        for _ in 0..100 {
            assert!(stream.next().is_some());
        }
        assert_eq!(stream.phase(), 0);
    }

    #[test]
    #[should_panic(expected = "share dimensions")]
    fn mismatched_phases_rejected() {
        let a = biased_coin(0.5);
        let b = sprinkler_network();
        let _ = DriftingStream::new(&[(&a, 10), (&b, 10)], 0);
    }
}
