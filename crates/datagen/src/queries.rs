//! Test query generation.
//!
//! The paper's testing data (§VI-A): "we generate 1000 events on the joint
//! probability space represented by the Bayesian network ... Each event is
//! chosen so that its ground truth probability is at least 0.01 — this is to
//! rule out events that are highly unlikely."
//!
//! For networks with hundreds of variables a *full* assignment can never
//! have probability 0.01, so (as documented in DESIGN.md §3) the likelihood
//! filter is applied per CPD factor: an event is accepted only if every
//! factor `P*[x_i | x_i^par]` is at least `min_factor_prob`. Probabilities
//! are then always compared in log space.

use dsbn_bayes::network::Assignment;
use dsbn_bayes::{AncestralSampler, BayesianNetwork};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Query-generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QueryConfig {
    /// Number of test events (the paper uses 1000).
    pub n_queries: usize,
    /// Minimum ground-truth probability for every CPD factor of the event.
    pub min_factor_prob: f64,
    /// Give up (with however many queries were found) after this many
    /// sampling attempts.
    pub max_attempts: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig { n_queries: 1000, min_factor_prob: 0.01, max_attempts: 10_000_000 }
    }
}

/// Whether every factor of `x` has ground-truth probability at least `t`.
pub fn all_factors_at_least(net: &BayesianNetwork, x: &[usize], t: f64) -> bool {
    for i in 0..net.n_vars() {
        let u = net.parent_config_of(i, x);
        if net.cpt(i).prob(x[i], u) < t {
            return false;
        }
    }
    true
}

/// Generate filtered test events from the ground-truth network.
pub fn generate_queries(net: &BayesianNetwork, cfg: &QueryConfig, seed: u64) -> Vec<Assignment> {
    let sampler = AncestralSampler::new(net);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(cfg.n_queries);
    let mut x = Vec::new();
    let mut attempts = 0u64;
    while out.len() < cfg.n_queries && attempts < cfg.max_attempts {
        attempts += 1;
        sampler.sample_into(&mut rng, &mut x);
        if all_factors_at_least(net, &x, cfg.min_factor_prob) {
            out.push(x.clone());
        }
    }
    out
}

/// A classification test case (§V / Table II): predict `target` from the
/// values of all other variables in `x`. The true value is `x[target]`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClassificationCase {
    /// Full ground-truth assignment (evidence plus the hidden true value).
    pub x: Assignment,
    /// The variable to predict.
    pub target: usize,
}

/// Generate classification cases: sample an instance, then "randomly select
/// one variable to predict, given the values of the remaining variables".
pub fn generate_classification_cases(
    net: &BayesianNetwork,
    n_cases: usize,
    seed: u64,
) -> Vec<ClassificationCase> {
    let sampler = AncestralSampler::new(net);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_cases)
        .map(|_| {
            let x = sampler.sample(&mut rng);
            let target = rng.gen_range(0..net.n_vars());
            ClassificationCase { x, target }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsbn_bayes::sprinkler_network;
    use dsbn_bayes::NetworkSpec;

    #[test]
    fn queries_pass_their_own_filter() {
        let net = NetworkSpec::alarm().generate(1).unwrap();
        let cfg = QueryConfig { n_queries: 200, ..QueryConfig::default() };
        let qs = generate_queries(&net, &cfg, 7);
        assert_eq!(qs.len(), 200);
        for q in &qs {
            assert!(all_factors_at_least(&net, q, cfg.min_factor_prob));
            assert!(net.check_assignment(q).is_ok());
        }
    }

    #[test]
    fn filter_rejects_zero_probability_factors() {
        // The sprinkler network has a 0-probability entry; a strict filter
        // must reject events through it.
        let net = sprinkler_network();
        let x = vec![0usize, 0, 0, 1]; // P(W=wet | off, no rain) = 0
        assert!(!all_factors_at_least(&net, &x, 0.01));
        let x = vec![1, 0, 1, 1];
        assert!(all_factors_at_least(&net, &x, 0.01));
    }

    #[test]
    fn impossible_filter_returns_short() {
        let net = sprinkler_network();
        let cfg = QueryConfig { n_queries: 10, min_factor_prob: 0.99, max_attempts: 2000 };
        let qs = generate_queries(&net, &cfg, 1);
        assert!(qs.len() < 10, "filter at 0.99 cannot fill 10 queries");
    }

    #[test]
    fn deterministic_per_seed() {
        let net = sprinkler_network();
        let cfg = QueryConfig { n_queries: 50, min_factor_prob: 0.01, max_attempts: 100_000 };
        assert_eq!(generate_queries(&net, &cfg, 3), generate_queries(&net, &cfg, 3));
    }

    #[test]
    fn classification_cases_are_valid() {
        let net = sprinkler_network();
        let cases = generate_classification_cases(&net, 100, 9);
        assert_eq!(cases.len(), 100);
        let mut target_seen = [false; 4];
        for c in &cases {
            assert!(net.check_assignment(&c.x).is_ok());
            assert!(c.target < 4);
            target_seen[c.target] = true;
        }
        // With 100 cases all 4 targets should appear.
        assert!(target_seen.iter().all(|&b| b));
    }
}
