//! Per-site arrival-rate models for the distributed stream.
//!
//! The paper routes each event "to a site chosen uniformly at random"
//! (§VI-A) and lists skewed arrivals as future work (1). These helpers
//! describe *how fast each site's local stream runs* relative to the
//! others, independently of what the events contain: a static rate vector
//! ([`SiteRates`]) for smooth-but-unequal load, and a deterministic burst
//! phase clock ([`BurstClock`]) for load that is unequal *in time*. The
//! cluster runtime's partitioner consumes both (monitor
//! `Partitioner::Skewed` / `Partitioner::Bursty`), and the churn suite
//! leans on them to exercise crash/rejoin under a hot site and a
//! near-idle one — the regimes where forgetting a site moves the estimate
//! most and least.

/// A static per-site arrival-rate vector: `rates[i]` is the fraction of
/// the global stream that arrives at site `i`. Always normalized to sum
/// to 1.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteRates {
    rates: Vec<f64>,
}

impl SiteRates {
    /// Uniform arrivals (the paper's setting): every site gets `1/k`.
    pub fn uniform(k: usize) -> Self {
        assert!(k > 0, "need at least one site");
        SiteRates { rates: vec![1.0 / k as f64; k] }
    }

    /// The skewed regime: site `0` is *hot* (receives fraction `hot` of
    /// the stream), site `k - 1` is *near-idle* (fraction `cold`), and
    /// the remaining sites split what is left evenly. With `k == 2` the
    /// two shares are simply normalized against each other.
    pub fn skewed(k: usize, hot: f64, cold: f64) -> Self {
        assert!(k >= 2, "a skewed rate vector needs at least two sites");
        assert!(hot > 0.0 && cold >= 0.0, "rates must be non-negative (hot > 0)");
        assert!(hot + cold <= 1.0 + 1e-12, "hot + cold must not exceed 1");
        let mut rates =
            if k > 2 { vec![(1.0 - hot - cold) / (k - 2) as f64; k] } else { vec![0.0; k] };
        rates[0] = hot;
        rates[k - 1] = cold;
        let sum: f64 = rates.iter().sum();
        for r in rates.iter_mut() {
            *r /= sum;
        }
        SiteRates { rates }
    }

    /// The normalized per-site rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of sites.
    pub fn k(&self) -> usize {
        self.rates.len()
    }

    /// Cumulative distribution over sites (last entry pinned to exactly
    /// 1.0), ready for inverse-CDF sampling: draw `u ~ U[0,1)` and take
    /// the first index whose cumulative weight exceeds it.
    pub fn cdf(&self) -> Vec<f64> {
        let mut acc = 0.0;
        let mut cdf: Vec<f64> = self
            .rates
            .iter()
            .map(|r| {
                acc += r;
                acc
            })
            .collect();
        if let Some(last) = cdf.last_mut() {
            *last = 1.0;
        }
        cdf
    }
}

/// A deterministic burst phase clock: time is sliced into periods of
/// `period` events; during the first `burst` events of each period the
/// stream is *bursting* (all arrivals hammer one site, rotating each
/// period so every site takes a turn), and the rest of the period is
/// quiet. Purely a function of how many events have been clocked, so two
/// equally seeded runs see identical burst boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BurstClock {
    period: u64,
    burst: u64,
    ticks: u64,
}

impl BurstClock {
    /// A clock bursting for the first `burst` events of every
    /// `period`-event slice. `burst == 0` never bursts; `burst == period`
    /// always does.
    pub fn new(period: u64, burst: u64) -> Self {
        assert!(period >= 1, "burst period must be >= 1");
        assert!(burst <= period, "burst length must not exceed the period");
        BurstClock { period, burst, ticks: 0 }
    }

    /// Clock one event: returns `Some(burst_index)` while bursting — the
    /// number of completed periods, which the caller maps to the bursting
    /// site (e.g. `burst_index % k`) — and `None` in the quiet phase.
    pub fn tick(&mut self) -> Option<u64> {
        let t = self.ticks;
        self.ticks += 1;
        if t % self.period < self.burst {
            Some(t / self.period)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_rates_sum_to_one() {
        let r = SiteRates::uniform(7);
        assert_eq!(r.k(), 7);
        assert!((r.rates().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(r.rates().iter().all(|&x| (x - 1.0 / 7.0).abs() < 1e-12));
    }

    #[test]
    fn skewed_has_one_hot_and_one_near_idle_site() {
        let r = SiteRates::skewed(5, 0.6, 0.01);
        assert!((r.rates()[0] - 0.6).abs() < 1e-12, "hot site share");
        assert!((r.rates()[4] - 0.01).abs() < 1e-12, "near-idle site share");
        for &mid in &r.rates()[1..4] {
            assert!((mid - 0.13).abs() < 1e-12, "middle share {mid}");
        }
        assert!((r.rates().iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn skewed_two_sites_normalizes() {
        let r = SiteRates::skewed(2, 0.6, 0.2);
        assert!((r.rates()[0] - 0.75).abs() < 1e-12);
        assert!((r.rates()[1] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn cdf_ends_at_exactly_one() {
        let cdf = SiteRates::skewed(4, 0.9, 0.001).cdf();
        assert_eq!(*cdf.last().unwrap(), 1.0);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]), "cdf must be monotone");
    }

    #[test]
    #[should_panic(expected = "hot + cold must not exceed 1")]
    fn skewed_rejects_overfull_shares() {
        let _ = SiteRates::skewed(3, 0.8, 0.3);
    }

    #[test]
    fn burst_clock_phases_are_deterministic() {
        let mut clock = BurstClock::new(4, 2);
        let phases: Vec<Option<u64>> = (0..10).map(|_| clock.tick()).collect();
        assert_eq!(
            phases,
            vec![Some(0), Some(0), None, None, Some(1), Some(1), None, None, Some(2), Some(2)]
        );
    }

    #[test]
    fn burst_clock_extremes() {
        let mut never = BurstClock::new(3, 0);
        assert!((0..9).all(|_| never.tick().is_none()));
        let mut always = BurstClock::new(3, 3);
        assert!((0..9).all(|_| always.tick().is_some()));
    }
}
