//! Property-based tests for workload generation.

use dsbn_bayes::generate::NetworkSpec;
use dsbn_datagen::{
    all_factors_at_least, generate_classification_cases, generate_queries, DriftingStream,
    QueryConfig, TrainingStream,
};
use proptest::prelude::*;

fn net(seed: u64, n: usize) -> dsbn_bayes::BayesianNetwork {
    NetworkSpec {
        name: "dg".into(),
        n_nodes: n,
        n_edges: ((n - 1) + n / 3).min(n * (n - 1) / 2),
        max_parents: 3,
        base_cardinality: 2,
        max_cardinality: 3,
        target_parameters: 5 * n,
        dirichlet_alpha: 1.0,
        min_cpd_entry: 0.02,
    }
    .generate(seed)
    .expect("generates")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streams are deterministic in the seed and produce valid events.
    #[test]
    fn stream_determinism_and_validity(seed: u64, n in 2usize..10) {
        let net = net(seed % 50, n);
        let a: Vec<_> = TrainingStream::new(&net, seed).take(30).collect();
        let b: Vec<_> = TrainingStream::new(&net, seed).take(30).collect();
        prop_assert_eq!(&a, &b);
        for x in &a {
            prop_assert!(net.check_assignment(x).is_ok());
        }
    }

    /// Every generated query passes its own filter, and the filter bound is
    /// respected for arbitrary thresholds.
    #[test]
    fn queries_respect_filter(seed in 0u64..100, thr_pct in 1u32..5) {
        let net = net(seed, 6);
        let thr = thr_pct as f64 / 100.0;
        let cfg = QueryConfig { n_queries: 40, min_factor_prob: thr, max_attempts: 500_000 };
        let qs = generate_queries(&net, &cfg, seed);
        for q in &qs {
            prop_assert!(all_factors_at_least(&net, q, thr));
        }
    }

    /// Classification cases carry in-range targets and valid assignments.
    #[test]
    fn classification_cases_valid(seed in 0u64..100) {
        let net = net(seed, 7);
        for c in generate_classification_cases(&net, 50, seed) {
            prop_assert!(c.target < net.n_vars());
            prop_assert!(net.check_assignment(&c.x).is_ok());
        }
    }

    /// Drifting streams honor phase lengths exactly. Phases must share
    /// structure and domains, so the second phase is a CPT redraw.
    #[test]
    fn drift_phase_lengths(len1 in 1u64..200, len2 in 1u64..200, seed: u64) {
        let a = net(seed % 20, 4);
        let b = dsbn_bayes::generate::redraw_cpts(&a, 1.0, 0.02, seed).unwrap();
        let mut s = DriftingStream::new(&[(&a, len1), (&b, len2)], seed);
        for _ in 0..len1 {
            let _ = s.next();
            prop_assert_eq!(s.phase(), 0);
        }
        let _ = s.next();
        prop_assert_eq!(s.phase(), 1);
    }
}
