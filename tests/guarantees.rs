//! Statistical guarantee tests: Definition 2's `(eps, delta)`-approximation
//! checked empirically over repeated runs, plus the allocation invariants
//! that make the proofs of Theorems 1-2 go through.

use dsbn::bayes::{sprinkler_network, NetworkSpec};
use dsbn::core::{allocate, build_tracker, instances_for_delta, Scheme, Smoothing, TrackerConfig};
use dsbn::datagen::{generate_queries, QueryConfig, TrainingStream};

/// Definition 2: for a random query x, `e^{-eps} <= P~/P^ <= e^{eps}`
/// with good probability. Run UNIFORM many times on the sprinkler network
/// and require the log-ratio to respect the eps band in at least 90% of
/// (run, query) pairs — the theory promises 3/4 per run at this eps, and
/// the analysis is loose, so 90% is a conservative empirical floor.
#[test]
fn eps_delta_approximation_of_the_mle() {
    let net = sprinkler_network();
    let eps = 0.2;
    let m = 30_000u64;
    let queries = generate_queries(&net, &QueryConfig { n_queries: 50, ..Default::default() }, 77);
    let mut within = 0usize;
    let mut total = 0usize;
    for run in 0..10u64 {
        let mut exact = build_tracker(
            &net,
            &TrackerConfig::new(Scheme::ExactMle)
                .with_k(8)
                .with_seed(run)
                .with_smoothing(Smoothing::None),
        );
        let mut uni = build_tracker(
            &net,
            &TrackerConfig::new(Scheme::Uniform)
                .with_eps(eps)
                .with_k(8)
                .with_seed(run)
                .with_smoothing(Smoothing::None),
        );
        let mut stream = TrainingStream::new(&net, 100 + run);
        let mut event = Vec::new();
        for _ in 0..m {
            stream.next_into(&mut event);
            exact.observe(&event);
            uni.observe(&event);
        }
        for q in &queries {
            let ratio = uni.log_query(q) - exact.log_query(q);
            total += 1;
            if ratio.abs() <= eps {
                within += 1;
            }
        }
    }
    assert!(within * 10 >= total * 9, "only {within}/{total} query ratios within e^{{±{eps}}}");
}

/// The variance-budget constraint behind Lemmas 7-9 and Eq. 5, on every
/// paper preset: `sum nu_i^2 <= eps^2/256` for UNIFORM and NONUNIFORM.
#[test]
fn allocation_variance_budgets_hold_on_all_presets() {
    for spec in NetworkSpec::paper_presets() {
        let net = spec.generate(1).unwrap();
        let eps = 0.1;
        let budget = eps * eps / 256.0;
        for scheme in [Scheme::Uniform, Scheme::NonUniform] {
            let a = allocate(scheme, &net, eps);
            let nu: f64 = a.family_eps.iter().map(|v| v * v).sum();
            let mu: f64 = a.parent_eps.iter().map(|v| v * v).sum();
            assert!(
                nu <= budget * (1.0 + 1e-9),
                "{} {}: sum nu^2 = {nu} > {budget}",
                net.name(),
                scheme.name()
            );
            assert!(mu <= budget * (1.0 + 1e-9), "{}: sum mu^2 = {mu}", net.name());
        }
    }
}

/// NONUNIFORM's communication objective is no worse than UNIFORM's under
/// the same constraint (it optimizes over a superset): check
/// `sum J_i K_i / nu_i` on every preset.
#[test]
fn nonuniform_objective_dominates_uniform() {
    for spec in NetworkSpec::paper_presets() {
        let net = spec.generate(1).unwrap();
        let eps = 0.1;
        let objective = |a: &dsbn::core::EpsAllocation| -> f64 {
            (0..net.n_vars())
                .map(|i| (net.cardinality(i) * net.parent_configs(i)) as f64 / a.family_eps[i])
                .sum()
        };
        let uni = allocate(Scheme::Uniform, &net, eps);
        let non = allocate(Scheme::NonUniform, &net, eps);
        // UNIFORM does not saturate the variance budget the same way, so
        // rescale it onto the constraint sphere for a fair comparison.
        let budget = eps * eps / 256.0;
        let uni_norm: f64 = uni.family_eps.iter().map(|v| v * v).sum();
        let scale = (budget / uni_norm).sqrt();
        let uni_scaled = dsbn::core::EpsAllocation {
            family_eps: uni.family_eps.iter().map(|v| v * scale).collect(),
            parent_eps: uni.parent_eps.iter().map(|v| v * scale).collect(),
        };
        assert!(
            objective(&non) <= objective(&uni_scaled) * (1.0 + 1e-9),
            "{}: nonuniform objective must dominate",
            net.name()
        );
    }
}

/// Median amplification: more instances shrink the spread of the query
/// estimate across repeated runs.
#[test]
fn median_amplification_reduces_spread() {
    use dsbn::core::{BnTracker, MedianTracker};
    use dsbn::counters::HyzProtocol;
    let net = sprinkler_network();
    let q = vec![1usize, 0, 1, 1];
    let spread = |r: usize, base_seed: u64| -> f64 {
        let mut vals = Vec::new();
        for rep in 0..12u64 {
            let instances: Vec<BnTracker<HyzProtocol>> = (0..r)
                .map(|i| {
                    let cfg = TrackerConfig::new(Scheme::Uniform)
                        .with_eps(0.4)
                        .with_k(4)
                        .with_seed(base_seed + 37 * rep + i as u64);
                    match build_tracker(&net, &cfg) {
                        dsbn::core::AnyTracker::Randomized(t) => t,
                        _ => unreachable!(),
                    }
                })
                .collect();
            let mut med = MedianTracker::new(instances);
            med.train(TrainingStream::new(&net, 55 + rep), 20_000);
            vals.push(med.log_query(&q));
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        (vals.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / vals.len() as f64).sqrt()
    };
    let s1 = spread(1, 1000);
    let s5 = spread(5, 2000);
    assert!(s5 < s1 * 1.05, "median of 5 should not be more dispersed than single: {s5} vs {s1}");
    assert!(instances_for_delta(0.05) >= 5);
}
