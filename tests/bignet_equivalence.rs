//! The stride-table id mapping ([`MappingMode::Strided`], the default) must
//! be indistinguishable from the original Horner walk it replaced
//! ([`MappingMode::Reference`]): same counter ids in the same order means
//! bit-identical estimates, exact totals, and paper-convention message
//! accounting, in the simulator and on the live cluster — on the tiny
//! fixture, ALARM, and a 500-variable big-network preset. Also pins the
//! big-network presets themselves: seeded generation is golden-stable
//! (same seed, same DAG, same counter space), fan-in stays bounded, and
//! `map_chunk` stays equivalent to per-event `map_event` at 500 variables.

use dsbn::bayes::{sprinkler_network, BayesianNetwork, NetworkSpec};
use dsbn::core::{
    build_tracker, run_cluster_tracker, CounterLayout, MappingMode, Scheme, TrackerConfig,
};
use dsbn::datagen::{EventChunk, TrainingStream};

fn net_by_name(name: &str) -> BayesianNetwork {
    match name {
        "sprinkler" => sprinkler_network(),
        "alarm" => NetworkSpec::alarm().generate(1).expect("alarm generation"),
        other => NetworkSpec::by_name(other)
            .unwrap_or_else(|| panic!("unknown net {other}"))
            .generate(1)
            .expect("big-net generation"),
    }
}

/// Sim: identical stream + seed under the two mapping modes — every CPD
/// estimate bit-identical, every exact count equal, stats equal.
fn assert_sim_mappings_agree(scheme: Scheme, net_name: &str, m: usize) {
    let net = net_by_name(net_name);
    let tc = TrackerConfig::new(scheme).with_k(5).with_seed(23).with_eps(0.1);

    let mut strided = build_tracker(&net, &tc.clone().with_mapping(MappingMode::Strided));
    strided.train(TrainingStream::new(&net, 3), m as u64);

    let mut reference = build_tracker(&net, &tc.with_mapping(MappingMode::Reference));
    reference.train(TrainingStream::new(&net, 3), m as u64);

    assert_eq!(strided.events(), reference.events());
    let layout = CounterLayout::new(&net);
    for i in 0..layout.n_vars() {
        for u in 0..layout.parent_configs(i) {
            assert_eq!(
                strided.exact_parent_count(i, u),
                reference.exact_parent_count(i, u),
                "{net_name}/{}: parent total ({i},{u})",
                scheme.name()
            );
            for v in 0..layout.cardinality(i) {
                assert_eq!(
                    strided.exact_family_count(i, v, u),
                    reference.exact_family_count(i, v, u),
                    "{net_name}/{}: family total ({i},{v},{u})",
                    scheme.name()
                );
                let (sn, sd) = strided.counter_pair(i, v, u);
                let (rn, rd) = reference.counter_pair(i, v, u);
                assert_eq!(
                    sn.to_bits(),
                    rn.to_bits(),
                    "{net_name}/{}: family estimate ({i},{v},{u})",
                    scheme.name()
                );
                assert_eq!(
                    sd.to_bits(),
                    rd.to_bits(),
                    "{net_name}/{}: parent estimate ({i},{u})",
                    scheme.name()
                );
            }
        }
    }
    assert_eq!(strided.stats(), reference.stats(), "{net_name}/{}: stats", scheme.name());
}

#[test]
fn sim_strided_is_bit_identical_sprinkler_all_schemes() {
    for scheme in Scheme::ALL {
        assert_sim_mappings_agree(scheme, "sprinkler", 20_000);
    }
}

#[test]
fn sim_strided_is_bit_identical_alarm() {
    for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
        assert_sim_mappings_agree(scheme, "alarm", 5_000);
    }
}

#[test]
fn sim_strided_is_bit_identical_big500() {
    for scheme in [Scheme::ExactMle, Scheme::NonUniform] {
        assert_sim_mappings_agree(scheme, "big500", 1_500);
    }
}

/// Cluster, exact scheme: threading never perturbs exact counters, so the
/// two mappings must match bit for bit — estimates, totals, and the full
/// message/byte accounting.
fn assert_cluster_mappings_agree_exactly(net_name: &str, m: usize) {
    let net = net_by_name(net_name);
    let tc = TrackerConfig::new(Scheme::ExactMle).with_k(4).with_seed(11).with_chunk(64);
    let run = |mode: MappingMode| {
        let events = TrainingStream::new(&net, 7).take(m);
        run_cluster_tracker(&net, &tc.clone().with_mapping(mode), events)
            .expect("cluster run failed")
    };
    let strided = run(MappingMode::Strided);
    let reference = run(MappingMode::Reference);
    assert_eq!(strided.report.events, reference.report.events, "{net_name}: events");
    assert_eq!(strided.report.stats, reference.report.stats, "{net_name}: wire accounting");
    let layout = CounterLayout::new(&net);
    for id in 0..layout.n_counters() {
        assert_eq!(
            strided.model.exact_total(id),
            reference.model.exact_total(id),
            "{net_name}: exact total, counter {id}"
        );
    }
    for i in 0..layout.n_vars() {
        for u in 0..layout.parent_configs(i) {
            for v in 0..layout.cardinality(i) {
                let (sn, sd) = strided.model.counter_pair(i, v, u);
                let (rn, rd) = reference.model.counter_pair(i, v, u);
                assert_eq!(sn.to_bits(), rn.to_bits(), "{net_name}: family ({i},{v},{u})");
                assert_eq!(sd.to_bits(), rd.to_bits(), "{net_name}: parent ({i},{u})");
            }
        }
    }
}

#[test]
fn cluster_exact_strided_is_bit_identical_sprinkler() {
    assert_cluster_mappings_agree_exactly("sprinkler", 4_000);
}

#[test]
fn cluster_exact_strided_is_bit_identical_alarm() {
    assert_cluster_mappings_agree_exactly("alarm", 2_000);
}

#[test]
fn cluster_exact_strided_is_bit_identical_big500() {
    assert_cluster_mappings_agree_exactly("big500", 1_000);
}

/// Cluster, approximate scheme: HYZ traffic depends on thread interleaving,
/// so per-message accounting is not comparable across runs — but the
/// *multiset of increments* each counter receives is fixed by the stream,
/// so the exact ledger totals must still agree between mapping modes.
#[test]
fn cluster_nonuniform_exact_ledgers_agree_big500() {
    let net = net_by_name("big500");
    let tc =
        TrackerConfig::new(Scheme::NonUniform).with_k(4).with_seed(11).with_eps(0.2).with_chunk(64);
    let run = |mode: MappingMode| {
        let events = TrainingStream::new(&net, 7).take(1_000);
        run_cluster_tracker(&net, &tc.clone().with_mapping(mode), events)
            .expect("cluster run failed")
    };
    let strided = run(MappingMode::Strided);
    let reference = run(MappingMode::Reference);
    assert_eq!(strided.report.events, reference.report.events);
    let layout = CounterLayout::new(&net);
    for id in 0..layout.n_counters() {
        assert_eq!(
            strided.model.exact_total(id),
            reference.model.exact_total(id),
            "exact total, counter {id}"
        );
    }
}

/// FNV-1a over the DAG's parent lists + domain cardinalities — a cheap
/// structural fingerprint for the golden-determinism pin.
fn structure_hash(net: &BayesianNetwork) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut mix = |v: u64| {
        h ^= v;
        h = h.wrapping_mul(0x100000001b3);
    };
    for i in 0..net.n_vars() {
        mix(net.cardinality(i) as u64);
        mix(u64::MAX); // delimiter between variables
        for &p in net.dag().parents(i) {
            mix(p as u64);
        }
    }
    h
}

/// Same seed, same preset → the same DAG bit for bit and the same counter
/// space, twice over and against golden values recorded when the presets
/// landed (a silent generator change would shift every downstream result).
#[test]
fn big_presets_are_golden_deterministic() {
    let goldens: [(&str, u64, usize); 3] = [
        ("big500", 0x7cf6e05da496f60a, 22531),
        ("big1500", 0x6e5de68a7017fbe2, 66606),
        ("munin-stress", 0x416abf0ab1c4a3a7, 239231),
    ];
    for (name, hash, n_counters) in goldens {
        let a = net_by_name(name);
        let b = net_by_name(name);
        assert_eq!(structure_hash(&a), structure_hash(&b), "{name}: regeneration diverged");
        assert_eq!(structure_hash(&a), hash, "{name}: DAG drifted from golden");
        assert_eq!(
            CounterLayout::new(&a).n_counters(),
            n_counters,
            "{name}: counter space drifted from golden"
        );
        // A different seed must actually produce a different network.
        let other = NetworkSpec::by_name(name).unwrap().generate(2).unwrap();
        assert_ne!(structure_hash(&a), structure_hash(&other), "{name}: seed ignored");
    }
}

/// The bounded-fan-in contract the stride table's width dispatch relies on.
#[test]
fn big_presets_keep_fan_in_bounded() {
    for (name, max_parents) in [("big500", 3), ("big1500", 3), ("munin-stress", 4)] {
        let net = net_by_name(name);
        for i in 0..net.n_vars() {
            assert!(
                net.dag().parents(i).len() <= max_parents,
                "{name}: variable {i} has fan-in {}",
                net.dag().parents(i).len()
            );
        }
    }
}

/// `map_chunk` ≡ per-event `map_event` at 500 variables, both modes.
#[test]
fn map_chunk_matches_map_event_big500() {
    let net = net_by_name("big500");
    let mut chunk = EventChunk::with_capacity(net.n_vars(), 64);
    for x in TrainingStream::new(&net, 5).take(64) {
        chunk.push(&x);
    }
    for mode in [MappingMode::Strided, MappingMode::Reference] {
        let mut layout = CounterLayout::new(&net);
        layout.set_mapping(mode);
        let mut bulk = Vec::new();
        layout.map_chunk(&chunk, &mut bulk);
        let mut per_event = Vec::new();
        let mut ids = Vec::new();
        for ev in chunk.iter() {
            layout.map_event_u32(ev, &mut ids);
            per_event.extend_from_slice(&ids);
        }
        assert_eq!(bulk, per_event, "mode {mode:?}");
    }
}
